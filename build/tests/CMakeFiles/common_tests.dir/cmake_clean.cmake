file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/args_test.cc.o"
  "CMakeFiles/common_tests.dir/common/args_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/binary_io_test.cc.o"
  "CMakeFiles/common_tests.dir/common/binary_io_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/bounding_box_test.cc.o"
  "CMakeFiles/common_tests.dir/common/bounding_box_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/dataset_test.cc.o"
  "CMakeFiles/common_tests.dir/common/dataset_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/eigen_test.cc.o"
  "CMakeFiles/common_tests.dir/common/eigen_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/metric_test.cc.o"
  "CMakeFiles/common_tests.dir/common/metric_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/misc_test.cc.o"
  "CMakeFiles/common_tests.dir/common/misc_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/stats_test.cc.o"
  "CMakeFiles/common_tests.dir/common/stats_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
