
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/args_test.cc" "tests/CMakeFiles/common_tests.dir/common/args_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/args_test.cc.o.d"
  "/root/repo/tests/common/binary_io_test.cc" "tests/CMakeFiles/common_tests.dir/common/binary_io_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/binary_io_test.cc.o.d"
  "/root/repo/tests/common/bounding_box_test.cc" "tests/CMakeFiles/common_tests.dir/common/bounding_box_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/bounding_box_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/common_tests.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/dataset_test.cc" "tests/CMakeFiles/common_tests.dir/common/dataset_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/dataset_test.cc.o.d"
  "/root/repo/tests/common/eigen_test.cc" "tests/CMakeFiles/common_tests.dir/common/eigen_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/eigen_test.cc.o.d"
  "/root/repo/tests/common/metric_test.cc" "tests/CMakeFiles/common_tests.dir/common/metric_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/metric_test.cc.o.d"
  "/root/repo/tests/common/misc_test.cc" "tests/CMakeFiles/common_tests.dir/common/misc_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/misc_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/common_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/common_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/common_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/simjoin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/simjoin_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/simjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
