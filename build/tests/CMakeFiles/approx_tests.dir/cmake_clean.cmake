file(REMOVE_RECURSE
  "CMakeFiles/approx_tests.dir/approx/lsh_join_test.cc.o"
  "CMakeFiles/approx_tests.dir/approx/lsh_join_test.cc.o.d"
  "approx_tests"
  "approx_tests.pdb"
  "approx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
