# Empty dependencies file for approx_tests.
# This may be replaced when dependencies are built.
