file(REMOVE_RECURSE
  "CMakeFiles/baselines_tests.dir/baselines/grid_join_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/grid_join_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/kdtree_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/kdtree_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/nested_loop_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/nested_loop_test.cc.o.d"
  "CMakeFiles/baselines_tests.dir/baselines/sort_merge_test.cc.o"
  "CMakeFiles/baselines_tests.dir/baselines/sort_merge_test.cc.o.d"
  "baselines_tests"
  "baselines_tests.pdb"
  "baselines_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
