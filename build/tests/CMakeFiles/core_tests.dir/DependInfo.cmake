
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/closest_pairs_test.cc" "tests/CMakeFiles/core_tests.dir/core/closest_pairs_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/closest_pairs_test.cc.o.d"
  "/root/repo/tests/core/components_test.cc" "tests/CMakeFiles/core_tests.dir/core/components_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/components_test.cc.o.d"
  "/root/repo/tests/core/dbscan_test.cc" "tests/CMakeFiles/core_tests.dir/core/dbscan_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dbscan_test.cc.o.d"
  "/root/repo/tests/core/dynamic_stress_test.cc" "tests/CMakeFiles/core_tests.dir/core/dynamic_stress_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dynamic_stress_test.cc.o.d"
  "/root/repo/tests/core/ekdb_config_test.cc" "tests/CMakeFiles/core_tests.dir/core/ekdb_config_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ekdb_config_test.cc.o.d"
  "/root/repo/tests/core/ekdb_dynamic_test.cc" "tests/CMakeFiles/core_tests.dir/core/ekdb_dynamic_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ekdb_dynamic_test.cc.o.d"
  "/root/repo/tests/core/ekdb_join_test.cc" "tests/CMakeFiles/core_tests.dir/core/ekdb_join_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ekdb_join_test.cc.o.d"
  "/root/repo/tests/core/ekdb_serialize_test.cc" "tests/CMakeFiles/core_tests.dir/core/ekdb_serialize_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ekdb_serialize_test.cc.o.d"
  "/root/repo/tests/core/ekdb_tree_test.cc" "tests/CMakeFiles/core_tests.dir/core/ekdb_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ekdb_tree_test.cc.o.d"
  "/root/repo/tests/core/external_join_test.cc" "tests/CMakeFiles/core_tests.dir/core/external_join_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/external_join_test.cc.o.d"
  "/root/repo/tests/core/parallel_join_test.cc" "tests/CMakeFiles/core_tests.dir/core/parallel_join_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/parallel_join_test.cc.o.d"
  "/root/repo/tests/core/planner_test.cc" "tests/CMakeFiles/core_tests.dir/core/planner_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/planner_test.cc.o.d"
  "/root/repo/tests/core/projected_join_test.cc" "tests/CMakeFiles/core_tests.dir/core/projected_join_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/projected_join_test.cc.o.d"
  "/root/repo/tests/core/selectivity_test.cc" "tests/CMakeFiles/core_tests.dir/core/selectivity_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/selectivity_test.cc.o.d"
  "/root/repo/tests/core/streaming_window_test.cc" "tests/CMakeFiles/core_tests.dir/core/streaming_window_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/streaming_window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/simjoin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/simjoin_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/simjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/simjoin_planner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
