file(REMOVE_RECURSE
  "CMakeFiles/bench_util_tests.dir/bench/bench_util_test.cc.o"
  "CMakeFiles/bench_util_tests.dir/bench/bench_util_test.cc.o.d"
  "bench_util_tests"
  "bench_util_tests.pdb"
  "bench_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
