# Empty compiler generated dependencies file for bench_util_tests.
# This may be replaced when dependencies are built.
