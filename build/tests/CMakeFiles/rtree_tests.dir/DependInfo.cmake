
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtree/rstar_test.cc" "tests/CMakeFiles/rtree_tests.dir/rtree/rstar_test.cc.o" "gcc" "tests/CMakeFiles/rtree_tests.dir/rtree/rstar_test.cc.o.d"
  "/root/repo/tests/rtree/rtree_join_test.cc" "tests/CMakeFiles/rtree_tests.dir/rtree/rtree_join_test.cc.o" "gcc" "tests/CMakeFiles/rtree_tests.dir/rtree/rtree_join_test.cc.o.d"
  "/root/repo/tests/rtree/rtree_test.cc" "tests/CMakeFiles/rtree_tests.dir/rtree/rtree_test.cc.o" "gcc" "tests/CMakeFiles/rtree_tests.dir/rtree/rtree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/simjoin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/simjoin_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/simjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
