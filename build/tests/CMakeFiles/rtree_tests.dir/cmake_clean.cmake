file(REMOVE_RECURSE
  "CMakeFiles/rtree_tests.dir/rtree/rstar_test.cc.o"
  "CMakeFiles/rtree_tests.dir/rtree/rstar_test.cc.o.d"
  "CMakeFiles/rtree_tests.dir/rtree/rtree_join_test.cc.o"
  "CMakeFiles/rtree_tests.dir/rtree/rtree_join_test.cc.o.d"
  "CMakeFiles/rtree_tests.dir/rtree/rtree_test.cc.o"
  "CMakeFiles/rtree_tests.dir/rtree/rtree_test.cc.o.d"
  "rtree_tests"
  "rtree_tests.pdb"
  "rtree_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
