# Empty compiler generated dependencies file for rtree_tests.
# This may be replaced when dependencies are built.
