# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/rtree_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/approx_tests[1]_include.cmake")
include("/root/repo/build/tests/bench_util_tests[1]_include.cmake")
add_test(cli_generate "/root/repo/build/tools/simjoin_cli" "generate" "--workload" "clustered" "--n" "800" "--dims" "4" "--out" "/root/repo/build/cli_smoke_points.sjdb")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/simjoin_cli" "info" "--input" "/root/repo/build/cli_smoke_points.sjdb")
set_tests_properties(cli_info PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;90;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_join "/root/repo/build/tools/simjoin_cli" "join" "--input" "/root/repo/build/cli_smoke_points.sjdb" "--epsilon" "0.08" "--algo" "ekdb")
set_tests_properties(cli_join PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_join_rtree "/root/repo/build/tools/simjoin_cli" "join" "--input" "/root/repo/build/cli_smoke_points.sjdb" "--epsilon" "0.08" "--algo" "rtree")
set_tests_properties(cli_join_rtree PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;93;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/simjoin_cli" "plan" "--input" "/root/repo/build/cli_smoke_points.sjdb" "--epsilon" "0.08" "--run" "true")
set_tests_properties(cli_plan PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/simjoin_cli" "frobnicate")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;99;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_join_missing_input "/root/repo/build/tools/simjoin_cli" "join" "--epsilon" "0.1")
set_tests_properties(cli_join_missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;101;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_cluster "/root/repo/build/tools/simjoin_cli" "cluster" "--input" "/root/repo/build/cli_smoke_points.sjdb" "--epsilon" "0.08")
set_tests_properties(cli_cluster PROPERTIES  FIXTURES_REQUIRED "cli_data" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;103;add_test;/root/repo/tests/CMakeLists.txt;0;")
