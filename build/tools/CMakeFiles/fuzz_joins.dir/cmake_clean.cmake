file(REMOVE_RECURSE
  "CMakeFiles/fuzz_joins.dir/fuzz_joins.cpp.o"
  "CMakeFiles/fuzz_joins.dir/fuzz_joins.cpp.o.d"
  "fuzz_joins"
  "fuzz_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
