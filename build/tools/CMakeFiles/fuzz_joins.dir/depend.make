# Empty dependencies file for fuzz_joins.
# This may be replaced when dependencies are built.
