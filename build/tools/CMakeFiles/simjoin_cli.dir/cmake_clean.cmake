file(REMOVE_RECURSE
  "CMakeFiles/simjoin_cli.dir/simjoin_cli.cpp.o"
  "CMakeFiles/simjoin_cli.dir/simjoin_cli.cpp.o.d"
  "simjoin_cli"
  "simjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
