# Empty dependencies file for simjoin_cli.
# This may be replaced when dependencies are built.
