file(REMOVE_RECURSE
  "CMakeFiles/simjoin_rtree.dir/rtree.cc.o"
  "CMakeFiles/simjoin_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/simjoin_rtree.dir/rtree_join.cc.o"
  "CMakeFiles/simjoin_rtree.dir/rtree_join.cc.o.d"
  "libsimjoin_rtree.a"
  "libsimjoin_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
