file(REMOVE_RECURSE
  "libsimjoin_rtree.a"
)
