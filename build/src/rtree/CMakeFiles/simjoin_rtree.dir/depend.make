# Empty dependencies file for simjoin_rtree.
# This may be replaced when dependencies are built.
