file(REMOVE_RECURSE
  "libsimjoin_approx.a"
)
