# Empty dependencies file for simjoin_approx.
# This may be replaced when dependencies are built.
