file(REMOVE_RECURSE
  "CMakeFiles/simjoin_approx.dir/lsh_join.cc.o"
  "CMakeFiles/simjoin_approx.dir/lsh_join.cc.o.d"
  "libsimjoin_approx.a"
  "libsimjoin_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
