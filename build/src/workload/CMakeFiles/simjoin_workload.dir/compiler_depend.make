# Empty compiler generated dependencies file for simjoin_workload.
# This may be replaced when dependencies are built.
