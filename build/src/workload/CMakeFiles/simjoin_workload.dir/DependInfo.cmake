
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fft.cc" "src/workload/CMakeFiles/simjoin_workload.dir/fft.cc.o" "gcc" "src/workload/CMakeFiles/simjoin_workload.dir/fft.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/simjoin_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/simjoin_workload.dir/generators.cc.o.d"
  "/root/repo/src/workload/image_features.cc" "src/workload/CMakeFiles/simjoin_workload.dir/image_features.cc.o" "gcc" "src/workload/CMakeFiles/simjoin_workload.dir/image_features.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/simjoin_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/simjoin_workload.dir/profile.cc.o.d"
  "/root/repo/src/workload/timeseries.cc" "src/workload/CMakeFiles/simjoin_workload.dir/timeseries.cc.o" "gcc" "src/workload/CMakeFiles/simjoin_workload.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
