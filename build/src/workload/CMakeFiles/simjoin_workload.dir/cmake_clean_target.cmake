file(REMOVE_RECURSE
  "libsimjoin_workload.a"
)
