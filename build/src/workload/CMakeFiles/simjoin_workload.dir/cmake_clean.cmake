file(REMOVE_RECURSE
  "CMakeFiles/simjoin_workload.dir/fft.cc.o"
  "CMakeFiles/simjoin_workload.dir/fft.cc.o.d"
  "CMakeFiles/simjoin_workload.dir/generators.cc.o"
  "CMakeFiles/simjoin_workload.dir/generators.cc.o.d"
  "CMakeFiles/simjoin_workload.dir/image_features.cc.o"
  "CMakeFiles/simjoin_workload.dir/image_features.cc.o.d"
  "CMakeFiles/simjoin_workload.dir/profile.cc.o"
  "CMakeFiles/simjoin_workload.dir/profile.cc.o.d"
  "CMakeFiles/simjoin_workload.dir/timeseries.cc.o"
  "CMakeFiles/simjoin_workload.dir/timeseries.cc.o.d"
  "libsimjoin_workload.a"
  "libsimjoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
