
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/components.cc" "src/core/CMakeFiles/simjoin_core.dir/components.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/components.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/core/CMakeFiles/simjoin_core.dir/dbscan.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/dbscan.cc.o.d"
  "/root/repo/src/core/ekdb_config.cc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_config.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_config.cc.o.d"
  "/root/repo/src/core/ekdb_join.cc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_join.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_join.cc.o.d"
  "/root/repo/src/core/ekdb_serialize.cc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_serialize.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_serialize.cc.o.d"
  "/root/repo/src/core/ekdb_tree.cc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_tree.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/ekdb_tree.cc.o.d"
  "/root/repo/src/core/external_join.cc" "src/core/CMakeFiles/simjoin_core.dir/external_join.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/external_join.cc.o.d"
  "/root/repo/src/core/parallel_join.cc" "src/core/CMakeFiles/simjoin_core.dir/parallel_join.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/parallel_join.cc.o.d"
  "/root/repo/src/core/projected_join.cc" "src/core/CMakeFiles/simjoin_core.dir/projected_join.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/projected_join.cc.o.d"
  "/root/repo/src/core/selectivity.cc" "src/core/CMakeFiles/simjoin_core.dir/selectivity.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/selectivity.cc.o.d"
  "/root/repo/src/core/streaming_window.cc" "src/core/CMakeFiles/simjoin_core.dir/streaming_window.cc.o" "gcc" "src/core/CMakeFiles/simjoin_core.dir/streaming_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
