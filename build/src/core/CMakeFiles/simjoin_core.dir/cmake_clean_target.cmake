file(REMOVE_RECURSE
  "libsimjoin_core.a"
)
