file(REMOVE_RECURSE
  "CMakeFiles/simjoin_core.dir/components.cc.o"
  "CMakeFiles/simjoin_core.dir/components.cc.o.d"
  "CMakeFiles/simjoin_core.dir/dbscan.cc.o"
  "CMakeFiles/simjoin_core.dir/dbscan.cc.o.d"
  "CMakeFiles/simjoin_core.dir/ekdb_config.cc.o"
  "CMakeFiles/simjoin_core.dir/ekdb_config.cc.o.d"
  "CMakeFiles/simjoin_core.dir/ekdb_join.cc.o"
  "CMakeFiles/simjoin_core.dir/ekdb_join.cc.o.d"
  "CMakeFiles/simjoin_core.dir/ekdb_serialize.cc.o"
  "CMakeFiles/simjoin_core.dir/ekdb_serialize.cc.o.d"
  "CMakeFiles/simjoin_core.dir/ekdb_tree.cc.o"
  "CMakeFiles/simjoin_core.dir/ekdb_tree.cc.o.d"
  "CMakeFiles/simjoin_core.dir/external_join.cc.o"
  "CMakeFiles/simjoin_core.dir/external_join.cc.o.d"
  "CMakeFiles/simjoin_core.dir/parallel_join.cc.o"
  "CMakeFiles/simjoin_core.dir/parallel_join.cc.o.d"
  "CMakeFiles/simjoin_core.dir/projected_join.cc.o"
  "CMakeFiles/simjoin_core.dir/projected_join.cc.o.d"
  "CMakeFiles/simjoin_core.dir/selectivity.cc.o"
  "CMakeFiles/simjoin_core.dir/selectivity.cc.o.d"
  "CMakeFiles/simjoin_core.dir/streaming_window.cc.o"
  "CMakeFiles/simjoin_core.dir/streaming_window.cc.o.d"
  "libsimjoin_core.a"
  "libsimjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
