# Empty dependencies file for simjoin_core.
# This may be replaced when dependencies are built.
