# Empty dependencies file for simjoin_planner.
# This may be replaced when dependencies are built.
