file(REMOVE_RECURSE
  "libsimjoin_planner.a"
)
