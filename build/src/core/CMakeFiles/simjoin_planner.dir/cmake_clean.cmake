file(REMOVE_RECURSE
  "CMakeFiles/simjoin_planner.dir/closest_pairs.cc.o"
  "CMakeFiles/simjoin_planner.dir/closest_pairs.cc.o.d"
  "CMakeFiles/simjoin_planner.dir/planner.cc.o"
  "CMakeFiles/simjoin_planner.dir/planner.cc.o.d"
  "libsimjoin_planner.a"
  "libsimjoin_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
