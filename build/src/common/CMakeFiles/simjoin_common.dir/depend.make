# Empty dependencies file for simjoin_common.
# This may be replaced when dependencies are built.
