file(REMOVE_RECURSE
  "CMakeFiles/simjoin_common.dir/args.cc.o"
  "CMakeFiles/simjoin_common.dir/args.cc.o.d"
  "CMakeFiles/simjoin_common.dir/binary_io.cc.o"
  "CMakeFiles/simjoin_common.dir/binary_io.cc.o.d"
  "CMakeFiles/simjoin_common.dir/bounding_box.cc.o"
  "CMakeFiles/simjoin_common.dir/bounding_box.cc.o.d"
  "CMakeFiles/simjoin_common.dir/csv.cc.o"
  "CMakeFiles/simjoin_common.dir/csv.cc.o.d"
  "CMakeFiles/simjoin_common.dir/dataset.cc.o"
  "CMakeFiles/simjoin_common.dir/dataset.cc.o.d"
  "CMakeFiles/simjoin_common.dir/eigen.cc.o"
  "CMakeFiles/simjoin_common.dir/eigen.cc.o.d"
  "CMakeFiles/simjoin_common.dir/logging.cc.o"
  "CMakeFiles/simjoin_common.dir/logging.cc.o.d"
  "CMakeFiles/simjoin_common.dir/metric.cc.o"
  "CMakeFiles/simjoin_common.dir/metric.cc.o.d"
  "CMakeFiles/simjoin_common.dir/pca.cc.o"
  "CMakeFiles/simjoin_common.dir/pca.cc.o.d"
  "CMakeFiles/simjoin_common.dir/rng.cc.o"
  "CMakeFiles/simjoin_common.dir/rng.cc.o.d"
  "CMakeFiles/simjoin_common.dir/stats.cc.o"
  "CMakeFiles/simjoin_common.dir/stats.cc.o.d"
  "CMakeFiles/simjoin_common.dir/status.cc.o"
  "CMakeFiles/simjoin_common.dir/status.cc.o.d"
  "CMakeFiles/simjoin_common.dir/thread_pool.cc.o"
  "CMakeFiles/simjoin_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/simjoin_common.dir/timer.cc.o"
  "CMakeFiles/simjoin_common.dir/timer.cc.o.d"
  "CMakeFiles/simjoin_common.dir/union_find.cc.o"
  "CMakeFiles/simjoin_common.dir/union_find.cc.o.d"
  "libsimjoin_common.a"
  "libsimjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
