file(REMOVE_RECURSE
  "libsimjoin_common.a"
)
