
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/args.cc" "src/common/CMakeFiles/simjoin_common.dir/args.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/args.cc.o.d"
  "/root/repo/src/common/binary_io.cc" "src/common/CMakeFiles/simjoin_common.dir/binary_io.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/binary_io.cc.o.d"
  "/root/repo/src/common/bounding_box.cc" "src/common/CMakeFiles/simjoin_common.dir/bounding_box.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/bounding_box.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/simjoin_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/csv.cc.o.d"
  "/root/repo/src/common/dataset.cc" "src/common/CMakeFiles/simjoin_common.dir/dataset.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/dataset.cc.o.d"
  "/root/repo/src/common/eigen.cc" "src/common/CMakeFiles/simjoin_common.dir/eigen.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/eigen.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/simjoin_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/logging.cc.o.d"
  "/root/repo/src/common/metric.cc" "src/common/CMakeFiles/simjoin_common.dir/metric.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/metric.cc.o.d"
  "/root/repo/src/common/pca.cc" "src/common/CMakeFiles/simjoin_common.dir/pca.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/pca.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/simjoin_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/simjoin_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/simjoin_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/simjoin_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/thread_pool.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/common/CMakeFiles/simjoin_common.dir/timer.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/timer.cc.o.d"
  "/root/repo/src/common/union_find.cc" "src/common/CMakeFiles/simjoin_common.dir/union_find.cc.o" "gcc" "src/common/CMakeFiles/simjoin_common.dir/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
