# Empty dependencies file for simjoin_baselines.
# This may be replaced when dependencies are built.
