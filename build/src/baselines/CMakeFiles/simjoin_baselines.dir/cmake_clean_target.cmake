file(REMOVE_RECURSE
  "libsimjoin_baselines.a"
)
