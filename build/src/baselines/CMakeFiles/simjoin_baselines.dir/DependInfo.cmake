
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/grid_join.cc" "src/baselines/CMakeFiles/simjoin_baselines.dir/grid_join.cc.o" "gcc" "src/baselines/CMakeFiles/simjoin_baselines.dir/grid_join.cc.o.d"
  "/root/repo/src/baselines/kdtree.cc" "src/baselines/CMakeFiles/simjoin_baselines.dir/kdtree.cc.o" "gcc" "src/baselines/CMakeFiles/simjoin_baselines.dir/kdtree.cc.o.d"
  "/root/repo/src/baselines/nested_loop.cc" "src/baselines/CMakeFiles/simjoin_baselines.dir/nested_loop.cc.o" "gcc" "src/baselines/CMakeFiles/simjoin_baselines.dir/nested_loop.cc.o.d"
  "/root/repo/src/baselines/sort_merge.cc" "src/baselines/CMakeFiles/simjoin_baselines.dir/sort_merge.cc.o" "gcc" "src/baselines/CMakeFiles/simjoin_baselines.dir/sort_merge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/simjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
