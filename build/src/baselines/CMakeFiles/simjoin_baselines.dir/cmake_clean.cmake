file(REMOVE_RECURSE
  "CMakeFiles/simjoin_baselines.dir/grid_join.cc.o"
  "CMakeFiles/simjoin_baselines.dir/grid_join.cc.o.d"
  "CMakeFiles/simjoin_baselines.dir/kdtree.cc.o"
  "CMakeFiles/simjoin_baselines.dir/kdtree.cc.o.d"
  "CMakeFiles/simjoin_baselines.dir/nested_loop.cc.o"
  "CMakeFiles/simjoin_baselines.dir/nested_loop.cc.o.d"
  "CMakeFiles/simjoin_baselines.dir/sort_merge.cc.o"
  "CMakeFiles/simjoin_baselines.dir/sort_merge.cc.o.d"
  "libsimjoin_baselines.a"
  "libsimjoin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
