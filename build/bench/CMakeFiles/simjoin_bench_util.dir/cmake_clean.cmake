file(REMOVE_RECURSE
  "CMakeFiles/simjoin_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/simjoin_bench_util.dir/bench_util.cc.o.d"
  "libsimjoin_bench_util.a"
  "libsimjoin_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simjoin_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
