file(REMOVE_RECURSE
  "libsimjoin_bench_util.a"
)
