# Empty dependencies file for simjoin_bench_util.
# This may be replaced when dependencies are built.
