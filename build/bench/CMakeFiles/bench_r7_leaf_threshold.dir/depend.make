# Empty dependencies file for bench_r7_leaf_threshold.
# This may be replaced when dependencies are built.
