file(REMOVE_RECURSE
  "CMakeFiles/bench_r7_leaf_threshold.dir/bench_r7_leaf_threshold.cc.o"
  "CMakeFiles/bench_r7_leaf_threshold.dir/bench_r7_leaf_threshold.cc.o.d"
  "bench_r7_leaf_threshold"
  "bench_r7_leaf_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r7_leaf_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
