# Empty dependencies file for bench_r3_dims.
# This may be replaced when dependencies are built.
