file(REMOVE_RECURSE
  "CMakeFiles/bench_r3_dims.dir/bench_r3_dims.cc.o"
  "CMakeFiles/bench_r3_dims.dir/bench_r3_dims.cc.o.d"
  "bench_r3_dims"
  "bench_r3_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r3_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
