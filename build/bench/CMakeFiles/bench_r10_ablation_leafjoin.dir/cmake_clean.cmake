file(REMOVE_RECURSE
  "CMakeFiles/bench_r10_ablation_leafjoin.dir/bench_r10_ablation_leafjoin.cc.o"
  "CMakeFiles/bench_r10_ablation_leafjoin.dir/bench_r10_ablation_leafjoin.cc.o.d"
  "bench_r10_ablation_leafjoin"
  "bench_r10_ablation_leafjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r10_ablation_leafjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
