# Empty dependencies file for bench_r10_ablation_leafjoin.
# This may be replaced when dependencies are built.
