# Empty dependencies file for bench_r4_skew.
# This may be replaced when dependencies are built.
