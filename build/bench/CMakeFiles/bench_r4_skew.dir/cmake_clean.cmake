file(REMOVE_RECURSE
  "CMakeFiles/bench_r4_skew.dir/bench_r4_skew.cc.o"
  "CMakeFiles/bench_r4_skew.dir/bench_r4_skew.cc.o.d"
  "bench_r4_skew"
  "bench_r4_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r4_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
