file(REMOVE_RECURSE
  "CMakeFiles/bench_r14_streaming.dir/bench_r14_streaming.cc.o"
  "CMakeFiles/bench_r14_streaming.dir/bench_r14_streaming.cc.o.d"
  "bench_r14_streaming"
  "bench_r14_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r14_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
