# Empty dependencies file for bench_r9_metrics.
# This may be replaced when dependencies are built.
