file(REMOVE_RECURSE
  "CMakeFiles/bench_r9_metrics.dir/bench_r9_metrics.cc.o"
  "CMakeFiles/bench_r9_metrics.dir/bench_r9_metrics.cc.o.d"
  "bench_r9_metrics"
  "bench_r9_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r9_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
