# Empty compiler generated dependencies file for bench_r12_micro.
# This may be replaced when dependencies are built.
