# Empty dependencies file for bench_r13_outofcore.
# This may be replaced when dependencies are built.
