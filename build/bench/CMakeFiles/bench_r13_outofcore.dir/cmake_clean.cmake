file(REMOVE_RECURSE
  "CMakeFiles/bench_r13_outofcore.dir/bench_r13_outofcore.cc.o"
  "CMakeFiles/bench_r13_outofcore.dir/bench_r13_outofcore.cc.o.d"
  "bench_r13_outofcore"
  "bench_r13_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r13_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
