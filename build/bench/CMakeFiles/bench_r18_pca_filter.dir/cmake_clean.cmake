file(REMOVE_RECURSE
  "CMakeFiles/bench_r18_pca_filter.dir/bench_r18_pca_filter.cc.o"
  "CMakeFiles/bench_r18_pca_filter.dir/bench_r18_pca_filter.cc.o.d"
  "bench_r18_pca_filter"
  "bench_r18_pca_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r18_pca_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
