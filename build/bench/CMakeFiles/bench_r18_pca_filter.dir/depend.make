# Empty dependencies file for bench_r18_pca_filter.
# This may be replaced when dependencies are built.
