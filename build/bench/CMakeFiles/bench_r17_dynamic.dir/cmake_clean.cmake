file(REMOVE_RECURSE
  "CMakeFiles/bench_r17_dynamic.dir/bench_r17_dynamic.cc.o"
  "CMakeFiles/bench_r17_dynamic.dir/bench_r17_dynamic.cc.o.d"
  "bench_r17_dynamic"
  "bench_r17_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r17_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
