# Empty dependencies file for bench_r17_dynamic.
# This may be replaced when dependencies are built.
