# Empty dependencies file for bench_r6_real_workloads.
# This may be replaced when dependencies are built.
