file(REMOVE_RECURSE
  "CMakeFiles/bench_r6_real_workloads.dir/bench_r6_real_workloads.cc.o"
  "CMakeFiles/bench_r6_real_workloads.dir/bench_r6_real_workloads.cc.o.d"
  "bench_r6_real_workloads"
  "bench_r6_real_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r6_real_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
