file(REMOVE_RECURSE
  "CMakeFiles/bench_r15_lsh.dir/bench_r15_lsh.cc.o"
  "CMakeFiles/bench_r15_lsh.dir/bench_r15_lsh.cc.o.d"
  "bench_r15_lsh"
  "bench_r15_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r15_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
