# Empty dependencies file for bench_r8_memory.
# This may be replaced when dependencies are built.
