file(REMOVE_RECURSE
  "CMakeFiles/bench_r1_epsilon.dir/bench_r1_epsilon.cc.o"
  "CMakeFiles/bench_r1_epsilon.dir/bench_r1_epsilon.cc.o.d"
  "bench_r1_epsilon"
  "bench_r1_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r1_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
