# Empty dependencies file for bench_r1_epsilon.
# This may be replaced when dependencies are built.
