file(REMOVE_RECURSE
  "CMakeFiles/bench_r11_parallel.dir/bench_r11_parallel.cc.o"
  "CMakeFiles/bench_r11_parallel.dir/bench_r11_parallel.cc.o.d"
  "bench_r11_parallel"
  "bench_r11_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r11_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
