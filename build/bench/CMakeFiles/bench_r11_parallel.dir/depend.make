# Empty dependencies file for bench_r11_parallel.
# This may be replaced when dependencies are built.
