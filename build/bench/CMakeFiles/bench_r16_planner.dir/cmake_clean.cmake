file(REMOVE_RECURSE
  "CMakeFiles/bench_r16_planner.dir/bench_r16_planner.cc.o"
  "CMakeFiles/bench_r16_planner.dir/bench_r16_planner.cc.o.d"
  "bench_r16_planner"
  "bench_r16_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r16_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
