file(REMOVE_RECURSE
  "CMakeFiles/bench_r5_nonself.dir/bench_r5_nonself.cc.o"
  "CMakeFiles/bench_r5_nonself.dir/bench_r5_nonself.cc.o.d"
  "bench_r5_nonself"
  "bench_r5_nonself.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r5_nonself.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
