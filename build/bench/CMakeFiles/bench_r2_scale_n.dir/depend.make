# Empty dependencies file for bench_r2_scale_n.
# This may be replaced when dependencies are built.
