#!/usr/bin/env bash
# Guards the join-hot-path benchmarks against performance regressions.
#
# Runs the kernel-filter micro-benchmarks (bench_r12_micro), the
# flat-vs-pointer leaf-join ablation (bench_r10_ablation_leafjoin), the
# parallel thread-scaling sweep (bench_r11_parallel), and the query-service
# loopback load test (bench_r19_service), writes machine-readable snapshots
# next to the repo root:
#
#   BENCH_micro.json     google-benchmark JSON for BM_KernelFilter*
#   BENCH_leafjoin.json  ablation-3 throughputs + flat/pointer ratio
#   BENCH_parallel.json  R11 thread-scaling sweep (speedups per thread count)
#   BENCH_service.json   R19 service QPS + latency percentiles over loopback
#   BENCH_obs.json       R20 observability primitive costs + trace overhead
#   BENCH_fused.json     R21 fused vs per-request service QPS + identity bit
#   BENCH_planner.json   R22 planner routing overhead + LSH-tier speedup
#   BENCH_outofcore.json R23 external-build identity + mmap fault-in gates
#   BENCH_updates.json   R24 live-update identity + steady-state churn ratio
#
# and compares them against the checked-in baselines
# (BENCH_micro.baseline.json / BENCH_leafjoin.baseline.json /
# BENCH_parallel.baseline.json / BENCH_service.baseline.json /
# BENCH_obs.baseline.json) when present: any tracked throughput that drops
# more than SIMJOIN_BENCH_TOLERANCE (default 0.30 = 30%, benchmarks are
# noisy) below baseline fails the run.
#
# The R20 run doubles as the metrics-overhead gate: bench_r20_obs_overhead
# exits nonzero if disabled-instrumentation primitives exceed their hard
# ns ceilings, and SIMJOIN_BENCH_OBS_TOLERANCE (default 0.03 = 3%) bounds
# how far the instrumented R19 service QPS may sit below its baseline and
# how much the R20 tracing-on/off join ratio may grow before the run fails.
#
# The R21 run carries two absolute gates on top of the usual baseline
# comparison: the fused server must answer bit-identically to the
# per-request server (identical == true; the bench itself exits nonzero
# otherwise), and fusion must deliver at least
# SIMJOIN_BENCH_FUSED_MIN_SPEEDUP (default 1.5) times the per-request QPS
# at the bench's high-concurrency batch=1 configuration.
#
# The R23 run gates the out-of-core segment tier with absolute checks: the
# externally bulk-loaded segment must be byte-identical to the in-RAM
# build's WriteSegment output, mapped-tree queries must answer bit-
# identically to the heap tree, the registry must stay under its byte
# budget while serving the 4x-budget index, the post-release resident set
# must stay under the budget, and fault-in time-to-first-query must beat an
# in-RAM rebuild by at least SIMJOIN_BENCH_OUTOFCORE_MIN_SPEEDUP (default
# 5.0) times.  The bench binary asserts all of these itself and exits
# nonzero on breach; the JSON gates re-check them here.
#
# The R24 run gates the live-updatable tier: every drift-timeline answer
# (and the post-Flush requeries) must be bit-identical to a stop-the-world
# rebuild oracle (the bench exits nonzero otherwise), and steady-state
# query throughput at a 1% update rate — background compaction included —
# must stay within SIMJOIN_BENCH_UPDATES_TOLERANCE (default 0.20) of the
# immutable snapshot serving the same point set.
#
# The R22 run gates the cost-based backend planner: planner-routed exact
# answers must be bit-identical to forced ekdb-flat (the bench exits
# nonzero otherwise), routed-exact QPS must stay within
# SIMJOIN_BENCH_PLANNER_EXACT_TOLERANCE (default 0.05) of the legacy path,
# the recall-0.9 route must deliver at least
# SIMJOIN_BENCH_PLANNER_MIN_SPEEDUP (default 3.0) times the forced-exact
# QPS on the high-d clustered workload, and its measured recall must clear
# the target minus a 0.05 sampling allowance.
#
# Usage:
#   scripts/check_bench_regression.sh [build-dir] [--update-baseline]
#
#   --update-baseline   re-run and promote the fresh snapshots to baselines
#   SIMJOIN_BENCH_TOLERANCE=0.15   tighten/loosen the allowed slowdown
#   SIMJOIN_BENCH_OBS_TOLERANCE=0.05   loosen the metrics-overhead gate
#   SIMJOIN_BENCH_FILTER='BM_KernelFilter'   micro-benchmark name filter
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
UPDATE_BASELINE=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE_BASELINE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

TOLERANCE="${SIMJOIN_BENCH_TOLERANCE:-0.30}"
OBS_TOLERANCE="${SIMJOIN_BENCH_OBS_TOLERANCE:-0.03}"
FUSED_MIN_SPEEDUP="${SIMJOIN_BENCH_FUSED_MIN_SPEEDUP:-1.5}"
PLANNER_MIN_SPEEDUP="${SIMJOIN_BENCH_PLANNER_MIN_SPEEDUP:-3.0}"
PLANNER_EXACT_TOLERANCE="${SIMJOIN_BENCH_PLANNER_EXACT_TOLERANCE:-0.05}"
OUTOFCORE_MIN_SPEEDUP="${SIMJOIN_BENCH_OUTOFCORE_MIN_SPEEDUP:-5.0}"
UPDATES_TOLERANCE="${SIMJOIN_BENCH_UPDATES_TOLERANCE:-0.20}"
FILTER="${SIMJOIN_BENCH_FILTER:-BM_KernelFilter}"
MICRO_BIN="$BUILD_DIR/bench/bench_r12_micro"
ABLATION_BIN="$BUILD_DIR/bench/bench_r10_ablation_leafjoin"
PARALLEL_BIN="$BUILD_DIR/bench/bench_r11_parallel"
SERVICE_BIN="$BUILD_DIR/bench/bench_r19_service"
OBS_BIN="$BUILD_DIR/bench/bench_r20_obs_overhead"
FUSED_BIN="$BUILD_DIR/bench/bench_r21_fused"
PLANNER_BIN="$BUILD_DIR/bench/bench_r22_planner"
OUTOFCORE_BIN="$BUILD_DIR/bench/bench_r23_outofcore"
UPDATES_BIN="$BUILD_DIR/bench/bench_r24_updates"

for bin in "$MICRO_BIN" "$ABLATION_BIN" "$PARALLEL_BIN" "$SERVICE_BIN" \
           "$OBS_BIN" "$FUSED_BIN" "$PLANNER_BIN" "$OUTOFCORE_BIN" \
           "$UPDATES_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found; build with benchmarks first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

echo ">>> $MICRO_BIN (filter: $FILTER)"
"$MICRO_BIN" --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
  --benchmark_min_time=0.05

echo ">>> $ABLATION_BIN"
ABLATION_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT"' EXIT
"$ABLATION_BIN" | tee "$ABLATION_TXT"

# Distill ablation 3's CSV block + ratio line into BENCH_leafjoin.json.
python3 - "$ABLATION_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
rows = {}
for m in re.finditer(r"^# (ekdb[a-z-]*),.*?,([0-9.]+),(\d+),(\d+),(\d+)$",
                     text, re.M):
    rows[m.group(1)] = {
        "cand_per_sec_millions": float(m.group(2)),
        "candidates": int(m.group(3)),
        "pairs": int(m.group(4)),
        "bytes": int(m.group(5)),
    }
ratio = re.search(r"ratio: ([0-9.]+)x", text)
out = {
    "pointer": rows.get("ekdb"),
    "flat": rows.get("ekdb-flat"),
    "flat_vs_pointer_ratio": float(ratio.group(1)) if ratio else None,
}
if out["pointer"] is None or out["flat"] is None:
    sys.exit("error: could not parse ablation-3 CSV rows from bench output")
json.dump(out, open("BENCH_leafjoin.json", "w"), indent=2)
print("wrote BENCH_leafjoin.json")
PY

echo ">>> $PARALLEL_BIN"
PARALLEL_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT"' EXIT
"$PARALLEL_BIN" | tee "$PARALLEL_TXT"

# Extract the machine-readable PARALLEL_JSON line into BENCH_parallel.json.
python3 - "$PARALLEL_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# PARALLEL_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r11_parallel emitted no PARALLEL_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_parallel.json", "w"), indent=2)
print("wrote BENCH_parallel.json")
PY

echo ">>> $SERVICE_BIN"
SERVICE_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT"' EXIT
"$SERVICE_BIN" --seconds 2 | tee "$SERVICE_TXT"

# Extract the machine-readable SERVICE_JSON line into BENCH_service.json.
python3 - "$SERVICE_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# SERVICE_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r19_service emitted no SERVICE_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_service.json", "w"), indent=2)
print("wrote BENCH_service.json")
PY

# The R20 binary asserts its own hard ceilings on disabled-instrumentation
# cost and exits nonzero on failure (set -e propagates it).
echo ">>> $OBS_BIN"
OBS_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT" "$OBS_TXT"' EXIT
"$OBS_BIN" | tee "$OBS_TXT"

# Extract the machine-readable OBS_JSON line into BENCH_obs.json.
python3 - "$OBS_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# OBS_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r20_obs_overhead emitted no OBS_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_obs.json", "w"), indent=2)
print("wrote BENCH_obs.json")
PY

# The R21 binary enforces bit-identity itself (fused responses must match
# per-request responses byte for byte) and exits nonzero on divergence or
# request errors; set -e propagates that here.
echo ">>> $FUSED_BIN"
FUSED_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT" "$OBS_TXT" \
  "$FUSED_TXT"' EXIT
"$FUSED_BIN" --seconds 2 | tee "$FUSED_TXT"

# Extract the machine-readable FUSED_JSON line into BENCH_fused.json.
python3 - "$FUSED_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# FUSED_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r21_fused emitted no FUSED_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_fused.json", "w"), indent=2)
print("wrote BENCH_fused.json")
PY

# The R22 binary enforces routed-exact bit-identity itself and exits
# nonzero on divergence or request errors; set -e propagates that here.
echo ">>> $PLANNER_BIN"
PLANNER_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT" "$OBS_TXT" \
  "$FUSED_TXT" "$PLANNER_TXT"' EXIT
"$PLANNER_BIN" --seconds 2 | tee "$PLANNER_TXT"

# Extract the machine-readable PLANNER_JSON line into BENCH_planner.json.
python3 - "$PLANNER_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# PLANNER_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r22_planner emitted no PLANNER_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_planner.json", "w"), indent=2)
print("wrote BENCH_planner.json")
PY

# The R23 binary asserts external-build byte-identity, mapped-query
# bit-identity, the registry byte budget, the resident-set ceiling, and the
# minimum fault-in speedup itself, exiting nonzero on breach; set -e
# propagates that here.
echo ">>> $OUTOFCORE_BIN"
OUTOFCORE_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT" "$OBS_TXT" \
  "$FUSED_TXT" "$PLANNER_TXT" "$OUTOFCORE_TXT"' EXIT
"$OUTOFCORE_BIN" | tee "$OUTOFCORE_TXT"

# Extract the machine-readable OUTOFCORE_JSON line into BENCH_outofcore.json.
python3 - "$OUTOFCORE_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# OUTOFCORE_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r23_outofcore emitted no OUTOFCORE_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_outofcore.json", "w"), indent=2)
print("wrote BENCH_outofcore.json")
PY

# The R24 binary asserts drift-timeline bit-identity against the
# stop-the-world rebuild oracle itself and exits nonzero on divergence or
# request errors; set -e propagates that here.
echo ">>> $UPDATES_BIN"
UPDATES_TXT="$(mktemp)"
trap 'rm -f "$ABLATION_TXT" "$PARALLEL_TXT" "$SERVICE_TXT" "$OBS_TXT" \
  "$FUSED_TXT" "$PLANNER_TXT" "$OUTOFCORE_TXT" "$UPDATES_TXT"' EXIT
"$UPDATES_BIN" --seconds 2 | tee "$UPDATES_TXT"

# Extract the machine-readable UPDATES_JSON line into BENCH_updates.json.
python3 - "$UPDATES_TXT" <<'PY'
import json, re, sys

text = open(sys.argv[1]).read()
m = re.search(r"^# UPDATES_JSON (\{.*\})$", text, re.M)
if m is None:
    sys.exit("error: bench_r24_updates emitted no UPDATES_JSON line")
json.dump(json.loads(m.group(1)), open("BENCH_updates.json", "w"), indent=2)
print("wrote BENCH_updates.json")
PY

if [[ "$UPDATE_BASELINE" == 1 ]]; then
  cp BENCH_micro.json BENCH_micro.baseline.json
  cp BENCH_leafjoin.json BENCH_leafjoin.baseline.json
  cp BENCH_parallel.json BENCH_parallel.baseline.json
  cp BENCH_service.json BENCH_service.baseline.json
  cp BENCH_obs.json BENCH_obs.baseline.json
  cp BENCH_fused.json BENCH_fused.baseline.json
  cp BENCH_planner.json BENCH_planner.baseline.json
  cp BENCH_outofcore.json BENCH_outofcore.baseline.json
  cp BENCH_updates.json BENCH_updates.baseline.json
  echo "baselines updated (BENCH_*.baseline.json)"
  exit 0
fi

python3 - "$TOLERANCE" "$OBS_TOLERANCE" "$FUSED_MIN_SPEEDUP" \
  "$PLANNER_MIN_SPEEDUP" "$PLANNER_EXACT_TOLERANCE" \
  "$OUTOFCORE_MIN_SPEEDUP" "$UPDATES_TOLERANCE" <<'PY'
import json, os, sys

tol = float(sys.argv[1])
obs_tol = float(sys.argv[2])
fused_min_speedup = float(sys.argv[3])
planner_min_speedup = float(sys.argv[4])
planner_exact_tol = float(sys.argv[5])
outofcore_min_speedup = float(sys.argv[6])
updates_tol = float(sys.argv[7])
failures = []


def compare(name, current, baseline):
    drop = (baseline - current) / baseline if baseline > 0 else 0.0
    status = "FAIL" if drop > tol else "ok"
    print(f"  [{status}] {name}: {current:.3g} vs baseline {baseline:.3g} "
          f"({-drop:+.1%})")
    if drop > tol:
        failures.append(name)


have_baseline = False
if os.path.exists("BENCH_micro.baseline.json"):
    have_baseline = True
    cur = {b["name"]: b for b in json.load(open("BENCH_micro.json"))["benchmarks"]}
    base = {b["name"]: b
            for b in json.load(open("BENCH_micro.baseline.json"))["benchmarks"]}
    print("micro-kernel items/s vs baseline "
          f"(tolerance {tol:.0%}):")
    for name in sorted(set(cur) & set(base)):
        compare(name, cur[name].get("items_per_second", 0.0),
                base[name].get("items_per_second", 0.0))

if os.path.exists("BENCH_leafjoin.baseline.json"):
    have_baseline = True
    cur = json.load(open("BENCH_leafjoin.json"))
    base = json.load(open("BENCH_leafjoin.baseline.json"))
    print("leaf-join throughput vs baseline:")
    for layout in ("pointer", "flat"):
        compare(f"leafjoin/{layout}",
                cur[layout]["cand_per_sec_millions"],
                base[layout]["cand_per_sec_millions"])
    compare("leafjoin/flat_vs_pointer_ratio",
            cur["flat_vs_pointer_ratio"], base["flat_vs_pointer_ratio"])

if os.path.exists("BENCH_parallel.baseline.json"):
    have_baseline = True
    cur = json.load(open("BENCH_parallel.json"))
    base = json.load(open("BENCH_parallel.baseline.json"))
    # Speedups are only comparable when the host core count matches the
    # baseline's; a different machine gets a fresh snapshot, not a failure.
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print("parallel join best speedup vs baseline:")
        compare("parallel/best_join_speedup",
                cur["best_join_speedup"], base["best_join_speedup"])
    else:
        print("parallel baseline from a different core count "
              f"({base.get('hardware_concurrency')} vs "
              f"{cur.get('hardware_concurrency')}); skipping comparison")

if os.path.exists("BENCH_service.baseline.json"):
    have_baseline = True
    cur = json.load(open("BENCH_service.json"))
    base = json.load(open("BENCH_service.baseline.json"))
    # Loopback QPS is bound by the host's core count; a different machine
    # gets a fresh snapshot, not a failure.
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print("service loopback throughput vs baseline:")
        compare("service/qps", cur["qps"], base["qps"])
        if cur.get("dropped_connections", 0) or cur.get("request_errors", 0):
            failures.append("service/errors")
            print("  [FAIL] service/errors: "
                  f"{cur.get('request_errors', 0)} request errors, "
                  f"{cur.get('dropped_connections', 0)} dropped connections")
    else:
        print("service baseline from a different core count "
              f"({base.get('hardware_concurrency')} vs "
              f"{cur.get('hardware_concurrency')}); skipping comparison")

# R21 fused gates are absolute, not baseline-relative: bit-identity and the
# minimum fused-over-per-request speedup hold on any host.
cur = json.load(open("BENCH_fused.json"))
print(f"fused execution gates (min speedup {fused_min_speedup:.2f}x):")
if not cur.get("identical", False):
    failures.append("fused/identical")
    print("  [FAIL] fused/identical: fused responses diverge from "
          "per-request responses")
else:
    print("  [ok] fused/identical: responses bit-identical")
speedup = cur.get("speedup", 0.0)
status = "FAIL" if speedup < fused_min_speedup else "ok"
print(f"  [{status}] fused/speedup: {speedup:.3f}x "
      f"(minimum {fused_min_speedup:.2f}x)")
if speedup < fused_min_speedup:
    failures.append("fused/speedup")
if cur.get("errors", 0):
    failures.append("fused/errors")
    print(f"  [FAIL] fused/errors: {cur['errors']} request errors")
if os.path.exists("BENCH_fused.baseline.json"):
    have_baseline = True
    base = json.load(open("BENCH_fused.baseline.json"))
    # QPS is host-bound; compare only on the same core count.
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print("fused throughput vs baseline:")
        compare("fused/qps_fused", cur["qps_fused"], base["qps_fused"])
    else:
        print("fused baseline from a different core count "
              f"({base.get('hardware_concurrency')} vs "
              f"{cur.get('hardware_concurrency')}); skipping comparison")

# R22 planner gates are absolute: routed-exact identity and overhead, the
# recall tier's minimum speedup, and the recall floor hold on any host.
cur = json.load(open("BENCH_planner.json"))
print(f"planner gates (min LSH speedup {planner_min_speedup:.2f}x, "
      f"exact overhead tolerance {planner_exact_tol:.0%}):")
if not cur.get("identical", False):
    failures.append("planner/identical")
    print("  [FAIL] planner/identical: routed-exact responses diverge from "
          "forced ekdb-flat")
else:
    print("  [ok] planner/identical: routed-exact responses bit-identical")
exact_ratio = cur.get("exact_ratio", 0.0)
status = "FAIL" if exact_ratio < 1.0 - planner_exact_tol else "ok"
print(f"  [{status}] planner/exact_ratio: {exact_ratio:.3f} "
      f"(minimum {1.0 - planner_exact_tol:.2f})")
if exact_ratio < 1.0 - planner_exact_tol:
    failures.append("planner/exact_ratio")
lsh_speedup = cur.get("lsh_speedup", 0.0)
status = "FAIL" if lsh_speedup < planner_min_speedup else "ok"
print(f"  [{status}] planner/lsh_speedup: {lsh_speedup:.3f}x "
      f"(minimum {planner_min_speedup:.2f}x)")
if lsh_speedup < planner_min_speedup:
    failures.append("planner/lsh_speedup")
recall_floor = cur.get("recall_target", 0.9) - 0.05
measured_recall = cur.get("measured_recall", 0.0)
status = "FAIL" if measured_recall < recall_floor else "ok"
print(f"  [{status}] planner/measured_recall: {measured_recall:.3f} "
      f"(floor {recall_floor:.2f})")
if measured_recall < recall_floor:
    failures.append("planner/measured_recall")
if cur.get("errors", 0):
    failures.append("planner/errors")
    print(f"  [FAIL] planner/errors: {cur['errors']} request errors")
if os.path.exists("BENCH_planner.baseline.json"):
    have_baseline = True
    base = json.load(open("BENCH_planner.baseline.json"))
    # QPS is host-bound; compare only on the same core count.
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print("planner throughput vs baseline:")
        compare("planner/qps_recall", cur["qps_recall"], base["qps_recall"])
        compare("planner/qps_routed", cur["qps_routed"], base["qps_routed"])
    else:
        print("planner baseline from a different core count "
              f"({base.get('hardware_concurrency')} vs "
              f"{cur.get('hardware_concurrency')}); skipping comparison")

# R23 out-of-core gates are absolute: identity, budget, residency, and the
# fault-in floor hold on any host (no baseline needed).
cur = json.load(open("BENCH_outofcore.json"))
print(f"out-of-core gates (min fault-in speedup "
      f"{outofcore_min_speedup:.2f}x):")
for key, label in (("byte_identical", "external build bytes == in-RAM"),
                   ("query_identical", "mapped queries == in-RAM tree"),
                   ("under_budget", "registry bytes_in_use <= budget"),
                   ("resident_ok", "resident set under the budget")):
    ok = cur.get(key, False)
    print(f"  [{'ok' if ok else 'FAIL'}] outofcore/{key}: {label}")
    if not ok:
        failures.append(f"outofcore/{key}")
fault_speedup = cur.get("fault_speedup", 0.0)
status = "FAIL" if fault_speedup < outofcore_min_speedup else "ok"
print(f"  [{status}] outofcore/fault_speedup: {fault_speedup:.1f}x "
      f"(minimum {outofcore_min_speedup:.2f}x)")
if fault_speedup < outofcore_min_speedup:
    failures.append("outofcore/fault_speedup")

# R24 update gates are absolute: drift-timeline identity and the
# steady-state churn ratio hold on any host.
cur = json.load(open("BENCH_updates.json"))
print(f"live-update gates (churn ratio floor {1.0 - updates_tol:.2f}):")
if not cur.get("identical", False):
    failures.append("updates/identical")
    print("  [FAIL] updates/identical: drift-timeline answers diverge from "
          "the rebuild oracle")
else:
    print("  [ok] updates/identical: answers bit-identical to the rebuild "
          "oracle")
ratio = cur.get("ratio", 0.0)
status = "FAIL" if ratio < 1.0 - updates_tol else "ok"
print(f"  [{status}] updates/ratio: {ratio:.3f} "
      f"(floor {1.0 - updates_tol:.2f})")
if ratio < 1.0 - updates_tol:
    failures.append("updates/ratio")
if cur.get("errors", 0):
    failures.append("updates/errors")
    print(f"  [FAIL] updates/errors: {cur['errors']} request errors")
if os.path.exists("BENCH_updates.baseline.json"):
    have_baseline = True
    base = json.load(open("BENCH_updates.baseline.json"))
    # QPS is host-bound; compare only on the same core count.
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print("live-update throughput vs baseline:")
        compare("updates/qps_updatable", cur["qps_updatable"],
                base["qps_updatable"])
    else:
        print("updates baseline from a different core count "
              f"({base.get('hardware_concurrency')} vs "
              f"{cur.get('hardware_concurrency')}); skipping comparison")

if os.path.exists("BENCH_obs.baseline.json"):
    have_baseline = True
    cur = json.load(open("BENCH_obs.json"))
    base = json.load(open("BENCH_obs.baseline.json"))
    # Primitive ns/op costs swing far more than any sane relative tolerance
    # run-to-run (a disabled span is sub-ns), so they are gated by absolute
    # ceilings inside bench_r20_obs_overhead itself (it exits non-zero on
    # breach, which fails this script at the run step above).  Here they are
    # reported informationally next to the baseline.
    print("obs primitive costs (gated by absolute ceilings in the bench):")
    for key in ("span_disabled_ns", "counter_add_ns", "gauge_set_ns",
                "histogram_record_ns"):
        print(f"  [info] obs/{key}: {cur.get(key, 0.0):.3g} ns "
              f"(baseline {base.get(key, 0.0):.3g} ns)")

# Metrics-overhead gate: instrumentation cost on the end-to-end hot paths
# must sit within obs_tol of the baseline — a much tighter bound than the
# general regression tolerance, because instrumentation drift is systematic,
# not noise.  It is applied only to signals that are both instrumented and
# stable enough to gate tightly: the R19 loopback QPS (the full service
# request path, per-opcode histograms included) and the R20 tracing-on/off
# join ratio (the per-phase span cost).  The raw SIMD kernels (R12) are
# deliberately excluded: their inner loops carry no instrumentation, and 3%
# is below run-to-run noise there.  Skipped when the host core count differs
# from the baseline's.
obs_failures = []


def obs_compare(name, current, baseline):
    drop = (baseline - current) / baseline if baseline > 0 else 0.0
    status = "FAIL" if drop > obs_tol else "ok"
    print(f"  [{status}] {name}: {current:.3g} vs baseline {baseline:.3g} "
          f"({-drop:+.1%})")
    if drop > obs_tol:
        obs_failures.append(name)


if os.path.exists("BENCH_service.baseline.json"):
    cur = json.load(open("BENCH_service.json"))
    base = json.load(open("BENCH_service.baseline.json"))
    if cur.get("hardware_concurrency") == base.get("hardware_concurrency"):
        print(f"metrics-overhead gate, R19 service (tolerance {obs_tol:.0%}):")
        obs_compare("service/qps", cur["qps"], base["qps"])
if os.path.exists("BENCH_obs.baseline.json"):
    cur = json.load(open("BENCH_obs.json"))
    base = json.load(open("BENCH_obs.baseline.json"))
    # Lower is better for both ratios: growth beyond obs_tol of the
    # baseline means new per-span cost crept into the join hot path —
    # chrome-trace event emission for the first, request-profile node
    # recording (the EXPLAIN ANALYZE / slow-query capture path) for the
    # second.
    for key, label in (("traced_over_plain_ratio", "R20 tracing"),
                       ("profiled_over_plain_ratio", "R20 profiling")):
        ratio_cur = cur.get(key, 0.0)
        ratio_base = base.get(key, 0.0)
        if ratio_cur > 0 and ratio_base > 0:
            growth = (ratio_cur - ratio_base) / ratio_base
            status = "FAIL" if growth > obs_tol else "ok"
            print(f"metrics-overhead gate, {label} (tolerance {obs_tol:.0%}):")
            print(f"  [{status}] obs/{key}: {ratio_cur:.3f} vs "
                  f"baseline {ratio_base:.3f} ({growth:+.1%})")
            if growth > obs_tol:
                obs_failures.append(f"obs/{key}")
if obs_failures:
    failures.extend("obs-gate:" + f for f in obs_failures)

if not have_baseline:
    print("no BENCH_*.baseline.json found; snapshots written. To seed the")
    print("baselines: scripts/check_bench_regression.sh --update-baseline")
    # The absolute gates (fused identity/speedup) apply regardless.
    if failures:
        sys.exit("bench gate failures: " + ", ".join(failures))
    sys.exit(0)

if failures:
    sys.exit("bench regression: " + ", ".join(failures))
print("no bench regressions")
PY
