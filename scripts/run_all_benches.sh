#!/usr/bin/env bash
# Runs every experiment benchmark and tees the combined output.
#
#   scripts/run_all_benches.sh [build_dir] [output_file]
#   SIMJOIN_BENCH_SCALE=large scripts/run_all_benches.sh   # paper scale
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

: > "$OUT"
for b in "$BUILD_DIR"/bench/bench_*; do
  [[ -x "$b" ]] || continue
  echo ">>> $(basename "$b")" | tee -a "$OUT"
  "$b" 2>&1 | tee -a "$OUT"
done
echo "wrote $OUT"
