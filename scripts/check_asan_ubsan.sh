#!/usr/bin/env bash
# Builds the library and tier-1 tests under ASan+UBSan and runs ctest, so the
# pointer-tiling join hot paths get exercised with full memory/UB checking.
# The full suite includes the segment-file robustness/fuzz tests (Segment*,
# Mmap*, RegistrySegment*) — truncated, bit-flipped, and version-skewed
# segment files go through the mmap loader with ASan watching every read —
# the updatable-tier suites (Delta*, Updatable*, Compaction*) exercising
# insert/remove/compaction memory churn, and the protocol fuzz soak on
# hostile wire bytes (malformed Insert/Remove/Flush frames included).
#
# Usage: scripts/check_asan_ubsan.sh [build-dir] [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
shift || true

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJOIN_ENABLE_SANITIZERS=ON \
  -DSIMJOIN_BUILD_BENCHMARKS=OFF \
  -DSIMJOIN_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure "$@"
