#!/usr/bin/env bash
# Builds the library and tests under ThreadSanitizer and runs the
# concurrency-sensitive test targets (thread pool, parallel joins, parallel
# tree construction and flattening, the service's index registry, the
# loopback server and its cross-connection fusion engine, the cost-based
# range planner with its lazily built aux/LSH backends, the obs
# metrics/trace layer, the live-updatable delta tier with its
# background compaction, and the request-profiling path: the span hammer
# with a concurrent Prometheus exporter, slow-query-log record/drain races,
# profiled queries against the loopback server), so the work-stealing
# deque, the sleep / wake protocol, the sharded pair emission, registry
# refcounting/eviction, the io-thread <-> fusion-collector <-> worker
# handoff, the plan/aux-backend caches under concurrent planning, the
# lock-free metric shards, the delta-memtable swap under concurrent
# updates/queries/compactions, and the collector propagation through pool
# tasks get exercised with full race checking.
#
# Usage: scripts/check_tsan.sh [build-dir] [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
shift || true

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMJOIN_ENABLE_TSAN=ON \
  -DSIMJOIN_BUILD_BENCHMARKS=OFF \
  -DSIMJOIN_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j"$(nproc)"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ThreadPool|TaskGroup|Parallel|Registry|Server|Fusion|Planner|Lsh|IndexBackend|Counter|Histogram|Snapshot|Trace|Segment|Mmap|OutOfCore|Delta|Updatable|Compaction|RequestContext|SlowLog|ExplainProfile|PromExporter' "$@"
