// R22: cost-based backend planner — exact routing overhead and the
// recall-controlled LSH tier's payoff.
//
// Two claims, two workloads, one gate line each:
//
//  A. Routed exact is never slower than the legacy path beyond noise.
//     Uniform d=16, n=100k, eps=0.1 (a regime the flat tree wins): the
//     same closed-loop poll-multiplexed driver runs legacy (plannerless)
//     frames and planner frames (recall=1, backend=auto) against one
//     server; the planner must land on an exact backend, answer
//     bit-identically to forced ekdb-flat, and keep qps_routed within a
//     few percent of qps_legacy (the plan cache amortises probing to a
//     map lookup per request).
//
//  B. At high dimensionality and a large radius, recall 0.9 buys >= 3x.
//     Clustered d=32, n=50k, eps=0.5 (bbox pruning is useless here, so
//     every exact structure degenerates toward a full scan): forced
//     ekdb-flat at recall 1 versus planner-auto at recall 0.9 (the LSH
//     tier: p-stable candidates re-verified by the exact kernel).  The
//     bench also measures true recall against brute-force ground truth —
//     the speedup only counts if the answers actually meet the target.
//
// Phases alternate --repeats times and keep the best pass per mode so a
// transient host stall penalises both modes evenly.
//
//   ./bench/bench_r22_planner
//   ./bench/bench_r22_planner --seconds 4 --concurrency 128
//
// Emits a `# PLANNER_JSON {...}` line for
// scripts/check_bench_regression.sh, which gates identical == true,
// exact_ratio >= 1 - SIMJOIN_BENCH_PLANNER_EXACT_TOLERANCE and
// lsh_speedup >= SIMJOIN_BENCH_PLANNER_MIN_SPEEDUP with
// measured_recall >= the target minus a small sampling allowance.

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/metric.h"
#include "common/net.h"
#include "common/timer.h"
#include "core/index_backend.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

using Clock = std::chrono::steady_clock;

/// One multiplexed loopback connection: non-blocking socket, one request
/// in flight, reusable request frame whose query floats (and nothing
/// else) are rewritten between requests.
struct DriverConn {
  TcpSocket sock;
  FrameDecoder decoder;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  size_t cursor = 0;
  uint64_t next_id = 1;
  size_t float_tail_offset = 0;  ///< bytes from frame end to the floats
  uint64_t completed = 0;
  uint64_t errors = 0;
};

struct RequestShape {
  double epsilon = 0.0;
  bool has_planner = false;
  double recall = 1.0;
  uint8_t backend = kWireBackendAuto;
};

struct PhaseResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  double qps = 0.0;
};

void BuildRequestFrame(const Dataset& data, const std::string& name,
                       const RequestShape& shape, DriverConn* conn) {
  RangeQueryRequest req;
  req.name = name;
  req.epsilon = shape.epsilon;
  req.dims = static_cast<uint32_t>(data.dims());
  const float* row = data.Row(static_cast<PointId>(conn->cursor));
  req.queries.assign(row, row + data.dims());
  req.has_planner = shape.has_planner;
  req.recall = shape.recall;
  req.backend = shape.backend;
  conn->cursor = (conn->cursor + 1) % data.size();
  conn->out = EncodeFrame(FrameType::kRangeQuery, conn->next_id++, 0,
                          EncodeRangeQueryRequest(req));
  // The planner extension (recall f64 + backend u8) trails the floats.
  conn->float_tail_offset =
      data.dims() * sizeof(float) + (shape.has_planner ? 9 : 0);
  conn->out_off = 0;
}

void PatchNextQuery(const Dataset& data, DriverConn* conn) {
  std::memcpy(conn->out.data() + conn->out.size() - conn->float_tail_offset,
              data.Row(static_cast<PointId>(conn->cursor)),
              data.dims() * sizeof(float));
  conn->cursor = (conn->cursor + 1) % data.size();
  conn->out_off = 0;
}

/// Closed-loop load phase: `concurrency` connections, one batch=1 range
/// query in flight each, single-threaded poll loop, warmup not counted.
Result<PhaseResult> RunLoadPhase(uint16_t port, const Dataset& data,
                                 const std::string& name,
                                 const RequestShape& shape, size_t concurrency,
                                 double warmup, double seconds) {
  std::vector<std::unique_ptr<DriverConn>> conns;
  conns.reserve(concurrency);
  for (size_t c = 0; c < concurrency; ++c) {
    auto conn = std::make_unique<DriverConn>();
    SIMJOIN_ASSIGN_OR_RETURN(conn->sock,
                             TcpSocket::Connect("127.0.0.1", port));
    SIMJOIN_RETURN_NOT_OK(conn->sock.SetNonBlocking(true));
    conn->cursor = (c * 7919) % data.size();
    BuildRequestFrame(data, name, shape, conn.get());
    conns.push_back(std::move(conn));
  }

  std::vector<pollfd> fds(conns.size());
  uint8_t buf[64 << 10];
  Timer wall;
  bool measuring = false;
  double measure_start = 0.0;
  while (wall.Seconds() < warmup + seconds) {
    if (!measuring && wall.Seconds() >= warmup) {
      measuring = true;
      measure_start = wall.Seconds();
      for (auto& conn : conns) conn->completed = 0;
    }
    for (size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i]->sock.fd();
      fds[i].events = POLLIN;
      if (conns[i]->out_off < conns[i]->out.size()) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    ::poll(fds.data(), fds.size(), 10);
    for (size_t i = 0; i < conns.size(); ++i) {
      DriverConn& conn = *conns[i];
      if ((fds[i].revents & POLLOUT) != 0 &&
          conn.out_off < conn.out.size()) {
        size_t sent = 0;
        SIMJOIN_RETURN_NOT_OK(conn.sock.SendSome(
            conn.out.data() + conn.out_off, conn.out.size() - conn.out_off,
            &sent));
        conn.out_off += sent;
      }
      if ((fds[i].revents & POLLIN) == 0) continue;
      while (true) {
        size_t n = 0;
        bool eof = false;
        SIMJOIN_RETURN_NOT_OK(conn.sock.RecvSome(buf, sizeof(buf), &n, &eof));
        if (n > 0) conn.decoder.Append(buf, n);
        if (n == 0 || eof) break;
      }
      while (true) {
        Frame frame;
        bool got = false;
        SIMJOIN_RETURN_NOT_OK(conn.decoder.Next(&frame, &got));
        if (!got) break;
        if (frame.header.type == FrameType::kRangeQueryResult) {
          ++conn.completed;
        } else {
          ++conn.errors;
        }
        PatchNextQuery(data, &conn);
        size_t sent = 0;
        SIMJOIN_RETURN_NOT_OK(conn.sock.SendSome(conn.out.data(),
                                                 conn.out.size(), &sent));
        conn.out_off = sent;
      }
    }
  }

  PhaseResult res;
  const double elapsed = wall.Seconds() - measure_start;
  for (const auto& conn : conns) {
    res.requests += conn->completed;
    res.errors += conn->errors;
  }
  res.qps = static_cast<double>(res.requests) / elapsed;
  return res;
}

/// Best-of-`repeats` alternating passes of two request shapes on one
/// server; keeps transient host stalls from skewing the ratio.
Result<std::pair<PhaseResult, PhaseResult>> RunAlternating(
    uint16_t port, const Dataset& data, const std::string& name,
    const RequestShape& base, const RequestShape& contender,
    size_t concurrency, double warmup, double seconds, size_t repeats,
    const char* base_label, const char* contender_label) {
  std::optional<PhaseResult> best_base, best_contender;
  for (size_t pass = 0; pass < repeats; ++pass) {
    SIMJOIN_ASSIGN_OR_RETURN(
        PhaseResult b, RunLoadPhase(port, data, name, base, concurrency,
                                    warmup, seconds));
    SIMJOIN_ASSIGN_OR_RETURN(
        PhaseResult c, RunLoadPhase(port, data, name, contender, concurrency,
                                    warmup, seconds));
    std::cout << "  pass " << pass + 1 << "/" << repeats << ": "
              << base_label << " " << static_cast<uint64_t>(b.qps)
              << " qps, " << contender_label << " "
              << static_cast<uint64_t>(c.qps) << " qps\n";
    if (!best_base || b.qps > best_base->qps) best_base = b;
    if (!best_contender || c.qps > best_contender->qps) best_contender = c;
  }
  return std::make_pair(*best_base, *best_contender);
}

/// Routed-auto answers must be bit-identical to forced ekdb-flat answers
/// (both canonical ascending order) and to the sorted legacy answers.
Result<bool> ExactIdentityCheck(uint16_t port, const Dataset& data,
                                const std::string& name, double epsilon,
                                size_t num_queries, uint8_t* routed_to) {
  ClientConfig cc;
  cc.port = port;
  SIMJOIN_ASSIGN_OR_RETURN(auto client, Client::Connect(cc));
  for (size_t q = 0; q < num_queries; ++q) {
    RangeQueryRequest req;
    req.name = name;
    req.epsilon = epsilon;
    req.dims = static_cast<uint32_t>(data.dims());
    const float* row =
        data.Row(static_cast<PointId>((q * 131) % data.size()));
    req.queries.assign(row, row + data.dims());

    RangeQueryRequest forced = req;
    forced.has_planner = true;
    forced.backend = static_cast<uint8_t>(BackendKind::kEkdbFlat);
    SIMJOIN_ASSIGN_OR_RETURN(auto want, client.RangeQuery(forced));

    RangeQueryRequest routed = req;
    routed.has_planner = true;
    SIMJOIN_ASSIGN_OR_RETURN(auto got, client.RangeQuery(routed));
    *routed_to = got.backend_used;
    if (got.results != want.results) return false;

    SIMJOIN_ASSIGN_OR_RETURN(auto legacy, client.RangeQuery(req));
    std::sort(legacy.results[0].begin(), legacy.results[0].end());
    if (legacy.results != want.results) return false;
  }
  return true;
}

/// Measures true recall of the recall-targeted path against brute-force
/// ground truth on sampled queries; also checks precision 1.
Result<double> MeasureRecall(uint16_t port, const Dataset& data,
                             const std::string& name, double epsilon,
                             double recall_target, size_t num_queries,
                             uint8_t* backend_used) {
  ClientConfig cc;
  cc.port = port;
  SIMJOIN_ASSIGN_OR_RETURN(auto client, Client::Connect(cc));
  DistanceKernel kernel(Metric::kL2);
  size_t found = 0;
  size_t truth_total = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* query =
        data.Row(static_cast<PointId>((q * 977) % data.size()));
    RangeQueryRequest req;
    req.name = name;
    req.epsilon = epsilon;
    req.dims = static_cast<uint32_t>(data.dims());
    req.queries.assign(query, query + data.dims());
    req.has_planner = true;
    req.recall = recall_target;
    SIMJOIN_ASSIGN_OR_RETURN(auto resp, client.RangeQuery(req));
    *backend_used = resp.backend_used;
    std::set<PointId> truth;
    for (size_t i = 0; i < data.size(); ++i) {
      const auto id = static_cast<PointId>(i);
      if (kernel.WithinEpsilon(query, data.Row(id), data.dims(), epsilon)) {
        truth.insert(id);
      }
    }
    for (const PointId id : resp.results[0]) {
      if (truth.count(id) == 0) {
        return Status::Internal("false positive id from recall tier");
      }
    }
    found += resp.results[0].size();
    truth_total += truth.size();
  }
  if (truth_total == 0) return Status::Internal("empty ground truth");
  return static_cast<double>(found) / static_cast<double>(truth_total);
}

Result<std::unique_ptr<Server>> StartWithIndex(
    const std::string& name, const Dataset& data, double epsilon,
    size_t max_inflight) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = Metric::kL2;
  Timer build_timer;
  SIMJOIN_ASSIGN_OR_RETURN(auto snapshot,
                           IndexSnapshot::Build(name, data, config));
  std::cout << "  index '" << name << "' built in " << build_timer.Seconds()
            << " s (" << snapshot->memory_bytes() << " bytes)\n";
  ServerConfig server_config;
  server_config.max_inflight = max_inflight;
  SIMJOIN_ASSIGN_OR_RETURN(auto server, Server::Start(server_config));
  SIMJOIN_RETURN_NOT_OK(server->registry().Put(snapshot));
  return server;
}

int Run(const ArgParser& args) {
  const size_t concurrency = static_cast<size_t>(args.GetInt("concurrency"));
  const double seconds = args.GetDouble("seconds");
  const double warmup = args.GetDouble("warmup");
  const size_t repeats =
      std::max<size_t>(1, static_cast<size_t>(args.GetInt("repeats")));
  const double recall_target = args.GetDouble("recall");

  const size_t n_a = static_cast<size_t>(args.GetInt("n-exact"));
  const size_t dims_a = static_cast<size_t>(args.GetInt("dims-exact"));
  const double eps_a = args.GetDouble("epsilon-exact");
  const size_t n_b = static_cast<size_t>(args.GetInt("n-recall"));
  const size_t dims_b = static_cast<size_t>(args.GetInt("dims-recall"));
  const double eps_b = args.GetDouble("epsilon-recall");
  const size_t clusters_b = static_cast<size_t>(args.GetInt("clusters"));

  std::cout << "R22: cost-based planner routing (concurrency=" << concurrency
            << ", " << seconds << "s windows, best of " << repeats
            << " passes)\n"
            << "  cores detected: " << std::thread::hardware_concurrency()
            << " (driver and server share them)\n";

  // ---- Workload A: routed exact must not tax the tree's best regime ----
  std::cout << "workload A: uniform n=" << n_a << " d=" << dims_a
            << " eps=" << eps_a << " (exact routing overhead)\n";
  auto data_a = GenerateUniform({.n = n_a, .dims = dims_a, .seed = 22});
  if (!data_a.ok()) {
    std::cerr << data_a.status().ToString() << "\n";
    return 1;
  }
  auto server_a = StartWithIndex("exact", *data_a, eps_a,
                                 std::max<size_t>(concurrency, 256));
  if (!server_a.ok()) {
    std::cerr << server_a.status().ToString() << "\n";
    return 1;
  }

  uint8_t routed_to = 0;
  auto identical = ExactIdentityCheck((*server_a)->port(), *data_a, "exact",
                                      eps_a, /*num_queries=*/256, &routed_to);
  if (!identical.ok()) {
    std::cerr << identical.status().ToString() << "\n";
    return 1;
  }
  const auto routed_kind = BackendKindFromWire(routed_to);
  std::cout << "  identity: routed-auto "
            << (*identical ? "bit-identical to" : "DIVERGES from")
            << " forced ekdb-flat (256 queries); planner routed to "
            << (routed_kind.ok() ? BackendKindName(*routed_kind) : "?")
            << "\n";

  RequestShape legacy_shape{eps_a, false, 1.0, kWireBackendAuto};
  RequestShape routed_shape{eps_a, true, 1.0, kWireBackendAuto};
  auto exact_phases =
      RunAlternating((*server_a)->port(), *data_a, "exact", legacy_shape,
                     routed_shape, concurrency, warmup, seconds, repeats,
                     "legacy", "routed");
  if (!exact_phases.ok()) {
    std::cerr << exact_phases.status().ToString() << "\n";
    return 1;
  }
  const PhaseResult& legacy = exact_phases->first;
  const PhaseResult& routed = exact_phases->second;
  const double exact_ratio =
      legacy.qps > 0.0 ? routed.qps / legacy.qps : 0.0;
  std::cout << "  legacy " << static_cast<uint64_t>(legacy.qps)
            << " qps vs routed " << static_cast<uint64_t>(routed.qps)
            << " qps -> ratio " << exact_ratio << "\n";
  (*server_a)->Shutdown();
  (*server_a)->Wait();

  // ---- Workload B: the recall tier's payoff where exact degenerates ----
  std::cout << "workload B: clustered n=" << n_b << " d=" << dims_b
            << " eps=" << eps_b << " recall=" << recall_target
            << " (LSH tier payoff)\n";
  auto data_b = GenerateClustered({.n = n_b,
                                   .dims = dims_b,
                                   .clusters = clusters_b,
                                   .sigma = 0.04,
                                   .seed = 23});
  if (!data_b.ok()) {
    std::cerr << data_b.status().ToString() << "\n";
    return 1;
  }
  auto server_b = StartWithIndex("recall", *data_b, eps_b,
                                 std::max<size_t>(concurrency, 256));
  if (!server_b.ok()) {
    std::cerr << server_b.status().ToString() << "\n";
    return 1;
  }

  uint8_t recall_backend = 0;
  auto measured = MeasureRecall((*server_b)->port(), *data_b, "recall",
                                eps_b, recall_target, /*num_queries=*/32,
                                &recall_backend);
  if (!measured.ok()) {
    std::cerr << measured.status().ToString() << "\n";
    return 1;
  }
  const auto recall_kind = BackendKindFromWire(recall_backend);
  std::cout << "  measured recall " << *measured << " (target "
            << recall_target << "), planner routed to "
            << (recall_kind.ok() ? BackendKindName(*recall_kind) : "?")
            << "\n";

  RequestShape forced_exact{eps_b, true, 1.0,
                            static_cast<uint8_t>(BackendKind::kEkdbFlat)};
  RequestShape recall_shape{eps_b, true, recall_target, kWireBackendAuto};
  auto recall_phases =
      RunAlternating((*server_b)->port(), *data_b, "recall", forced_exact,
                     recall_shape, concurrency, warmup, seconds, repeats,
                     "forced-exact", "recall-0.9");
  if (!recall_phases.ok()) {
    std::cerr << recall_phases.status().ToString() << "\n";
    return 1;
  }
  const PhaseResult& forced = recall_phases->first;
  const PhaseResult& tiered = recall_phases->second;
  const double speedup = forced.qps > 0.0 ? tiered.qps / forced.qps : 0.0;
  std::cout << "  forced-exact " << static_cast<uint64_t>(forced.qps)
            << " qps vs recall-target " << static_cast<uint64_t>(tiered.qps)
            << " qps -> " << speedup << "x\n";
  (*server_b)->Shutdown();
  (*server_b)->Wait();

  const uint64_t errors =
      legacy.errors + routed.errors + forced.errors + tiered.errors;
  std::ostringstream json;
  json << "{\"bench\":\"r22_planner\",\"concurrency\":" << concurrency
       << ",\"seconds\":" << seconds
       << ",\"n_exact\":" << n_a << ",\"dims_exact\":" << dims_a
       << ",\"epsilon_exact\":" << eps_a
       << ",\"qps_legacy\":" << legacy.qps
       << ",\"qps_routed\":" << routed.qps
       << ",\"exact_ratio\":" << exact_ratio
       << ",\"identical\":" << (*identical ? "true" : "false")
       << ",\"routed_backend\":\""
       << (routed_kind.ok() ? BackendKindName(*routed_kind) : "?") << "\""
       << ",\"n_recall\":" << n_b << ",\"dims_recall\":" << dims_b
       << ",\"epsilon_recall\":" << eps_b
       << ",\"recall_target\":" << recall_target
       << ",\"measured_recall\":" << *measured
       << ",\"recall_backend\":\""
       << (recall_kind.ok() ? BackendKindName(*recall_kind) : "?") << "\""
       << ",\"qps_forced_exact\":" << forced.qps
       << ",\"qps_recall\":" << tiered.qps
       << ",\"lsh_speedup\":" << speedup
       << ",\"errors\":" << errors
       << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
       << "}";
  std::cout << "# PLANNER_JSON " << json.str() << "\n";

  return *identical && errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args("R22: cost-based planner routing benchmark");
  args.AddFlag("concurrency", "64",
               "concurrent connections, one batch=1 query in flight each");
  args.AddFlag("seconds", "3", "measurement window per phase");
  args.AddFlag("warmup", "1", "uncounted warmup prefix per phase (seconds)");
  args.AddFlag("repeats", "2", "alternating passes per mode; best is kept");
  args.AddFlag("recall", "0.9", "recall target for workload B");
  args.AddFlag("n-exact", "100000", "workload A points");
  args.AddFlag("dims-exact", "16", "workload A dimensionality");
  args.AddFlag("epsilon-exact", "0.1", "workload A epsilon (L2)");
  args.AddFlag("n-recall", "50000", "workload B points");
  args.AddFlag("dims-recall", "32", "workload B dimensionality");
  args.AddFlag("epsilon-recall", "0.5", "workload B epsilon (L2)");
  args.AddFlag("clusters", "4000", "workload B cluster count");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(args);
}
