// Experiment R17 — dynamic index maintenance throughput.
//
// Both dynamic index families (eps-k-d-B tree, R-tree) process the same
// churn workload — interleaved point insertions, removals, and epsilon
// range queries over a live set — and report per-operation costs.
// Expected shape: maintenance stays in the microsecond range for both;
// the eps-k-d-B tree's stripe descent makes its updates cheaper than the
// R-tree's choose-subtree/condense machinery, while both answer range
// queries far faster than a per-query scan of the live set.

#include <algorithm>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "rtree/rtree.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

struct ChurnCosts {
  double insert_total = 0.0;
  double remove_total = 0.0;
  double query_total = 0.0;
  uint64_t inserts = 0, removes = 0, queries = 0, hits = 0;
};

/// Drives `ops` churn operations; the callbacks wrap index-specific calls.
template <typename InsertFn, typename RemoveFn, typename QueryFn>
ChurnCosts RunChurn(Dataset* data, size_t initial_live, size_t ops,
                    uint64_t seed, const InsertFn& insert, const RemoveFn& remove,
                    const QueryFn& query) {
  Rng rng(seed);
  std::vector<PointId> live(initial_live);
  for (size_t i = 0; i < initial_live; ++i) live[i] = static_cast<PointId>(i);
  ChurnCosts costs;
  Timer timer;
  std::vector<float> point(data->dims());
  for (size_t op = 0; op < ops; ++op) {
    const uint64_t roll = rng.UniformInt(100u);
    if (roll < 40 || live.size() < 100) {
      for (auto& v : point) v = rng.UniformFloat();
      data->Append(point);
      const PointId id = static_cast<PointId>(data->size() - 1);
      timer.Restart();
      insert(id);
      costs.insert_total += timer.Seconds();
      ++costs.inserts;
      live.push_back(id);
    } else if (roll < 80) {
      const size_t victim = rng.UniformInt(live.size());
      const PointId id = live[victim];
      timer.Restart();
      remove(id);
      costs.remove_total += timer.Seconds();
      ++costs.removes;
      live[victim] = live.back();
      live.pop_back();
    } else {
      // Query at a random live point so neighbourhoods are non-empty.
      const PointId anchor = live[rng.UniformInt(live.size())];
      std::copy_n(data->Row(anchor), data->dims(), point.begin());
      timer.Restart();
      costs.hits += query(point.data());
      costs.query_total += timer.Seconds();
      ++costs.queries;
    }
  }
  return costs;
}

void Main() {
  PrintExperimentHeader(
      "R17", "dynamic maintenance: insert / remove / range-query churn",
      "microsecond-scale maintenance for both dynamic indexes; eps-k-d-B "
      "updates cheaper than R-tree choose-subtree/condense");
  const size_t initial = Scaled(20000, 100000);
  const size_t ops = Scaled(20000, 100000);
  const double epsilon = 0.05;

  ResultTable table({"index", "insert_avg", "remove_avg", "query_avg",
                     "query_hits"});
  {
    auto data = GenerateUniform({.n = initial, .dims = 8, .seed = 1701});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    auto tree = EkdbTree::Build(*data, config);
    SIMJOIN_CHECK(tree.ok());
    std::vector<PointId> hits;
    const ChurnCosts costs = RunChurn(
        &*data, initial, ops, 1702,
        [&](PointId id) { SIMJOIN_CHECK(tree->Insert(id).ok()); },
        [&](PointId id) { SIMJOIN_CHECK(tree->Remove(id).ok()); },
        [&](const float* q) {
          hits.clear();
          SIMJOIN_CHECK(tree->RangeQuery(q, epsilon, &hits).ok());
          return hits.size();
        });
    table.AddRow({"ekdb",
                  FmtSecs(costs.insert_total / static_cast<double>(costs.inserts)),
                  FmtSecs(costs.remove_total / static_cast<double>(costs.removes)),
                  FmtSecs(costs.query_total / static_cast<double>(costs.queries)),
                  std::to_string(costs.hits)});
  }
  {
    auto data = GenerateUniform({.n = initial, .dims = 8, .seed = 1701});
    auto tree = RTree::BulkLoad(*data, RTreeConfig{});
    SIMJOIN_CHECK(tree.ok());
    std::vector<PointId> hits;
    const ChurnCosts costs = RunChurn(
        &*data, initial, ops, 1702,
        [&](PointId id) { SIMJOIN_CHECK(tree->Insert(id).ok()); },
        [&](PointId id) { SIMJOIN_CHECK(tree->Remove(id).ok()); },
        [&](const float* q) {
          hits.clear();
          SIMJOIN_CHECK(tree->RangeQuery(q, epsilon, Metric::kL2, &hits).ok());
          return hits.size();
        });
    table.AddRow({"rtree",
                  FmtSecs(costs.insert_total / static_cast<double>(costs.inserts)),
                  FmtSecs(costs.remove_total / static_cast<double>(costs.removes)),
                  FmtSecs(costs.query_total / static_cast<double>(costs.queries)),
                  std::to_string(costs.hits)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
