// Experiment R16 — planner validation.
//
// The rule-based planner encodes the outcomes of R1-R3.  This experiment
// closes the loop: across a grid of (workload, n, d, epsilon) cells it
// measures every candidate algorithm, records which one the planner picked,
// and reports the pick's slowdown relative to the measured best.  Expected
// shape: the planner's choice is the fastest or within a small factor of it
// in every cell, with no catastrophic (order-of-magnitude) mispicks.

#include "bench_util.h"
#include "common/timer.h"
#include "core/planner.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

struct Cell {
  const char* workload;
  size_t n;
  size_t dims;
  double epsilon;
};

Dataset MakeWorkload(const Cell& cell, uint64_t seed) {
  if (std::string(cell.workload) == "uniform") {
    return *GenerateUniform({.n = cell.n, .dims = cell.dims, .seed = seed});
  }
  return *GenerateClustered({.n = cell.n, .dims = cell.dims, .clusters = 16,
                             .sigma = 0.05, .seed = seed});
}

double MeasureAlgorithm(const Dataset& data, double epsilon,
                        JoinAlgorithm algorithm) {
  JoinPlan plan;
  plan.algorithm = algorithm;
  CountingSink sink;
  Timer timer;
  const Status st = ExecuteSelfJoin(data, epsilon, Metric::kL2, plan, &sink);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  return timer.Seconds();
}

void Main() {
  PrintExperimentHeader(
      "R16", "planner validation: picked algorithm vs measured best",
      "the planner's choice is the measured-fastest algorithm or within a "
      "small factor of it in every cell");
  const size_t base = Scaled(6000, 40000);

  const Cell cells[] = {
      {"uniform", 600, 8, 0.05},       // tiny: nested loop should win
      {"clustered", base, 2, 0.03},    // low-d: grid territory
      {"uniform", base, 2, 0.05},      // low-d uniform
      {"clustered", base, 8, 0.05},    // the paper's home turf
      {"clustered", base, 16, 0.08},   // higher-d clustered
      {"uniform", base, 8, 0.02},      // selective uniform
      {"clustered", base / 2, 4, 0.45},  // output-bound: nested loop
  };

  ResultTable table({"workload", "n", "d", "eps", "picked", "picked_time",
                     "best", "best_time", "slowdown"});
  for (const Cell& cell : cells) {
    const Dataset data = MakeWorkload(cell, 1601);
    auto plan = PlanSelfJoin(data, cell.epsilon, Metric::kL2);
    SIMJOIN_CHECK(plan.ok()) << plan.status().ToString();

    const JoinAlgorithm candidates[] = {
        JoinAlgorithm::kNestedLoop, JoinAlgorithm::kSortMerge,
        JoinAlgorithm::kGrid,       JoinAlgorithm::kKdTree,
        JoinAlgorithm::kRTree,      JoinAlgorithm::kEkdb,
    };
    double best_time = 1e300;
    JoinAlgorithm best = JoinAlgorithm::kEkdb;
    double picked_time = 0.0;
    for (JoinAlgorithm algorithm : candidates) {
      // Skip brute force at sizes where it would dominate the run time,
      // unless the planner picked it.
      if (algorithm == JoinAlgorithm::kNestedLoop && data.size() > 20000 &&
          plan->algorithm != JoinAlgorithm::kNestedLoop) {
        continue;
      }
      const double t = MeasureAlgorithm(data, cell.epsilon, algorithm);
      if (algorithm == plan->algorithm) picked_time = t;
      if (t < best_time) {
        best_time = t;
        best = algorithm;
      }
    }
    table.AddRow({cell.workload, std::to_string(data.size()),
                  std::to_string(cell.dims), FmtDouble(cell.epsilon, 2),
                  JoinAlgorithmName(plan->algorithm), FmtSecs(picked_time),
                  JoinAlgorithmName(best), FmtSecs(best_time),
                  FmtDouble(picked_time / best_time, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
