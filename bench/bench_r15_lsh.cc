// Experiment R15 — approximate (LSH) join: recall vs time trade-off.
//
// Sweeps the number of LSH tables and reports recall against the exact
// eps-k-d-B join together with run time.  Expected shape: recall climbs
// towards 1 as tables are added while cost grows linearly in tables; at
// moderate recall targets the exact eps-k-d-B join is competitive or
// better at this scale — approximation only pays off when the exact join's
// candidate volume explodes (very high intrinsic dimensionality).

#include "bench_util.h"
#include "approx/lsh_join.h"
#include "common/timer.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R15", "LSH approximate join: recall/time vs table count",
      "recall -> 1 and cost grows ~linearly with tables; exact eps-k-d-B "
      "shown as the reference point");
  const size_t n = Scaled(10000, 80000);
  const size_t dims = 12;
  const double epsilon = 0.08;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 15, .sigma = 0.05, .seed = 1501});

  EkdbConfig ekdb;
  ekdb.epsilon = epsilon;
  ekdb.leaf_threshold = 64;
  const RunResult exact = RunEkdbSelf(*data, ekdb);

  ResultTable table({"algorithm", "tables", "total", "pairs", "recall",
                     "candidates"});
  table.AddRow({"ekdb (exact)", "-", FmtSecs(exact.total_seconds()),
                std::to_string(exact.pairs), "1.000",
                std::to_string(exact.stats.candidate_pairs)});
  for (size_t tables : {1u, 2u, 4u, 8u, 16u, 32u}) {
    LshConfig config;
    config.tables = tables;
    config.hashes_per_table = 4;
    config.seed = 7;
    CountingSink sink;
    LshJoinReport report;
    Timer timer;
    const Status st =
        LshApproximateSelfJoin(*data, epsilon, config, &sink, &report);
    SIMJOIN_CHECK(st.ok()) << st.ToString();
    const double total = timer.Seconds();
    const double recall =
        exact.pairs == 0 ? 1.0
                         : static_cast<double>(sink.count()) /
                               static_cast<double>(exact.pairs);
    table.AddRow({"lsh", std::to_string(tables), FmtSecs(total),
                  std::to_string(sink.count()), FmtDouble(recall, 3),
                  std::to_string(report.unique_candidates)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
