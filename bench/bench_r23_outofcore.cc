// Experiment R23 — out-of-core segment serving (build, fault-in, budget).
//
// The acceptance experiment for the memory-mapped segment tier.  A dataset
// whose index is ~4x the registry byte budget is bulk-loaded EXTERNALLY
// (sort runs -> k-way merge -> per-stripe tile; the whole index is never
// resident), then served three ways and gated on four claims:
//
//  1. identity   — the external segment's file bytes equal WriteSegment of
//                  an in-RAM build, and every range query answered through
//                  the mapped tree is bit-identical to the in-RAM
//                  FlatEkdbTree's answer.
//  2. admission  — the registry (spill tier enabled) admits and serves the
//                  mapped index even though its dataset dwarfs the budget,
//                  and bytes_in_use stays under the budget throughout.
//  3. residency  — after serving a query sample, the mapping's resident
//                  bytes stay below the registry byte budget (fault-in
//                  serving touches the pages queries need, not the file).
//  4. fault-in   — time-to-first-query after an evict/fault cycle beats
//                  rebuilding the index from rows by at least 5x (the bench
//                  exits nonzero otherwise; check_bench_regression.sh gates
//                  the emitted OUTOFCORE_JSON line).
//
// Emits "# OUTOFCORE_JSON {...}" for scripts/check_bench_regression.sh.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/binary_io.h"
#include "common/timer.h"
#include "core/segment.h"
#include "core/segment_backend.h"
#include "core/segment_builder.h"
#include "service/registry.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

bool SameFileBytes(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::vector<char> ba((std::istreambuf_iterator<char>(fa)),
                       std::istreambuf_iterator<char>());
  std::vector<char> bb((std::istreambuf_iterator<char>(fb)),
                       std::istreambuf_iterator<char>());
  return !ba.empty() && ba == bb;
}

void Main() {
  PrintExperimentHeader(
      "R23", "out-of-core segment serving: external build + mmap fault-in",
      "external build byte-identical to in-RAM; mapped queries bit-identical; "
      "resident set under the registry budget; fault-in >= 5x faster than "
      "rebuild to first query");

  const size_t n = Scaled(60000, 600000);
  const size_t dims = 8;
  const double epsilon = 0.05;
  EkdbConfig ekdb;
  ekdb.epsilon = epsilon;
  ekdb.leaf_threshold = 64;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "simjoin_r23").string();
  std::filesystem::create_directories(dir);
  const std::string input = dir + "/input.sjdb";
  const std::string segment = dir + "/index.seg";

  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 2301});
  SIMJOIN_CHECK(data.ok());
  SIMJOIN_CHECK(WriteBinaryDataset(*data, input).ok());

  // In-RAM reference build (time also serves as the rebuild cost below).
  Timer build_timer;
  auto tree = EkdbTree::Build(*data, ekdb);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  auto flat = FlatEkdbTree::FromTree(*tree);
  SIMJOIN_CHECK(flat.ok()) << flat.status().ToString();
  const double rebuild_seconds = build_timer.Seconds();
  const uint64_t index_bytes = flat->total_bytes() +
                               static_cast<uint64_t>(n) * dims * sizeof(float);
  // Registry budget: a quarter of what the heap index needs.
  const uint64_t budget = std::max<uint64_t>(index_bytes / 4, 1u << 20);

  // --- 1. external bulk load, bounded memory --------------------------------
  ExternalBuildConfig ext;
  ext.ekdb = ekdb;
  ext.temp_dir = dir;
  ext.sort_run_points = std::max<size_t>(n / 16, 4096);
  Timer ext_timer;
  auto report = BuildSegmentExternal(input, segment, ext);
  SIMJOIN_CHECK(report.ok()) << report.status().ToString();
  const double external_build_seconds = ext_timer.Seconds();

  const std::string ram_segment = dir + "/ram.seg";
  SIMJOIN_CHECK(WriteSegment(*flat, ram_segment).ok());
  const bool byte_identical = SameFileBytes(segment, ram_segment);

  // --- 2. registry admission under a 4x-too-small budget --------------------
  IndexRegistry registry(budget, dir);
  auto mapped = IndexSnapshot::OpenMapped("r23", segment);
  SIMJOIN_CHECK(mapped.ok()) << mapped.status().ToString();
  SIMJOIN_CHECK(registry.Put(*mapped).ok());
  auto served = registry.Get("r23");
  SIMJOIN_CHECK(served.ok());
  SIMJOIN_CHECK((*served)->mapped());
  const bool under_budget = registry.bytes_in_use() <= budget;

  // --- 3. query identity + resident-set ceiling -----------------------------
  const size_t query_sample = std::min<size_t>(n, 2000);
  bool identical = true;
  Timer query_timer;
  for (size_t i = 0; i < query_sample; ++i) {
    const auto row = static_cast<PointId>(i * (n / query_sample));
    std::vector<PointId> want, got;
    SIMJOIN_CHECK(flat->RangeQuery(data->Row(row), epsilon, &want).ok());
    SIMJOIN_CHECK(
        (*served)->tree().RangeQuery(data->Row(row), epsilon, &got).ok());
    identical = identical && want == got;
  }
  const double mapped_query_seconds = query_timer.Seconds();
  const auto* backend =
      dynamic_cast<const MmapEkdbBackend*>(&(*served)->primary());
  SIMJOIN_CHECK(backend != nullptr);
  const uint64_t mapped_bytes = backend->mapped_bytes();

  // Resident-set ceiling: drop the pages the identity sweep faulted in,
  // serve a small scattered sample, and check residency covers only the
  // touched leaf windows plus the prefetched node metadata — not the file.
  backend->segment().ReleaseResidentPages();
  for (size_t i = 0; i < 12; ++i) {
    const auto row = static_cast<PointId>((i * 1315423911u) % n);
    std::vector<PointId> ids;
    SIMJOIN_CHECK(
        (*served)->tree().RangeQuery(data->Row(row), epsilon, &ids).ok());
  }
  const uint64_t resident = backend->resident_bytes();
  // mincore can legitimately answer 0 on some kernels; only gate when it
  // reports real numbers.
  const bool resident_ok =
      resident == 0 || (resident <= budget && resident < mapped_bytes / 2);

  // --- 4. evict / fault-in vs rebuild: time to first query ------------------
  served.value().reset();
  SIMJOIN_CHECK(registry.Erase("r23"));
  Timer fault_timer;
  auto faulted = IndexSnapshot::OpenMapped("r23", segment);
  SIMJOIN_CHECK(faulted.ok());
  std::vector<PointId> first;
  SIMJOIN_CHECK(
      (*faulted)->tree().RangeQuery(data->Row(0), epsilon, &first).ok());
  const double fault_in_seconds = fault_timer.Seconds();
  const double fault_speedup =
      fault_in_seconds > 0 ? rebuild_seconds / fault_in_seconds : 0.0;

  ResultTable table({"metric", "value"});
  table.AddRow({"points", std::to_string(n)});
  table.AddRow({"index_bytes", std::to_string(index_bytes)});
  table.AddRow({"registry_budget", std::to_string(budget)});
  table.AddRow({"external_runs", std::to_string(report->num_runs)});
  table.AddRow({"peak_stripe_points",
                std::to_string(report->peak_stripe_points)});
  table.AddRow({"external_build", FmtSecs(external_build_seconds)});
  table.AddRow({"in_ram_build", FmtSecs(rebuild_seconds)});
  table.AddRow({"byte_identical", byte_identical ? "yes" : "NO"});
  table.AddRow({"query_identical", identical ? "yes" : "NO"});
  table.AddRow({"mapped_query_time", FmtSecs(mapped_query_seconds)});
  table.AddRow({"resident_bytes", std::to_string(resident)});
  table.AddRow({"mapped_bytes", std::to_string(mapped_bytes)});
  table.AddRow({"fault_in_ttfq", FmtSecs(fault_in_seconds)});
  table.AddRow({"fault_vs_rebuild", FmtDouble(fault_speedup, 1) + "x"});
  table.Print();

  std::cout << "# OUTOFCORE_JSON {"
            << "\"points\": " << n << ", \"index_bytes\": " << index_bytes
            << ", \"registry_budget\": " << budget
            << ", \"byte_identical\": " << (byte_identical ? "true" : "false")
            << ", \"query_identical\": " << (identical ? "true" : "false")
            << ", \"under_budget\": " << (under_budget ? "true" : "false")
            << ", \"resident_ok\": " << (resident_ok ? "true" : "false")
            << ", \"resident_bytes\": " << resident
            << ", \"rebuild_seconds\": " << rebuild_seconds
            << ", \"fault_in_seconds\": " << fault_in_seconds
            << ", \"fault_speedup\": " << fault_speedup
            << ", \"external_build_seconds\": " << external_build_seconds
            << "}" << std::endl;

  std::filesystem::remove_all(dir);
  SIMJOIN_CHECK(byte_identical)
      << "external segment diverged from the in-RAM build";
  SIMJOIN_CHECK(identical) << "mapped queries diverged from the in-RAM tree";
  SIMJOIN_CHECK(under_budget) << "registry blew its byte budget";
  SIMJOIN_CHECK(resident_ok)
      << "resident set " << resident << " exceeded the budget " << budget;
  SIMJOIN_CHECK(fault_speedup >= 5.0)
      << "fault-in only " << fault_speedup << "x faster than rebuild";
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
