// Experiment R6 — "real data" feature workloads.
//
// The paper's real datasets (stock/mutual-fund time series reduced to DFT
// features; image colour histograms) are proprietary; per DESIGN.md section
// 5 this experiment runs the same pipelines on simulated archives with the
// same statistical structure: co-moving series families and prototype-driven
// histograms with planted near-duplicates.  Expected shape: on these
// clustered, correlated feature spaces the eps-k-d-B tree beats the R-tree
// join and brute force by a wide margin, mirroring the synthetic clustered
// results.

#include "bench_util.h"
#include "workload/image_features.h"
#include "workload/timeseries.h"

namespace simjoin {
namespace bench {
namespace {

void RunWorkload(const std::string& label, const Dataset& data, double epsilon) {
  std::cout << "--- workload: " << label << " (n=" << data.size()
            << ", d=" << data.dims() << ", eps=" << epsilon << ") ---\n";
  ResultTable table({"algorithm", "build", "join", "total", "pairs"});
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 64;
  for (const auto& r : {RunEkdbSelf(data, config),
                        RunRtreeSelf(data, epsilon, Metric::kL2),
                        RunGridSelf(data, epsilon, Metric::kL2),
                        RunSortMergeSelf(data, epsilon, Metric::kL2),
                        RunNestedLoopSelf(data, epsilon, Metric::kL2)}) {
    table.AddRow({r.algorithm, FmtSecs(r.build_seconds),
                  FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                  std::to_string(r.pairs)});
  }
  table.Print();
}

void Main() {
  PrintExperimentHeader(
      "R6", "real-data-like workloads (time-series DFT features, image "
      "colour histograms)",
      "eps-k-d-B wins on clustered/correlated real feature spaces, as on "
      "synthetic clustered data");

  {
    const size_t num_series = Scaled(4000, 20000);
    auto family = GenerateSeriesFamily({.num_series = num_series, .length = 256,
                                        .groups = 50, .group_weight = 0.8,
                                        .volatility = 0.02, .seed = 601});
    auto features = SeriesToFeatureDataset(*family, 6);
    features->NormalizeToUnitCube();
    RunWorkload("timeseries-dft (k=6 -> 12 dims)", *features, 0.05);
  }

  {
    const size_t num_images = Scaled(5000, 40000);
    auto archive = GenerateImageArchive(
        {.num_images = num_images, .bins = 32, .prototypes = 12,
         .concentration = 70, .near_duplicates = num_images / 100,
         .duplicate_noise = 0.01, .seed = 602});
    Dataset data = archive->histograms;
    data.NormalizeToUnitCube();
    RunWorkload("image-histograms (32 bins)", data, 0.05);
  }
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
