// R24: live-update service throughput and correctness under churn.
//
// The updatable tier's promise is twofold: answers stay exact while the
// index mutates, and queries stay fast while background compaction folds
// the delta in.  This bench checks both against in-process loopback
// servers:
//
//   1. identity: a drifting-cluster timeline (workload/drift.h) is replayed
//      over the wire — Remove, Insert, then the step's cluster-chasing
//      queries — and every response must be bit-identical to a
//      stop-the-world oracle that rebuilds a fresh tree over the live rows
//      after each step.  A final Flush plus requery pins the post-compaction
//      answers too.
//   2. steady state: two servers share the same point set, one serving an
//      immutable snapshot and one an updatable index.  Closed-loop client
//      threads drive both with the same query mix, except the updatable
//      side turns one request in `update-interval` (default 100 = 1% update
//      rate) into an insert/remove pair, so the delta tier keeps churning
//      and auto-compaction runs in the background while queries flow.
//
// Load passes alternate --repeats times; the best pass of each mode is kept
// so transient host stalls do not skew the ratio.
//
//   ./bench/bench_r24_updates
//   ./bench/bench_r24_updates --seconds 4 --threads 8
//
// Emits a `# UPDATES_JSON {...}` line for scripts/check_bench_regression.sh,
// which gates identical == true and qps_updatable / qps_immutable >= 0.8.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/timer.h"
#include "core/ekdb_tree.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/drift.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

/// Stop-the-world oracle: live (logical id, row) pairs in ascending-id
/// order; every query answer is recomputed from a fresh tree build over the
/// current live set, remapped to logical ids, and sorted.
struct Mirror {
  size_t dims;
  std::vector<std::pair<PointId, std::vector<float>>> live;

  explicit Mirror(const Dataset& initial) : dims(initial.dims()) {
    for (size_t i = 0; i < initial.size(); ++i) {
      const float* row = initial.Row(static_cast<PointId>(i));
      live.emplace_back(static_cast<PointId>(i),
                        std::vector<float>(row, row + dims));
    }
  }

  void Insert(PointId first_id, const std::vector<float>& rows) {
    const size_t count = rows.size() / dims;
    for (size_t i = 0; i < count; ++i) {
      live.emplace_back(
          first_id + static_cast<PointId>(i),
          std::vector<float>(rows.begin() + i * dims,
                             rows.begin() + (i + 1) * dims));
    }
  }

  void Remove(PointId id) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == id) {
        live.erase(it);
        return;
      }
    }
  }

  Result<std::vector<PointId>> OracleRange(const float* query, double eps,
                                           const EkdbConfig& config) const {
    std::vector<PointId> out;
    if (!live.empty()) {
      std::vector<float> flat;
      std::vector<PointId> logical;
      for (const auto& [id, row] : live) {
        logical.push_back(id);
        flat.insert(flat.end(), row.begin(), row.end());
      }
      SIMJOIN_ASSIGN_OR_RETURN(auto data,
                               Dataset::FromFlat(std::move(flat), dims));
      SIMJOIN_ASSIGN_OR_RETURN(auto tree, EkdbTree::Build(data, config));
      std::vector<PointId> rows;
      SIMJOIN_RETURN_NOT_OK(tree.RangeQuery(query, eps, &rows));
      for (PointId r : rows) out.push_back(logical[r]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

/// Replays a drift timeline over the wire and compares every query answer
/// (including a post-Flush requery of the last step) against the
/// stop-the-world rebuild oracle.  Returns false on any divergence.
Result<bool> IdentityCheck(Client* client, const EkdbConfig& config,
                           const DriftTimeline& timeline) {
  Mirror mirror(timeline.initial);
  size_t checked = 0;
  for (const DriftStep& step : timeline.steps) {
    if (!step.remove_ids.empty()) {
      RemoveRequest rem;
      rem.name = "bench";
      rem.ids = step.remove_ids;
      SIMJOIN_RETURN_NOT_OK(client->Remove(rem).status());
      for (PointId id : step.remove_ids) mirror.Remove(id);
    }
    if (!step.insert_rows.empty()) {
      InsertRequest ins;
      ins.name = "bench";
      ins.dims = static_cast<uint32_t>(timeline.dims);
      ins.rows = step.insert_rows;
      SIMJOIN_ASSIGN_OR_RETURN(InsertResponse resp, client->Insert(ins));
      mirror.Insert(resp.first_id, step.insert_rows);
    }
    for (size_t q = 0; q < step.queries(timeline.dims); ++q) {
      const float* query = step.query_rows.data() + q * timeline.dims;
      SIMJOIN_ASSIGN_OR_RETURN(
          auto got, client->RangeQueryOne(
                        "bench", std::span<const float>(query, timeline.dims),
                        config.epsilon));
      SIMJOIN_ASSIGN_OR_RETURN(
          auto want, mirror.OracleRange(query, config.epsilon, config));
      ++checked;
      if (got != want) {
        std::cerr << "  MISMATCH mid-timeline: " << got.size() << " ids vs "
                  << want.size() << " oracle ids\n";
        return false;
      }
    }
  }
  // Compaction must not change a single answer: fold the delta in and
  // re-run the final step's queries against the same oracle.
  SIMJOIN_RETURN_NOT_OK(client->Flush("bench").status());
  const DriftStep& last = timeline.steps.back();
  for (size_t q = 0; q < last.queries(timeline.dims); ++q) {
    const float* query = last.query_rows.data() + q * timeline.dims;
    SIMJOIN_ASSIGN_OR_RETURN(
        auto got, client->RangeQueryOne(
                      "bench", std::span<const float>(query, timeline.dims),
                      config.epsilon));
    SIMJOIN_ASSIGN_OR_RETURN(
        auto want, mirror.OracleRange(query, config.epsilon, config));
    ++checked;
    if (got != want) {
      std::cerr << "  MISMATCH post-flush: " << got.size() << " ids vs "
                << want.size() << " oracle ids\n";
      return false;
    }
  }
  std::cout << "  identity: " << checked
            << " drift-timeline answers checked against the rebuild oracle\n";
  return true;
}

struct PhaseResult {
  uint64_t requests = 0;  ///< completed range queries (updates not counted)
  uint64_t updates = 0;
  uint64_t errors = 0;
  double qps = 0.0;
};

/// Closed-loop load phase: `threads` blocking clients cycle range queries
/// over the dataset rows.  When update_interval > 0, every
/// update_interval-th operation on a connection becomes an update instead:
/// alternating an insert of one fresh row and a remove of the previously
/// inserted id, so the live set stays the same size while the delta tier
/// and tombstone set keep churning.
Result<PhaseResult> RunLoadPhase(uint16_t port, const Dataset& data,
                                 size_t threads, double warmup,
                                 double seconds, double epsilon,
                                 size_t update_interval) {
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<std::thread> workers;
  std::vector<PhaseResult> results(threads);
  std::atomic<uint64_t> startup_errors{0};
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      ClientConfig cc;
      cc.port = port;
      auto client = Client::Connect(cc);
      if (!client.ok()) {
        startup_errors.fetch_add(1);
        return;
      }
      PhaseResult& local = results[t];
      size_t cursor = (t * 7919) % data.size();
      uint64_t ops = t;  // stagger update slots across threads
      std::optional<PointId> pending_remove;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool counted = measuring.load(std::memory_order_relaxed);
        ++ops;
        if (update_interval > 0 && ops % update_interval == 0) {
          if (pending_remove) {
            RemoveRequest rem;
            rem.name = "bench";
            rem.ids = {*pending_remove};
            pending_remove.reset();
            if (!client->Remove(rem).ok()) ++local.errors;
          } else {
            InsertRequest ins;
            ins.name = "bench";
            ins.dims = static_cast<uint32_t>(data.dims());
            const float* row = data.Row(static_cast<PointId>(cursor));
            ins.rows.assign(row, row + data.dims());
            auto resp = client->Insert(ins);
            if (resp.ok()) {
              pending_remove = resp->first_id;
            } else {
              ++local.errors;
            }
          }
          if (counted) ++local.updates;
          continue;
        }
        const float* row = data.Row(static_cast<PointId>(cursor));
        cursor = (cursor + 1) % data.size();
        auto resp = client->RangeQueryOne(
            "bench", std::span<const float>(row, data.dims()), epsilon);
        if (!resp.ok()) ++local.errors;
        if (counted) ++local.requests;
      }
      // Leave the live set exactly as found so later phases see the same
      // index size.
      if (pending_remove) {
        RemoveRequest rem;
        rem.name = "bench";
        rem.ids = {*pending_remove};
        (void)client->Remove(rem);
      }
    });
  }

  Timer wall;
  while (wall.Seconds() < warmup) std::this_thread::yield();
  measuring.store(true);
  Timer window;
  while (window.Seconds() < seconds) std::this_thread::yield();
  const double elapsed = window.Seconds();
  stop.store(true);
  for (std::thread& w : workers) w.join();
  if (startup_errors.load() > 0) {
    return Status::Internal("load-phase client connect failed");
  }

  PhaseResult total;
  for (const PhaseResult& r : results) {
    total.requests += r.requests;
    total.updates += r.updates;
    total.errors += r.errors;
  }
  total.qps = static_cast<double>(total.requests) / elapsed;
  return total;
}

uint64_t CounterValue(const StatsResponse& stats, const std::string& name) {
  for (const obs::CounterSample& c : stats.metrics.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int Run(const ArgParser& args) {
  const size_t n = static_cast<size_t>(args.GetInt("n"));
  const size_t dims = static_cast<size_t>(args.GetInt("dims"));
  const size_t threads = static_cast<size_t>(args.GetInt("threads"));
  const double seconds = args.GetDouble("seconds");
  const double warmup = args.GetDouble("warmup");
  const double epsilon = args.GetDouble("epsilon");
  const size_t update_interval =
      static_cast<size_t>(args.GetInt("update-interval"));
  const size_t repeats =
      std::max<size_t>(1, static_cast<size_t>(args.GetInt("repeats")));

  std::cout << "R24: updatable vs immutable service throughput (n=" << n
            << ", d=" << dims << ", L2, eps=" << epsilon << ", threads="
            << threads << ", 1 update per " << update_interval
            << " requests)\n"
            << "  cores detected: " << std::thread::hardware_concurrency()
            << " (driver and server share them)\n";

  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = Metric::kL2;

  // --- Pass 1: drift-timeline identity against the rebuild oracle. ------
  DriftConfig drift;
  drift.dims = 8;
  drift.clusters = 4;
  drift.points_per_cluster = 48;
  drift.steps = 8;
  drift.queries_per_step = 8;
  drift.seed = 24;
  auto timeline = GenerateDrift(drift);
  if (!timeline.ok()) {
    std::cerr << timeline.status().ToString() << "\n";
    return 1;
  }
  bool identical = false;
  {
    auto server = Server::Start({});
    if (!server.ok()) {
      std::cerr << "server start failed\n";
      return 1;
    }
    ClientConfig cc;
    cc.port = (*server)->port();
    auto client = Client::Connect(cc);
    if (!client.ok()) {
      std::cerr << client.status().ToString() << "\n";
      return 1;
    }
    EkdbConfig drift_config = config;
    drift_config.epsilon = 0.1;
    BuildIndexRequest build;
    build.name = "bench";
    build.config = drift_config;
    build.dims = static_cast<uint32_t>(timeline->dims);
    build.points = timeline->initial.flat();
    build.backend = BackendKind::kUpdatable;
    if (!client->BuildIndex(build).ok()) {
      std::cerr << "updatable build failed\n";
      return 1;
    }
    auto id_ok = IdentityCheck(&*client, drift_config, *timeline);
    if (!id_ok.ok()) {
      std::cerr << id_ok.status().ToString() << "\n";
      return 1;
    }
    identical = *id_ok;
    (*server)->Shutdown();
    (*server)->Wait();
  }

  // --- Pass 2: steady-state throughput, immutable vs 1%-update churn. ---
  auto data = GenerateUniform({.n = n, .dims = dims, .seed = 24});
  if (!data.ok()) {
    std::cerr << data.status().ToString() << "\n";
    return 1;
  }
  ServerConfig server_config;
  server_config.max_inflight = std::max<size_t>(threads * 2, 64);
  auto solo_server = Server::Start(server_config);
  auto upd_server = Server::Start(server_config);
  if (!solo_server.ok() || !upd_server.ok()) {
    std::cerr << "server start failed\n";
    return 1;
  }
  Timer build_timer;
  auto snapshot = IndexSnapshot::Build("bench", *data, config);
  auto updatable =
      IndexSnapshot::Build("bench", *data, config,
                           /*num_threads=*/1, BackendKind::kUpdatable);
  if (!snapshot.ok() || !updatable.ok()) {
    std::cerr << "index build failed\n";
    return 1;
  }
  if (!(*solo_server)->registry().Put(*snapshot).ok() ||
      !(*upd_server)->registry().Put(*updatable).ok()) {
    std::cerr << "registry preload failed\n";
    return 1;
  }
  std::cout << "  indexes built in " << build_timer.Seconds() << " s\n";

  std::optional<PhaseResult> immutable, churn;
  uint64_t phase_errors = 0;
  for (size_t pass = 0; pass < repeats; ++pass) {
    auto im = RunLoadPhase((*solo_server)->port(), *data, threads, warmup,
                           seconds, epsilon, /*update_interval=*/0);
    if (!im.ok()) {
      std::cerr << "immutable phase: " << im.status().ToString() << "\n";
      return 1;
    }
    auto ch = RunLoadPhase((*upd_server)->port(), *data, threads, warmup,
                           seconds, epsilon, update_interval);
    if (!ch.ok()) {
      std::cerr << "updatable phase: " << ch.status().ToString() << "\n";
      return 1;
    }
    phase_errors += im->errors + ch->errors;
    std::cout << "  pass " << pass + 1 << "/" << repeats << ": immutable "
              << static_cast<uint64_t>(im->qps) << " qps, updatable "
              << static_cast<uint64_t>(ch->qps) << " qps (" << ch->updates
              << " updates)\n";
    if (!immutable || im->qps > immutable->qps) immutable = *im;
    if (!churn || ch->qps > churn->qps) churn = *ch;
  }

  uint64_t compactions = 0;
  {
    ClientConfig cc;
    cc.port = (*upd_server)->port();
    auto client = Client::Connect(cc);
    if (client.ok()) {
      auto stats = client->GetStats();
      if (stats.ok()) compactions = CounterValue(*stats, "compaction.count");
    }
  }

  const double ratio =
      immutable->qps > 0.0 ? churn->qps / immutable->qps : 0.0;
  std::cout << "  immutable: " << static_cast<uint64_t>(immutable->qps)
            << " qps (" << immutable->requests << " requests)\n"
            << "  updatable: " << static_cast<uint64_t>(churn->qps)
            << " qps (" << churn->requests << " requests, " << churn->updates
            << " updates, " << compactions << " compactions)\n"
            << "  steady-state ratio: " << ratio << "x of immutable\n";

  std::ostringstream json;
  json << "{\"bench\":\"r24_updates\",\"n\":" << n << ",\"dims\":" << dims
       << ",\"threads\":" << threads << ",\"seconds\":" << seconds
       << ",\"epsilon\":" << epsilon
       << ",\"update_interval\":" << update_interval
       << ",\"qps_immutable\":" << immutable->qps
       << ",\"qps_updatable\":" << churn->qps << ",\"ratio\":" << ratio
       << ",\"updates\":" << churn->updates
       << ",\"compactions\":" << compactions
       << ",\"errors\":" << phase_errors
       << ",\"identical\":" << (identical ? "true" : "false")
       << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
       << "}";
  std::cout << "# UPDATES_JSON " << json.str() << "\n";

  (*solo_server)->Shutdown();
  (*solo_server)->Wait();
  (*upd_server)->Shutdown();
  (*upd_server)->Wait();
  return identical && phase_errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args(
      "R24: live-update service identity + steady-state throughput");
  args.AddFlag("n", "50000", "indexed points for the throughput phases");
  args.AddFlag("dims", "16", "dimensionality");
  args.AddFlag("epsilon", "0.2", "build + query epsilon (L2)");
  args.AddFlag("threads", "8", "closed-loop client threads per phase");
  args.AddFlag("seconds", "2", "measurement window per phase");
  args.AddFlag("warmup", "0.5", "uncounted warmup prefix per phase (seconds)");
  args.AddFlag("repeats", "2", "alternating passes per mode; best is kept");
  args.AddFlag("update-interval", "100",
               "one op in this many becomes an insert/remove (0 = never)");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(args);
}
