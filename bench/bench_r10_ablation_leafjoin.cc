// Experiment R10 — design-choice ablations of the eps-k-d-B join.
//
// Three knobs from DESIGN.md: (1) the sliding-window sort-merge inside leaf
// joins vs naive all-pairs leaves, (2) bounding-box min-distance pruning vs
// pure stripe adjacency, and (3) the order in which dimensions are consumed
// (identity vs variance-descending vs variance-ascending).  Expected shape:
// the sliding window removes most candidate pairs at selective epsilon;
// bbox pruning helps most on clustered data; splitting high-variance
// dimensions first yields smaller, better-separated subtrees.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R10", "eps-k-d-B ablations: leaf sweep, bbox pruning, dimension order",
      "sliding window slashes candidates; bbox pruning cuts node pairs on "
      "clustered data; high-variance-first split order wins");
  const size_t n = Scaled(12000, 80000);
  const size_t dims = 8;
  const double epsilon = 0.05;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 1001});

  std::cout << "--- ablation 1: leaf-join strategy x bbox pruning ---\n";
  ResultTable ablation({"variant", "join", "candidates", "node_pairs",
                        "pruned", "pairs"});
  for (bool sweep : {true, false}) {
    for (bool bbox : {true, false}) {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.leaf_threshold = 64;
      config.sliding_window_leaf_join = sweep;
      config.bbox_pruning = bbox;
      const RunResult r = RunEkdbSelf(*data, config);
      const std::string name = std::string(sweep ? "sweep" : "naive") +
                               (bbox ? "+bbox" : "+nobbox");
      ablation.AddRow({name, FmtSecs(r.join_seconds),
                       std::to_string(r.stats.candidate_pairs),
                       std::to_string(r.stats.node_pairs_visited),
                       std::to_string(r.stats.node_pairs_pruned),
                       std::to_string(r.pairs)});
    }
  }
  ablation.Print();

  std::cout << "--- ablation 2: dimension consumption order ---\n";
  // Make dimension variances unequal so ordering matters: rescale half the
  // columns into a narrow band.
  Dataset skewed = *data;
  for (size_t i = 0; i < skewed.size(); ++i) {
    float* row = skewed.MutableRow(static_cast<PointId>(i));
    for (size_t d = dims / 2; d < dims; ++d) {
      row[d] = 0.45f + row[d] * 0.1f;  // variance shrinks 100x
    }
  }
  const std::vector<uint32_t> descending = VarianceDescendingOrder(skewed);
  std::vector<uint32_t> ascending(descending.rbegin(), descending.rend());

  ResultTable order_table({"dim_order", "build", "join", "total",
                           "candidates"});
  struct OrderCase {
    const char* name;
    std::vector<uint32_t> order;
  };
  for (const auto& oc :
       {OrderCase{"identity", {}}, OrderCase{"variance-desc", descending},
        OrderCase{"variance-asc", ascending}}) {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    config.dim_order = oc.order;
    const RunResult r = RunEkdbSelf(skewed, config);
    order_table.AddRow({oc.name, FmtSecs(r.build_seconds),
                        FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                        std::to_string(r.stats.candidate_pairs)});
  }
  order_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main() { simjoin::bench::Main(); }
