// Experiment R10 — design-choice ablations of the eps-k-d-B join.
//
// Three knobs from DESIGN.md: (1) the sliding-window sort-merge inside leaf
// joins vs naive all-pairs leaves, (2) bounding-box min-distance pruning vs
// pure stripe adjacency, and (3) the order in which dimensions are consumed
// (identity vs variance-descending vs variance-ascending).  Expected shape:
// the sliding window removes most candidate pairs at selective epsilon;
// bbox pruning helps most on clustered data; splitting high-variance
// dimensions first yields smaller, better-separated subtrees.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R10", "eps-k-d-B ablations: leaf sweep, bbox pruning, dimension order",
      "sliding window slashes candidates; bbox pruning cuts node pairs on "
      "clustered data; high-variance-first split order wins; flat arena "
      "beats gathered-tile leaf joins");
  const size_t n = Scaled(12000, 80000);
  const size_t dims = 8;
  const double epsilon = 0.05;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 1001});

  std::cout << "--- ablation 1: leaf-join strategy x bbox pruning ---\n";
  ResultTable ablation({"variant", "join", "candidates", "node_pairs",
                        "pruned", "pairs"});
  for (bool sweep : {true, false}) {
    for (bool bbox : {true, false}) {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.leaf_threshold = 64;
      config.sliding_window_leaf_join = sweep;
      config.bbox_pruning = bbox;
      const RunResult r = RunEkdbSelf(*data, config);
      const std::string name = std::string(sweep ? "sweep" : "naive") +
                               (bbox ? "+bbox" : "+nobbox");
      ablation.AddRow({name, FmtSecs(r.join_seconds),
                       std::to_string(r.stats.candidate_pairs),
                       std::to_string(r.stats.node_pairs_visited),
                       std::to_string(r.stats.node_pairs_pruned),
                       std::to_string(r.pairs)});
    }
  }
  ablation.Print();

  std::cout << "--- ablation 2: dimension consumption order ---\n";
  // Make dimension variances unequal so ordering matters: rescale half the
  // columns into a narrow band.
  Dataset skewed = *data;
  for (size_t i = 0; i < skewed.size(); ++i) {
    float* row = skewed.MutableRow(static_cast<PointId>(i));
    for (size_t d = dims / 2; d < dims; ++d) {
      row[d] = 0.45f + row[d] * 0.1f;  // variance shrinks 100x
    }
  }
  const std::vector<uint32_t> descending = VarianceDescendingOrder(skewed);
  std::vector<uint32_t> ascending(descending.rbegin(), descending.rend());

  ResultTable order_table({"dim_order", "build", "join", "total",
                           "candidates"});
  struct OrderCase {
    const char* name;
    std::vector<uint32_t> order;
  };
  for (const auto& oc :
       {OrderCase{"identity", {}}, OrderCase{"variance-desc", descending},
        OrderCase{"variance-asc", ascending}}) {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    config.dim_order = oc.order;
    const RunResult r = RunEkdbSelf(skewed, config);
    order_table.AddRow({oc.name, FmtSecs(r.build_seconds),
                        FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                        std::to_string(r.stats.candidate_pairs)});
  }
  order_table.Print();

  std::cout << "--- ablation 3: flat arena vs gathered-tile leaf joins ---\n";
  // The acceptance bar for the flat representation: at d = 16, n >= 100k,
  // L2, the leaf-packed coordinate arena (strided SIMD tiles, no per-row
  // pointer gather) should beat the pointer tree's gathered-tile path by
  // >= 1.3x in leaf-join throughput (candidate tests per second).
  const size_t flat_n = Scaled(100000, 400000);
  auto flat_data = *GenerateUniform({.n = flat_n, .dims = 16, .seed = 1003});
  EkdbConfig flat_config;
  flat_config.epsilon = 0.30;
  flat_config.metric = Metric::kL2;
  flat_config.leaf_threshold = 64;

  const RunResult pointer = RunEkdbSelf(flat_data, flat_config);
  const RunResult flat = RunEkdbFlatSelf(flat_data, flat_config);

  auto throughput = [](const RunResult& r) {
    return r.join_seconds > 0.0
               ? static_cast<double>(r.stats.candidate_pairs) / r.join_seconds
               : 0.0;
  };
  ResultTable flat_table({"layout", "build", "join", "cand/s(M)", "candidates",
                          "pairs", "bytes"});
  for (const RunResult* r : {&pointer, &flat}) {
    flat_table.AddRow({r->algorithm, FmtSecs(r->build_seconds),
                       FmtSecs(r->join_seconds),
                       FmtDouble(throughput(*r) / 1e6, 1),
                       std::to_string(r->stats.candidate_pairs),
                       std::to_string(r->pairs),
                       std::to_string(r->memory_bytes)});
  }
  flat_table.Print();
  if (throughput(pointer) > 0.0) {
    std::cout << "flat/pointer leaf-join throughput ratio: "
              << FmtDouble(throughput(flat) / throughput(pointer), 2)
              << "x (target >= 1.3x)\n\n";
  }
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
