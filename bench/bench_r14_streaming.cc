// Experiment R14 — incremental (sliding-window) join maintenance.
//
// Feeds a point stream through the StreamingWindowJoin and compares the
// per-arrival cost against the naive strategy that rebuilds the index and
// re-joins the window on every arrival.  Expected shape: the incremental
// path costs microseconds per point and is flat-ish in the window size,
// while the rebuild strategy's per-arrival cost grows linearly with the
// window (it redoes O(window) work each time) — the motivation for
// incremental maintenance.

#include "bench_util.h"
#include "common/timer.h"
#include "core/streaming_window.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R14", "sliding-window join: incremental maintenance vs rebuild",
      "incremental cost/point ~flat in window size; rebuild cost/point "
      "grows ~linearly with the window");
  const size_t stream_len = Scaled(4000, 40000);
  const size_t dims = 6;
  const double epsilon = 0.05;
  auto stream = GenerateClustered({.n = stream_len, .dims = dims,
                                   .clusters = 10, .sigma = 0.05,
                                   .seed = 1401});

  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 32;

  ResultTable table({"window", "strategy", "total", "per_point", "pairs"});
  for (size_t window : {64u, 256u, 1024u, 4096u}) {
    // Incremental.
    {
      auto join = StreamingWindowJoin::Create(window, dims, config);
      SIMJOIN_CHECK(join.ok());
      uint64_t pairs = 0;
      Timer timer;
      for (size_t i = 0; i < stream->size(); ++i) {
        auto pos = (*join)->Feed(stream->Row(static_cast<PointId>(i)),
                                 [&pairs](StreamPos, StreamPos) { ++pairs; });
        SIMJOIN_CHECK(pos.ok());
      }
      const double total = timer.Seconds();
      table.AddRow({std::to_string(window), "incremental", FmtSecs(total),
                    FmtSecs(total / static_cast<double>(stream->size())),
                    std::to_string(pairs)});
    }
    // Rebuild per arrival (capped stream so the run stays tractable).
    {
      const size_t capped =
          std::min<size_t>(stream->size(), LargeScale() ? 4000 : 1000);
      uint64_t pairs = 0;
      Timer timer;
      Dataset resident;
      std::vector<StreamPos> positions;
      for (size_t i = 0; i < capped; ++i) {
        // Maintain the window contents.
        if (positions.size() == window) {
          // Drop the oldest by rebuilding the buffer (the naive strategy).
          Dataset next;
          std::vector<StreamPos> next_pos;
          for (size_t k = 1; k < positions.size(); ++k) {
            next.Append(resident.RowSpan(static_cast<PointId>(k)));
            next_pos.push_back(positions[k]);
          }
          resident = std::move(next);
          positions = std::move(next_pos);
        }
        // Join the arrival against the residents with a fresh tree.
        if (!resident.empty()) {
          auto tree = EkdbTree::Build(resident, config);
          SIMJOIN_CHECK(tree.ok());
          std::vector<PointId> hits;
          SIMJOIN_CHECK(tree->RangeQuery(stream->Row(static_cast<PointId>(i)),
                                         epsilon, &hits)
                            .ok());
          pairs += hits.size();
        }
        resident.Append(stream->RowSpan(static_cast<PointId>(i)));
        positions.push_back(i);
      }
      const double total = timer.Seconds();
      table.AddRow({std::to_string(window),
                    "rebuild (first " + std::to_string(capped) + ")",
                    FmtSecs(total),
                    FmtSecs(total / static_cast<double>(capped)),
                    std::to_string(pairs)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
