// R21: cross-connection range-query fusion under high concurrency.
//
// The fusion engine earns its keep when many connections each carry small
// requests: per-request dispatch pays frame decode + task hop + solo
// traversal per query, while the fused path accumulates the queries queued
// across ALL connections and sweeps the leaf-packed coordinate arena once
// per batch with the strided SIMD kernels.  This bench measures exactly that
// regime — hundreds of concurrent clients, one single-query (batch=1)
// request in flight each — which a thread-per-client driver cannot reach on
// a small host.  A single-threaded poll() multiplexer drives all
// connections instead.
//
// Three passes against in-process loopback servers sharing one prebuilt
// index snapshot (d=16, n=100k, L2 by default):
//   1. identity: the same fixed queries through a fused and an unfused
//      server must produce byte-identical id lists and JoinStats,
//   2. per-request baseline: fusion disabled, C concurrent connections,
//   3. fused: fusion enabled, same driver, same C.
// Load passes 2-3 alternate --repeats times; the best pass of each mode is
// reported, so transient host stalls do not skew the ratio.
//
//   ./bench/bench_r21_fused
//   ./bench/bench_r21_fused --concurrency 256 --seconds 4
//
// Emits a `# FUSED_JSON {...}` line for scripts/check_bench_regression.sh,
// which gates qps_fused / qps_per_request >= 1.5 and identical == true.

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/net.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

using Clock = std::chrono::steady_clock;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

/// One multiplexed loopback connection: non-blocking socket, outbound byte
/// buffer, inbound frame decoder, and exactly one request in flight.
struct DriverConn {
  TcpSocket sock;
  FrameDecoder decoder;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  size_t cursor = 0;  ///< next dataset row used as a query point
  uint64_t next_id = 1;
  Clock::time_point sent_at;
  uint64_t completed = 0;
  uint64_t errors = 0;
};

struct PhaseResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  double elapsed = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Builds the connection's reusable request frame: a batch=1 RangeQuery
/// whose query floats are the payload tail.  Subsequent requests only
/// rewrite those floats in place (PatchNextQuery) — the driver must not
/// spend its share of the core allocating frames, or the per-request cost
/// it adds washes out the difference between the two server modes.
void BuildRequestFrame(const Dataset& data, DriverConn* conn,
                       double epsilon) {
  RangeQueryRequest req;
  req.name = "bench";
  req.epsilon = epsilon;
  req.dims = static_cast<uint32_t>(data.dims());
  const float* row = data.Row(static_cast<PointId>(conn->cursor));
  req.queries.assign(row, row + data.dims());
  conn->cursor = (conn->cursor + 1) % data.size();
  conn->sent_at = Clock::now();
  conn->out = EncodeFrame(FrameType::kRangeQuery, conn->next_id++, 0,
                          EncodeRangeQueryRequest(req));
  conn->out_off = 0;
}

void PatchNextQuery(const Dataset& data, DriverConn* conn) {
  const size_t bytes = data.dims() * sizeof(float);
  std::memcpy(conn->out.data() + conn->out.size() - bytes,
              data.Row(static_cast<PointId>(conn->cursor)), bytes);
  conn->cursor = (conn->cursor + 1) % data.size();
  conn->sent_at = Clock::now();
  conn->out_off = 0;
}

/// Closed-loop load phase: `concurrency` connections, one batch=1 range
/// query in flight on each, for `warmup + seconds`.  Single-threaded poll
/// loop; completions during the warmup prefix are not counted (connection
/// ramp-up and cold caches would otherwise smear both phases).
Result<PhaseResult> RunLoadPhase(uint16_t port, const Dataset& data,
                                 size_t concurrency, double warmup,
                                 double seconds, double epsilon) {
  std::vector<std::unique_ptr<DriverConn>> conns;
  conns.reserve(concurrency);
  for (size_t c = 0; c < concurrency; ++c) {
    auto conn = std::make_unique<DriverConn>();
    SIMJOIN_ASSIGN_OR_RETURN(conn->sock,
                             TcpSocket::Connect("127.0.0.1", port));
    SIMJOIN_RETURN_NOT_OK(conn->sock.SetNonBlocking(true));
    conn->cursor = (c * 7919) % data.size();
    BuildRequestFrame(data, conn.get(), epsilon);
    conns.push_back(std::move(conn));
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  std::vector<pollfd> fds(conns.size());
  uint8_t buf[64 << 10];
  Timer wall;
  bool measuring = false;
  double measure_start = 0.0;
  while (wall.Seconds() < warmup + seconds) {
    if (!measuring && wall.Seconds() >= warmup) {
      measuring = true;
      measure_start = wall.Seconds();
      latencies_us.clear();
      for (auto& conn : conns) conn->completed = 0;
    }
    for (size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i]->sock.fd();
      fds[i].events = POLLIN;
      if (conns[i]->out_off < conns[i]->out.size()) fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    ::poll(fds.data(), fds.size(), 10);
    for (size_t i = 0; i < conns.size(); ++i) {
      DriverConn& conn = *conns[i];
      if ((fds[i].revents & POLLOUT) != 0 &&
          conn.out_off < conn.out.size()) {
        size_t sent = 0;
        SIMJOIN_RETURN_NOT_OK(conn.sock.SendSome(
            conn.out.data() + conn.out_off, conn.out.size() - conn.out_off,
            &sent));
        conn.out_off += sent;
      }
      if ((fds[i].revents & POLLIN) == 0) continue;
      while (true) {
        size_t n = 0;
        bool eof = false;
        SIMJOIN_RETURN_NOT_OK(conn.sock.RecvSome(buf, sizeof(buf), &n, &eof));
        if (n > 0) conn.decoder.Append(buf, n);
        if (n == 0 || eof) break;
      }
      while (true) {
        Frame frame;
        bool got = false;
        SIMJOIN_RETURN_NOT_OK(conn.decoder.Next(&frame, &got));
        if (!got) break;
        if (frame.header.type == FrameType::kRangeQueryResult) {
          ++conn.completed;
          latencies_us.push_back(
              static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - conn.sent_at)
                      .count()) *
              1e-3);
        } else {
          ++conn.errors;  // kRetryAfter / kError: count and keep the loop
        }
        PatchNextQuery(data, &conn);
        size_t sent = 0;  // opportunistic send; the kernel buffer is empty
        SIMJOIN_RETURN_NOT_OK(conn.sock.SendSome(conn.out.data(),
                                                 conn.out.size(), &sent));
        conn.out_off = sent;
      }
    }
  }

  PhaseResult res;
  res.elapsed = wall.Seconds() - measure_start;
  for (const auto& conn : conns) {
    res.requests += conn->completed;
    res.errors += conn->errors;
  }
  res.qps = static_cast<double>(res.requests) / res.elapsed;
  std::sort(latencies_us.begin(), latencies_us.end());
  res.p50 = Percentile(latencies_us, 0.50);
  res.p95 = Percentile(latencies_us, 0.95);
  res.p99 = Percentile(latencies_us, 0.99);
  return res;
}

bool SameStats(const JoinStats& a, const JoinStats& b) {
  return a.candidate_pairs == b.candidate_pairs &&
         a.distance_calls == b.distance_calls &&
         a.pairs_emitted == b.pairs_emitted &&
         a.simd_batches == b.simd_batches &&
         a.scalar_fallbacks == b.scalar_fallbacks;
}

/// Sends the same fixed queries through the unfused and the fused server
/// (the latter from several concurrent closed-loop threads, so requests
/// actually overlap in the fusion buffer) and demands identical responses.
Result<bool> IdentityCheck(uint16_t solo_port, uint16_t fused_port,
                           const Dataset& data, double epsilon,
                           size_t num_queries, size_t threads) {
  std::vector<std::vector<PointId>> expect(num_queries);
  std::vector<JoinStats> expect_stats(num_queries);
  {
    ClientConfig cc;
    cc.port = solo_port;
    SIMJOIN_ASSIGN_OR_RETURN(auto client, Client::Connect(cc));
    for (size_t q = 0; q < num_queries; ++q) {
      RangeQueryRequest req;
      req.name = "bench";
      req.epsilon = epsilon;
      req.dims = static_cast<uint32_t>(data.dims());
      const float* row = data.Row(static_cast<PointId>((q * 131) % data.size()));
      req.queries.assign(row, row + data.dims());
      SIMJOIN_ASSIGN_OR_RETURN(auto resp, client.RangeQuery(req));
      expect[q] = std::move(resp.results[0]);
      expect_stats[q] = resp.stats;
    }
  }

  std::vector<std::vector<PointId>> fused(num_queries);
  std::vector<JoinStats> fused_stats(num_queries);
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      ClientConfig cc;
      cc.port = fused_port;
      auto client = Client::Connect(cc);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (size_t q = t; q < num_queries; q += threads) {
        RangeQueryRequest req;
        req.name = "bench";
        req.epsilon = epsilon;
        req.dims = static_cast<uint32_t>(data.dims());
        const float* row =
            data.Row(static_cast<PointId>((q * 131) % data.size()));
        req.queries.assign(row, row + data.dims());
        auto resp = client->RangeQuery(req);
        if (!resp.ok()) {
          failed.store(true);
          return;
        }
        fused[q] = std::move(resp->results[0]);
        fused_stats[q] = resp->stats;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (failed.load()) return Status::Internal("identity pass request failed");

  for (size_t q = 0; q < num_queries; ++q) {
    if (fused[q] != expect[q] || !SameStats(fused_stats[q], expect_stats[q])) {
      std::cerr << "  MISMATCH at query " << q << ": fused "
                << fused[q].size() << " ids vs solo " << expect[q].size()
                << " ids\n";
      return false;
    }
  }
  return true;
}

int Run(const ArgParser& args) {
  const size_t n = static_cast<size_t>(args.GetInt("n"));
  const size_t dims = static_cast<size_t>(args.GetInt("dims"));
  const size_t concurrency = static_cast<size_t>(args.GetInt("concurrency"));
  const double seconds = args.GetDouble("seconds");
  const double warmup = args.GetDouble("warmup");
  const double epsilon = args.GetDouble("epsilon");
  const size_t wait_us = static_cast<size_t>(args.GetInt("wait-us"));
  const size_t max_batch = static_cast<size_t>(args.GetInt("max-batch"));

  std::cout << "R21: fused vs per-request service throughput (n=" << n
            << ", d=" << dims << ", L2, eps=" << epsilon
            << ", batch=1, concurrency=" << concurrency << ")\n"
            << "  cores detected: " << std::thread::hardware_concurrency()
            << " (driver and server share them)\n"
            << "  fusion: max-batch=" << max_batch << ", wait-us=" << wait_us
            << "\n";

  auto data = GenerateUniform({.n = n, .dims = dims, .seed = 21});
  if (!data.ok()) {
    std::cerr << data.status().ToString() << "\n";
    return 1;
  }
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = Metric::kL2;
  Timer build_timer;
  auto snapshot = IndexSnapshot::Build("bench", *data, config);
  if (!snapshot.ok()) {
    std::cerr << "build failed: " << snapshot.status().ToString() << "\n";
    return 1;
  }
  std::cout << "  index built in " << build_timer.Seconds() << " s ("
            << (*snapshot)->memory_bytes() << " bytes)\n";

  // Both servers serve the SAME immutable snapshot, so any divergence is
  // execution, never data.
  ServerConfig solo_config;
  solo_config.fusion_enabled = false;
  solo_config.max_inflight = std::max<size_t>(concurrency, 256);
  ServerConfig fused_config = solo_config;
  fused_config.fusion_enabled = true;
  fused_config.fusion_max_batch = max_batch;
  fused_config.fusion_wait_us = static_cast<uint32_t>(wait_us);

  auto solo_server = Server::Start(solo_config);
  auto fused_server = Server::Start(fused_config);
  if (!solo_server.ok() || !fused_server.ok()) {
    std::cerr << "server start failed\n";
    return 1;
  }
  if (!(*solo_server)->registry().Put(*snapshot).ok() ||
      !(*fused_server)->registry().Put(*snapshot).ok()) {
    std::cerr << "registry preload failed\n";
    return 1;
  }

  auto identical = IdentityCheck((*solo_server)->port(),
                                 (*fused_server)->port(), *data, epsilon,
                                 /*num_queries=*/512, /*threads=*/16);
  if (!identical.ok()) {
    std::cerr << identical.status().ToString() << "\n";
    return 1;
  }
  std::cout << "  identity: fused responses "
            << (*identical ? "bit-identical to" : "DIVERGE from")
            << " per-request responses (512 queries, 16 conns)\n";

  // Alternate per-request / fused passes and keep the best pass of each so a
  // transient stall on the host (this is a shared box) penalises both modes
  // evenly instead of whichever phase it happened to land on.
  const size_t repeats = std::max<size_t>(
      1, static_cast<size_t>(args.GetInt("repeats")));
  std::optional<PhaseResult> per_request, fused;
  uint64_t phase_errors = 0;
  for (size_t pass = 0; pass < repeats; ++pass) {
    auto pr = RunLoadPhase((*solo_server)->port(), *data, concurrency, warmup,
                           seconds, epsilon);
    if (!pr.ok()) {
      std::cerr << "baseline phase: " << pr.status().ToString() << "\n";
      return 1;
    }
    auto fu = RunLoadPhase((*fused_server)->port(), *data, concurrency, warmup,
                           seconds, epsilon);
    if (!fu.ok()) {
      std::cerr << "fused phase: " << fu.status().ToString() << "\n";
      return 1;
    }
    phase_errors += pr->errors + fu->errors;
    std::cout << "  pass " << pass + 1 << "/" << repeats << ": per-request "
              << static_cast<uint64_t>(pr->qps) << " qps, fused "
              << static_cast<uint64_t>(fu->qps) << " qps\n";
    if (!per_request || pr->qps > per_request->qps) per_request = *pr;
    if (!fused || fu->qps > fused->qps) fused = *fu;
  }
  std::cout << "  per-request: " << static_cast<uint64_t>(per_request->qps)
            << " qps (" << per_request->requests << " requests, p50="
            << per_request->p50 << "us p99=" << per_request->p99 << "us, "
            << per_request->errors << " errors)\n";
  const ServerCounters fc = (*fused_server)->counters();
  const double mean_batch =
      fc.fusion_batches > 0 ? static_cast<double>(fc.fusion_fused_queries) /
                                  static_cast<double>(fc.fusion_batches)
                            : 0.0;
  std::cout << "  fused:       " << static_cast<uint64_t>(fused->qps)
            << " qps (" << fused->requests << " requests, p50=" << fused->p50
            << "us p99=" << fused->p99 << "us, " << fused->errors
            << " errors)\n"
            << "  fusion: " << fc.fusion_batches << " batches, mean size "
            << mean_batch << ", " << fc.fusion_batch_full << " full flushes, "
            << fc.fusion_wait_expired << " wait-budget flushes\n";

  const double speedup =
      per_request->qps > 0.0 ? fused->qps / per_request->qps : 0.0;
  std::cout << "  speedup: " << speedup << "x fused over per-request\n";

  std::ostringstream json;
  json << "{\"bench\":\"r21_fused\",\"n\":" << n << ",\"dims\":" << dims
       << ",\"batch\":1,\"concurrency\":" << concurrency
       << ",\"seconds\":" << seconds << ",\"epsilon\":" << epsilon
       << ",\"fusion_max_batch\":" << max_batch
       << ",\"fusion_wait_us\":" << wait_us
       << ",\"qps_per_request\":" << per_request->qps
       << ",\"qps_fused\":" << fused->qps << ",\"speedup\":" << speedup
       << ",\"p50_us_per_request\":" << per_request->p50
       << ",\"p99_us_per_request\":" << per_request->p99
       << ",\"p50_us_fused\":" << fused->p50
       << ",\"p99_us_fused\":" << fused->p99
       << ",\"fusion_batches\":" << fc.fusion_batches
       << ",\"fused_queries\":" << fc.fusion_fused_queries
       << ",\"mean_batch\":" << mean_batch
       << ",\"errors\":" << phase_errors
       << ",\"identical\":" << (*identical ? "true" : "false")
       << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
       << "}";
  std::cout << "# FUSED_JSON " << json.str() << "\n";

  (*solo_server)->Shutdown();
  (*solo_server)->Wait();
  (*fused_server)->Shutdown();
  (*fused_server)->Wait();
  return *identical && phase_errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args(
      "R21: cross-connection range-query fusion benchmark");
  args.AddFlag("n", "100000", "indexed points");
  args.AddFlag("dims", "16", "dimensionality");
  args.AddFlag("epsilon", "0.2", "build + query epsilon (L2)");
  args.AddFlag("concurrency", "512",
               "concurrent connections, one batch=1 query in flight each");
  args.AddFlag("seconds", "3", "measurement window per phase");
  args.AddFlag("warmup", "1", "uncounted warmup prefix per phase (seconds)");
  args.AddFlag("repeats", "2", "alternating passes per mode; best is kept");
  args.AddFlag("wait-us", "120", "fusion wait budget (microseconds)");
  args.AddFlag("max-batch", "512", "fusion flush threshold (requests)");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(args);
}
