// Experiment R8 — index structure and memory footprint.
//
// Reports the structural cost of the two index families across n and d:
// bytes, node counts, depth/height, and build time.  Expected shape: both
// indexes are linear in n; the eps-k-d-B tree is shallower than d levels
// (it stops splitting once leaves fit) and its memory stays comparable to
// the STR-packed R-tree.

#include "bench_util.h"
#include "common/timer.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R8", "index structure and memory vs n and d",
      "both indexes linear in n; eps-k-d-B depth bounded by d and by "
      "log-ish splitting; memory comparable between the two");
  const double epsilon = 0.05;

  std::cout << "--- sweep 1: cardinality n (d = 8) ---\n";
  ResultTable by_n({"n", "index", "build", "bytes", "nodes", "leaves",
                    "depth/height", "avg_leaf"});
  const size_t max_n = Scaled(64000, 512000);
  for (size_t n = 4000; n <= max_n; n *= 4) {
    auto data = GenerateClustered(
        {.n = n, .dims = 8, .clusters = 20, .sigma = 0.05, .seed = 801});
    {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.leaf_threshold = 64;
      Timer timer;
      auto tree = EkdbTree::Build(*data, config);
      const double build = timer.Seconds();
      const auto stats = tree->ComputeStats();
      by_n.AddRow({std::to_string(n), "ekdb", FmtSecs(build),
                   std::to_string(stats.memory_bytes),
                   std::to_string(stats.nodes), std::to_string(stats.leaves),
                   std::to_string(stats.max_depth),
                   FmtDouble(stats.avg_leaf_size, 1)});
      // Flat (cache-conscious) representation of the same tree: build column
      // is the flatten cost alone, bytes are the packed node array + arena.
      timer.Restart();
      auto flat = FlatEkdbTree::FromTree(*tree);
      const double flatten = timer.Seconds();
      by_n.AddRow({std::to_string(n), "ekdb-flat", FmtSecs(flatten),
                   std::to_string(flat->total_bytes()),
                   std::to_string(flat->num_nodes()),
                   std::to_string(stats.leaves),
                   std::to_string(stats.max_depth),
                   FmtDouble(stats.avg_leaf_size, 1)});
    }
    {
      Timer timer;
      auto tree = RTree::BulkLoad(*data, RTreeConfig{});
      const double build = timer.Seconds();
      const auto stats = tree->ComputeStats();
      by_n.AddRow({std::to_string(n), "rtree", FmtSecs(build),
                   std::to_string(stats.memory_bytes),
                   std::to_string(stats.nodes), std::to_string(stats.leaves),
                   std::to_string(stats.height),
                   FmtDouble(stats.avg_leaf_fill * 32.0, 1)});
    }
  }
  by_n.Print();

  std::cout << "--- sweep 2: dimensionality d (n = "
            << Scaled(16000, 100000) << ") ---\n";
  ResultTable by_d({"d", "index", "build", "bytes", "nodes", "depth/height"});
  for (size_t dims : {4u, 8u, 16u, 32u, 64u}) {
    auto data = GenerateClustered({.n = Scaled(16000, 100000), .dims = dims,
                                   .clusters = 20, .sigma = 0.05,
                                   .seed = 802});
    {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.leaf_threshold = 64;
      Timer timer;
      auto tree = EkdbTree::Build(*data, config);
      const double build = timer.Seconds();
      const auto stats = tree->ComputeStats();
      by_d.AddRow({std::to_string(dims), "ekdb", FmtSecs(build),
                   std::to_string(stats.memory_bytes),
                   std::to_string(stats.nodes),
                   std::to_string(stats.max_depth)});
      timer.Restart();
      auto flat = FlatEkdbTree::FromTree(*tree);
      const double flatten = timer.Seconds();
      by_d.AddRow({std::to_string(dims), "ekdb-flat", FmtSecs(flatten),
                   std::to_string(flat->total_bytes()),
                   std::to_string(flat->num_nodes()),
                   std::to_string(stats.max_depth)});
    }
    {
      Timer timer;
      auto tree = RTree::BulkLoad(*data, RTreeConfig{});
      const double build = timer.Seconds();
      const auto stats = tree->ComputeStats();
      by_d.AddRow({std::to_string(dims), "rtree", FmtSecs(build),
                   std::to_string(stats.memory_bytes),
                   std::to_string(stats.nodes), std::to_string(stats.height)});
    }
  }
  by_d.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
