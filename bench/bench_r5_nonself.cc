// Experiment R5 — non-self (two-dataset) joins.
//
// Joins two clustered datasets whose cluster centres are displaced by a
// controlled shift.  Shift 0 means the datasets overlap heavily (large
// output); larger shifts make the join increasingly selective.  Expected
// shape: the eps-k-d-B two-tree join tracks its self-join behaviour and
// beats the R-tree x R-tree join and brute force at every shift; all
// indexed methods get faster as the overlap (and output) shrinks while
// brute force stays flat.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

Dataset ShiftDataset(const Dataset& base, float shift) {
  Dataset out = base;
  for (size_t i = 0; i < out.size(); ++i) {
    float* row = out.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < out.dims(); ++d) {
      row[d] = std::min(1.0f, std::max(0.0f, row[d] + shift));
    }
  }
  return out;
}

void Main() {
  PrintExperimentHeader(
      "R5", "two-dataset join cost vs dataset overlap",
      "eps-k-d-B two-tree join fastest at every overlap; indexed joins speed "
      "up as overlap shrinks; brute force is flat");
  const size_t n = Scaled(6000, 60000);
  const size_t dims = 8;
  const double epsilon = 0.05;
  const size_t brute_cap = Scaled(6000, 20000);

  auto a = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 16, .sigma = 0.05, .seed = 501});

  ResultTable table({"shift", "algorithm", "build", "join", "total", "pairs"});
  for (float shift : {0.0f, 0.02f, 0.05f, 0.1f, 0.3f}) {
    const Dataset b = ShiftDataset(*a, shift);
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    std::vector<RunResult> runs;
    runs.push_back(RunEkdbCross(*a, b, config));
    runs.push_back(RunRtreeCross(*a, b, epsilon, Metric::kL2));
    if (n <= brute_cap) {
      runs.push_back(RunNestedLoopCross(*a, b, epsilon, Metric::kL2));
    }
    for (const auto& r : runs) {
      table.AddRow({FmtDouble(shift, 2), r.algorithm, FmtSecs(r.build_seconds),
                    FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                    std::to_string(r.pairs)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
