// R19: query-service throughput and latency over loopback TCP.
//
// Starts the similarity-join server in-process on an ephemeral loopback
// port, builds a uniform d=16 index through the wire, then runs a
// closed-loop load generator: each client thread owns one connection and
// keeps one batched range-query request in flight at all times.  Reports
// sustained queries/sec (batch size x requests/sec), request latency
// percentiles, and the server's admission-control counters.  The admission
// gate is sized to the offered load (max-inflight = clients), so the run
// exercises the gate without spending the benchmark window in retry sleeps.
//
//   ./bench/bench_r19_service
//   ./bench/bench_r19_service --clients 4 --seconds 5 --batch 128
//
// Emits a `# SERVICE_JSON {...}` line for scripts/check_bench_regression.sh.

#include <algorithm>
#include <atomic>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/timer.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

struct ClientResult {
  std::vector<double> latencies_us;
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t errors = 0;
  bool connected = false;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted->size() - 1)));
  return (*sorted)[idx];
}

int Run(const ArgParser& args) {
  const size_t n = static_cast<size_t>(args.GetInt("n"));
  const size_t dims = static_cast<size_t>(args.GetInt("dims"));
  const size_t batch = static_cast<size_t>(args.GetInt("batch"));
  const size_t clients = static_cast<size_t>(args.GetInt("clients"));
  const double seconds = args.GetDouble("seconds");
  const double epsilon = args.GetDouble("epsilon");

  ServerConfig server_config;
  server_config.max_inflight =
      static_cast<size_t>(args.GetInt("max-inflight")) != 0
          ? static_cast<size_t>(args.GetInt("max-inflight"))
          : clients;
  // This bench tracks the per-request dispatch path; the fused path (which
  // trades a wait budget for batch amortisation) has its own bench, r21.
  server_config.fusion_enabled = false;
  auto server = Server::Start(server_config);
  if (!server.ok()) {
    std::cerr << "server start failed: " << server.status().ToString() << "\n";
    return 1;
  }
  const uint16_t port = (*server)->port();

  auto data = GenerateUniform({.n = n, .dims = dims, .seed = 7});
  if (!data.ok()) {
    std::cerr << data.status().ToString() << "\n";
    return 1;
  }

  std::cout << "R19: service loopback load (n=" << n << ", d=" << dims
            << ", L2, eps=" << epsilon << ", batch=" << batch
            << ", clients=" << clients << ", max-inflight="
            << server_config.max_inflight << ")\n"
            << "  cores detected: " << std::thread::hardware_concurrency()
            << " (client threads and server share them; single-core hosts "
               "serialise everything)\n";

  // Build the index through the wire, like a real deployment would.
  {
    ClientConfig cc;
    cc.port = port;
    auto admin = Client::Connect(cc);
    if (!admin.ok()) {
      std::cerr << "connect failed: " << admin.status().ToString() << "\n";
      return 1;
    }
    BuildIndexRequest req;
    req.name = "bench";
    req.config.epsilon = epsilon;
    req.dims = static_cast<uint32_t>(dims);
    req.points = data->flat();
    Timer timer;
    auto built = admin->BuildIndex(req);
    if (!built.ok()) {
      std::cerr << "build failed: " << built.status().ToString() << "\n";
      return 1;
    }
    std::cout << "  index built in " << built->build_seconds << " s ("
              << built->index_bytes << " bytes, upload+build "
              << timer.Seconds() << " s)\n";
  }

  // Closed loop: every client thread keeps exactly one request in flight.
  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t]() {
      ClientResult& r = results[t];
      ClientConfig cc;
      cc.port = port;
      cc.max_retries = 1000;  // absorb backpressure inside the loop
      auto client = Client::Connect(cc);
      if (!client.ok()) return;
      r.connected = true;
      r.latencies_us.reserve(1 << 16);

      RangeQueryRequest req;
      req.name = "bench";
      req.epsilon = epsilon;
      req.dims = static_cast<uint32_t>(dims);
      req.queries.resize(batch * dims);
      size_t cursor = (t * 7919) % data->size();
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t q = 0; q < batch; ++q) {
          std::copy_n(data->Row(static_cast<PointId>(cursor)), dims,
                      req.queries.begin() + static_cast<ptrdiff_t>(q * dims));
          cursor = (cursor + 1) % data->size();
        }
        Timer timer;
        auto resp = client->RangeQuery(req);
        if (!resp.ok()) {
          ++r.errors;
          continue;
        }
        r.latencies_us.push_back(timer.Seconds() * 1e6);
        ++r.requests;
      }
      r.retries = client->retry_count();
    });
  }

  Timer wall;
  while (wall.Seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.Seconds();

  std::vector<double> latencies;
  uint64_t requests = 0, retries = 0, errors = 0, connected = 0;
  for (ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    requests += r.requests;
    retries += r.retries;
    errors += r.errors;
    connected += r.connected ? 1 : 0;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = static_cast<double>(requests * batch) / elapsed;
  const double p50 = Percentile(&latencies, 0.50);
  const double p95 = Percentile(&latencies, 0.95);
  const double p99 = Percentile(&latencies, 0.99);

  const ServerCounters counters = (*server)->counters();
  const uint64_t dropped = clients - connected;

  std::cout << "  " << requests << " requests (" << requests * batch
            << " queries) in " << elapsed << " s\n"
            << "  throughput: " << static_cast<uint64_t>(qps)
            << " queries/s, " << static_cast<uint64_t>(qps / batch)
            << " requests/s\n"
            << "  latency us: p50=" << p50 << " p95=" << p95 << " p99=" << p99
            << "\n"
            << "  backpressure: " << counters.requests_rejected
            << " rejected, " << retries << " client retries\n"
            << "  errors: " << errors << " request, "
            << counters.decode_errors << " decode, " << dropped
            << " dropped connections\n";

  std::ostringstream json;
  json << "{\"bench\":\"r19_service\",\"n\":" << n << ",\"dims\":" << dims
       << ",\"batch\":" << batch << ",\"clients\":" << clients
       << ",\"max_inflight\":" << server_config.max_inflight
       << ",\"seconds\":" << elapsed << ",\"requests\":" << requests
       << ",\"queries\":" << requests * batch << ",\"qps\":" << qps
       << ",\"p50_us\":" << p50 << ",\"p95_us\":" << p95
       << ",\"p99_us\":" << p99 << ",\"client_retries\":" << retries
       << ",\"rejected\":" << counters.requests_rejected
       << ",\"request_errors\":" << errors
       << ",\"decode_errors\":" << counters.decode_errors
       << ",\"dropped_connections\":" << dropped
       << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
       << "}";
  std::cout << "# SERVICE_JSON " << json.str() << "\n";

  (*server)->Shutdown();
  (*server)->Wait();
  return errors == 0 && dropped == 0 ? 0 : 1;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args("R19: similarity-join service loopback benchmark");
  args.AddFlag("n", "100000", "indexed points");
  args.AddFlag("dims", "16", "dimensionality");
  args.AddFlag("epsilon", "0.1", "build + query epsilon (L2)");
  args.AddFlag("batch", "128", "queries per request frame");
  args.AddFlag("clients", "2", "closed-loop client threads");
  args.AddFlag("max-inflight", "0", "admission gate; 0 = clients");
  args.AddFlag("seconds", "3", "measurement window");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(args);
}
