// Experiment R3 — join cost vs dimensionality.
//
// Fixes n and epsilon and sweeps the ambient dimensionality of a clustered
// cloud.  Expected shape: the epsilon grid's 3^d neighbourhood blows up and
// the R-tree's MBR overlap degrades quickly with d; the eps-k-d-B tree,
// which consumes one dimension per level and never enumerates
// cross-products of cells, degrades gracefully and holds its lead at high d
// (the paper's central "high-dimensional" claim).

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R3", "join cost vs dimensionality d",
      "eps-k-d-B degrades gracefully with d; grid and R-tree joins degrade "
      "much faster; brute force is flat-ish in d but quadratic in n");
  const size_t n = Scaled(6000, 50000);
  const double epsilon = 0.1;
  const size_t brute_cap_dims = 64;

  ResultTable table({"d", "algorithm", "build", "join", "total", "pairs"});
  for (size_t dims : {2u, 4u, 8u, 16u, 32u, 64u}) {
    auto data = GenerateClustered({.n = n, .dims = dims, .clusters = 20,
                                   .sigma = 0.05, .seed = 301});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    std::vector<RunResult> runs;
    runs.push_back(RunEkdbSelf(*data, config));
    runs.push_back(RunRtreeSelf(*data, epsilon, Metric::kL2));
    runs.push_back(RunGridSelf(*data, epsilon, Metric::kL2));
    if (dims <= brute_cap_dims) {
      runs.push_back(RunNestedLoopSelf(*data, epsilon, Metric::kL2));
    }
    for (const auto& r : runs) {
      table.AddRow({std::to_string(dims), r.algorithm,
                    FmtSecs(r.build_seconds), FmtSecs(r.join_seconds),
                    FmtSecs(r.total_seconds()), std::to_string(r.pairs)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
