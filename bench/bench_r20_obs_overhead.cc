// Experiment R20 — observability overhead.
//
// The obs layer stays compiled into release hot paths, so its cost with
// collection *disabled* must be near-zero and its cost *enabled* must be
// understood.  This benchmark measures both:
//
//   1. primitive costs: a disabled TraceSpan, Counter::Add,
//      Histogram::Record, and Gauge::Set, in ns/op — and FAILS (exit 1)
//      if the disabled span or a counter add exceeds a hard ceiling, so
//      a regression that sneaks a lock or a shared cache line onto the
//      hot path is caught mechanically, not by eyeballing numbers;
//   2. end-to-end: the flat eps-k-d-B self-join with tracing disabled
//      (the production default — metric histograms still live) vs the
//      same join with a trace being collected, vs the same join with a
//      request-profile collector installed (the EXPLAIN ANALYZE /
//      slow-query-log capture path, docs/observability.md).
//
// Emits a trailing "# OBS_JSON {...}" line consumed by
// scripts/check_bench_regression.sh, which snapshots it into
// BENCH_obs.json.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

/// Keeps the loop body from being collapsed without adding memory traffic.
inline void KeepLoop() { asm volatile("" ::: "memory"); }

/// ns per iteration of `body` over `iters` runs.
template <typename Fn>
double NsPerOp(uint64_t iters, Fn body) {
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    body();
    KeepLoop();
  }
  return timer.Seconds() * 1e9 / static_cast<double>(iters);
}

void Main() {
  PrintExperimentHeader(
      "R20", "observability overhead (metrics + tracing)",
      "disabled spans and counter adds in low single-digit ns; tracing "
      "enabled adds a bounded per-leaf cost");

  // --- 1. Primitive costs -------------------------------------------------
  constexpr uint64_t kIters = 4'000'000;
  obs::MetricRegistry reg;
  obs::Counter* counter = reg.GetCounter("bench.counter");
  obs::Gauge* gauge = reg.GetGauge("bench.gauge");
  obs::Histogram* hist = reg.GetHistogram("bench.hist");

  const double span_disabled_ns =
      NsPerOp(kIters, [] { SIMJOIN_TRACE_SPAN("bench.noop"); });
  const double counter_add_ns = NsPerOp(kIters, [&] { counter->Add(); });
  const double gauge_set_ns =
      NsPerOp(kIters, [&] { gauge->Set(static_cast<int64_t>(7)); });
  uint64_t v = 0;
  const double histogram_record_ns = NsPerOp(kIters, [&] {
    hist->Record(static_cast<double>(v = (v * 2862933555777941757ULL + 3) >> 44));
  });

  ResultTable prim({"primitive", "ns/op"});
  prim.AddRow({"TraceSpan (disabled)", FmtDouble(span_disabled_ns, 2)});
  prim.AddRow({"Counter::Add", FmtDouble(counter_add_ns, 2)});
  prim.AddRow({"Gauge::Set", FmtDouble(gauge_set_ns, 2)});
  prim.AddRow({"Histogram::Record", FmtDouble(histogram_record_ns, 2)});
  prim.Print();

  // --- 2. End-to-end: join with tracing off vs on ------------------------
  const size_t n = Scaled(20000, 100000);
  const size_t dims = 8;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 16, .sigma = 0.05, .seed = 2001});
  EkdbConfig config;
  config.epsilon = 0.1;
  config.metric = Metric::kL2;

  // Two runs each, keep the faster (first run also warms caches).
  double join_plain = 1e100;
  for (int rep = 0; rep < 2; ++rep) {
    join_plain = std::min(join_plain, RunEkdbFlatSelf(*data, config).join_seconds);
  }

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string trace_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/bench_r20.trace.json";
  double join_traced = 1e100;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
  for (int rep = 0; rep < 2; ++rep) {
    if (!obs::StartTracing(trace_path).ok()) {
      std::cout << "could not start tracing; skipping traced run\n";
      break;
    }
    join_traced = std::min(join_traced, RunEkdbFlatSelf(*data, config).join_seconds);
    trace_events = obs::TraceEventCount();
    trace_dropped = obs::TraceDroppedEventCount();
    (void)obs::StopTracing();
  }
  std::remove(trace_path.c_str());

  // Per-request profiling path: a collector raises the shared capture gate
  // and every span records a tree node — the cost one profiled (or
  // slow-logged) request pays while the rest of the fleet stays on the
  // disabled path.
  double join_profiled = 1e100;
  uint64_t profile_nodes = 0;
  uint64_t profile_dropped = 0;
  for (int rep = 0; rep < 2; ++rep) {
    obs::RequestProfileCollector collector(/*trace_id=*/1,
                                           obs::internal::TraceNowNanos());
    const uint32_t root = collector.BeginPhase("bench.join",
                                               obs::kProfileNoParent,
                                               collector.epoch_ns());
    {
      obs::ScopedRequestContext scope(obs::RequestContext{1, &collector, root});
      join_profiled =
          std::min(join_profiled, RunEkdbFlatSelf(*data, config).join_seconds);
    }
    collector.EndPhase(root, obs::internal::TraceNowNanos(), 0);
    const obs::RequestProfile profile =
        collector.Finish(obs::internal::TraceNowNanos());
    profile_nodes = profile.nodes.size();
    profile_dropped = profile.dropped_nodes;
  }

  const double trace_ratio = join_traced < 1e99 ? join_traced / join_plain : 0.0;
  const double profile_ratio =
      join_profiled < 1e99 ? join_profiled / join_plain : 0.0;
  ResultTable e2e({"mode", "join", "ratio", "events"});
  e2e.AddRow({"tracing off", FmtSecs(join_plain), "1.00", "0"});
  e2e.AddRow({"tracing on", FmtSecs(join_traced), FmtDouble(trace_ratio, 2),
              std::to_string(trace_events) +
                  (trace_dropped != 0
                       ? " (+" + std::to_string(trace_dropped) + " dropped)"
                       : "")});
  e2e.AddRow({"profiled request", FmtSecs(join_profiled),
              FmtDouble(profile_ratio, 2),
              std::to_string(profile_nodes) + " nodes" +
                  (profile_dropped != 0
                       ? " (+" + std::to_string(profile_dropped) + " dropped)"
                       : "")});
  e2e.Print();

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::cout << "\n# OBS_JSON {"
            << "\"hardware_concurrency\": " << hw << ", \"n\": " << n
            << ", \"dims\": " << dims
            << ", \"span_disabled_ns\": " << FmtDouble(span_disabled_ns, 3)
            << ", \"counter_add_ns\": " << FmtDouble(counter_add_ns, 3)
            << ", \"gauge_set_ns\": " << FmtDouble(gauge_set_ns, 3)
            << ", \"histogram_record_ns\": " << FmtDouble(histogram_record_ns, 3)
            << ", \"join_seconds_plain\": " << FmtDouble(join_plain, 5)
            << ", \"join_seconds_traced\": " << FmtDouble(join_traced, 5)
            << ", \"traced_over_plain_ratio\": " << FmtDouble(trace_ratio, 3)
            << ", \"trace_events\": " << trace_events
            << ", \"trace_dropped\": " << trace_dropped
            << ", \"join_seconds_profiled\": " << FmtDouble(join_profiled, 5)
            << ", \"profiled_over_plain_ratio\": " << FmtDouble(profile_ratio, 3)
            << ", \"profile_nodes\": " << profile_nodes
            << ", \"profile_dropped\": " << profile_dropped << "}\n";

  // --- 3. Hard assertion: disabled instrumentation is near-zero ----------
  // Generous ceilings (a contended mutex or shared-line bounce costs far
  // more than this even on slow hardware); a clean run is single-digit ns.
  constexpr double kMaxDisabledNs = 100.0;
  bool ok = true;
  if (span_disabled_ns > kMaxDisabledNs) {
    std::cout << "FAIL: disabled TraceSpan costs " << span_disabled_ns
              << " ns/op (ceiling " << kMaxDisabledNs << ")\n";
    ok = false;
  }
  if (counter_add_ns > kMaxDisabledNs) {
    std::cout << "FAIL: Counter::Add costs " << counter_add_ns
              << " ns/op (ceiling " << kMaxDisabledNs << ")\n";
    ok = false;
  }
  if (histogram_record_ns > 4 * kMaxDisabledNs) {
    std::cout << "FAIL: Histogram::Record costs " << histogram_record_ns
              << " ns/op (ceiling " << 4 * kMaxDisabledNs << ")\n";
    ok = false;
  }
  std::cout << (ok ? "overhead assertion: PASS\n"
                   : "overhead assertion: FAIL\n");
  if (!ok) std::exit(1);
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
