// Experiment R4 — robustness to data skew.
//
// Real feature data is clustered, not uniform; the paper stresses that its
// index keeps its advantage under skew.  Two sweeps: the number of clusters
// (fewer clusters = heavier skew at fixed n) and the cluster spread sigma.
// Expected shape: the eps-k-d-B tree stays ahead of the R-tree join across
// the whole skew range; both get slower as skew concentrates points (the
// output and local density grow), but the R-tree suffers more because its
// MBRs overlap heavily inside dense regions.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R4", "join cost vs data skew (cluster count and spread)",
      "eps-k-d-B keeps its lead across the skew range; R-tree degrades more "
      "in dense regions");
  const size_t n = Scaled(8000, 80000);
  const size_t dims = 8;
  const double epsilon = 0.05;

  std::cout << "--- sweep 1: number of clusters (sigma = 0.05) ---\n";
  ResultTable by_clusters({"clusters", "algorithm", "total", "pairs",
                           "candidates"});
  for (size_t clusters : {1u, 4u, 16u, 64u, 256u}) {
    auto data = GenerateClustered({.n = n, .dims = dims, .clusters = clusters,
                                   .sigma = 0.05, .seed = 401});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    for (const auto& r :
         {RunEkdbSelf(*data, config),
          RunRtreeSelf(*data, epsilon, Metric::kL2)}) {
      by_clusters.AddRow({std::to_string(clusters), r.algorithm,
                          FmtSecs(r.total_seconds()), std::to_string(r.pairs),
                          std::to_string(r.stats.candidate_pairs)});
    }
  }
  by_clusters.Print();

  std::cout << "--- sweep 2: cluster spread sigma (clusters = 16) ---\n";
  ResultTable by_sigma({"sigma", "algorithm", "total", "pairs", "candidates"});
  for (double sigma : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    auto data = GenerateClustered(
        {.n = n, .dims = dims, .clusters = 16, .sigma = sigma, .seed = 402});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    for (const auto& r :
         {RunEkdbSelf(*data, config),
          RunRtreeSelf(*data, epsilon, Metric::kL2)}) {
      by_sigma.AddRow({FmtDouble(sigma, 2), r.algorithm,
                       FmtSecs(r.total_seconds()), std::to_string(r.pairs),
                       std::to_string(r.stats.candidate_pairs)});
    }
  }
  by_sigma.Print();

  std::cout << "--- sweep 3: Zipf-skewed cluster sizes (16 clusters) ---\n";
  ResultTable by_zipf({"zipf_s", "algorithm", "total", "pairs"});
  for (double s : {0.0, 0.5, 1.0, 1.5}) {
    auto data = GenerateClustered({.n = n, .dims = dims, .clusters = 16,
                                   .sigma = 0.05, .zipf_skew = s, .seed = 403});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    for (const auto& r :
         {RunEkdbSelf(*data, config),
          RunRtreeSelf(*data, epsilon, Metric::kL2)}) {
      by_zipf.AddRow({FmtDouble(s, 1), r.algorithm, FmtSecs(r.total_seconds()),
                      std::to_string(r.pairs)});
    }
  }
  by_zipf.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
