#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/args.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/timer.h"

namespace simjoin {
namespace bench {

namespace {
size_t g_bench_threads = 0;  // 0 = hardware_concurrency
}  // namespace

bool InitBenchArgs(int argc, const char* const* argv) {
  ArgParser parser(
      "Shared benchmark flags (sizes scale via SIMJOIN_BENCH_SCALE=large).");
  parser.AddFlag("threads", "0",
                 "worker threads for parallel build/join runs "
                 "(0 = hardware concurrency)");
  const Status st = parser.Parse(argc, argv);
  if (parser.help_requested()) {
    std::cout << parser.Help();
    return false;
  }
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << parser.Help();
    return false;
  }
  const int64_t threads = parser.GetInt("threads");
  if (threads < 0) {
    std::cerr << "--threads must be >= 0\n";
    return false;
  }
  g_bench_threads = static_cast<size_t>(threads);
  return true;
}

size_t BenchThreads() { return g_bench_threads; }

bool LargeScale() {
  const char* env = std::getenv("SIMJOIN_BENCH_SCALE");
  return env != nullptr && std::string(env) == "large";
}

size_t Scaled(size_t normal, size_t large) {
  return LargeScale() ? large : normal;
}

RunResult RunEkdbSelf(const Dataset& data, const EkdbConfig& config) {
  RunResult result;
  result.algorithm = "ekdb";
  Timer timer;
  auto tree = EkdbTree::Build(data, config);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = tree->ComputeStats().memory_bytes;
  CountingSink sink;
  timer.Restart();
  const Status st = EkdbSelfJoin(*tree, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunEkdbCross(const Dataset& a, const Dataset& b,
                       const EkdbConfig& config) {
  RunResult result;
  result.algorithm = "ekdb";
  Timer timer;
  auto ta = EkdbTree::Build(a, config);
  auto tb = EkdbTree::Build(b, config);
  SIMJOIN_CHECK(ta.ok() && tb.ok());
  result.build_seconds = timer.Seconds();
  result.memory_bytes =
      ta->ComputeStats().memory_bytes + tb->ComputeStats().memory_bytes;
  CountingSink sink;
  timer.Restart();
  const Status st = EkdbJoin(*ta, *tb, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunEkdbParallel(const Dataset& data, const EkdbConfig& config,
                          size_t threads) {
  RunResult result;
  result.algorithm = "ekdb-parallel-" + std::to_string(threads);
  Timer timer;
  auto tree = EkdbTree::BuildParallel(data, config, threads);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = tree->ComputeStats().memory_bytes;
  ParallelJoinConfig pcfg;
  pcfg.num_threads = threads;
  CountingSink sink;
  timer.Restart();
  const Status st = ParallelEkdbSelfJoin(*tree, pcfg, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunEkdbFlatSelf(const Dataset& data, const EkdbConfig& config) {
  RunResult result;
  result.algorithm = "ekdb-flat";
  Timer timer;
  auto tree = EkdbTree::Build(data, config);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  auto flat = FlatEkdbTree::FromTree(*tree);
  SIMJOIN_CHECK(flat.ok()) << flat.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = flat->total_bytes();
  CountingSink sink;
  timer.Restart();
  const Status st = FlatEkdbSelfJoin(*flat, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunEkdbFlatCross(const Dataset& a, const Dataset& b,
                           const EkdbConfig& config) {
  RunResult result;
  result.algorithm = "ekdb-flat";
  Timer timer;
  auto ta = EkdbTree::Build(a, config);
  auto tb = EkdbTree::Build(b, config);
  SIMJOIN_CHECK(ta.ok() && tb.ok());
  auto fa = FlatEkdbTree::FromTree(*ta);
  auto fb = FlatEkdbTree::FromTree(*tb);
  SIMJOIN_CHECK(fa.ok() && fb.ok());
  result.build_seconds = timer.Seconds();
  result.memory_bytes = fa->total_bytes() + fb->total_bytes();
  CountingSink sink;
  timer.Restart();
  const Status st = FlatEkdbJoin(*fa, *fb, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunEkdbFlatParallel(const Dataset& data, const EkdbConfig& config,
                              size_t threads) {
  RunResult result;
  result.algorithm = "ekdb-flat-parallel-" + std::to_string(threads);
  Timer timer;
  auto tree = EkdbTree::BuildParallel(data, config, threads);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  auto flat = FlatEkdbTree::FromTree(*tree, threads);
  SIMJOIN_CHECK(flat.ok()) << flat.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = flat->total_bytes();
  ParallelJoinConfig pcfg;
  pcfg.num_threads = threads;
  CountingSink sink;
  timer.Restart();
  const Status st = ParallelFlatEkdbSelfJoin(*flat, pcfg, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunRtreeSelf(const Dataset& data, double epsilon, Metric metric,
                       const RTreeConfig& config) {
  RunResult result;
  result.algorithm = "rtree";
  Timer timer;
  auto tree = RTree::BulkLoad(data, config);
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = tree->ComputeStats().memory_bytes;
  CountingSink sink;
  timer.Restart();
  const Status st = RTreeSelfJoin(*tree, epsilon, &sink, metric, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunRtreeCross(const Dataset& a, const Dataset& b, double epsilon,
                        Metric metric, const RTreeConfig& config) {
  RunResult result;
  result.algorithm = "rtree";
  Timer timer;
  auto ta = RTree::BulkLoad(a, config);
  auto tb = RTree::BulkLoad(b, config);
  SIMJOIN_CHECK(ta.ok() && tb.ok());
  result.build_seconds = timer.Seconds();
  result.memory_bytes =
      ta->ComputeStats().memory_bytes + tb->ComputeStats().memory_bytes;
  CountingSink sink;
  timer.Restart();
  const Status st = RTreeJoin(*ta, *tb, epsilon, &sink, metric, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunKdTreeSelf(const Dataset& data, double epsilon, Metric metric) {
  RunResult result;
  result.algorithm = "kdtree";
  Timer timer;
  auto tree = KdTree::Build(data, KdTreeConfig{});
  SIMJOIN_CHECK(tree.ok()) << tree.status().ToString();
  result.build_seconds = timer.Seconds();
  result.memory_bytes = tree->ComputeStats().memory_bytes;
  CountingSink sink;
  timer.Restart();
  const Status st = KdTreeSelfJoin(*tree, epsilon, metric, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunGridSelf(const Dataset& data, double epsilon, Metric metric,
                      const GridJoinConfig& config) {
  RunResult result;
  result.algorithm = "grid";
  CountingSink sink;
  Timer timer;
  const Status st = GridSelfJoin(data, epsilon, metric, config, &sink,
                                 &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunSortMergeSelf(const Dataset& data, double epsilon, Metric metric) {
  RunResult result;
  result.algorithm = "sort-merge";
  CountingSink sink;
  Timer timer;
  const Status st = SortMergeSelfJoin(data, epsilon, metric, SortMergeConfig{},
                                      &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunNestedLoopSelf(const Dataset& data, double epsilon, Metric metric) {
  RunResult result;
  result.algorithm = "nested-loop";
  CountingSink sink;
  Timer timer;
  const Status st =
      NestedLoopSelfJoin(data, epsilon, metric, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

RunResult RunNestedLoopCross(const Dataset& a, const Dataset& b, double epsilon,
                             Metric metric) {
  RunResult result;
  result.algorithm = "nested-loop";
  CountingSink sink;
  Timer timer;
  const Status st = NestedLoopJoin(a, b, epsilon, metric, &sink, &result.stats);
  SIMJOIN_CHECK(st.ok()) << st.ToString();
  result.join_seconds = timer.Seconds();
  result.pairs = sink.count();
  return result;
}

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  SIMJOIN_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void ResultTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);

  os << "\n# CSV\n# ";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ",";
    os << headers_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "# ";
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  }
  os << "\n";
}

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=================\n";
  std::cout << "Experiment " << id << ": " << title << "\n";
  std::cout << "Expected shape: " << paper_claim << "\n";
  std::cout << "Scale: " << (LargeScale() ? "large (paper-scale)" : "default")
            << "   [set SIMJOIN_BENCH_SCALE=large for paper-scale runs]\n";
  std::cout << "==============================================================="
               "=================\n\n";
}

std::string FmtSecs(double seconds) { return FormatSeconds(seconds); }

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::vector<uint32_t> VarianceDescendingOrder(const Dataset& data) {
  std::vector<double> variances(data.dims());
  for (uint32_t d = 0; d < data.dims(); ++d) {
    RunningStats col;
    for (size_t i = 0; i < data.size(); ++i) {
      col.Add(data.Row(static_cast<PointId>(i))[d]);
    }
    variances[d] = col.variance();
  }
  std::vector<uint32_t> order(data.dims());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&variances](uint32_t a, uint32_t b) {
    return variances[a] > variances[b];
  });
  return order;
}

}  // namespace bench
}  // namespace simjoin
