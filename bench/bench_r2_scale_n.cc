// Experiment R2 — scalability in the number of points.
//
// Doubles the dataset size at fixed epsilon and dimensionality.  Expected
// shape: brute force grows quadratically; the eps-k-d-B tree grows
// near-linearly in n (plus output), so its speedup over brute force and the
// R-tree join widens as n grows.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R2", "join cost vs dataset cardinality n",
      "brute force scales ~n^2; eps-k-d-B near-linear; the gap widens with n");
  const size_t dims = 8;
  const double epsilon = 0.05;
  const size_t max_n = Scaled(32000, 256000);
  const size_t brute_cap = Scaled(8000, 32000);

  ResultTable table({"n", "algorithm", "build", "join", "total", "pairs"});
  for (size_t n = 2000; n <= max_n; n *= 2) {
    auto data = GenerateClustered(
        {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 201});
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    std::vector<RunResult> runs;
    runs.push_back(RunEkdbSelf(*data, config));
    runs.push_back(RunRtreeSelf(*data, epsilon, Metric::kL2));
    runs.push_back(RunKdTreeSelf(*data, epsilon, Metric::kL2));
    runs.push_back(RunSortMergeSelf(*data, epsilon, Metric::kL2));
    if (n <= brute_cap) {
      runs.push_back(RunNestedLoopSelf(*data, epsilon, Metric::kL2));
    }
    for (const auto& r : runs) {
      table.AddRow({std::to_string(n), r.algorithm, FmtSecs(r.build_seconds),
                    FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                    std::to_string(r.pairs)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
