// Experiment R7 — leaf-threshold ablation.
//
// The eps-k-d-B tree's only capacity knob: how many points a node may hold
// before it splits.  Expected shape: a U-curve — tiny leaves inflate build
// time and traversal overhead, huge leaves degrade the join towards
// quadratic within-leaf work; a broad optimum sits in the tens-to-hundreds
// (the paper's page-sized leaves).

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R7", "eps-k-d-B leaf threshold ablation",
      "U-shaped total time: overhead-dominated at tiny leaves, quadratic "
      "leaf joins at huge leaves, broad optimum in between");
  const size_t n = Scaled(16000, 120000);
  const size_t dims = 8;
  const double epsilon = 0.05;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 701});

  ResultTable table({"leaf_threshold", "build", "join", "total", "pairs",
                     "candidates", "tree_nodes_bytes"});
  for (size_t threshold : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = threshold;
    const RunResult r = RunEkdbSelf(*data, config);
    table.AddRow({std::to_string(threshold), FmtSecs(r.build_seconds),
                  FmtSecs(r.join_seconds), FmtSecs(r.total_seconds()),
                  std::to_string(r.pairs),
                  std::to_string(r.stats.candidate_pairs),
                  std::to_string(r.memory_bytes)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
