// Experiment R9 — metric sensitivity.
//
// Runs the same clustered workload under L1, L2, and L-infinity at several
// radii.  Expected shape: for a fixed epsilon the result set grows from L1
// (tightest ball) through L2 to L-infinity (largest ball); the eps-k-d-B
// tree stays exact and fast under all three because the stripe grid is a
// sound filter for every L_p.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R9", "join behaviour across L1 / L2 / L-inf metrics",
      "for fixed eps, pairs(L1) <= pairs(L2) <= pairs(Linf); eps-k-d-B beats "
      "brute force under every metric");
  const size_t n = Scaled(8000, 60000);
  const size_t dims = 8;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 901});

  ResultTable table({"metric", "epsilon", "algorithm", "total", "pairs"});
  for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    for (double epsilon : {0.02, 0.05, 0.10}) {
      EkdbConfig config;
      config.epsilon = epsilon;
      config.metric = metric;
      config.leaf_threshold = 64;
      for (const auto& r : {RunEkdbSelf(*data, config),
                            RunNestedLoopSelf(*data, epsilon, metric)}) {
        table.AddRow({MetricName(metric), FmtDouble(epsilon, 2), r.algorithm,
                      FmtSecs(r.total_seconds()), std::to_string(r.pairs)});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
