// Experiment R12 — micro-kernels (google-benchmark).
//
// The primitive costs everything else is built from: distance kernels per
// metric and dimensionality (full vs early-exit), stripe indexing, tree
// builds, and leaf sweeps.  These are throughput numbers, not figure
// reproductions; they calibrate the absolute scale of R1..R11.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/kdtree.h"
#include "common/metric.h"
#include "common/simd_kernel.h"
#include "core/ekdb_tree.h"
#include "rtree/rtree.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

Dataset MakePoints(size_t n, size_t dims, uint64_t seed) {
  return *GenerateUniform({.n = n, .dims = dims, .seed = seed});
}

void BM_FullDistance(benchmark::State& state) {
  const auto metric = static_cast<Metric>(state.range(0));
  const size_t dims = static_cast<size_t>(state.range(1));
  const Dataset data = MakePoints(1024, dims, 1);
  DistanceKernel kernel(metric);
  size_t i = 0;
  for (auto _ : state) {
    const PointId a = static_cast<PointId>(i % 1024);
    const PointId b = static_cast<PointId>((i * 7 + 1) % 1024);
    benchmark::DoNotOptimize(kernel.Distance(data.Row(a), data.Row(b), dims));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FullDistance)
    ->ArgsProduct({{static_cast<long>(Metric::kL1), static_cast<long>(Metric::kL2),
                    static_cast<long>(Metric::kLinf)},
                   {4, 16, 64}});

void BM_WithinEpsilonEarlyExit(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const double eps = 0.05;  // selective: most tests exit early
  const Dataset data = MakePoints(1024, dims, 2);
  DistanceKernel kernel(Metric::kL2);
  size_t i = 0;
  for (auto _ : state) {
    const PointId a = static_cast<PointId>(i % 1024);
    const PointId b = static_cast<PointId>((i * 13 + 3) % 1024);
    benchmark::DoNotOptimize(
        kernel.WithinEpsilon(data.Row(a), data.Row(b), dims, eps));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WithinEpsilonEarlyExit)->Arg(4)->Arg(16)->Arg(64);

// --- Batch kernel filter: scalar reference vs the tiled SIMD layer. ---
//
// Both variants filter the same tile of kTileCapacity candidate rows against
// one query point per iteration; items processed = candidate tests, so the
// items/s ratio between BM_KernelFilterBatch and BM_KernelFilterScalar is
// the kernel-filter speedup the join hot paths inherit.

constexpr size_t kFilterTile = BatchDistanceKernel::kTileCapacity;

struct FilterFixture {
  Dataset data;
  std::vector<const float*> rows;
  FilterFixture(size_t dims, uint64_t seed) : data(MakePoints(1024, dims, seed)) {
    rows.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      rows.push_back(data.Row(static_cast<PointId>(i)));
    }
  }
};

void BM_KernelFilterScalar(benchmark::State& state) {
  const auto metric = static_cast<Metric>(state.range(0));
  const size_t dims = static_cast<size_t>(state.range(1));
  const double eps = 0.5;  // selective at d >= 16, so the scalar baseline
                           // keeps its early-exit advantage
  const FilterFixture fx(dims, 11);
  DistanceKernel kernel(metric);
  uint8_t mask[kFilterTile];
  size_t base = 0;
  for (auto _ : state) {
    const float* query = fx.rows[base % 1024];
    const float* const* tile = fx.rows.data() + (base * 7 + 1) % (1024 - kFilterTile);
    size_t kept = 0;
    for (size_t i = 0; i < kFilterTile; ++i) {
      mask[i] = kernel.WithinEpsilon(query, tile[i], dims, eps) ? 1 : 0;
      kept += mask[i];
    }
    benchmark::DoNotOptimize(kept);
    ++base;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFilterTile));
}
BENCHMARK(BM_KernelFilterScalar)
    ->ArgsProduct({{static_cast<long>(Metric::kL1), static_cast<long>(Metric::kL2),
                    static_cast<long>(Metric::kLinf)},
                   {4, 16, 64}});

void BM_KernelFilterBatch(benchmark::State& state) {
  const auto metric = static_cast<Metric>(state.range(0));
  const size_t dims = static_cast<size_t>(state.range(1));
  const double eps = 0.5;
  const FilterFixture fx(dims, 11);
  BatchDistanceKernel kernel(metric, dims, eps);
  uint8_t mask[kFilterTile];
  size_t base = 0;
  for (auto _ : state) {
    const float* query = fx.rows[base % 1024];
    const float* const* tile = fx.rows.data() + (base * 7 + 1) % (1024 - kFilterTile);
    benchmark::DoNotOptimize(
        kernel.FilterWithinEpsilon(query, tile, kFilterTile, mask));
    ++base;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFilterTile));
  state.counters["simd_batches"] = static_cast<double>(kernel.simd_batches());
  state.counters["scalar_fallbacks"] =
      static_cast<double>(kernel.scalar_fallbacks());
}
BENCHMARK(BM_KernelFilterBatch)
    ->ArgsProduct({{static_cast<long>(Metric::kL1), static_cast<long>(Metric::kL2),
                    static_cast<long>(Metric::kLinf)},
                   {4, 16, 64}});

// Strided variant: candidates are consecutive rows of a packed arena
// (base + i * stride), the layout the flat eps-k-d-B leaf arena feeds the
// kernels.  Compare items/s against BM_KernelFilterBatch to isolate the
// gather-elimination + prefetch win of the flat layout.
void BM_KernelFilterStrided(benchmark::State& state) {
  const auto metric = static_cast<Metric>(state.range(0));
  const size_t dims = static_cast<size_t>(state.range(1));
  const double eps = 0.5;
  const FilterFixture fx(dims, 11);
  BatchDistanceKernel kernel(metric, dims, eps);
  uint8_t mask[kFilterTile];
  size_t base = 0;
  for (auto _ : state) {
    const float* query = fx.rows[base % 1024];
    const size_t start = (base * 7 + 1) % (1024 - kFilterTile);
    const float* tile = fx.rows[start];
    benchmark::DoNotOptimize(kernel.FilterWithinEpsilonStrided(
        query, tile, dims, kFilterTile, mask, tile + kFilterTile * dims));
    ++base;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFilterTile));
  state.counters["simd_batches"] = static_cast<double>(kernel.simd_batches());
}
BENCHMARK(BM_KernelFilterStrided)
    ->ArgsProduct({{static_cast<long>(Metric::kL1), static_cast<long>(Metric::kL2),
                    static_cast<long>(Metric::kLinf)},
                   {4, 16, 64}});

// Portable (auto-vectorized baseline ISA) variant, so the bench JSON also
// separates "float batching" from "AVX2 dispatch" gains.
void BM_KernelFilterPortable(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const double eps = 0.5;
  const FilterFixture fx(dims, 11);
  BatchDistanceKernel kernel(Metric::kL2, dims, eps, KernelPath::kPortable);
  uint8_t mask[kFilterTile];
  size_t base = 0;
  for (auto _ : state) {
    const float* query = fx.rows[base % 1024];
    const float* const* tile = fx.rows.data() + (base * 7 + 1) % (1024 - kFilterTile);
    benchmark::DoNotOptimize(
        kernel.FilterWithinEpsilon(query, tile, kFilterTile, mask));
    ++base;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFilterTile));
}
BENCHMARK(BM_KernelFilterPortable)->Arg(4)->Arg(16)->Arg(64);

void BM_EkdbBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset data = MakePoints(n, 8, 3);
  EkdbConfig config;
  config.epsilon = 0.05;
  config.leaf_threshold = 64;
  for (auto _ : state) {
    auto tree = EkdbTree::Build(data, config);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_EkdbBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RtreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset data = MakePoints(n, 8, 4);
  for (auto _ : state) {
    auto tree = RTree::BulkLoad(data, RTreeConfig{});
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RtreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_KdTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset data = MakePoints(n, 8, 6);
  for (auto _ : state) {
    auto tree = KdTree::Build(data, KdTreeConfig{});
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_EkdbRangeQuery(benchmark::State& state) {
  const Dataset data = MakePoints(20000, 8, 7);
  EkdbConfig config;
  config.epsilon = 0.05;
  auto tree = EkdbTree::Build(data, config);
  std::vector<PointId> hits;
  size_t i = 0;
  for (auto _ : state) {
    hits.clear();
    benchmark::DoNotOptimize(
        tree->RangeQuery(data.Row(static_cast<PointId>(i % data.size())),
                         0.05, &hits));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EkdbRangeQuery);

void BM_EkdbInsert(benchmark::State& state) {
  Dataset data = MakePoints(20000, 8, 8);
  EkdbConfig config;
  config.epsilon = 0.05;
  auto tree = EkdbTree::Build(data, config);
  // Cycle removals + inserts so the tree size stays constant.
  PointId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Remove(id));
    benchmark::DoNotOptimize(tree->Insert(id));
    id = static_cast<PointId>((id + 1) % data.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EkdbInsert);

void BM_StripeIndex(benchmark::State& state) {
  const Dataset data = MakePoints(2, 2, 5);
  EkdbConfig config;
  config.epsilon = 0.03;
  auto tree = EkdbTree::Build(data, config);
  float v = 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->StripeIndex(v));
    v += 0.001f;
    if (v > 1.0f) v = 0.0f;
  }
}
BENCHMARK(BM_StripeIndex);

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  // benchmark::Initialize consumes the --benchmark_* flags first, leaving the
  // shared bench flags (--threads) for InitBenchArgs.
  benchmark::Initialize(&argc, argv);
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
