// Experiment R11 — parallel join and build scaling.
//
// Sweeps the work-stealing parallel flat self-join and the parallel tree
// construction (BuildParallel + parallel FromTree) over thread counts
// 1..max, against sequential baselines.  Expected shape on multi-core
// hardware: near-linear join speedup until tasks or memory bandwidth run
// out, with build scaling limited by the sequential partition prefix.  On a
// single-core host (like this repo's reference environment) the experiment
// instead documents the decomposition overhead: all thread counts take
// about as long as the sequential runs.
//
// Emits a trailing "# PARALLEL_JSON {...}" line consumed by
// scripts/check_bench_regression.sh, which snapshots it into
// BENCH_parallel.json.

#include <algorithm>
#include <sstream>
#include <thread>

#include "bench_util.h"
#include "core/ekdb_flat.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R11", "parallel eps-k-d-B join + build scaling",
      "near-linear join speedup with cores; on a single-core host, constant "
      "time + small task overhead");
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t max_threads = BenchThreads() != 0 ? BenchThreads() : hw;
  std::cout << "hardware_concurrency = " << hw
            << ", sweeping threads 1.." << max_threads << "\n\n";

  // The acceptance configuration: d=16, n=100k, L2, clustered data.
  const size_t n = Scaled(100000, 400000);
  const size_t dims = 16;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 1101});
  EkdbConfig config;
  config.epsilon = 0.1;
  config.metric = Metric::kL2;
  config.leaf_threshold = 64;

  // Sequential baselines: flat self-join, and pointer build + flatten.
  const RunResult seq = RunEkdbFlatSelf(*data, config);

  ResultTable table({"threads", "build", "build_speedup", "join",
                     "join_speedup", "efficiency", "pairs"});
  table.AddRow({"seq", FmtSecs(seq.build_seconds), "1.00",
                FmtSecs(seq.join_seconds), "1.00", "-",
                std::to_string(seq.pairs)});

  std::vector<size_t> threads_axis;
  std::vector<double> join_secs;
  std::vector<double> join_speedups;
  std::vector<double> build_secs;
  std::vector<double> build_speedups;
  double best_join_speedup = 0.0;
  for (size_t threads = 1; threads <= max_threads; ++threads) {
    const RunResult r = RunEkdbFlatParallel(*data, config, threads);
    const double join_speedup = seq.join_seconds / r.join_seconds;
    const double build_speedup = seq.build_seconds / r.build_seconds;
    best_join_speedup = std::max(best_join_speedup, join_speedup);
    threads_axis.push_back(threads);
    join_secs.push_back(r.join_seconds);
    join_speedups.push_back(join_speedup);
    build_secs.push_back(r.build_seconds);
    build_speedups.push_back(build_speedup);
    table.AddRow({std::to_string(threads), FmtSecs(r.build_seconds),
                  FmtDouble(build_speedup, 2), FmtSecs(r.join_seconds),
                  FmtDouble(join_speedup, 2),
                  FmtDouble(join_speedup / static_cast<double>(threads), 2),
                  std::to_string(r.pairs)});
  }
  table.Print();

  auto join_list = [](const std::vector<double>& v) {
    std::ostringstream os;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i != 0) os << ", ";
      os << FmtDouble(v[i], 4);
    }
    return os.str();
  };
  std::ostringstream threads_list;
  for (size_t i = 0; i < threads_axis.size(); ++i) {
    if (i != 0) threads_list << ", ";
    threads_list << threads_axis[i];
  }
  std::cout << "\n# PARALLEL_JSON {"
            << "\"hardware_concurrency\": " << hw << ", \"n\": " << n
            << ", \"dims\": " << dims << ", \"metric\": \"L2\""
            << ", \"epsilon\": " << FmtDouble(config.epsilon, 3)
            << ", \"pairs\": " << seq.pairs
            << ", \"seq_join_seconds\": " << FmtDouble(seq.join_seconds, 4)
            << ", \"seq_build_seconds\": " << FmtDouble(seq.build_seconds, 4)
            << ", \"threads\": [" << threads_list.str() << "]"
            << ", \"join_seconds\": [" << join_list(join_secs) << "]"
            << ", \"join_speedup\": [" << join_list(join_speedups) << "]"
            << ", \"build_seconds\": [" << join_list(build_secs) << "]"
            << ", \"build_speedup\": [" << join_list(build_speedups) << "]"
            << ", \"best_join_speedup\": " << FmtDouble(best_join_speedup, 3)
            << "}\n";
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
