// Experiment R11 — parallel join extension.
//
// Runs the task-decomposed eps-k-d-B self-join at increasing thread counts.
// Expected shape on multi-core hardware: near-linear speedup until tasks or
// memory bandwidth run out.  On a single-core host (like this repo's
// reference environment) the experiment instead documents the decomposition
// overhead: all thread counts take about as long as the sequential join.

#include <thread>

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R11", "parallel eps-k-d-B self-join scaling",
      "near-linear speedup with cores; on a single-core host, constant time "
      "+ small task overhead");
  std::cout << "hardware_concurrency = " << std::thread::hardware_concurrency()
            << "\n\n";
  const size_t n = Scaled(20000, 150000);
  const size_t dims = 8;
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 1101});
  EkdbConfig config;
  config.epsilon = 0.05;
  config.leaf_threshold = 64;

  const RunResult sequential = RunEkdbSelf(*data, config);

  ResultTable table({"threads", "join", "speedup_vs_sequential", "pairs"});
  table.AddRow({"seq", FmtSecs(sequential.join_seconds), "1.00",
                std::to_string(sequential.pairs)});
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunEkdbParallel(*data, config, threads);
    table.AddRow({std::to_string(threads), FmtSecs(r.join_seconds),
                  FmtDouble(sequential.join_seconds / r.join_seconds, 2),
                  std::to_string(r.pairs)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main() { simjoin::bench::Main(); }
