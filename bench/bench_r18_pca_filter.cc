// Experiment R18 — PCA-filtered join on correlated high-dimensional data.
//
// When the ambient dimensionality is far above the intrinsic one, the
// eps-k-d-B tree's first few stripe dimensions carry little selectivity,
// but a handful of principal components carry almost all of it.  This
// experiment joins a d=32 cloud of intrinsic dimensionality 3 directly and
// through the exact PCA filter at several component counts.  Expected
// shape: the filtered join wins on strongly correlated data with a broad
// optimum around the intrinsic dimensionality; both return identical
// results; on uniform (uncorrelated) data the filter degrades into extra
// work — which the explained-variance column makes predictable in advance.

#include "bench_util.h"
#include "common/timer.h"
#include "core/projected_join.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void RunWorkload(const char* label, const Dataset& data, double epsilon) {
  std::cout << "--- workload: " << label << " (n=" << data.size()
            << ", d=" << data.dims() << ", eps=" << epsilon << ") ---\n";
  EkdbConfig direct_config;
  direct_config.epsilon = epsilon;
  direct_config.leaf_threshold = 64;
  const RunResult direct = RunEkdbSelf(data, direct_config);

  ResultTable table({"method", "total", "pairs", "filter_candidates",
                     "explained_var"});
  table.AddRow({"ekdb (direct)", FmtSecs(direct.total_seconds()),
                std::to_string(direct.pairs),
                std::to_string(direct.stats.candidate_pairs), "-"});
  for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
    if (k > data.dims()) continue;
    ProjectedJoinConfig config;
    config.projected_dims = k;
    CountingSink sink;
    ProjectedJoinReport report;
    Timer timer;
    const Status st =
        PcaFilteredSelfJoin(data, epsilon, config, &sink, &report);
    SIMJOIN_CHECK(st.ok()) << st.ToString();
    table.AddRow({"pca-filter k=" + std::to_string(k),
                  FmtSecs(timer.Seconds()), std::to_string(sink.count()),
                  std::to_string(report.candidate_pairs),
                  FmtDouble(report.explained_variance, 3)});
    SIMJOIN_CHECK_EQ(sink.count(), direct.pairs) << "filtered join not exact";
  }
  table.Print();
}

void Main() {
  PrintExperimentHeader(
      "R18", "PCA-filtered exact join vs direct join",
      "on correlated data the filter wins with a broad optimum near the "
      "intrinsic dimensionality; on uniform data it only adds overhead");
  const size_t n = Scaled(8000, 60000);
  const double epsilon = 0.05;

  auto correlated = GenerateCorrelated(
      {.n = n, .dims = 32, .intrinsic_dims = 3, .noise = 0.01, .seed = 1801});
  RunWorkload("correlated (intrinsic 3 of 32)", *correlated, epsilon);

  auto uniform = GenerateUniform({.n = n, .dims = 16, .seed = 1802});
  RunWorkload("uniform (control)", *uniform, 0.3);
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
