// Shared harness for the experiment benchmark binaries (R1..R11).
//
// Each binary reproduces one figure/table of the reconstructed evaluation
// (see DESIGN.md section 4 and EXPERIMENTS.md): it sweeps one axis, runs the
// relevant algorithms, and prints the series the paper's figure plots as an
// aligned text table plus a machine-readable CSV block.
//
// Sizes default to a laptop-friendly scale so `for b in build/bench/*; do
// $b; done` finishes in minutes; set SIMJOIN_BENCH_SCALE=large for
// paper-scale runs.

#ifndef SIMJOIN_BENCH_BENCH_UTIL_H_
#define SIMJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/grid_join.h"
#include "baselines/kdtree.h"
#include "baselines/nested_loop.h"
#include "baselines/sort_merge.h"
#include "common/dataset.h"
#include "common/pair_sink.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"
#include "core/parallel_join.h"
#include "rtree/rtree_join.h"

namespace simjoin {
namespace bench {

/// Parses the shared bench command line (--threads, --help).  Returns false
/// when the binary should exit immediately (help printed or bad flag); call
/// it first thing in every bench main.  Binaries built on google-benchmark
/// must run benchmark::Initialize first so --benchmark_* flags are consumed
/// before this parser sees them.
bool InitBenchArgs(int argc, const char* const* argv);

/// Value of --threads: worker threads for parallel build/join runs.
/// 0 (the default) means std::thread::hardware_concurrency().
size_t BenchThreads();

/// True when SIMJOIN_BENCH_SCALE=large: paper-scale problem sizes.
bool LargeScale();

/// Picks the default or large value of a size parameter.
size_t Scaled(size_t normal, size_t large);

/// Measured outcome of one (algorithm, configuration) cell.
struct RunResult {
  std::string algorithm;
  double build_seconds = 0.0;
  double join_seconds = 0.0;
  uint64_t pairs = 0;
  uint64_t memory_bytes = 0;
  JoinStats stats;

  double total_seconds() const { return build_seconds + join_seconds; }
};

/// eps-k-d-B tree: build + self-join.
RunResult RunEkdbSelf(const Dataset& data, const EkdbConfig& config);
/// eps-k-d-B tree: build both trees + cross join.
RunResult RunEkdbCross(const Dataset& a, const Dataset& b,
                       const EkdbConfig& config);
/// Parallel eps-k-d-B self-join with the given thread count.
RunResult RunEkdbParallel(const Dataset& data, const EkdbConfig& config,
                          size_t threads);
/// Flat (cache-conscious) eps-k-d-B tree: pointer build + flatten + self-join
/// over the leaf-packed arena.  build_seconds covers build + flatten;
/// memory_bytes is the flat representation's footprint.
RunResult RunEkdbFlatSelf(const Dataset& data, const EkdbConfig& config);
/// Flat eps-k-d-B tree: build + flatten both sides + cross join.
RunResult RunEkdbFlatCross(const Dataset& a, const Dataset& b,
                           const EkdbConfig& config);
/// Parallel flat eps-k-d-B self-join with the given thread count.
RunResult RunEkdbFlatParallel(const Dataset& data, const EkdbConfig& config,
                              size_t threads);
/// R-tree (STR bulk load): build + self-join.
RunResult RunRtreeSelf(const Dataset& data, double epsilon, Metric metric,
                       const RTreeConfig& config = RTreeConfig{});
/// R-tree: build both + cross join.
RunResult RunRtreeCross(const Dataset& a, const Dataset& b, double epsilon,
                        Metric metric, const RTreeConfig& config = RTreeConfig{});
/// k-d tree (median split): build + self-join.
RunResult RunKdTreeSelf(const Dataset& data, double epsilon, Metric metric);
/// Epsilon-grid hash self-join (build folded into join time).
RunResult RunGridSelf(const Dataset& data, double epsilon, Metric metric,
                      const GridJoinConfig& config = GridJoinConfig{});
/// 1-D sort-merge self-join.
RunResult RunSortMergeSelf(const Dataset& data, double epsilon, Metric metric);
/// Brute-force self-join.
RunResult RunNestedLoopSelf(const Dataset& data, double epsilon, Metric metric);
/// Brute-force cross join.
RunResult RunNestedLoopCross(const Dataset& a, const Dataset& b, double epsilon,
                             Metric metric);

/// Aligned-column table printer with a trailing CSV block for plotting.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Prints the aligned table followed by "# CSV" lines.
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner.
void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& paper_claim);

/// Formatting helpers.
std::string FmtSecs(double seconds);
std::string FmtDouble(double v, int precision = 3);

/// Dimension permutation ordering columns by descending variance — the
/// "most selective dimensions first" build heuristic studied in R10.
std::vector<uint32_t> VarianceDescendingOrder(const Dataset& data);

}  // namespace bench
}  // namespace simjoin

#endif  // SIMJOIN_BENCH_BENCH_UTIL_H_
