// Experiment R1 — join cost vs epsilon (the paper's headline figure).
//
// Sweeps the join radius on a uniform and a clustered workload and compares
// the eps-k-d-B tree with the R-tree join, the epsilon grid, 1-D sort-merge,
// and brute force.  Expected shape: the eps-k-d-B tree wins across the
// sweep; its advantage over the R-tree and brute force is largest at
// selective (small) epsilon, and all methods converge towards brute-force
// cost as epsilon grows and the output itself dominates.

#include "bench_util.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void RunSweep(const std::string& label, const Dataset& data) {
  std::cout << "--- workload: " << label << " (n=" << data.size()
            << ", d=" << data.dims() << ") ---\n";
  ResultTable table({"epsilon", "algorithm", "build", "join", "total",
                     "pairs", "candidates"});
  for (double epsilon : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.leaf_threshold = 64;
    std::vector<RunResult> runs;
    runs.push_back(RunEkdbSelf(data, config));
    runs.push_back(RunRtreeSelf(data, epsilon, Metric::kL2));
    runs.push_back(RunKdTreeSelf(data, epsilon, Metric::kL2));
    runs.push_back(RunGridSelf(data, epsilon, Metric::kL2));
    runs.push_back(RunSortMergeSelf(data, epsilon, Metric::kL2));
    runs.push_back(RunNestedLoopSelf(data, epsilon, Metric::kL2));
    for (const auto& r : runs) {
      table.AddRow({FmtDouble(epsilon, 2), r.algorithm,
                    FmtSecs(r.build_seconds), FmtSecs(r.join_seconds),
                    FmtSecs(r.total_seconds()), std::to_string(r.pairs),
                    std::to_string(r.stats.candidate_pairs)});
    }
  }
  table.Print();
}

void Main() {
  PrintExperimentHeader(
      "R1", "join cost vs epsilon",
      "eps-k-d-B tree fastest at every epsilon; largest advantage at small "
      "epsilon; all methods approach brute force as epsilon grows");
  const size_t n = Scaled(8000, 100000);
  const size_t dims = 8;
  auto uniform = GenerateUniform({.n = n, .dims = dims, .seed = 101});
  auto clustered = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 102});
  RunSweep("uniform", *uniform);
  RunSweep("clustered", *clustered);
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
