// Experiment R13 — out-of-core join (the paper's larger-than-memory case).
//
// Runs the stripe-partitioned external self-join over a spilled binary
// dataset at shrinking memory budgets and compares against the in-memory
// join.  Expected shape: the pair set is identical at every budget; total
// time grows modestly as the budget shrinks (more partitions => more spill
// I/O and an extra tree build per partition boundary), and peak resident
// points track the budget rather than the dataset size.

#include <filesystem>

#include "bench_util.h"
#include "common/binary_io.h"
#include "common/timer.h"
#include "core/external_join.h"
#include "workload/generators.h"

namespace simjoin {
namespace bench {
namespace {

void Main() {
  PrintExperimentHeader(
      "R13", "out-of-core eps-k-d-B join vs memory budget",
      "identical results at every budget; time rises gently as the budget "
      "shrinks; resident points track the budget, not n");
  const size_t n = Scaled(30000, 300000);
  const size_t dims = 8;
  const double epsilon = 0.05;

  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 20, .sigma = 0.05, .seed = 1301});
  const std::string dir =
      (std::filesystem::temp_directory_path() / "simjoin_r13").string();
  std::filesystem::create_directories(dir);
  const std::string input = dir + "/input.sjdb";
  SIMJOIN_CHECK(WriteBinaryDataset(*data, input).ok());

  // In-memory reference.
  EkdbConfig ekdb;
  ekdb.epsilon = epsilon;
  ekdb.leaf_threshold = 64;
  const RunResult in_memory = RunEkdbSelf(*data, ekdb);

  ResultTable table({"budget_points", "partitions", "peak_resident", "total",
                     "vs_in_memory", "pairs"});
  table.AddRow({"(in-memory)", "1", std::to_string(n),
                FmtSecs(in_memory.total_seconds()), "1.00",
                std::to_string(in_memory.pairs)});
  for (size_t budget : {n, n / 4, n / 16, n / 64}) {
    ExternalJoinConfig config;
    config.ekdb = ekdb;
    config.temp_dir = dir;
    config.memory_budget_points = budget;
    CountingSink sink;
    ExternalJoinReport report;
    Timer timer;
    const Status st = ExternalSelfJoin(input, config, &sink, nullptr, &report);
    SIMJOIN_CHECK(st.ok()) << st.ToString();
    const double total = timer.Seconds();
    table.AddRow({std::to_string(budget), std::to_string(report.partitions),
                  std::to_string(report.peak_resident_points), FmtSecs(total),
                  FmtDouble(total / in_memory.total_seconds(), 2),
                  std::to_string(sink.count())});
  }
  table.Print();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bench
}  // namespace simjoin

int main(int argc, char** argv) {
  if (!simjoin::bench::InitBenchArgs(argc, argv)) return 1;
  simjoin::bench::Main();
  return 0;
}
