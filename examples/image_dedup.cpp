// Near-duplicate image detection — the paper's multimedia application.
//
// Generates a synthetic image archive as colour histograms (scene prototypes
// plus per-image variation) with a known set of planted near-duplicates,
// then uses the eps-k-d-B similarity self-join to flag duplicate candidates
// and reports how many planted duplicates were recovered.  Also demonstrates
// the two-dataset join: matching a "new batch" of images against the
// existing archive, as an ingestion-time dedup pass would.
//
//   ./examples/image_dedup [--images 4000] [--bins 32] [--dups 40]
//       [--epsilon 0.04]

#include <algorithm>
#include <iostream>
#include <set>

#include "common/args.h"
#include "common/timer.h"
#include "core/ekdb_join.h"
#include "workload/image_features.h"

namespace {

int Run(int argc, char** argv) {
  using namespace simjoin;

  ArgParser args("Near-duplicate image detection via histogram similarity join");
  args.AddFlag("images", "4000", "archive size (originals)");
  args.AddFlag("bins", "32", "colour histogram bins");
  args.AddFlag("dups", "40", "planted near-duplicates");
  args.AddFlag("epsilon", "0.04", "join radius in normalised histogram space");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  const size_t originals = static_cast<size_t>(args.GetInt("images"));
  const size_t dups = static_cast<size_t>(args.GetInt("dups"));

  // 1. Simulated archive with planted near-duplicates.
  Timer timer;
  auto archive = GenerateImageArchive(
      {.num_images = originals,
       .bins = static_cast<size_t>(args.GetInt("bins")),
       .prototypes = 12,
       .concentration = 70,
       .near_duplicates = dups,
       .duplicate_noise = 0.01,
       .seed = 7});
  if (!archive.ok()) {
    std::cerr << archive.status().ToString() << "\n";
    return 1;
  }
  Dataset data = archive->histograms;
  data.NormalizeToUnitCube();
  std::cout << "archive: " << originals << " images + " << dups
            << " planted near-duplicates, " << data.dims() << " bins ("
            << FormatSeconds(timer.Seconds()) << ")\n";

  // 2. Dedup pass: self-join at a tight radius.
  EkdbConfig config;
  config.epsilon = args.GetDouble("epsilon");
  config.leaf_threshold = 32;
  timer.Restart();
  auto tree = EkdbTree::Build(data, config);
  if (!tree.ok()) {
    std::cerr << tree.status().ToString() << "\n";
    return 1;
  }
  VectorSink sink;
  if (Status st = EkdbSelfJoin(*tree, &sink); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "dedup self-join flagged " << FormatCount(sink.pairs().size())
            << " candidate pairs (" << FormatSeconds(timer.Seconds())
            << " incl. build)\n";

  // 3. Score recovery of the planted duplicates.
  std::set<IdPair> found(sink.pairs().begin(), sink.pairs().end());
  size_t recovered = 0;
  for (size_t d = 0; d < dups; ++d) {
    const PointId dup = static_cast<PointId>(originals + d);
    const PointId src = archive->duplicate_of[d];
    recovered += found.count({std::min(src, dup), std::max(src, dup)});
  }
  std::cout << "planted duplicates recovered: " << recovered << "/" << dups
            << "\n";

  // 4. Ingestion-time dedup: match a fresh batch against the archive with a
  //    two-tree join.
  auto batch_archive = GenerateImageArchive(
      {.num_images = originals / 10,
       .bins = data.dims(),
       .prototypes = 12,
       .concentration = 70,
       .near_duplicates = 0,
       // Same seed as the archive => same scene prototypes, so the batch
       // plausibly contains images similar to archived ones.
       .seed = 7});
  Dataset batch = batch_archive->histograms;
  batch.NormalizeToUnitCube();
  auto batch_tree = EkdbTree::Build(batch, config);
  if (!batch_tree.ok()) {
    std::cerr << batch_tree.status().ToString() << "\n";
    return 1;
  }
  CountingSink batch_sink;
  timer.Restart();
  if (Status st = EkdbJoin(*batch_tree, *tree, &batch_sink); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "ingestion batch of " << batch.size() << " images matched "
            << FormatCount(batch_sink.count())
            << " archive neighbours (" << FormatSeconds(timer.Seconds())
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
