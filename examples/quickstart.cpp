// Quickstart: build an eps-k-d-B tree over a point cloud and run a
// similarity self-join, printing the closest pairs it found.
//
//   ./examples/quickstart [--n 5000] [--dims 8] [--epsilon 0.05]
//                         [--metric l2] [--input points.csv]
//
// With --input the points are loaded from a headerless CSV (one point per
// line) and min-max normalised; otherwise a clustered synthetic cloud is
// generated.

#include <algorithm>
#include <iostream>

#include "common/args.h"
#include "common/csv.h"
#include "common/timer.h"
#include "core/ekdb_join.h"
#include "workload/generators.h"

namespace {

int Run(int argc, char** argv) {
  using namespace simjoin;

  ArgParser args(
      "Quickstart: eps-k-d-B similarity self-join over a point cloud");
  args.AddFlag("n", "5000", "number of synthetic points (ignored with --input)");
  args.AddFlag("dims", "8", "dimensionality of synthetic points");
  args.AddFlag("epsilon", "0.05", "join radius in the normalised unit cube");
  args.AddFlag("metric", "l2", "distance metric: l1, l2, or linf");
  args.AddFlag("leaf", "64", "eps-k-d-B leaf threshold");
  args.AddFlag("input", "", "optional CSV file of points to join");
  args.AddFlag("show", "10", "how many result pairs to print");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  // 1. Obtain points.
  Dataset data;
  if (const std::string path = args.GetString("input"); !path.empty()) {
    auto loaded = ReadCsv(path);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    data = std::move(loaded).value();
    std::cout << "loaded " << data.size() << " points (" << data.dims()
              << " dims) from " << path << "\n";
  } else {
    auto generated = GenerateClustered(
        {.n = static_cast<size_t>(args.GetInt("n")),
         .dims = static_cast<size_t>(args.GetInt("dims")),
         .clusters = 10,
         .sigma = 0.05,
         .seed = 7});
    data = std::move(generated).value();
    std::cout << "generated " << data.size() << " clustered points ("
              << data.dims() << " dims)\n";
  }
  data.NormalizeToUnitCube();

  auto metric = ParseMetric(args.GetString("metric"));
  if (!metric.ok()) {
    std::cerr << metric.status().ToString() << "\n";
    return 1;
  }

  // 2. Build the index.
  EkdbConfig config;
  config.epsilon = args.GetDouble("epsilon");
  config.metric = metric.value();
  config.leaf_threshold = static_cast<size_t>(args.GetInt("leaf"));
  Timer timer;
  auto tree = EkdbTree::Build(data, config);
  if (!tree.ok()) {
    std::cerr << tree.status().ToString() << "\n";
    return 1;
  }
  const auto stats = tree->ComputeStats();
  std::cout << "built eps-k-d-B tree in " << FormatSeconds(timer.Seconds())
            << ": " << stats.nodes << " nodes, " << stats.leaves
            << " leaves, depth " << stats.max_depth << ", "
            << FormatBytes(stats.memory_bytes) << "\n";

  // 3. Join.
  VectorSink sink;
  JoinStats join_stats;
  timer.Restart();
  if (Status st = EkdbSelfJoin(*tree, &sink, &join_stats); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "self-join (eps=" << config.epsilon << ", "
            << MetricName(config.metric) << ") took "
            << FormatSeconds(timer.Seconds()) << ": "
            << FormatCount(sink.pairs().size()) << " pairs from "
            << FormatCount(join_stats.candidate_pairs) << " candidates\n";

  // 4. Show the closest few pairs.
  DistanceKernel kernel(config.metric);
  auto pairs = sink.pairs();
  std::sort(pairs.begin(), pairs.end(),
            [&](const IdPair& x, const IdPair& y) {
              return kernel.Distance(data.Row(x.first), data.Row(x.second),
                                     data.dims()) <
                     kernel.Distance(data.Row(y.first), data.Row(y.second),
                                     data.dims());
            });
  const size_t show = std::min<size_t>(pairs.size(),
                                       static_cast<size_t>(args.GetInt("show")));
  std::cout << "\nclosest " << show << " pairs:\n";
  for (size_t i = 0; i < show; ++i) {
    const auto [a, b] = pairs[i];
    std::cout << "  (" << a << ", " << b << ")  dist = "
              << kernel.Distance(data.Row(a), data.Row(b), data.dims()) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
