// Cluster analysis — the data-mining pipeline the paper's introduction
// motivates, end to end:
//
//   1. profile the dataset (effective dimensionality, distance scales),
//   2. let the planner pick a join strategy and estimate the output,
//   3. run epsilon-connected components (single-linkage clustering whose
//      expensive primitive is exactly the similarity self-join),
//   4. report the discovered structure against the generator's ground truth.
//
//   ./examples/cluster_analysis [--n 20000] [--dims 8] [--clusters 12]
//       [--epsilon 0.04]

#include <algorithm>
#include <iostream>

#include "common/args.h"
#include "common/timer.h"
#include "core/components.h"
#include "core/dbscan.h"
#include "core/planner.h"
#include "workload/generators.h"
#include "workload/profile.h"

namespace {

int Run(int argc, char** argv) {
  using namespace simjoin;

  ArgParser args("Discover cluster structure via an epsilon similarity join");
  args.AddFlag("n", "20000", "number of points");
  args.AddFlag("dims", "8", "dimensionality");
  args.AddFlag("clusters", "12", "planted clusters (ground truth)");
  args.AddFlag("sigma", "0.02", "cluster spread");
  args.AddFlag("epsilon", "0.04", "linkage radius");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  const size_t clusters = static_cast<size_t>(args.GetInt("clusters"));
  auto data = GenerateClustered({.n = static_cast<size_t>(args.GetInt("n")),
                                 .dims = static_cast<size_t>(args.GetInt("dims")),
                                 .clusters = clusters,
                                 .sigma = args.GetDouble("sigma"),
                                 .seed = 11});
  if (!data.ok()) {
    std::cerr << data.status().ToString() << "\n";
    return 1;
  }

  // 1. Profile.
  auto profile = ProfileDataset(*data);
  if (!profile.ok()) {
    std::cerr << profile.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- dataset profile ---\n" << profile->ToString() << "\n";

  // 2. Plan.
  const double epsilon = args.GetDouble("epsilon");
  auto plan = PlanSelfJoin(*data, epsilon, Metric::kL2);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- join plan ---\nalgorithm: "
            << JoinAlgorithmName(plan->algorithm)
            << "\nrationale: " << plan->rationale << "\nestimated pairs: "
            << static_cast<uint64_t>(plan->estimated_pairs) << "\n\n";

  // 3. Cluster.
  Timer timer;
  auto result = EpsilonConnectedComponents(*data, epsilon, Metric::kL2);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "--- clustering ---\n"
            << "components found: " << result->num_components << " (planted: "
            << clusters << ") in " << FormatSeconds(timer.Seconds()) << " via "
            << FormatCount(result->join_pairs) << " join pairs\n";

  std::vector<uint32_t> sizes = result->sizes;
  std::sort(sizes.rbegin(), sizes.rend());
  std::cout << "largest components:";
  for (size_t i = 0; i < std::min<size_t>(sizes.size(), 12); ++i) {
    std::cout << " " << sizes[i];
  }
  std::cout << "\n";

  // 4. Compare against ground truth: count how many of the largest
  // components look like planted clusters (size within 3x of n/clusters).
  const double expected_size =
      static_cast<double>(data->size()) / static_cast<double>(clusters);
  size_t plausible = 0;
  for (uint32_t s : sizes) {
    if (s > expected_size / 3.0 && s < expected_size * 3.0) ++plausible;
  }
  std::cout << "components with cluster-like size: " << plausible << "/"
            << clusters << " planted\n";

  // 5. DBSCAN comparison: the density requirement (min_pts) suppresses the
  // singleton fringe that single-linkage reports as components.
  timer.Restart();
  auto dbscan = Dbscan(*data, {.epsilon = epsilon, .min_pts = 8});
  if (!dbscan.ok()) {
    std::cerr << dbscan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n--- dbscan (min_pts=8) ---\n"
            << "clusters: " << dbscan->num_clusters << " (planted: " << clusters
            << "), noise points: " << dbscan->noise_points << " ("
            << FormatSeconds(timer.Seconds()) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
