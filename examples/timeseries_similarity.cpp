// Time-series similarity search — the paper's motivating application.
//
// Generates a family of random-walk "price" series with latent co-movement
// groups (a stand-in for the paper's proprietary stock/mutual-fund feeds),
// reduces each z-normalised series to its leading DFT coefficients, and runs
// an eps-k-d-B similarity self-join in feature space to find co-moving
// pairs.  Reports precision/recall of the discovered pairs against the
// known group structure, and compares the index join's cost against brute
// force over the raw series.
//
//   ./examples/timeseries_similarity [--series 2000] [--length 256]
//       [--groups 20] [--coeffs 6] [--epsilon 0.08]

#include <iostream>

#include "common/args.h"
#include "common/timer.h"
#include "core/ekdb_join.h"
#include "workload/timeseries.h"

namespace {

int Run(int argc, char** argv) {
  using namespace simjoin;

  ArgParser args("Find co-moving time series via a DFT-feature similarity join");
  args.AddFlag("series", "2000", "number of series in the family");
  args.AddFlag("length", "256", "samples per series");
  args.AddFlag("groups", "20", "latent co-movement groups");
  args.AddFlag("coeffs", "6", "DFT coefficients kept (feature dims = 2x)");
  args.AddFlag("epsilon", "0.08", "join radius in normalised feature space");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  const size_t num_series = static_cast<size_t>(args.GetInt("series"));
  const size_t groups = static_cast<size_t>(args.GetInt("groups"));

  // 1. Simulated market: co-moving random-walk families.
  Timer timer;
  auto family = GenerateSeriesFamily({.num_series = num_series,
                                      .length = static_cast<size_t>(args.GetInt("length")),
                                      .groups = groups,
                                      .group_weight = 0.85,
                                      .volatility = 0.02,
                                      .seed = 42});
  if (!family.ok()) {
    std::cerr << family.status().ToString() << "\n";
    return 1;
  }
  std::cout << "generated " << num_series << " series in " << groups
            << " co-movement groups (" << FormatSeconds(timer.Seconds())
            << ")\n";

  // 2. Feature extraction: z-normalise + truncated DFT.
  timer.Restart();
  auto features =
      SeriesToFeatureDataset(*family, static_cast<size_t>(args.GetInt("coeffs")));
  if (!features.ok()) {
    std::cerr << features.status().ToString() << "\n";
    return 1;
  }
  features->NormalizeToUnitCube();
  std::cout << "extracted " << features->dims()
            << "-dim DFT features per series ("
            << FormatSeconds(timer.Seconds()) << ")\n";

  // 3. Similarity self-join in feature space.
  EkdbConfig config;
  config.epsilon = args.GetDouble("epsilon");
  config.leaf_threshold = 32;
  timer.Restart();
  auto tree = EkdbTree::Build(*features, config);
  if (!tree.ok()) {
    std::cerr << tree.status().ToString() << "\n";
    return 1;
  }
  VectorSink sink;
  if (Status st = EkdbSelfJoin(*tree, &sink); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "feature-space join found " << FormatCount(sink.pairs().size())
            << " similar pairs (" << FormatSeconds(timer.Seconds())
            << " incl. build)\n";

  // 4. Score against the known group structure.
  uint64_t same_group = 0;
  for (const auto& [a, b] : sink.pairs()) {
    same_group += (a % groups == b % groups);
  }
  const uint64_t total_same_group_pairs = [&] {
    // Series i belongs to group i % groups; count pairs per group.
    std::vector<uint64_t> sizes(groups, 0);
    for (size_t s = 0; s < num_series; ++s) ++sizes[s % groups];
    uint64_t pairs = 0;
    for (uint64_t sz : sizes) pairs += sz * (sz - 1) / 2;
    return pairs;
  }();
  const double precision =
      sink.pairs().empty()
          ? 0.0
          : static_cast<double>(same_group) /
                static_cast<double>(sink.pairs().size());
  const double recall = total_same_group_pairs == 0
                            ? 0.0
                            : static_cast<double>(same_group) /
                                  static_cast<double>(total_same_group_pairs);
  std::cout << "co-movement discovery: precision=" << precision
            << " recall=" << recall << " (vs latent groups)\n";

  // 5. Cost contrast: brute force over raw series.
  timer.Restart();
  uint64_t brute_pairs = 0;
  std::vector<Series> normalized = *family;
  for (auto& s : normalized) ZNormalize(&s);
  // The feature join radius corresponds (Parseval, unit-cube scaling) to a
  // raw-series radius; here we only measure the cost of raw comparison.
  const double raw_eps = 4.0;
  for (size_t i = 0; i < normalized.size(); ++i) {
    for (size_t j = i + 1; j < normalized.size(); ++j) {
      brute_pairs +=
          (SeriesEuclideanDistance(normalized[i], normalized[j]) <= raw_eps);
    }
  }
  std::cout << "brute-force raw-series scan: " << FormatCount(brute_pairs)
            << " pairs within raw radius " << raw_eps << " ("
            << FormatSeconds(timer.Seconds()) << ") -- the cost the "
            << "feature-space index join avoids\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
