// Streaming correlation monitor — a network/operations flavoured use of the
// sliding-window similarity join.
//
// A fleet of "interfaces" emits utilisation measurements; each arriving
// measurement vector is joined against the last W measurements, and bursts
// of near-identical measurement vectors (e.g. a fault pattern replicating
// across devices) surface as result pairs the moment the second occurrence
// arrives.  Demonstrates StreamingWindowJoin: per-arrival incremental index
// maintenance with no rebuilds.
//
//   ./examples/stream_monitor [--events 20000] [--window 1024] [--dims 8]
//       [--epsilon 0.03] [--burst-every 500]

#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/streaming_window.h"

namespace {

int Run(int argc, char** argv) {
  using namespace simjoin;

  ArgParser args("Monitor a measurement stream for repeating patterns");
  args.AddFlag("events", "20000", "stream length");
  args.AddFlag("window", "1024", "sliding window size (points)");
  args.AddFlag("dims", "8", "measurement vector dimensionality");
  args.AddFlag("epsilon", "0.03", "similarity radius");
  args.AddFlag("burst-every", "500", "plant a repeated pattern every k events");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  const size_t events = static_cast<size_t>(args.GetInt("events"));
  const size_t window = static_cast<size_t>(args.GetInt("window"));
  const size_t dims = static_cast<size_t>(args.GetInt("dims"));
  const size_t burst_every = static_cast<size_t>(args.GetInt("burst-every"));
  const double epsilon = args.GetDouble("epsilon");

  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 32;
  auto monitor = StreamingWindowJoin::Create(window, dims, config);
  if (!monitor.ok()) {
    std::cerr << monitor.status().ToString() << "\n";
    return 1;
  }

  // Stream: background noise plus a planted fault signature repeated
  // shortly after it first appears.
  Rng rng(2026);
  std::vector<float> point(dims), fault(dims);
  for (auto& v : fault) v = rng.UniformFloat();
  uint64_t alerts = 0, planted_hits = 0;
  StreamPos last_fault_pos = 0;

  Timer timer;
  for (size_t t = 0; t < events; ++t) {
    const bool is_fault = burst_every > 0 && (t % burst_every) < 2;
    if (is_fault) {
      for (size_t d = 0; d < dims; ++d) {
        point[d] = std::min(1.0f, std::max(0.0f, fault[d] +
                            static_cast<float>(rng.Uniform(-0.005, 0.005))));
      }
    } else {
      for (auto& v : point) v = rng.UniformFloat();
    }
    auto pos = (*monitor)->Feed(
        point.data(), [&](StreamPos earlier, StreamPos now) {
          ++alerts;
          if (is_fault && earlier == last_fault_pos) ++planted_hits;
          if (alerts <= 5) {
            std::cout << "  alert: event " << now
                      << " repeats pattern of event " << earlier << "\n";
          }
        });
    if (!pos.ok()) {
      std::cerr << pos.status().ToString() << "\n";
      return 1;
    }
    if (is_fault && (t % burst_every) == 0) last_fault_pos = pos.value();
  }
  const double total = timer.Seconds();

  std::cout << "\nprocessed " << events << " events (window " << window
            << ", dims " << dims << ") in " << FormatSeconds(total) << " — "
            << FormatSeconds(total / static_cast<double>(events))
            << " per event\n";
  std::cout << "alerts raised: " << alerts << ", of which " << planted_hits
            << " matched the planted fault signature\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
