// Shared helpers for the simjoin test suites.

#ifndef SIMJOIN_TESTS_TEST_UTIL_H_
#define SIMJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "baselines/nested_loop.h"
#include "common/dataset.h"
#include "common/metric.h"
#include "common/pair_sink.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace testing_util {

/// Builds a dataset from an initializer-friendly nested vector.
inline Dataset MakeDataset(const std::vector<std::vector<float>>& rows) {
  Dataset ds;
  for (const auto& row : rows) ds.Append(row);
  return ds;
}

/// Sorted canonical self-join pair set computed by the brute-force oracle.
inline std::vector<IdPair> OracleSelfJoin(const Dataset& data, double epsilon,
                                          Metric metric) {
  VectorSink sink;
  const Status st = NestedLoopSelfJoin(data, epsilon, metric, &sink, nullptr);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink.Sorted();
}

/// Sorted pair set of an A-to-B join computed by the brute-force oracle.
inline std::vector<IdPair> OracleJoin(const Dataset& a, const Dataset& b,
                                      double epsilon, Metric metric) {
  VectorSink sink;
  const Status st = NestedLoopJoin(a, b, epsilon, metric, &sink, nullptr);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink.Sorted();
}

/// Expects two sorted pair lists to be identical, with a readable diff of
/// the first few mismatches.
inline void ExpectSamePairs(const std::vector<IdPair>& expected,
                            const std::vector<IdPair>& actual,
                            const char* label) {
  EXPECT_EQ(expected.size(), actual.size()) << label << ": pair count differs";
  std::vector<IdPair> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  for (size_t i = 0; i < std::min<size_t>(5, missing.size()); ++i) {
    ADD_FAILURE() << label << ": missing pair (" << missing[i].first << ", "
                  << missing[i].second << ")";
  }
  for (size_t i = 0; i < std::min<size_t>(5, extra.size()); ++i) {
    ADD_FAILURE() << label << ": spurious pair (" << extra[i].first << ", "
                  << extra[i].second << ")";
  }
}

}  // namespace testing_util
}  // namespace simjoin

#endif  // SIMJOIN_TESTS_TEST_UTIL_H_
