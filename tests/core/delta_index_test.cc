// Tests for the live-updatable index tier (core/delta_index.h): the
// determinism contract is that every query against an UpdatableIndex is
// bit-identical to the sorted, id-remapped result of a fresh immutable
// build over the current live point set — before, during, and after
// compaction.  A Mirror model applies every mutation twice (index + plain
// vector) so the rebuild oracle is always available.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/delta_index.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_tree.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

UpdatableConfig ManualCompaction() {
  UpdatableConfig uc;
  uc.auto_compact = false;
  return uc;
}

/// The rebuild oracle's model of the index: every live point with its
/// logical id, kept in ascending-id order (inserts always append fresh
/// ids, so order is preserved by construction).
struct Mirror {
  size_t dims = 0;
  std::vector<std::pair<PointId, std::vector<float>>> live;

  explicit Mirror(const Dataset& initial) : dims(initial.dims()) {
    for (size_t i = 0; i < initial.size(); ++i) {
      const float* row = initial.Row(static_cast<PointId>(i));
      live.emplace_back(static_cast<PointId>(i),
                        std::vector<float>(row, row + dims));
    }
  }

  void Insert(PointId first_id, const std::vector<float>& rows) {
    const size_t count = rows.size() / dims;
    for (size_t i = 0; i < count; ++i) {
      live.emplace_back(
          first_id + static_cast<PointId>(i),
          std::vector<float>(rows.begin() + i * dims,
                             rows.begin() + (i + 1) * dims));
    }
  }

  bool Remove(PointId id) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == id) {
        live.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Live rows in ascending logical order plus the row->logical map —
  /// exactly what a stop-the-world rebuild would index.
  Dataset LiveDataset(std::vector<PointId>* logical) const {
    std::vector<float> flat;
    flat.reserve(live.size() * dims);
    logical->clear();
    for (const auto& [id, row] : live) {
      logical->push_back(id);
      flat.insert(flat.end(), row.begin(), row.end());
    }
    auto data = Dataset::FromFlat(std::move(flat), dims);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    return std::move(*data);
  }
};

/// Sorted logical ids a fresh flat rebuild over the live set returns for
/// one query — the canonical expected answer.
std::vector<PointId> OracleRange(const Mirror& mirror, const float* query,
                                 double eps, const EkdbConfig& config) {
  std::vector<PointId> logical;
  const Dataset data = mirror.LiveDataset(&logical);
  std::vector<PointId> out;
  if (!data.empty()) {
    auto tree = EkdbTree::Build(data, config);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    auto flat = FlatEkdbTree::FromTree(*tree);
    EXPECT_TRUE(flat.ok()) << flat.status().ToString();
    std::vector<PointId> rows;
    EXPECT_TRUE(flat->RangeQuery(query, eps, &rows).ok());
    for (PointId r : rows) out.push_back(logical[r]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Canonical (min, max)-normalised, sorted pair list a rebuild's self-join
/// produces, remapped to logical ids.
std::vector<IdPair> OracleSelfJoinPairs(const Mirror& mirror, double eps,
                                        EkdbConfig config) {
  std::vector<PointId> logical;
  const Dataset data = mirror.LiveDataset(&logical);
  std::vector<IdPair> out;
  if (!data.empty()) {
    config.epsilon = std::max(config.epsilon, eps);
    auto tree = EkdbTree::Build(data, config);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    auto flat = FlatEkdbTree::FromTree(*tree);
    EXPECT_TRUE(flat.ok()) << flat.status().ToString();
    VectorSink sink;
    EXPECT_TRUE(FlatEkdbSelfJoinWithEpsilon(*flat, eps, &sink).ok());
    for (const IdPair& p : sink.pairs()) {
      const PointId a = logical[p.first];
      const PointId b = logical[p.second];
      out.push_back({std::min(a, b), std::max(a, b)});
    }
  }
  std::sort(out.begin(), out.end(), [](const IdPair& a, const IdPair& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
  return out;
}

void ExpectRangeMatchesOracle(const UpdatableIndex& index,
                              const Mirror& mirror, const float* query,
                              double eps, const EkdbConfig& config,
                              const char* label) {
  std::vector<PointId> got;
  ASSERT_TRUE(index.RangeQuery(query, eps, &got, nullptr, nullptr).ok())
      << label;
  EXPECT_EQ(got, OracleRange(mirror, query, eps, config)) << label;
}

void ExpectSelfJoinMatchesOracle(const UpdatableIndex& index,
                                 const Mirror& mirror, double eps,
                                 size_t num_threads, const EkdbConfig& config,
                                 const char* label) {
  VectorSink got;
  JoinStats stats;
  ASSERT_TRUE(index.SelfJoin(eps, num_threads, &got, &stats).ok()) << label;
  EXPECT_EQ(got.pairs(), OracleSelfJoinPairs(mirror, eps, config))
      << label << " threads=" << num_threads;
  EXPECT_EQ(stats.pairs_emitted, got.pairs().size()) << label;
}

Dataset MakeClustered(size_t n, size_t dims, uint64_t seed) {
  auto data = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 5, .sigma = 0.05, .seed = seed});
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

std::vector<float> RandomRows(Rng* rng, size_t count, size_t dims) {
  std::vector<float> rows(count * dims);
  for (float& f : rows) f = rng->UniformFloat();
  return rows;
}

// ---------------------------------------------------------------------------
// Fresh build (no updates yet).
// ---------------------------------------------------------------------------

TEST(UpdatableIndexTest, FreshBuildMatchesRebuildOracle) {
  const Dataset data = MakeClustered(500, 4, 1);
  const EkdbConfig config = Config(0.1);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const Mirror mirror(data);

  const UpdatableStats stats = (*index)->Stats();
  EXPECT_EQ(stats.base_points, 500u);
  EXPECT_EQ(stats.delta_points, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.live_points, 500u);
  EXPECT_EQ(stats.next_id, 500u);

  for (PointId q = 0; q < 20; ++q) {
    ExpectRangeMatchesOracle(**index, mirror, data.Row(q), 0.08, config,
                             "fresh");
  }
  ExpectSelfJoinMatchesOracle(**index, mirror, 0.08, 1, config, "fresh");
}

TEST(UpdatableIndexTest, ValidatesQueryEpsilonLikeOtherBackends) {
  const Dataset data = MakeClustered(100, 3, 2);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data),
      Config(0.1), 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->ValidateQueryEpsilon(0.1).ok());
  EXPECT_FALSE((*index)->ValidateQueryEpsilon(0.0).ok());
  EXPECT_FALSE((*index)->ValidateQueryEpsilon(0.2).ok());
}

// ---------------------------------------------------------------------------
// Inserts and removes against the rebuild oracle.
// ---------------------------------------------------------------------------

TEST(UpdatableIndexTest, InsertsMatchRebuildOracle) {
  const Dataset data = MakeClustered(300, 4, 3);
  const EkdbConfig config = Config(0.12);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  Mirror mirror(data);
  Rng rng(7);

  for (int batch = 0; batch < 5; ++batch) {
    const std::vector<float> rows = RandomRows(&rng, 40, 4);
    auto first = (*index)->InsertBatch(rows.data(), 40);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(*first, static_cast<PointId>(300 + batch * 40));
    mirror.Insert(*first, rows);

    const std::vector<float> probe = RandomRows(&rng, 1, 4);
    ExpectRangeMatchesOracle(**index, mirror, probe.data(), 0.1, config,
                             "insert probe");
    ExpectRangeMatchesOracle(**index, mirror, rows.data(), 0.1, config,
                             "insert row");
  }
  EXPECT_EQ((*index)->Stats().delta_points, 200u);
  ExpectSelfJoinMatchesOracle(**index, mirror, 0.1, 1, config, "inserts");
}

TEST(UpdatableIndexTest, RemovesMatchRebuildOracleAndCountMisses) {
  const Dataset data = MakeClustered(400, 4, 4);
  const EkdbConfig config = Config(0.12);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  Mirror mirror(data);
  Rng rng(11);

  // Some delta rows too, so removes hit both tiers.
  const std::vector<float> rows = RandomRows(&rng, 50, 4);
  auto first = (*index)->InsertBatch(rows.data(), 50);
  ASSERT_TRUE(first.ok());
  mirror.Insert(*first, rows);

  // Single removes: one base id, one delta id, then the same ids again
  // (NotFound) and a never-assigned id (NotFound).
  ASSERT_TRUE((*index)->Remove(10).ok());
  ASSERT_TRUE(mirror.Remove(10));
  ASSERT_TRUE((*index)->Remove(*first + 3).ok());
  ASSERT_TRUE(mirror.Remove(*first + 3));
  EXPECT_EQ((*index)->Remove(10).code(), StatusCode::kNotFound);
  EXPECT_EQ((*index)->Remove(100000).code(), StatusCode::kNotFound);

  // Batch remove with duplicates and dead ids mixed in.
  const std::vector<PointId> ids = {1, 2, 2, 10, *first + 7, 99999};
  uint32_t removed = 0, missing = 0;
  (*index)->RemoveBatch(ids.data(), ids.size(), &removed, &missing);
  EXPECT_EQ(removed, 3u);  // 1, 2, and the delta id
  EXPECT_EQ(missing, 3u);  // duplicate 2, dead 10, unknown 99999
  ASSERT_TRUE(mirror.Remove(1));
  ASSERT_TRUE(mirror.Remove(2));
  ASSERT_TRUE(mirror.Remove(*first + 7));

  const UpdatableStats stats = (*index)->Stats();
  EXPECT_EQ(stats.tombstones, 5u);
  EXPECT_EQ(stats.live_points, 400u + 50u - 5u);

  for (PointId q = 0; q < 15; ++q) {
    ExpectRangeMatchesOracle(**index, mirror, data.Row(q), 0.1, config,
                             "post-remove");
  }
  ExpectSelfJoinMatchesOracle(**index, mirror, 0.1, 1, config, "removes");
}

TEST(UpdatableIndexTest, InsertRejectsOutOfDomainWithoutSideEffects) {
  const Dataset data = MakeClustered(50, 3, 5);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data),
      Config(0.1), 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  const UpdatableStats before = (*index)->Stats();
  const std::vector<float> bad = {0.5f, 0.5f, 1.5f};
  EXPECT_EQ((*index)->InsertBatch(bad.data(), 1).status().code(),
            StatusCode::kInvalidArgument);
  const UpdatableStats after = (*index)->Stats();
  EXPECT_EQ(after.delta_points, before.delta_points);
  EXPECT_EQ(after.next_id, before.next_id);
}

TEST(UpdatableIndexTest, BatchQueriesAreBitIdenticalToSoloQueries) {
  const Dataset data = MakeClustered(300, 4, 6);
  const EkdbConfig config = Config(0.15);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  Rng rng(13);
  const std::vector<float> rows = RandomRows(&rng, 80, 4);
  ASSERT_TRUE((*index)->InsertBatch(rows.data(), 80).ok());
  uint32_t removed = 0, missing = 0;
  const std::vector<PointId> dead = {5, 6, 305};
  (*index)->RemoveBatch(dead.data(), dead.size(), &removed, &missing);
  ASSERT_EQ(removed, 3u);

  const size_t batch = 32;
  std::vector<RangeQuerySpec> specs(batch);
  for (size_t i = 0; i < batch; ++i) {
    specs[i] = {data.Row(i), 0.1 + 0.001 * static_cast<double>(i % 5)};
  }
  std::vector<std::vector<PointId>> fused;
  std::vector<JoinStats> fused_stats;
  ASSERT_TRUE((*index)
                  ->RangeQueryBatch(specs.data(), batch, &fused, &fused_stats,
                                    nullptr)
                  .ok());
  ASSERT_EQ(fused.size(), batch);
  ASSERT_EQ(fused_stats.size(), batch);
  for (size_t i = 0; i < batch; ++i) {
    std::vector<PointId> solo;
    JoinStats solo_stats;
    ASSERT_TRUE((*index)
                    ->RangeQuery(specs[i].query, specs[i].epsilon, &solo,
                                 &solo_stats, nullptr)
                    .ok());
    EXPECT_EQ(fused[i], solo) << "query " << i;
    EXPECT_EQ(fused_stats[i].distance_calls, solo_stats.distance_calls)
        << "query " << i;
  }
}

TEST(UpdatableIndexTest, EstimatedQueryCostRisesWithDeltaAndFallsOnFlush) {
  const Dataset data = MakeClustered(1000, 4, 7);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data),
      Config(0.1), 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  const double fresh = (*index)->EstimatedQueryCost(0.05, 8.0);
  Rng rng(17);
  const std::vector<float> rows = RandomRows(&rng, 500, 4);
  ASSERT_TRUE((*index)->InsertBatch(rows.data(), 500).ok());
  const double with_delta = (*index)->EstimatedQueryCost(0.05, 8.0);
  EXPECT_GT(with_delta, fresh)
      << "planner must see the per-query delta-scan term";
  auto ran = (*index)->Flush();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  EXPECT_LT((*index)->EstimatedQueryCost(0.05, 8.0), with_delta)
      << "compaction folds the delta term away";
}

// ---------------------------------------------------------------------------
// Randomised interleaving, checked against the oracle at every stage.
// ---------------------------------------------------------------------------

TEST(UpdatableIndexTest, RandomisedInterleavingMatchesRebuildOracle) {
  const Dataset data = MakeClustered(250, 4, 8);
  const EkdbConfig config = Config(0.12, 8);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  Mirror mirror(data);
  Rng rng(23);

  for (int op = 0; op < 120; ++op) {
    const uint64_t kind = rng.UniformInt(10u);
    if (kind < 4) {
      const size_t count = 1 + rng.UniformInt(8u);
      const std::vector<float> rows = RandomRows(&rng, count, 4);
      auto first = (*index)->InsertBatch(rows.data(), count);
      ASSERT_TRUE(first.ok());
      mirror.Insert(*first, rows);
    } else if (kind < 8 && mirror.live.size() > 1) {
      const size_t victim = rng.UniformInt(mirror.live.size());
      const PointId id = mirror.live[victim].first;
      ASSERT_TRUE((*index)->Remove(id).ok()) << "id " << id;
      ASSERT_TRUE(mirror.Remove(id));
    } else if (kind == 8) {
      ASSERT_TRUE((*index)->Flush().ok());
    } else {
      const std::vector<float> probe = RandomRows(&rng, 1, 4);
      ExpectRangeMatchesOracle(**index, mirror, probe.data(), 0.1, config,
                               "interleaved probe");
    }
  }
  for (size_t threads : {1u, 2u, 4u}) {
    ExpectSelfJoinMatchesOracle(**index, mirror, 0.1, threads, config,
                                "interleaved");
  }
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

// Lifetime contract: the index co-owns the build dataset, so queries and
// compaction (which reads tier-zero rows off-lock) stay valid after every
// other owner of the dataset is gone — the DropIndex-during-compaction
// scenario.  Under ASan a regression here is a use-after-free.
TEST(UpdatableCompactionTest, SurvivesBuildDatasetOwnerDeath) {
  const EkdbConfig config = Config(0.12);
  std::shared_ptr<UpdatableIndex> index;
  Dataset data = MakeClustered(300, 4, 19);
  Mirror mirror(data);
  {
    auto shared = std::make_shared<const Dataset>(std::move(data));
    auto built = UpdatableIndex::Build(shared, config, 1, ManualCompaction());
    ASSERT_TRUE(built.ok());
    index = *built;
  }
  // The shared_ptr above was the only external reference to the rows.
  Rng rng(37);
  const std::vector<float> rows = RandomRows(&rng, 50, 4);
  auto first = index->InsertBatch(rows.data(), 50);
  ASSERT_TRUE(first.ok());
  mirror.Insert(*first, rows);
  ASSERT_TRUE(index->Remove(7).ok());
  ASSERT_TRUE(mirror.Remove(7));

  auto ran = index->Flush();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  const std::vector<float> probe = RandomRows(&rng, 1, 4);
  ExpectRangeMatchesOracle(*index, mirror, probe.data(), 0.1, config,
                           "after owner death");
  ExpectSelfJoinMatchesOracle(*index, mirror, 0.1, 1, config,
                              "after owner death");
}

TEST(UpdatableCompactionTest, FlushFoldsDeltaWithoutChangingAnswers) {
  const Dataset data = MakeClustered(300, 4, 9);
  const EkdbConfig config = Config(0.12);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());
  Mirror mirror(data);
  Rng rng(29);

  const std::vector<float> rows = RandomRows(&rng, 100, 4);
  auto first = (*index)->InsertBatch(rows.data(), 100);
  ASSERT_TRUE(first.ok());
  mirror.Insert(*first, rows);
  uint32_t removed = 0, missing = 0;
  const std::vector<PointId> dead = {0, 50, 310, 399};
  (*index)->RemoveBatch(dead.data(), dead.size(), &removed, &missing);
  ASSERT_EQ(removed, 4u);
  for (PointId id : dead) ASSERT_TRUE(mirror.Remove(id));

  std::vector<std::vector<PointId>> before(20);
  for (PointId q = 0; q < 20; ++q) {
    ASSERT_TRUE(
        (*index)->RangeQuery(data.Row(q), 0.1, &before[q], nullptr, nullptr)
            .ok());
  }

  EXPECT_GT((*index)->Stats().delta_bytes, 0u)
      << "a populated memtable must report a byte estimate";

  auto ran = (*index)->Flush();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  const UpdatableStats stats = (*index)->Stats();
  EXPECT_EQ(stats.delta_points, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.delta_bytes, 0u);
  EXPECT_EQ(stats.base_points, 300u + 100u - 4u);
  EXPECT_EQ(stats.live_points, stats.base_points);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.next_id, 400u) << "compaction must not reuse ids";

  for (PointId q = 0; q < 20; ++q) {
    std::vector<PointId> after;
    ASSERT_TRUE(
        (*index)->RangeQuery(data.Row(q), 0.1, &after, nullptr, nullptr).ok());
    EXPECT_EQ(after, before[q]) << "query " << q;
    EXPECT_EQ(after, OracleRange(mirror, data.Row(q), 0.1, config))
        << "query " << q;
  }
  ExpectSelfJoinMatchesOracle(**index, mirror, 0.1, 2, config, "post-flush");

  // Nothing left to fold: Flush reports it did not run.
  auto again = (*index)->Flush();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ((*index)->Stats().compactions, 1u);
}

TEST(UpdatableCompactionTest, CompactsToEmptyAndServesAgainAfterReinsert) {
  const Dataset data = MakeClustered(64, 3, 10);
  const EkdbConfig config = Config(0.15);
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, ManualCompaction());
  ASSERT_TRUE(index.ok());

  std::vector<PointId> all(64);
  for (PointId i = 0; i < 64; ++i) all[i] = i;
  uint32_t removed = 0, missing = 0;
  (*index)->RemoveBatch(all.data(), all.size(), &removed, &missing);
  ASSERT_EQ(removed, 64u);

  auto ran = (*index)->Flush();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  UpdatableStats stats = (*index)->Stats();
  EXPECT_EQ(stats.live_points, 0u);
  EXPECT_EQ(stats.base_points, 0u);
  EXPECT_EQ(stats.tombstones, 0u);

  // Queries and joins against the empty index return nothing, not errors.
  std::vector<PointId> out;
  ASSERT_TRUE(
      (*index)->RangeQuery(data.Row(0), 0.1, &out, nullptr, nullptr).ok());
  EXPECT_TRUE(out.empty());
  VectorSink sink;
  ASSERT_TRUE((*index)->SelfJoin(0.1, 1, &sink, nullptr).ok());
  EXPECT_TRUE(sink.pairs().empty());

  // The tier is reusable: new inserts land at fresh ids and are found.
  const std::vector<float> row = {0.5f, 0.5f, 0.5f};
  auto first = (*index)->InsertBatch(row.data(), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 64u);
  ASSERT_TRUE(
      (*index)->RangeQuery(row.data(), 0.1, &out, nullptr, nullptr).ok());
  EXPECT_EQ(out, std::vector<PointId>{64});
  ASSERT_TRUE((*index)->Flush().ok());
  EXPECT_EQ((*index)->Stats().base_points, 1u);
}

TEST(UpdatableCompactionTest, BackgroundCompactionTriggersAndNotifies) {
  const Dataset data = MakeClustered(256, 4, 11);
  const EkdbConfig config = Config(0.1);
  UpdatableConfig uc;
  uc.auto_compact = true;
  uc.compact_min_delta_points = 64;
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1, uc);
  ASSERT_TRUE(index.ok());
  std::atomic<int> notified{0};
  std::atomic<bool> positive_duration{true};
  (*index)->SetCompactionObserver([&](double seconds) {
    notified.fetch_add(1);
    if (seconds < 0.0) positive_duration.store(false);
  });

  Mirror mirror(data);
  Rng rng(31);
  const std::vector<float> rows = RandomRows(&rng, 128, 4);
  auto first = (*index)->InsertBatch(rows.data(), 128);
  ASSERT_TRUE(first.ok());
  mirror.Insert(*first, rows);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (((*index)->Stats().compactions == 0 ||
          (*index)->compaction_inflight()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const UpdatableStats stats = (*index)->Stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_GE(notified.load(), 1);
  EXPECT_TRUE(positive_duration.load());
  EXPECT_EQ(stats.live_points, 256u + 128u);

  for (PointId q = 0; q < 10; ++q) {
    ExpectRangeMatchesOracle(**index, mirror, data.Row(q), 0.08, config,
                             "post-background-compaction");
  }
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan by scripts/check_tsan.sh).
// ---------------------------------------------------------------------------

TEST(UpdatableConcurrencyTest, ConcurrentUpdatesQueriesAndCompactions) {
  const Dataset data = MakeClustered(400, 4, 12);
  const EkdbConfig config = Config(0.1, 8);
  UpdatableConfig uc;
  uc.auto_compact = true;
  uc.compact_min_delta_points = 128;  // several background merges per run
  auto index = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 2, uc);
  ASSERT_TRUE(index.ok());

  // One writer owns the id space; readers run solo queries, fused batches,
  // joins, and stats against whatever state they observe.  Correctness
  // here is "no data race, no crash, internally consistent results" — the
  // exact-answer check happens after the threads join.
  Mirror mirror(data);
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    Rng rng(37);
    for (int op = 0; op < 400; ++op) {
      if (rng.Bernoulli(0.6)) {
        const size_t count = 1 + rng.UniformInt(16u);
        const std::vector<float> rows = RandomRows(&rng, count, 4);
        auto first = (*index)->InsertBatch(rows.data(), count);
        ASSERT_TRUE(first.ok());
        mirror.Insert(*first, rows);
      } else if (mirror.live.size() > 1) {
        const PointId id =
            mirror.live[rng.UniformInt(mirror.live.size())].first;
        ASSERT_TRUE((*index)->Remove(id).ok());
        ASSERT_TRUE(mirror.Remove(id));
      }
      if (op % 97 == 0) ASSERT_TRUE((*index)->Flush().ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(100 + static_cast<uint64_t>(t));
      while (!stop.load()) {
        const std::vector<float> probe = RandomRows(&rng, 4, 4);
        std::vector<PointId> out;
        ASSERT_TRUE(
            (*index)->RangeQuery(probe.data(), 0.08, &out, nullptr, nullptr)
                .ok());
        ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
        ASSERT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
        RangeQuerySpec specs[4];
        for (int i = 0; i < 4; ++i) specs[i] = {probe.data() + i * 4, 0.08};
        std::vector<std::vector<PointId>> fused;
        ASSERT_TRUE(
            (*index)->RangeQueryBatch(specs, 4, &fused, nullptr, nullptr)
                .ok());
        if (t == 0) {
          CountingSink sink;
          ASSERT_TRUE((*index)->SelfJoin(0.05, 2, &sink, nullptr).ok());
        }
        const UpdatableStats s = (*index)->Stats();
        ASSERT_LE(s.live_points, s.base_points + s.delta_points);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesce and verify the final state exactly.
  ASSERT_TRUE((*index)->Flush().ok());
  for (PointId q = 0; q < 10; ++q) {
    ExpectRangeMatchesOracle(**index, mirror, data.Row(q), 0.08, config,
                             "post-concurrency");
  }
  ExpectSelfJoinMatchesOracle(**index, mirror, 0.08, 4, config,
                              "post-concurrency");
}

}  // namespace
}  // namespace simjoin
