#include "core/dbscan.h"

#include <map>
#include <queue>
#include <set>

#include "common/rng.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

DbscanConfig Config(double epsilon, size_t min_pts) {
  DbscanConfig config;
  config.epsilon = epsilon;
  config.min_pts = min_pts;
  return config;
}

// Reference DBSCAN: brute-force neighbourhoods + BFS over core points,
// with the same deterministic border rule (lowest-id core neighbour).
DbscanResult ReferenceDbscan(const Dataset& data, const DbscanConfig& config) {
  DistanceKernel kernel(config.metric);
  const size_t n = data.size();
  std::vector<std::vector<PointId>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (kernel.WithinEpsilon(data.Row(static_cast<PointId>(i)),
                               data.Row(static_cast<PointId>(j)), data.dims(),
                               config.epsilon)) {
        neighbors[i].push_back(static_cast<PointId>(j));
        neighbors[j].push_back(static_cast<PointId>(i));
      }
    }
  }
  DbscanResult result;
  result.is_core.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    result.is_core[i] = neighbors[i].size() + 1 >= config.min_pts;
  }
  result.labels.assign(n, kDbscanNoise);
  int32_t next = 0;
  for (size_t s = 0; s < n; ++s) {
    if (!result.is_core[s] || result.labels[s] != kDbscanNoise) continue;
    const int32_t label = next++;
    std::queue<size_t> frontier;
    frontier.push(s);
    result.labels[s] = label;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop();
      for (PointId v : neighbors[u]) {
        if (!result.is_core[v] || result.labels[v] != kDbscanNoise) continue;
        result.labels[v] = label;
        frontier.push(v);
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next);
  for (size_t i = 0; i < n; ++i) {
    if (result.is_core[i]) continue;
    PointId anchor = UINT32_MAX;
    for (PointId v : neighbors[i]) {
      if (result.is_core[v]) anchor = std::min(anchor, v);
    }
    if (anchor != UINT32_MAX) result.labels[i] = result.labels[anchor];
  }
  for (int32_t label : result.labels) {
    result.noise_points += (label == kDbscanNoise);
  }
  return result;
}

void ExpectSameClustering(const DbscanResult& expected,
                          const DbscanResult& actual) {
  ASSERT_EQ(expected.labels.size(), actual.labels.size());
  EXPECT_EQ(expected.num_clusters, actual.num_clusters);
  EXPECT_EQ(expected.noise_points, actual.noise_points);
  EXPECT_EQ(expected.is_core, actual.is_core);
  // Labels must match up to a bijection (both are deterministic dense
  // labelings but may enumerate components in different orders).
  std::map<int32_t, int32_t> fwd, bwd;
  for (size_t i = 0; i < expected.labels.size(); ++i) {
    const int32_t e = expected.labels[i];
    const int32_t a = actual.labels[i];
    EXPECT_EQ(e == kDbscanNoise, a == kDbscanNoise) << "point " << i;
    if (e == kDbscanNoise) continue;
    auto [it1, unused1] = fwd.emplace(e, a);
    EXPECT_EQ(it1->second, a) << "point " << i;
    auto [it2, unused2] = bwd.emplace(a, e);
    EXPECT_EQ(it2->second, e) << "point " << i;
  }
}

TEST(DbscanTest, RejectsBadArgs) {
  Dataset empty;
  EXPECT_FALSE(Dbscan(empty, Config(0.1, 3)).ok());
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 1});
  EXPECT_FALSE(Dbscan(*data, Config(0.1, 0)).ok());
  EXPECT_FALSE(Dbscan(*data, Config(0.0, 3)).ok());
}

TEST(DbscanTest, TwoBlobsAndNoiseSeparate) {
  // Two tight blobs plus isolated points.
  Dataset ds;
  Rng rng(2);
  for (int i = 0; i < 60; ++i) {
    ds.Append(std::vector<float>{0.2f + static_cast<float>(rng.Gaussian(0, 0.01)),
                                 0.2f + static_cast<float>(rng.Gaussian(0, 0.01))});
  }
  for (int i = 0; i < 60; ++i) {
    ds.Append(std::vector<float>{0.8f + static_cast<float>(rng.Gaussian(0, 0.01)),
                                 0.8f + static_cast<float>(rng.Gaussian(0, 0.01))});
  }
  ds.Append(std::vector<float>{0.5f, 0.05f});  // isolated
  ds.Append(std::vector<float>{0.05f, 0.9f});  // isolated
  for (size_t i = 0; i < ds.size(); ++i) {
    float* row = ds.MutableRow(static_cast<PointId>(i));
    for (int d = 0; d < 2; ++d) row[d] = std::min(1.0f, std::max(0.0f, row[d]));
  }
  auto result = Dbscan(ds, Config(0.05, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2u);
  EXPECT_EQ(result->noise_points, 2u);
  EXPECT_EQ(result->labels[0], result->labels[30]);
  EXPECT_EQ(result->labels[60], result->labels[90]);
  EXPECT_NE(result->labels[0], result->labels[60]);
  EXPECT_EQ(result->labels[120], kDbscanNoise);
  EXPECT_EQ(result->labels[121], kDbscanNoise);
}

TEST(DbscanTest, MinPtsOneMakesEverythingCore) {
  auto data = GenerateUniform({.n = 100, .dims = 3, .seed = 3});
  auto result = Dbscan(*data, Config(0.05, 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->noise_points, 0u);
  for (bool core : result->is_core) EXPECT_TRUE(core);
}

TEST(DbscanTest, HugeMinPtsMakesEverythingNoise) {
  auto data = GenerateUniform({.n = 100, .dims = 3, .seed = 4});
  auto result = Dbscan(*data, Config(0.05, 1000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  EXPECT_EQ(result->noise_points, 100u);
}

class DbscanPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(DbscanPropertyTest, MatchesReferenceImplementation) {
  const auto [epsilon, min_pts] = GetParam();
  for (uint64_t seed : {5u, 6u}) {
    auto data = GenerateClustered({.n = 400, .dims = 3, .clusters = 5,
                                   .sigma = 0.03, .noise_fraction = 0.15,
                                   .seed = seed});
    ASSERT_TRUE(data.ok());
    const DbscanConfig config = Config(epsilon, min_pts);
    auto result = Dbscan(*data, config);
    ASSERT_TRUE(result.ok());
    ExpectSameClustering(ReferenceDbscan(*data, config), *result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanPropertyTest,
    ::testing::Combine(::testing::Values(0.03, 0.08), ::testing::Values(3u, 8u)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_minpts" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace simjoin
