// Randomized stress test of dynamic eps-k-d-B tree maintenance: a long
// interleaving of inserts, removals, range queries, and full self-joins is
// checked against a naive mirror (a set of live ids + brute force).

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

class DynamicStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicStressTest, RandomOpSequencesStayConsistent) {
  Rng rng(GetParam());
  const size_t dims = 1 + rng.UniformInt(5u);
  const double epsilon = rng.Uniform(0.03, 0.25);
  DistanceKernel kernel(Metric::kL2);

  // Backing dataset grows append-only; `live` tracks which ids are in the
  // tree right now.
  Dataset data;
  data.Append(std::vector<float>(dims, 0.5f));
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 1 + rng.UniformInt(32u);
  auto tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(tree.ok());
  std::set<PointId> live{0};

  const int ops = 600;
  for (int op = 0; op < ops; ++op) {
    const uint64_t roll = rng.UniformInt(100u);
    if (roll < 45 || live.size() < 3) {
      // Insert a fresh point.
      std::vector<float> row(dims);
      for (auto& v : row) v = rng.UniformFloat();
      data.Append(row);
      const PointId id = static_cast<PointId>(data.size() - 1);
      ASSERT_TRUE(tree->Insert(id).ok());
      live.insert(id);
    } else if (roll < 75) {
      // Remove a random live point.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(live.size())));
      ASSERT_TRUE(tree->Remove(*it).ok());
      live.erase(it);
    } else if (roll < 90) {
      // Range query from a random location vs linear scan over live ids.
      std::vector<float> query(dims);
      for (auto& v : query) v = rng.UniformFloat();
      const double radius = rng.Uniform(0.2, 1.0) * epsilon;
      std::vector<PointId> got;
      ASSERT_TRUE(tree->RangeQuery(query.data(), radius, &got).ok());
      std::sort(got.begin(), got.end());
      std::vector<PointId> expected;
      for (PointId id : live) {
        if (kernel.WithinEpsilon(query.data(), data.Row(id), dims, radius)) {
          expected.push_back(id);
        }
      }
      ASSERT_EQ(got, expected) << "op " << op;
    } else {
      // Full self-join vs brute force over live ids.
      VectorSink sink;
      ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
      std::vector<IdPair> expected;
      for (auto i = live.begin(); i != live.end(); ++i) {
        for (auto j = std::next(i); j != live.end(); ++j) {
          if (kernel.WithinEpsilon(data.Row(*i), data.Row(*j), dims, epsilon)) {
            expected.emplace_back(*i, *j);
          }
        }
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(sink.Sorted(), expected) << "op " << op;
    }
    // Structural bookkeeping must track the live set exactly.
    if (op % 100 == 0) {
      ASSERT_EQ(tree->ComputeStats().total_points, live.size()) << "op " << op;
    }
  }
  EXPECT_EQ(tree->ComputeStats().total_points, live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicStressTest,
                         ::testing::Values(101, 202, 303, 404),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace simjoin
