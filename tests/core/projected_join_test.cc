// Tests for PCA (fit/project) and the PCA-filtered exact join.

#include "core/projected_join.h"

#include <cmath>

#include "common/metric.h"
#include "common/pca.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

// ---------------------------------------------------------------------------
// PCA.
// ---------------------------------------------------------------------------

TEST(PcaTest, RejectsBadArgs) {
  Dataset empty;
  EXPECT_FALSE(FitPca(empty, 1).ok());
  auto data = GenerateUniform({.n = 50, .dims = 4, .seed = 1});
  EXPECT_FALSE(FitPca(*data, 0).ok());
  EXPECT_FALSE(FitPca(*data, 5).ok());
  EXPECT_FALSE(FitPca(*data, 2, 0).ok());
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 6, .clusters = 4, .sigma = 0.05, .seed = 2});
  auto model = FitPca(*data, 4);
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      double dot = 0.0;
      for (size_t d = 0; d < 6; ++d) {
        dot += model->components[i * 6 + d] * model->components[j * 6 + d];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
  EXPECT_GT(model->ExplainedVarianceRatio(), 0.0);
  EXPECT_LE(model->ExplainedVarianceRatio(), 1.0 + 1e-9);
}

TEST(PcaTest, RankKCloudIsFullyExplainedByKComponents) {
  auto data = GenerateCorrelated(
      {.n = 4000, .dims = 12, .intrinsic_dims = 2, .noise = 0.0, .seed = 3});
  ASSERT_TRUE(data.ok());
  auto model = FitPca(*data, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->ExplainedVarianceRatio(), 0.999)
      << "a rank-2 cloud must be captured by 2 components";
}

TEST(PcaTest, ProjectionContractsL2Distances) {
  // The exactness of the filtered join rests on this property.
  auto data = GenerateClustered(
      {.n = 300, .dims = 8, .clusters = 5, .sigma = 0.06, .seed = 4});
  auto model = FitPca(*data, 3);
  ASSERT_TRUE(model.ok());
  auto projected = ProjectDataset(*model, *data);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->dims(), 3u);
  EXPECT_EQ(projected->size(), data->size());
  DistanceKernel l2(Metric::kL2);
  for (PointId a = 0; a < 50; ++a) {
    for (PointId b = a + 1; b < 50; ++b) {
      const double full = l2.Distance(data->Row(a), data->Row(b), 8);
      const double proj = l2.Distance(projected->Row(a), projected->Row(b), 3);
      EXPECT_LE(proj, full + 1e-5) << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(PcaTest, ProjectDatasetRejectsDimsMismatch) {
  auto data = GenerateUniform({.n = 20, .dims = 4, .seed = 5});
  auto model = FitPca(*data, 2);
  ASSERT_TRUE(model.ok());
  auto other = GenerateUniform({.n = 20, .dims = 5, .seed = 6});
  EXPECT_FALSE(ProjectDataset(*model, *other).ok());
}

// ---------------------------------------------------------------------------
// PCA-filtered join.
// ---------------------------------------------------------------------------

TEST(PcaFilteredJoinTest, RejectsBadArgs) {
  Dataset one;
  one.Append(std::vector<float>{0.5f, 0.5f});
  CountingSink sink;
  EXPECT_FALSE(PcaFilteredSelfJoin(one, 0.1, {}, &sink).ok());
  auto data = GenerateUniform({.n = 50, .dims = 4, .seed = 7});
  EXPECT_FALSE(PcaFilteredSelfJoin(*data, 0.0, {}, &sink).ok());
  EXPECT_FALSE(PcaFilteredSelfJoin(*data, 0.1, {}, nullptr).ok());
  ProjectedJoinConfig bad;
  bad.projected_dims = 9;
  EXPECT_FALSE(PcaFilteredSelfJoin(*data, 0.1, bad, &sink).ok());
}

class PcaFilteredJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(PcaFilteredJoinPropertyTest, ExactOnCorrelatedData) {
  const auto [k, epsilon] = GetParam();
  auto data = GenerateCorrelated(
      {.n = 800, .dims = 16, .intrinsic_dims = 3, .noise = 0.01, .seed = 8});
  ASSERT_TRUE(data.ok());
  ProjectedJoinConfig config;
  config.projected_dims = k;
  VectorSink sink;
  ProjectedJoinReport report;
  ASSERT_TRUE(
      PcaFilteredSelfJoin(*data, epsilon, config, &sink, &report).ok());
  ExpectSamePairs(OracleSelfJoin(*data, epsilon, Metric::kL2), sink.Sorted(),
                  "pca filtered");
  EXPECT_GE(report.candidate_pairs, report.emitted_pairs);
  EXPECT_EQ(report.emitted_pairs, sink.pairs().size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PcaFilteredJoinPropertyTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{3}, size_t{8},
                                         size_t{16}),
                       ::testing::Values(0.03, 0.1)),
    [](const auto& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param) * 1000));
    });

TEST(PcaFilteredJoinTest, ExactOnUniformAndClusteredData) {
  // Even when PCA explains little (uniform data), the join must stay exact.
  for (uint64_t seed : {9u, 10u}) {
    auto uniform = GenerateUniform({.n = 500, .dims = 6, .seed = seed});
    ASSERT_TRUE(uniform.ok());
    ProjectedJoinConfig config;
    config.projected_dims = 2;
    VectorSink sink;
    ASSERT_TRUE(PcaFilteredSelfJoin(*uniform, 0.25, config, &sink).ok());
    ExpectSamePairs(OracleSelfJoin(*uniform, 0.25, Metric::kL2), sink.Sorted(),
                    "uniform");
  }
}

TEST(PcaFilteredJoinTest, DegenerateAllDuplicatePointsHandled) {
  Dataset ds;
  for (int i = 0; i < 80; ++i) ds.Append(std::vector<float>{0.4f, 0.6f, 0.1f});
  ProjectedJoinConfig config;
  config.projected_dims = 2;
  CountingSink sink;
  ASSERT_TRUE(PcaFilteredSelfJoin(ds, 0.05, config, &sink).ok());
  EXPECT_EQ(sink.count(), 80u * 79u / 2u);
}

TEST(PcaFilteredJoinTest, MoreComponentsTightenTheFilter) {
  auto data = GenerateCorrelated(
      {.n = 1500, .dims = 24, .intrinsic_dims = 4, .noise = 0.02, .seed = 11});
  ASSERT_TRUE(data.ok());
  ProjectedJoinReport coarse, fine;
  CountingSink s1, s2;
  ProjectedJoinConfig c1, c2;
  c1.projected_dims = 1;
  c2.projected_dims = 6;
  ASSERT_TRUE(PcaFilteredSelfJoin(*data, 0.05, c1, &s1, &coarse).ok());
  ASSERT_TRUE(PcaFilteredSelfJoin(*data, 0.05, c2, &s2, &fine).ok());
  EXPECT_EQ(s1.count(), s2.count());  // exact either way
  EXPECT_LE(fine.candidate_pairs, coarse.candidate_pairs);
  EXPECT_GE(fine.explained_variance, coarse.explained_variance);
}

}  // namespace
}  // namespace simjoin
