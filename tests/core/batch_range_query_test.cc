// Differential tests of fused batch range queries against independent solo
// execution.  RangeQueryBatch promises bit-identical per-query id sequences
// AND bit-identical per-query JoinStats, on every kernel dispatch tier — the
// property the service-layer fusion engine is built on.

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_tree.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon, Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  config.metric = metric;
  return config;
}

Dataset UniformData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform());
    }
  }
  return data;
}

FlatEkdbTree BuildFlat(const Dataset& data, const EkdbConfig& config) {
  auto tree = EkdbTree::Build(data, config);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  auto flat = FlatEkdbTree::FromTree(*tree);
  EXPECT_TRUE(flat.ok()) << flat.status().ToString();
  return std::move(flat).value();
}

void ExpectSameStats(const JoinStats& a, const JoinStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs) << label;
  EXPECT_EQ(a.distance_calls, b.distance_calls) << label;
  EXPECT_EQ(a.node_pairs_visited, b.node_pairs_visited) << label;
  EXPECT_EQ(a.node_pairs_pruned, b.node_pairs_pruned) << label;
  EXPECT_EQ(a.pairs_emitted, b.pairs_emitted) << label;
  EXPECT_EQ(a.simd_batches, b.simd_batches) << label;
  EXPECT_EQ(a.scalar_fallbacks, b.scalar_fallbacks) << label;
}

/// Runs every spec solo, runs the same specs fused, and checks per-query
/// output sequences and stats for exact equality.
void RunDifferential(const FlatEkdbTree& flat,
                     const std::vector<RangeQuerySpec>& specs,
                     const std::string& label) {
  std::vector<std::vector<PointId>> solo(specs.size());
  std::vector<JoinStats> solo_stats(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const Status st = flat.RangeQuery(specs[i].query, specs[i].epsilon,
                                      &solo[i], &solo_stats[i]);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  std::vector<std::vector<PointId>> fused;
  std::vector<JoinStats> fused_stats;
  const Status st =
      flat.RangeQueryBatch(specs.data(), specs.size(), &fused, &fused_stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(fused.size(), specs.size());
  ASSERT_EQ(fused_stats.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const std::string at = label + " query " + std::to_string(i);
    // Exact sequence equality, not set equality: fusion must preserve the
    // solo traversal's emission order.
    EXPECT_EQ(solo[i], fused[i]) << at;
    ExpectSameStats(solo_stats[i], fused_stats[i], at);
  }
}

std::vector<RangeQuerySpec> MakeSpecs(const Dataset& data, size_t count,
                                      double build_eps, uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuerySpec> specs;
  for (size_t i = 0; i < count; ++i) {
    const auto id = static_cast<PointId>((i * 37) % data.size());
    // Mixed radii exercise the batch kernel's SetEpsilon re-binding.
    const double eps = (i % 3 == 0) ? build_eps : build_eps * (0.3 + 0.5 * rng.Uniform());
    specs.push_back(RangeQuerySpec{data.Row(id), eps});
  }
  return specs;
}

TEST(BatchRangeQueryTest, FusedMatchesSoloAcrossDimsAndMetrics) {
  for (const size_t dims : {2, 8, 16}) {
    for (const Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
      const double eps = 0.15;
      const Dataset data = UniformData(1500, dims, 0xba7c + dims);
      const FlatEkdbTree flat = BuildFlat(data, Config(eps, metric));
      const auto specs = MakeSpecs(data, 96, eps, 0x5eed + dims);
      RunDifferential(flat, specs,
                      "d" + std::to_string(dims) + " " + MetricName(metric));
    }
  }
}

TEST(BatchRangeQueryTest, FusedMatchesSoloOnEveryKernelPath) {
  const double eps = 0.12;
  const Dataset data = UniformData(1200, 16, 0xfeed);
  const FlatEkdbTree flat = BuildFlat(data, Config(eps));
  const auto specs = MakeSpecs(data, 64, eps, 0xcafe);
  for (const char* path : {"scalar", "portable", "avx2", "avx512"}) {
    ASSERT_EQ(setenv("SIMJOIN_KERNEL_PATH", path, 1), 0);
    RunDifferential(flat, specs, std::string("path=") + path);
  }
  unsetenv("SIMJOIN_KERNEL_PATH");
}

TEST(BatchRangeQueryTest, EmptyAndSingletonBatches) {
  const double eps = 0.1;
  const Dataset data = UniformData(300, 4, 0x11);
  const FlatEkdbTree flat = BuildFlat(data, Config(eps));

  std::vector<std::vector<PointId>> results = {{1, 2, 3}};
  std::vector<JoinStats> stats;
  ASSERT_TRUE(flat.RangeQueryBatch(nullptr, 0, &results, &stats).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(stats.empty());

  const RangeQuerySpec one{data.Row(0), eps};
  ASSERT_TRUE(flat.RangeQueryBatch(&one, 1, &results, &stats).ok());
  ASSERT_EQ(results.size(), 1u);
  std::vector<PointId> solo;
  ASSERT_TRUE(flat.RangeQuery(one.query, one.epsilon, &solo).ok());
  EXPECT_EQ(results[0], solo);
}

TEST(BatchRangeQueryTest, RejectsInvalidSpecsUpFront) {
  const double eps = 0.1;
  const Dataset data = UniformData(200, 4, 0x22);
  const FlatEkdbTree flat = BuildFlat(data, Config(eps));

  std::vector<std::vector<PointId>> results;
  const RangeQuerySpec bad_eps[] = {{data.Row(0), eps}, {data.Row(1), eps * 2}};
  EXPECT_FALSE(flat.RangeQueryBatch(bad_eps, 2, &results, nullptr).ok());
  const RangeQuerySpec null_query[] = {{nullptr, eps}};
  EXPECT_FALSE(flat.RangeQueryBatch(null_query, 1, &results, nullptr).ok());
  EXPECT_FALSE(flat.RangeQueryBatch(bad_eps, 2, nullptr, nullptr).ok());
  // The factored validator answers exactly like RangeQuery would.
  EXPECT_TRUE(flat.ValidateQueryEpsilon(eps).ok());
  EXPECT_FALSE(flat.ValidateQueryEpsilon(0.0).ok());
  EXPECT_FALSE(flat.ValidateQueryEpsilon(eps * 1.5).ok());
}

/// Duplicate specs (same pointer, same radius) must each get the full solo
/// answer — fusion must not dedup or cross-wire queries.
TEST(BatchRangeQueryTest, DuplicateQueriesEachGetFullResults) {
  const double eps = 0.2;
  const Dataset data = UniformData(600, 8, 0x33);
  const FlatEkdbTree flat = BuildFlat(data, Config(eps));
  std::vector<RangeQuerySpec> specs(8, RangeQuerySpec{data.Row(5), eps});
  RunDifferential(flat, specs, "duplicates");
}

}  // namespace
}  // namespace simjoin
