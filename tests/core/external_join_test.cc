#include "core/external_join.h"

#include <cstdio>
#include <filesystem>

#include "common/binary_io.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

class ExternalJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "/extjoin";
    std::filesystem::create_directories(temp_dir_);
  }

  std::string WriteInput(const Dataset& data, const std::string& name) {
    const std::string path = temp_dir_ + "/" + name;
    EXPECT_TRUE(WriteBinaryDataset(data, path).ok());
    inputs_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : inputs_) std::remove(p.c_str());
  }

  ExternalJoinConfig Config(double epsilon, size_t budget) {
    ExternalJoinConfig config;
    config.ekdb.epsilon = epsilon;
    config.ekdb.leaf_threshold = 16;
    config.temp_dir = temp_dir_;
    config.memory_budget_points = budget;
    config.io_batch_points = 128;  // force many streaming batches
    return config;
  }

  std::string temp_dir_;
  std::vector<std::string> inputs_;
};

TEST_F(ExternalJoinTest, MatchesInMemoryJoinUnderTinyBudget) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 4, .clusters = 6, .sigma = 0.05, .seed = 1});
  ASSERT_TRUE(data.ok());
  const std::string input = WriteInput(*data, "clustered.sjdb");

  VectorSink sink;
  JoinStats stats;
  ExternalJoinReport report;
  ASSERT_TRUE(ExternalSelfJoin(input, Config(0.05, 600), &sink, &stats,
                               &report)
                  .ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.05, Metric::kL2), sink.Sorted(),
                  "external vs oracle");
  EXPECT_GT(report.partitions, 1u) << "tiny budget must force partitioning";
  EXPECT_EQ(report.total_points, 2000u);
  EXPECT_GT(report.bytes_spilled, 0u);
  EXPECT_LE(report.peak_resident_points, 2000u);
  EXPECT_EQ(stats.pairs_emitted, sink.pairs().size());
}

TEST_F(ExternalJoinTest, SinglePartitionWhenBudgetIsLarge) {
  auto data = GenerateUniform({.n = 500, .dims = 3, .seed = 2});
  const std::string input = WriteInput(*data, "uniform.sjdb");
  VectorSink sink;
  ExternalJoinReport report;
  ASSERT_TRUE(
      ExternalSelfJoin(input, Config(0.1, 1 << 20), &sink, nullptr, &report)
          .ok());
  EXPECT_EQ(report.partitions, 1u);
  ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                  "single partition");
}

TEST_F(ExternalJoinTest, SweepOverBudgetsStaysExact) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 5, .clusters = 4, .sigma = 0.04, .seed = 3});
  const std::string input = WriteInput(*data, "sweep.sjdb");
  const auto expected = OracleSelfJoin(*data, 0.07, Metric::kL2);
  for (size_t budget : {64u, 300u, 1000u, 5000u}) {
    VectorSink sink;
    ASSERT_TRUE(ExternalSelfJoin(input, Config(0.07, budget), &sink).ok())
        << "budget " << budget;
    ExpectSamePairs(expected, sink.Sorted(),
                    ("budget " + std::to_string(budget)).c_str());
  }
}

TEST_F(ExternalJoinTest, BoundaryPairsAcrossPartitionsFound) {
  // Construct points hugging a stripe boundary so the joining pairs span
  // partitions; with budget 2 every stripe is its own partition.
  Dataset ds;
  ds.Append(std::vector<float>{0.099f, 0.5f});
  ds.Append(std::vector<float>{0.101f, 0.5f});
  ds.Append(std::vector<float>{0.199f, 0.5f});
  ds.Append(std::vector<float>{0.201f, 0.5f});
  ds.Append(std::vector<float>{0.95f, 0.5f});
  const std::string input = WriteInput(ds, "boundary.sjdb");
  VectorSink sink;
  ExternalJoinReport report;
  ASSERT_TRUE(
      ExternalSelfJoin(input, Config(0.1, 4), &sink, nullptr, &report).ok());
  ExpectSamePairs(OracleSelfJoin(ds, 0.1, Metric::kL2), sink.Sorted(),
                  "partition boundary");
  EXPECT_GT(report.partitions, 1u);
}

TEST_F(ExternalJoinTest, CrossJoinMatchesOracleUnderTinyBudget) {
  auto a = GenerateClustered(
      {.n = 1200, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 31});
  auto b = GenerateClustered(
      {.n = 900, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 32});
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string path_a = WriteInput(*a, "cross_a.sjdb");
  const std::string path_b = WriteInput(*b, "cross_b.sjdb");

  const auto expected = testing_util::OracleJoin(*a, *b, 0.06, Metric::kL2);
  for (size_t budget : {100u, 700u, 1u << 20}) {
    VectorSink sink;
    ExternalJoinReport report;
    ASSERT_TRUE(ExternalJoin(path_a, path_b, Config(0.06, budget), &sink,
                             nullptr, &report)
                    .ok())
        << "budget " << budget;
    ExpectSamePairs(expected, sink.Sorted(),
                    ("cross budget " + std::to_string(budget)).c_str());
    EXPECT_EQ(report.total_points, 2100u);
  }
}

TEST_F(ExternalJoinTest, CrossJoinBoundarySpanningPairs) {
  // A's points hug stripe boundaries from below, B's from above.
  Dataset a, b;
  for (int s = 0; s < 5; ++s) {
    a.Append(std::vector<float>{0.1f * static_cast<float>(s + 1) - 0.003f, 0.5f});
    b.Append(std::vector<float>{0.1f * static_cast<float>(s + 1) + 0.003f, 0.5f});
  }
  const std::string path_a = WriteInput(a, "edge_a.sjdb");
  const std::string path_b = WriteInput(b, "edge_b.sjdb");
  VectorSink sink;
  ASSERT_TRUE(ExternalJoin(path_a, path_b, Config(0.1, 4), &sink).ok());
  ExpectSamePairs(testing_util::OracleJoin(a, b, 0.1, Metric::kL2),
                  sink.Sorted(), "cross boundary");
}

TEST_F(ExternalJoinTest, CrossJoinRejectsDimensionMismatch) {
  auto a = GenerateUniform({.n = 50, .dims = 3, .seed = 33});
  auto b = GenerateUniform({.n = 50, .dims = 4, .seed = 34});
  const std::string path_a = WriteInput(*a, "mismatch_a.sjdb");
  const std::string path_b = WriteInput(*b, "mismatch_b.sjdb");
  VectorSink sink;
  EXPECT_FALSE(ExternalJoin(path_a, path_b, Config(0.1, 100), &sink).ok());
}

TEST_F(ExternalJoinTest, RejectsBadArguments) {
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 4});
  const std::string input = WriteInput(*data, "args.sjdb");
  VectorSink sink;

  EXPECT_FALSE(ExternalSelfJoin(input, Config(0.1, 100), nullptr).ok());

  ExternalJoinConfig no_dir = Config(0.1, 100);
  no_dir.temp_dir = temp_dir_ + "/does_not_exist";
  EXPECT_FALSE(ExternalSelfJoin(input, no_dir, &sink).ok());

  ExternalJoinConfig bad_eps = Config(0.0, 100);
  EXPECT_FALSE(ExternalSelfJoin(input, bad_eps, &sink).ok());

  EXPECT_EQ(
      ExternalSelfJoin(temp_dir_ + "/missing.sjdb", Config(0.1, 100), &sink)
          .code(),
      StatusCode::kIoError);
}

TEST_F(ExternalJoinTest, RejectsUnnormalisedInput) {
  Dataset ds;
  ds.Append(std::vector<float>{0.5f, 1.7f});
  const std::string input = WriteInput(ds, "unnormalised.sjdb");
  VectorSink sink;
  const Status st = ExternalSelfJoin(input, Config(0.1, 100), &sink);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(ExternalJoinTest, SpillFilesAreCleanedUp) {
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 5});
  const std::string input = WriteInput(*data, "cleanup.sjdb");
  VectorSink sink;
  ASSERT_TRUE(ExternalSelfJoin(input, Config(0.1, 100), &sink).ok());
  size_t leftover = 0;
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir_)) {
    if (entry.path().string().find(".spill") != std::string::npos) ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
}

}  // namespace
}  // namespace simjoin
