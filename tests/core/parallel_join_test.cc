#include "core/parallel_join.h"

#include "core/ekdb_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

TEST(ParallelJoinTest, NullSinkRejected) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 1});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(ParallelEkdbSelfJoin(*tree, {}, nullptr).ok());
}

TEST(ParallelJoinTest, ZeroMinTaskPointsRejected) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 1});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  ParallelJoinConfig cfg;
  cfg.min_task_points = 0;
  EXPECT_FALSE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
}

class ParallelJoinThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelJoinThreadsTest, MatchesSequentialPairSet) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 5, .clusters = 8, .sigma = 0.03, .seed = 5});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08, 16));
  ASSERT_TRUE(tree.ok());

  VectorSink sequential;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sequential).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 100;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &parallel, &stats).ok());

  ExpectSamePairs(sequential.Sorted(), parallel.Sorted(), "parallel");
  EXPECT_EQ(stats.pairs_emitted, parallel.pairs().size());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelJoinThreadsTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

class ParallelCrossJoinTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelCrossJoinTest, MatchesSequentialCrossJoin) {
  auto a = GenerateClustered(
      {.n = 900, .dims = 4, .clusters = 6, .sigma = 0.04, .seed = 20});
  auto b = GenerateClustered(
      {.n = 700, .dims = 4, .clusters = 6, .sigma = 0.04, .seed = 21});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = EkdbTree::Build(*a, Config(0.07, 16));
  auto tb = EkdbTree::Build(*b, Config(0.07, 16));
  ASSERT_TRUE(ta.ok() && tb.ok());

  VectorSink sequential;
  ASSERT_TRUE(EkdbJoin(*ta, *tb, &sequential).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 150;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelEkdbJoin(*ta, *tb, cfg, &parallel, &stats).ok());
  ExpectSamePairs(sequential.Sorted(), parallel.Sorted(), "parallel cross");
  EXPECT_EQ(stats.pairs_emitted, parallel.pairs().size());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelCrossJoinTest,
                         ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelCrossJoinTest, RejectsIncompatibleTrees) {
  auto a = GenerateUniform({.n = 50, .dims = 3, .seed = 22});
  auto b = GenerateUniform({.n = 50, .dims = 3, .seed = 23});
  auto ta = EkdbTree::Build(*a, Config(0.1));
  auto tb = EkdbTree::Build(*b, Config(0.2));
  ASSERT_TRUE(ta.ok() && tb.ok());
  CountingSink sink;
  EXPECT_FALSE(ParallelEkdbJoin(*ta, *tb, {}, &sink).ok());
}

TEST(ParallelJoinTest, SingleLeafTreeStillWorks) {
  auto data = GenerateUniform({.n = 200, .dims = 3, .seed = 6});
  auto tree = EkdbTree::Build(*data, Config(0.1, 100000));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->root()->is_leaf());
  VectorSink sink;
  ParallelJoinConfig cfg;
  cfg.num_threads = 4;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                  "single leaf");
}

TEST(ParallelJoinTest, TinyTaskGranularityStaysExact) {
  auto data = GenerateUniform({.n = 800, .dims = 4, .seed = 7});
  auto tree = EkdbTree::Build(*data, Config(0.12, 8));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ParallelJoinConfig cfg;
  cfg.num_threads = 3;
  cfg.min_task_points = 1;  // maximally fragmented task list
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.12, Metric::kL2), sink.Sorted(),
                  "fragmented");
}

}  // namespace
}  // namespace simjoin
