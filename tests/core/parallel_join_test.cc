#include "core/parallel_join.h"

#include <random>

#include "common/thread_pool.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

TEST(ParallelJoinTest, NullSinkRejected) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 1});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(ParallelEkdbSelfJoin(*tree, {}, nullptr).ok());
}

TEST(ParallelJoinTest, ZeroMinTaskPointsRejected) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 1});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  ParallelJoinConfig cfg;
  cfg.min_task_points = 0;
  EXPECT_FALSE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
}

class ParallelJoinThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelJoinThreadsTest, MatchesSequentialPairSet) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 5, .clusters = 8, .sigma = 0.03, .seed = 5});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08, 16));
  ASSERT_TRUE(tree.ok());

  VectorSink sequential;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sequential).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 100;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &parallel, &stats).ok());

  ExpectSamePairs(sequential.Sorted(), parallel.Sorted(), "parallel");
  EXPECT_EQ(stats.pairs_emitted, parallel.pairs().size());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelJoinThreadsTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

class ParallelCrossJoinTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelCrossJoinTest, MatchesSequentialCrossJoin) {
  auto a = GenerateClustered(
      {.n = 900, .dims = 4, .clusters = 6, .sigma = 0.04, .seed = 20});
  auto b = GenerateClustered(
      {.n = 700, .dims = 4, .clusters = 6, .sigma = 0.04, .seed = 21});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = EkdbTree::Build(*a, Config(0.07, 16));
  auto tb = EkdbTree::Build(*b, Config(0.07, 16));
  ASSERT_TRUE(ta.ok() && tb.ok());

  VectorSink sequential;
  ASSERT_TRUE(EkdbJoin(*ta, *tb, &sequential).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 150;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelEkdbJoin(*ta, *tb, cfg, &parallel, &stats).ok());
  ExpectSamePairs(sequential.Sorted(), parallel.Sorted(), "parallel cross");
  EXPECT_EQ(stats.pairs_emitted, parallel.pairs().size());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelCrossJoinTest,
                         ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelCrossJoinTest, RejectsIncompatibleTrees) {
  auto a = GenerateUniform({.n = 50, .dims = 3, .seed = 22});
  auto b = GenerateUniform({.n = 50, .dims = 3, .seed = 23});
  auto ta = EkdbTree::Build(*a, Config(0.1));
  auto tb = EkdbTree::Build(*b, Config(0.2));
  ASSERT_TRUE(ta.ok() && tb.ok());
  CountingSink sink;
  EXPECT_FALSE(ParallelEkdbJoin(*ta, *tb, {}, &sink).ok());
}

TEST(ParallelJoinTest, SingleLeafTreeStillWorks) {
  auto data = GenerateUniform({.n = 200, .dims = 3, .seed = 6});
  auto tree = EkdbTree::Build(*data, Config(0.1, 100000));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->root()->is_leaf());
  VectorSink sink;
  ParallelJoinConfig cfg;
  cfg.num_threads = 4;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                  "single leaf");
}

void ExpectSameStats(const JoinStats& expected, const JoinStats& actual,
                     const std::string& label) {
  EXPECT_EQ(expected.candidate_pairs, actual.candidate_pairs) << label;
  EXPECT_EQ(expected.distance_calls, actual.distance_calls) << label;
  EXPECT_EQ(expected.node_pairs_visited, actual.node_pairs_visited) << label;
  EXPECT_EQ(expected.node_pairs_pruned, actual.node_pairs_pruned) << label;
  EXPECT_EQ(expected.pairs_emitted, actual.pairs_emitted) << label;
  EXPECT_EQ(expected.simd_batches, actual.simd_batches) << label;
  EXPECT_EQ(expected.scalar_fallbacks, actual.scalar_fallbacks) << label;
}

class ParallelFlatJoinThreadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelFlatJoinThreadsTest, FlatSelfJoinMatchesSequentialExactly) {
  auto data = GenerateClustered(
      {.n = 1800, .dims = 6, .clusters = 10, .sigma = 0.03, .seed = 31});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.07, 24));
  ASSERT_TRUE(tree.ok());
  auto flat = FlatEkdbTree::FromTree(*tree);
  ASSERT_TRUE(flat.ok());

  VectorSink sequential;
  JoinStats seq_stats;
  ASSERT_TRUE(FlatEkdbSelfJoin(*flat, &sequential, &seq_stats).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 120;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelFlatEkdbSelfJoin(*flat, cfg, &parallel, &stats).ok());

  // Not just the same set: the path-ordered merge reproduces the sequential
  // emission sequence for every thread count.
  EXPECT_EQ(sequential.pairs(), parallel.pairs());
  ExpectSameStats(seq_stats, stats, "flat self");
}

TEST_P(ParallelFlatJoinThreadsTest, FlatCrossJoinMatchesSequentialExactly) {
  auto a = GenerateClustered(
      {.n = 1100, .dims = 5, .clusters = 7, .sigma = 0.04, .seed = 32});
  auto b = GenerateClustered(
      {.n = 900, .dims = 5, .clusters = 7, .sigma = 0.04, .seed = 33});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = EkdbTree::Build(*a, Config(0.06, 24));
  auto tb = EkdbTree::Build(*b, Config(0.06, 24));
  ASSERT_TRUE(ta.ok() && tb.ok());
  auto fa = FlatEkdbTree::FromTree(*ta);
  auto fb = FlatEkdbTree::FromTree(*tb);
  ASSERT_TRUE(fa.ok() && fb.ok());

  VectorSink sequential;
  JoinStats seq_stats;
  ASSERT_TRUE(FlatEkdbJoin(*fa, *fb, &sequential, &seq_stats).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 90;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelFlatEkdbJoin(*fa, *fb, cfg, &parallel, &stats).ok());

  EXPECT_EQ(sequential.pairs(), parallel.pairs());
  ExpectSameStats(seq_stats, stats, "flat cross");
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelFlatJoinThreadsTest,
                         ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

class ParallelDeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDeterminismTest, PointerJoinEmitsSequentialOrder) {
  auto data = GenerateClustered(
      {.n = 1600, .dims = 5, .clusters = 9, .sigma = 0.03, .seed = 41});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08, 16));
  ASSERT_TRUE(tree.ok());

  VectorSink sequential;
  JoinStats seq_stats;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sequential, &seq_stats).ok());

  ParallelJoinConfig cfg;
  cfg.num_threads = GetParam();
  cfg.min_task_points = 64;
  VectorSink parallel;
  JoinStats stats;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &parallel, &stats).ok());

  EXPECT_EQ(sequential.pairs(), parallel.pairs());
  ExpectSameStats(seq_stats, stats, "pointer self");

  // Repeat runs with the same thread count reproduce the same sequence.
  VectorSink again;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &again).ok());
  EXPECT_EQ(parallel.pairs(), again.pairs());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelJoinTest, CrossJoinStatsMatchSequentialExactly) {
  auto a = GenerateClustered(
      {.n = 800, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 42});
  auto b = GenerateClustered(
      {.n = 650, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 43});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = EkdbTree::Build(*a, Config(0.07, 16));
  auto tb = EkdbTree::Build(*b, Config(0.07, 16));
  ASSERT_TRUE(ta.ok() && tb.ok());

  VectorSink sequential;
  JoinStats seq_stats;
  ASSERT_TRUE(EkdbJoin(*ta, *tb, &sequential, &seq_stats).ok());

  for (size_t threads : {size_t{2}, size_t{5}}) {
    ParallelJoinConfig cfg;
    cfg.num_threads = threads;
    cfg.min_task_points = 70;
    VectorSink parallel;
    JoinStats stats;
    ASSERT_TRUE(ParallelEkdbJoin(*ta, *tb, cfg, &parallel, &stats).ok());
    EXPECT_EQ(sequential.pairs(), parallel.pairs()) << threads << " threads";
    ExpectSameStats(seq_stats, stats,
                    std::to_string(threads) + " thread cross");
  }
}

TEST(ParallelJoinTest, ExplicitPoolOverrideIsUsed) {
  auto data = GenerateClustered(
      {.n = 1200, .dims = 4, .clusters = 6, .sigma = 0.04, .seed = 44});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08, 16));
  ASSERT_TRUE(tree.ok());

  VectorSink sequential;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sequential).ok());

  ThreadPool pool(3);
  ParallelJoinConfig cfg;
  cfg.num_threads = 99;  // must be ignored in favour of the explicit pool
  cfg.min_task_points = 100;
  cfg.pool = &pool;
  VectorSink parallel;
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &parallel).ok());
  EXPECT_EQ(sequential.pairs(), parallel.pairs());
}

TEST(ParallelJoinTest, RandomizedDifferentialSweep) {
  std::mt19937 rng(2026);
  for (int round = 0; round < 6; ++round) {
    const size_t n = 300 + rng() % 900;
    const size_t dims = 2 + rng() % 5;
    const double epsilon = 0.04 + 0.01 * static_cast<double>(rng() % 8);
    const size_t leaf = 8 + rng() % 40;
    auto data = GenerateClustered({.n = n,
                                   .dims = dims,
                                   .clusters = 4 + rng() % 6,
                                   .sigma = 0.03,
                                   .seed = 100 + static_cast<uint64_t>(round)});
    ASSERT_TRUE(data.ok());
    auto tree = EkdbTree::Build(*data, Config(epsilon, leaf));
    ASSERT_TRUE(tree.ok());
    auto flat = FlatEkdbTree::FromTree(*tree);
    ASSERT_TRUE(flat.ok());

    VectorSink seq_ptr;
    ASSERT_TRUE(EkdbSelfJoin(*tree, &seq_ptr).ok());
    VectorSink seq_flat;
    ASSERT_TRUE(FlatEkdbSelfJoin(*flat, &seq_flat).ok());

    for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
      ParallelJoinConfig cfg;
      cfg.num_threads = threads;
      cfg.min_task_points = 16 + rng() % 200;
      const std::string label = "round " + std::to_string(round) + ", " +
                                std::to_string(threads) + " threads";
      VectorSink par_ptr;
      ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &par_ptr).ok());
      EXPECT_EQ(seq_ptr.pairs(), par_ptr.pairs()) << "pointer, " << label;
      VectorSink par_flat;
      ASSERT_TRUE(ParallelFlatEkdbSelfJoin(*flat, cfg, &par_flat).ok());
      EXPECT_EQ(seq_flat.pairs(), par_flat.pairs()) << "flat, " << label;
    }
  }
}

TEST(ParallelJoinTest, TinyTaskGranularityStaysExact) {
  auto data = GenerateUniform({.n = 800, .dims = 4, .seed = 7});
  auto tree = EkdbTree::Build(*data, Config(0.12, 8));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ParallelJoinConfig cfg;
  cfg.num_threads = 3;
  cfg.min_task_points = 1;  // maximally fragmented task list
  ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, cfg, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.12, Metric::kL2), sink.Sorted(),
                  "fragmented");
}

}  // namespace
}  // namespace simjoin
