#include "core/ekdb_join.h"

#include <tuple>

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::MakeDataset;
using testing_util::OracleJoin;
using testing_util::OracleSelfJoin;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16,
                  Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  config.metric = metric;
  return config;
}

TEST(EkdbSelfJoinTest, HandMadeTinyCase) {
  // Points: three within 0.1 of each other, one far away.
  const Dataset ds = MakeDataset({{0.10f, 0.10f},
                                  {0.15f, 0.10f},
                                  {0.10f, 0.17f},
                                  {0.90f, 0.90f}});
  auto tree = EkdbTree::Build(ds, Config(0.1, 2));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  const auto pairs = sink.Sorted();
  // dist(0,1)=0.05, dist(0,2)=0.07, dist(1,2)=~0.086 => three pairs.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (IdPair{0, 1}));
  EXPECT_EQ(pairs[1], (IdPair{0, 2}));
  EXPECT_EQ(pairs[2], (IdPair{1, 2}));
}

TEST(EkdbSelfJoinTest, NullSinkRejected) {
  const Dataset ds = MakeDataset({{0.5f}});
  auto tree = EkdbTree::Build(ds, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(EkdbSelfJoin(*tree, nullptr).ok());
}

TEST(EkdbSelfJoinTest, SinglePointHasNoPairs) {
  const Dataset ds = MakeDataset({{0.5f, 0.5f}});
  auto tree = EkdbTree::Build(ds, Config(0.1));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(EkdbSelfJoinTest, DuplicatePointsAllPair) {
  Dataset ds;
  for (int i = 0; i < 20; ++i) ds.Append(std::vector<float>{0.3f, 0.7f});
  auto tree = EkdbTree::Build(ds, Config(0.05, 4));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  EXPECT_EQ(sink.count(), 20u * 19u / 2u);
}

TEST(EkdbSelfJoinTest, BoundaryPairsAcrossStripesAreFound) {
  // Points straddling a stripe boundary at exactly epsilon apart (L-inf):
  // the adjacency rule must still find them.
  const double eps = 0.1;
  const Dataset ds = MakeDataset({{0.0999f, 0.5f},
                                  {0.1001f, 0.5f},    // adjacent stripes 0|1
                                  {0.0500f, 0.5f},
                                  {0.1500f, 0.5f}});  // exactly eps apart
  EkdbConfig config = Config(eps, 1, Metric::kLinf);
  auto tree = EkdbTree::Build(ds, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(ds, eps, Metric::kLinf), sink.Sorted(),
                  "boundary");
}

TEST(EkdbSelfJoinTest, StatsAreFilledIn) {
  auto data = GenerateUniform({.n = 500, .dims = 4, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.1, 8));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  JoinStats stats;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink, &stats).ok());
  EXPECT_EQ(stats.pairs_emitted, sink.count());
  EXPECT_GE(stats.candidate_pairs, stats.pairs_emitted);
  EXPECT_GT(stats.node_pairs_visited, 0u);
}

// ---------------------------------------------------------------------------
// Property suite: the eps-k-d-B self-join must return exactly the oracle
// pair set across workloads, metrics, epsilons, and leaf thresholds.
// ---------------------------------------------------------------------------

struct SelfJoinCase {
  const char* workload;
  double epsilon;
  size_t leaf_threshold;
  Metric metric;
};

class EkdbSelfJoinPropertyTest : public ::testing::TestWithParam<SelfJoinCase> {
 protected:
  Dataset MakeWorkload(const char* name) {
    if (std::string(name) == "uniform") {
      return *GenerateUniform({.n = 700, .dims = 5, .seed = 42});
    }
    if (std::string(name) == "clustered") {
      return *GenerateClustered(
          {.n = 700, .dims = 5, .clusters = 6, .sigma = 0.03, .seed = 42});
    }
    if (std::string(name) == "grid") {
      return *GenerateGridPerturbed(
          {.n = 700, .dims = 5, .cell = 0.2, .perturbation = 0.02, .seed = 42});
    }
    return *GenerateCorrelated(
        {.n = 700, .dims = 5, .intrinsic_dims = 2, .noise = 0.02, .seed = 42});
  }
};

TEST_P(EkdbSelfJoinPropertyTest, MatchesBruteForceOracle) {
  const SelfJoinCase& c = GetParam();
  const Dataset data = MakeWorkload(c.workload);
  auto tree = EkdbTree::Build(data, Config(c.epsilon, c.leaf_threshold, c.metric));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(data, c.epsilon, c.metric), sink.Sorted(),
                  c.workload);
}

std::string CaseName(const ::testing::TestParamInfo<SelfJoinCase>& info) {
  const auto& c = info.param;
  std::string eps = std::to_string(static_cast<int>(c.epsilon * 1000));
  return std::string(c.workload) + "_eps" + eps + "_leaf" +
         std::to_string(c.leaf_threshold) + "_" + MetricName(c.metric);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EkdbSelfJoinPropertyTest,
    ::testing::Values(
        SelfJoinCase{"uniform", 0.05, 16, Metric::kL2},
        SelfJoinCase{"uniform", 0.15, 16, Metric::kL2},
        SelfJoinCase{"uniform", 0.35, 16, Metric::kL2},
        SelfJoinCase{"uniform", 0.1, 1, Metric::kL2},
        SelfJoinCase{"uniform", 0.1, 64, Metric::kL2},
        SelfJoinCase{"uniform", 0.1, 2048, Metric::kL2},  // single leaf
        SelfJoinCase{"uniform", 0.1, 16, Metric::kL1},
        SelfJoinCase{"uniform", 0.1, 16, Metric::kLinf},
        SelfJoinCase{"clustered", 0.05, 16, Metric::kL2},
        SelfJoinCase{"clustered", 0.12, 8, Metric::kL1},
        SelfJoinCase{"clustered", 0.3, 32, Metric::kLinf},
        SelfJoinCase{"grid", 0.07, 16, Metric::kL2},
        SelfJoinCase{"grid", 0.2, 4, Metric::kLinf},
        SelfJoinCase{"correlated", 0.08, 16, Metric::kL2},
        SelfJoinCase{"correlated", 0.25, 16, Metric::kL1}),
    CaseName);

// Ablated variants must stay exact (they only change speed, never results).
class EkdbAblationTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(EkdbAblationTest, AblationsPreserveExactness) {
  const auto [bbox_pruning, sliding_window] = GetParam();
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.04, .seed = 9});
  ASSERT_TRUE(data.ok());
  EkdbConfig config = Config(0.09, 12);
  config.bbox_pruning = bbox_pruning;
  config.sliding_window_leaf_join = sliding_window;
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.09, Metric::kL2), sink.Sorted(),
                  "ablation");
}

INSTANTIATE_TEST_SUITE_P(AllCombos, EkdbAblationTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()),
                         [](const auto& info) {
                           return std::string(std::get<0>(info.param) ? "bbox"
                                                                      : "nobbox") +
                                  (std::get<1>(info.param) ? "_sweep" : "_naive");
                         });

TEST(EkdbSelfJoinTest, CustomDimOrderStaysExact) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 10});
  ASSERT_TRUE(data.ok());
  EkdbConfig config = Config(0.1, 8);
  config.dim_order = {3, 2, 1, 0};
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                  "dim order");
}

// ---------------------------------------------------------------------------
// Two-tree join.
// ---------------------------------------------------------------------------

TEST(EkdbJoinTest, RejectsIncompatibleTrees) {
  auto d1 = GenerateUniform({.n = 50, .dims = 3, .seed = 1});
  auto d2 = GenerateUniform({.n = 50, .dims = 3, .seed = 2});
  auto t1 = EkdbTree::Build(*d1, Config(0.1));
  auto t2 = EkdbTree::Build(*d2, Config(0.2));
  ASSERT_TRUE(t1.ok() && t2.ok());
  CountingSink sink;
  const Status st = EkdbJoin(*t1, *t2, &sink);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(EkdbJoinTest, NullSinkRejected) {
  auto d = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  auto t = EkdbTree::Build(*d, Config(0.1));
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(EkdbJoin(*t, *t, nullptr).ok());
}

struct CrossJoinCase {
  double epsilon;
  size_t leaf_a;
  size_t leaf_b;
  Metric metric;
};

class EkdbCrossJoinPropertyTest
    : public ::testing::TestWithParam<CrossJoinCase> {};

TEST_P(EkdbCrossJoinPropertyTest, MatchesBruteForceOracle) {
  const auto& c = GetParam();
  auto a = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 5, .sigma = 0.04, .seed = 20});
  auto b = GenerateClustered(
      {.n = 400, .dims = 4, .clusters = 5, .sigma = 0.04, .seed = 21});
  ASSERT_TRUE(a.ok() && b.ok());
  EkdbConfig ca = Config(c.epsilon, c.leaf_a, c.metric);
  EkdbConfig cb = Config(c.epsilon, c.leaf_b, c.metric);
  auto ta = EkdbTree::Build(*a, ca);
  auto tb = EkdbTree::Build(*b, cb);
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbJoin(*ta, *tb, &sink).ok());
  ExpectSamePairs(OracleJoin(*a, *b, c.epsilon, c.metric), sink.Sorted(),
                  "cross join");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EkdbCrossJoinPropertyTest,
    ::testing::Values(CrossJoinCase{0.05, 16, 16, Metric::kL2},
                      CrossJoinCase{0.12, 16, 16, Metric::kL2},
                      // Mismatched leaf thresholds force leaf-vs-internal
                      // descents and mismatched sort dimensions.
                      CrossJoinCase{0.1, 2, 128, Metric::kL2},
                      CrossJoinCase{0.1, 128, 2, Metric::kL1},
                      CrossJoinCase{0.22, 8, 512, Metric::kLinf},
                      CrossJoinCase{0.07, 1024, 1024, Metric::kL2}),
    [](const auto& info) {
      const auto& c = info.param;
      return "eps" + std::to_string(static_cast<int>(c.epsilon * 1000)) +
             "_la" + std::to_string(c.leaf_a) + "_lb" +
             std::to_string(c.leaf_b) + "_" + MetricName(c.metric);
    });

TEST(EkdbJoinTest, DisjointCloudsProduceNoPairs) {
  // Clouds confined to opposite corners with a gap much larger than epsilon.
  Dataset a, b;
  for (int i = 0; i < 50; ++i) {
    a.Append(std::vector<float>{0.05f + 0.001f * static_cast<float>(i), 0.05f});
    b.Append(std::vector<float>{0.95f - 0.001f * static_cast<float>(i), 0.95f});
  }
  auto ta = EkdbTree::Build(a, Config(0.1, 8));
  auto tb = EkdbTree::Build(b, Config(0.1, 8));
  ASSERT_TRUE(ta.ok() && tb.ok());
  CountingSink sink;
  JoinStats stats;
  ASSERT_TRUE(EkdbJoin(*ta, *tb, &sink, &stats).ok());
  EXPECT_EQ(sink.count(), 0u);
  // And the traversal should have pruned, not enumerated, the space.
  EXPECT_LT(stats.candidate_pairs, 50u * 50u);
}

TEST(EkdbJoinTest, JoinWithSelfAsTwoTreesMatchesSelfJoinPlusDiagonal) {
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 30});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.1, 8));
  ASSERT_TRUE(tree.ok());
  CountingSink self_sink, cross_sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &self_sink).ok());
  ASSERT_TRUE(EkdbJoin(*tree, *tree, &cross_sink).ok());
  // Cross join counts ordered pairs plus the diagonal: n + 2 * self.
  EXPECT_EQ(cross_sink.count(), data->size() + 2 * self_sink.count());
}

}  // namespace
}  // namespace simjoin
