// Differential tests of the flat (pointer-free) eps-k-d-B tree against the
// pointer tree it is built from.  The flat form must emit bit-identical
// pair/id sets for self-joins, two-tree joins, epsilon overrides, parallel
// drivers, and range queries — across workloads, dimensionalities, and
// metrics, and after a Save/Load round trip.

#include "core/ekdb_flat.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"
#include "core/parallel_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::MakeDataset;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16,
                  Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  config.metric = metric;
  return config;
}

FlatEkdbTree Flatten(const EkdbTree& tree) {
  auto flat = FlatEkdbTree::FromTree(tree);
  EXPECT_TRUE(flat.ok()) << flat.status().ToString();
  return std::move(flat).value();
}

// ---------------------------------------------------------------------------
// Randomized differential suite: uniform + clustered, d in {4, 16, 64},
// L1 / L2 / Linf, self and non-self.

struct FlatDiffCase {
  const char* workload;  // "uniform" | "clustered"
  size_t dims;
  Metric metric;
  double epsilon;
};

/// Generates the case's point cloud and plants near-duplicates displaced by
/// well under epsilon/dims per coordinate, so every combination — even
/// high-dimensional uniform noise, where organic pairs are rare — joins a
/// known non-empty pair set.
Dataset MakeData(const FlatDiffCase& c, size_t n, uint64_t seed) {
  Result<Dataset> base =
      std::string(c.workload) == "uniform"
          ? GenerateUniform({.n = n, .dims = c.dims, .seed = seed})
          : GenerateClustered(
                {.n = n,
                 .dims = c.dims,
                 .clusters = 6,
                 .sigma = c.epsilon / (3.0 * std::sqrt(static_cast<double>(c.dims))),
                 .seed = seed});
  EXPECT_TRUE(base.ok()) << base.status().ToString();
  auto planted = PlantNearDuplicates(
      *base, 25, c.epsilon / (4.0 * static_cast<double>(c.dims)), seed + 1);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  return std::move(planted).value();
}

class FlatDifferentialTest : public ::testing::TestWithParam<FlatDiffCase> {};

TEST_P(FlatDifferentialTest, SelfJoinMatchesPointerTree) {
  const FlatDiffCase c = GetParam();
  const Dataset data = MakeData(c, 700, 42);
  auto tree = EkdbTree::Build(data, Config(c.epsilon, 16, c.metric));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const FlatEkdbTree flat = Flatten(*tree);

  VectorSink pointer_sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &pointer_sink).ok());
  const auto expected = pointer_sink.Sorted();
  ASSERT_FALSE(expected.empty());  // planted duplicates guarantee pairs

  VectorSink flat_sink;
  JoinStats stats;
  ASSERT_TRUE(FlatEkdbSelfJoin(flat, &flat_sink, &stats).ok());
  ExpectSamePairs(expected, flat_sink.Sorted(), "flat self-join");
  EXPECT_EQ(stats.pairs_emitted, expected.size());
  EXPECT_GT(stats.candidate_pairs, 0u);

  VectorSink parallel_sink;
  ASSERT_TRUE(ParallelFlatEkdbSelfJoin(flat, {.num_threads = 3,
                                              .min_task_points = 64},
                                       &parallel_sink)
                  .ok());
  ExpectSamePairs(expected, parallel_sink.Sorted(), "parallel flat self-join");

  // Epsilon override: both representations narrowed to the same radius.
  const double eps_q = 0.7 * c.epsilon;
  VectorSink pointer_narrow, flat_narrow;
  ASSERT_TRUE(EkdbSelfJoinWithEpsilon(*tree, eps_q, &pointer_narrow).ok());
  ASSERT_TRUE(FlatEkdbSelfJoinWithEpsilon(flat, eps_q, &flat_narrow).ok());
  ExpectSamePairs(pointer_narrow.Sorted(), flat_narrow.Sorted(),
                  "flat self-join with epsilon override");
}

TEST_P(FlatDifferentialTest, CrossJoinMatchesPointerTree) {
  const FlatDiffCase c = GetParam();
  const Dataset data_a = MakeData(c, 600, 7);
  const Dataset data_b = MakeData(c, 500, 8);
  // Different leaf thresholds put the two trees' leaves at different depths,
  // which exercises the mismatched-sort-dimension leaf sweeps.
  auto tree_a = EkdbTree::Build(data_a, Config(c.epsilon, 8, c.metric));
  auto tree_b = EkdbTree::Build(data_b, Config(c.epsilon, 32, c.metric));
  ASSERT_TRUE(tree_a.ok()) << tree_a.status().ToString();
  ASSERT_TRUE(tree_b.ok()) << tree_b.status().ToString();
  const FlatEkdbTree flat_a = Flatten(*tree_a);
  const FlatEkdbTree flat_b = Flatten(*tree_b);

  VectorSink pointer_sink;
  ASSERT_TRUE(EkdbJoin(*tree_a, *tree_b, &pointer_sink).ok());
  const auto expected = pointer_sink.Sorted();

  VectorSink flat_sink;
  ASSERT_TRUE(FlatEkdbJoin(flat_a, flat_b, &flat_sink).ok());
  ExpectSamePairs(expected, flat_sink.Sorted(), "flat cross join");

  VectorSink parallel_sink;
  ASSERT_TRUE(ParallelFlatEkdbJoin(flat_a, flat_b,
                                   {.num_threads = 3, .min_task_points = 64},
                                   &parallel_sink)
                  .ok());
  ExpectSamePairs(expected, parallel_sink.Sorted(), "parallel flat cross join");

  const double eps_q = 0.6 * c.epsilon;
  VectorSink pointer_narrow, flat_narrow;
  ASSERT_TRUE(
      EkdbJoinWithEpsilon(*tree_a, *tree_b, eps_q, &pointer_narrow).ok());
  ASSERT_TRUE(
      FlatEkdbJoinWithEpsilon(flat_a, flat_b, eps_q, &flat_narrow).ok());
  ExpectSamePairs(pointer_narrow.Sorted(), flat_narrow.Sorted(),
                  "flat cross join with epsilon override");
}

TEST_P(FlatDifferentialTest, RangeQueryMatchesPointerTree) {
  const FlatDiffCase c = GetParam();
  const Dataset data = MakeData(c, 600, 13);
  auto tree = EkdbTree::Build(data, Config(c.epsilon, 16, c.metric));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const FlatEkdbTree flat = Flatten(*tree);

  auto queries = GenerateUniform({.n = 20, .dims = c.dims, .seed = 99});
  ASSERT_TRUE(queries.ok());
  for (const double eps_q : {c.epsilon, 0.5 * c.epsilon}) {
    // Indexed points as queries (guaranteed non-empty results) plus uniform
    // probes (often empty results).
    for (size_t qi = 0; qi < 40; ++qi) {
      const float* q = qi < 20 ? data.Row(static_cast<PointId>(qi * 7))
                               : queries->Row(qi - 20);
      std::vector<PointId> pointer_ids, flat_ids;
      ASSERT_TRUE(tree->RangeQuery(q, eps_q, &pointer_ids).ok());
      ASSERT_TRUE(flat.RangeQuery(q, eps_q, &flat_ids).ok());
      std::sort(pointer_ids.begin(), pointer_ids.end());
      std::sort(flat_ids.begin(), flat_ids.end());
      EXPECT_EQ(pointer_ids, flat_ids)
          << "range query " << qi << " at eps " << eps_q;
    }
  }
}

TEST_P(FlatDifferentialTest, SelfJoinMatchesAfterSaveLoad) {
  const FlatDiffCase c = GetParam();
  const Dataset data = MakeData(c, 500, 21);
  auto tree = EkdbTree::Build(data, Config(c.epsilon, 16, c.metric));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  // Parameterized test names contain '/', which cannot appear in a file
  // name component.
  std::string test_name =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::replace(test_name.begin(), test_name.end(), '/', '_');
  const std::string path =
      ::testing::TempDir() + "/flat_roundtrip_" + test_name + ".sjet";
  ASSERT_TRUE(tree->Save(path).ok());
  auto flat = FlatEkdbTree::Load(data, path);
  std::remove(path.c_str());
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();

  VectorSink pointer_sink, flat_sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &pointer_sink).ok());
  ASSERT_TRUE(FlatEkdbSelfJoin(*flat, &flat_sink).ok());
  ExpectSamePairs(pointer_sink.Sorted(), flat_sink.Sorted(),
                  "flat self-join after Save/Load");
}

std::vector<FlatDiffCase> AllDiffCases() {
  std::vector<FlatDiffCase> cases;
  for (const char* workload : {"uniform", "clustered"}) {
    for (const size_t dims : {size_t{4}, size_t{16}, size_t{64}}) {
      for (const Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
        // Wider radii keep high-dimensional result sets non-trivial while
        // still giving the stripe grid at least two stripes.
        const double eps = dims == 4 ? 0.2 : dims == 16 ? 0.35 : 0.45;
        cases.push_back(FlatDiffCase{workload, dims, metric, eps});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FlatDifferentialTest, ::testing::ValuesIn(AllDiffCases()),
    [](const ::testing::TestParamInfo<FlatDiffCase>& info) {
      const FlatDiffCase& c = info.param;
      return std::string(c.workload) + "_d" + std::to_string(c.dims) + "_" +
             MetricName(c.metric);
    });

// ---------------------------------------------------------------------------
// Ablation flags must behave identically on both representations.

TEST(FlatEkdbJoinTest, AblationFlagsStillMatchPointerTree) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.04, .seed = 5});
  ASSERT_TRUE(data.ok());
  for (const bool bbox : {true, false}) {
    for (const bool window : {true, false}) {
      EkdbConfig config = Config(0.15, 16);
      config.bbox_pruning = bbox;
      config.sliding_window_leaf_join = window;
      auto tree = EkdbTree::Build(*data, config);
      ASSERT_TRUE(tree.ok());
      const FlatEkdbTree flat = Flatten(*tree);
      VectorSink pointer_sink, flat_sink;
      ASSERT_TRUE(EkdbSelfJoin(*tree, &pointer_sink).ok());
      ASSERT_TRUE(FlatEkdbSelfJoin(flat, &flat_sink).ok());
      ExpectSamePairs(pointer_sink.Sorted(), flat_sink.Sorted(),
                      (std::string("ablation bbox=") + (bbox ? "1" : "0") +
                       " window=" + (window ? "1" : "0"))
                          .c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Structural invariants of the flattened form.

TEST(FlatEkdbTreeTest, StructureMirrorsPointerTree) {
  auto data = GenerateClustered(
      {.n = 900, .dims = 6, .clusters = 7, .sigma = 0.05, .seed = 3});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.12, 16));
  ASSERT_TRUE(tree.ok());
  const FlatEkdbTree flat = Flatten(*tree);

  const EkdbTreeStats stats = tree->ComputeStats();
  EXPECT_EQ(flat.num_nodes(), stats.nodes);
  ASSERT_EQ(flat.arena_size(), data->size());

  // Arena ids are a permutation of the dataset ids.
  std::vector<PointId> ids(flat.arena_ids_data(),
                           flat.arena_ids_data() + flat.arena_size());
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i], static_cast<PointId>(i));
  }

  // Arena rows hold the original coordinates, remapped by arena_id.
  for (uint32_t pos = 0; pos < flat.arena_size(); pos += 37) {
    const float* arena_row = flat.arena_row(pos);
    const float* dataset_row = data->Row(flat.arena_id(pos));
    for (size_t d = 0; d < flat.dims(); ++d) {
      ASSERT_EQ(arena_row[d], dataset_row[d]);
    }
  }

  uint64_t leaves = 0;
  for (uint32_t idx = 0; idx < flat.num_nodes(); ++idx) {
    const FlatEkdbNode& node = flat.node(idx);
    if (node.is_leaf()) {
      ++leaves;
      // Each leaf's arena run is sorted on its sort dimension.
      for (uint32_t pos = node.arena_begin + 1; pos < node.arena_end; ++pos) {
        ASSERT_LE(flat.arena_row(pos - 1)[node.sort_dim],
                  flat.arena_row(pos)[node.sort_dim]);
      }
      continue;
    }
    // Children are a contiguous stripe-sorted index range whose arena
    // ranges tile the parent's exactly.
    const FlatEkdbNode& first = flat.node(node.children_begin);
    EXPECT_EQ(first.arena_begin, node.arena_begin);
    uint32_t expected_begin = node.arena_begin;
    for (uint32_t c = node.children_begin;
         c < node.children_begin + node.children_count; ++c) {
      const FlatEkdbNode& child = flat.node(c);
      EXPECT_EQ(child.depth, node.depth + 1);
      EXPECT_EQ(child.arena_begin, expected_begin);
      expected_begin = child.arena_end;
      if (c > node.children_begin) {
        EXPECT_LT(flat.node(c - 1).stripe, child.stripe);
      }
    }
    EXPECT_EQ(expected_begin, node.arena_end);
  }
  EXPECT_EQ(leaves, stats.leaves);
  EXPECT_EQ(flat.node(FlatEkdbTree::kRoot).subtree_points(), data->size());
}

TEST(FlatEkdbTreeTest, FillStatsReportsBothRepresentations) {
  auto data = GenerateUniform({.n = 2000, .dims = 8, .seed = 17});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.1, 32));
  ASSERT_TRUE(tree.ok());
  const FlatEkdbTree flat = Flatten(*tree);

  EkdbTreeStats stats = tree->ComputeStats();
  EXPECT_GT(stats.bytes_per_point, 0.0);
  EXPECT_EQ(stats.flat_node_bytes, 0u);  // ComputeStats leaves flat fields
  flat.FillStats(&stats);
  EXPECT_EQ(stats.flat_node_bytes, flat.node_bytes());
  EXPECT_EQ(stats.flat_arena_bytes, flat.arena_bytes());
  EXPECT_GT(stats.flat_bytes_per_point, 0.0);
  // The arena stores dims floats plus one id per point, at minimum.
  EXPECT_GE(flat.arena_bytes(),
            data->size() * (flat.dims() * sizeof(float) + sizeof(PointId)));
}

TEST(FlatEkdbTreeTest, SingleLeafTreeStillJoins) {
  // Tiny dataset below the leaf threshold: the whole tree is one leaf.
  const Dataset ds = MakeDataset({{0.10f, 0.10f},
                                  {0.15f, 0.10f},
                                  {0.10f, 0.17f},
                                  {0.90f, 0.90f}});
  auto tree = EkdbTree::Build(ds, Config(0.1, 16));
  ASSERT_TRUE(tree.ok());
  const FlatEkdbTree flat = Flatten(*tree);
  EXPECT_EQ(flat.num_nodes(), 1u);
  VectorSink sink;
  ASSERT_TRUE(FlatEkdbSelfJoin(flat, &sink).ok());
  const auto pairs = sink.Sorted();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (IdPair{0, 1}));
  EXPECT_EQ(pairs[1], (IdPair{0, 2}));
  EXPECT_EQ(pairs[2], (IdPair{1, 2}));
}

// ---------------------------------------------------------------------------
// Error handling.

TEST(FlatEkdbTreeTest, RejectsInvalidArguments) {
  auto data = GenerateUniform({.n = 100, .dims = 3, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.2, 16));
  ASSERT_TRUE(tree.ok());
  const FlatEkdbTree flat = Flatten(*tree);

  EXPECT_FALSE(FlatEkdbSelfJoin(flat, nullptr).ok());
  std::vector<PointId> out;
  const float* q = data->Row(0);
  EXPECT_FALSE(flat.RangeQuery(q, 0.0, &out).ok());
  EXPECT_FALSE(flat.RangeQuery(q, 0.5, &out).ok());  // above build epsilon
  EXPECT_FALSE(flat.RangeQuery(q, 0.1, nullptr).ok());

  // Join-incompatible flat trees are rejected.
  auto other_tree = EkdbTree::Build(*data, Config(0.1, 16));
  ASSERT_TRUE(other_tree.ok());
  const FlatEkdbTree other = Flatten(*other_tree);
  VectorSink sink;
  EXPECT_FALSE(FlatEkdbJoin(flat, other, &sink).ok());
  EXPECT_FALSE(FlatEkdbJoinWithEpsilon(flat, other, 0.05, &sink).ok());
  EXPECT_FALSE(
      ParallelFlatEkdbJoin(flat, other, {.num_threads = 2}, &sink).ok());
}

TEST(FlatEkdbTreeTest, ParallelFromTreeMatchesSequential) {
  auto data = GenerateClustered({.n = 60000,
                                 .dims = 6,
                                 .clusters = 12,
                                 .sigma = 0.04,
                                 .seed = 71});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.06, 32));
  ASSERT_TRUE(tree.ok());

  auto seq = FlatEkdbTree::FromTree(*tree);
  ASSERT_TRUE(seq.ok());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{0}}) {
    auto par = FlatEkdbTree::FromTree(*tree, threads);
    ASSERT_TRUE(par.ok()) << threads << " threads";
    ASSERT_EQ(seq->num_nodes(), par->num_nodes());
    ASSERT_EQ(seq->arena_size(), par->arena_size());
    for (uint32_t i = 0; i < seq->num_nodes(); ++i) {
      const FlatEkdbNode& a = seq->node(i);
      const FlatEkdbNode& b = par->node(i);
      ASSERT_EQ(a.children_begin, b.children_begin) << "node " << i;
      ASSERT_EQ(a.children_count, b.children_count) << "node " << i;
      ASSERT_EQ(a.arena_begin, b.arena_begin) << "node " << i;
      ASSERT_EQ(a.arena_end, b.arena_end) << "node " << i;
      ASSERT_EQ(a.stripe, b.stripe) << "node " << i;
      ASSERT_EQ(a.depth, b.depth) << "node " << i;
      ASSERT_EQ(a.sort_dim, b.sort_dim) << "node " << i;
      for (size_t d = 0; d < seq->dims(); ++d) {
        ASSERT_EQ(seq->bbox_lo(i)[d], par->bbox_lo(i)[d]) << "node " << i;
        ASSERT_EQ(seq->bbox_hi(i)[d], par->bbox_hi(i)[d]) << "node " << i;
      }
    }
    for (uint32_t pos = 0; pos < seq->arena_size(); ++pos) {
      ASSERT_EQ(seq->arena_id(pos), par->arena_id(pos)) << "pos " << pos;
      for (size_t d = 0; d < seq->dims(); ++d) {
        ASSERT_EQ(seq->arena_row(pos)[d], par->arena_row(pos)[d])
            << "pos " << pos;
      }
    }
  }
}

TEST(FlatEkdbTreeTest, RangeQueryStatsCountBatches) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 6, .clusters = 3, .sigma = 0.03, .seed = 11});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.15, 64));
  ASSERT_TRUE(tree.ok());
  const FlatEkdbTree flat = Flatten(*tree);

  std::vector<PointId> out;
  JoinStats flat_stats, pointer_stats;
  ASSERT_TRUE(flat.RangeQuery(data->Row(0), 0.15, &out, &flat_stats).ok());
  EXPECT_GT(flat_stats.candidate_pairs, 0u);
  EXPECT_EQ(flat_stats.pairs_emitted, out.size());
  EXPECT_GT(flat_stats.simd_batches + flat_stats.scalar_fallbacks, 0u);

  out.clear();
  ASSERT_TRUE(
      tree->RangeQuery(data->Row(0), 0.15, &out, &pointer_stats).ok());
  EXPECT_GT(pointer_stats.candidate_pairs, 0u);
  EXPECT_EQ(pointer_stats.pairs_emitted, out.size());
  EXPECT_GT(pointer_stats.simd_batches + pointer_stats.scalar_fallbacks, 0u);
}

}  // namespace
}  // namespace simjoin
