#include "core/ekdb_tree.h"

#include <functional>
#include <limits>

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::MakeDataset;

EkdbConfig SmallConfig(double epsilon = 0.1, size_t leaf_threshold = 4) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

TEST(EkdbTreeBuildTest, RejectsEmptyDataset) {
  Dataset empty;
  EXPECT_FALSE(EkdbTree::Build(empty, SmallConfig()).ok());
}

TEST(EkdbTreeBuildTest, RejectsUnnormalisedData) {
  const Dataset ds = MakeDataset({{0.5f, 2.0f}});
  auto tree = EkdbTree::Build(ds, SmallConfig());
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(EkdbTreeBuildTest, RejectsNonFiniteCoordinates) {
  const Dataset nan_ds =
      MakeDataset({{0.5f, std::numeric_limits<float>::quiet_NaN()}});
  EXPECT_FALSE(EkdbTree::Build(nan_ds, SmallConfig()).ok());
  const Dataset inf_ds =
      MakeDataset({{0.5f, std::numeric_limits<float>::infinity()}});
  EXPECT_FALSE(EkdbTree::Build(inf_ds, SmallConfig()).ok());
}

TEST(EkdbTreeBuildTest, RejectsInvalidConfig) {
  const Dataset ds = MakeDataset({{0.5f, 0.5f}});
  EkdbConfig config = SmallConfig();
  config.epsilon = 0.0;
  EXPECT_FALSE(EkdbTree::Build(ds, config).ok());
}

TEST(EkdbTreeBuildTest, TinyDatasetStaysSingleLeaf) {
  const Dataset ds = MakeDataset({{0.1f, 0.2f}, {0.9f, 0.8f}});
  auto tree = EkdbTree::Build(ds, SmallConfig());
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
  EXPECT_EQ(tree->root()->points.size(), 2u);
}

TEST(EkdbTreeBuildTest, SplitsWhenOverThreshold) {
  auto data = GenerateUniform({.n = 200, .dims = 4, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, SmallConfig(0.1, 16));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->root()->is_leaf());
  const auto stats = tree->ComputeStats();
  EXPECT_EQ(stats.total_points, 200u);
  EXPECT_GT(stats.leaves, 1u);
}

TEST(EkdbTreeBuildTest, StripeIndexClampsAndBuckets) {
  const Dataset ds = MakeDataset({{0.5f}});
  auto tree = EkdbTree::Build(ds, SmallConfig(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_stripes(), 10u);
  EXPECT_EQ(tree->StripeIndex(0.0f), 0u);
  EXPECT_EQ(tree->StripeIndex(0.05f), 0u);
  EXPECT_EQ(tree->StripeIndex(0.15f), 1u);
  EXPECT_EQ(tree->StripeIndex(0.999f), 9u);
  EXPECT_EQ(tree->StripeIndex(1.0f), 9u);  // clamp at the top edge
}

// Structural invariant: every point of a subtree lies inside the node's
// bounding box, leaf point lists are sorted on sort_dim, children are
// stripe-sorted, and each child's points fall in its stripe of the split
// dimension.
void CheckSubtree(const EkdbTree& tree, const EkdbNode* node) {
  const Dataset& data = tree.dataset();
  if (node->is_leaf()) {
    ASSERT_FALSE(node->points.empty());
    float prev = -1.0f;
    for (PointId id : node->points) {
      EXPECT_TRUE(node->bbox.ContainsPoint(data.Row(id)));
      const float v = data.Row(id)[node->sort_dim];
      EXPECT_GE(v, prev) << "leaf not sorted on sort_dim";
      prev = v;
    }
    return;
  }
  ASSERT_LT(node->depth, data.dims());
  const uint32_t split_dim = tree.dim_order()[node->depth];
  uint32_t prev_stripe = 0;
  bool first = true;
  for (const auto& [stripe, child] : node->children) {
    if (!first) EXPECT_GT(stripe, prev_stripe) << "children not stripe-sorted";
    first = false;
    prev_stripe = stripe;
    EXPECT_EQ(child->depth, node->depth + 1);
    EXPECT_TRUE(node->bbox.ContainsBox(child->bbox));
    // Every point in the child hashes to the child's stripe.
    std::function<void(const EkdbNode*)> check_points =
        [&](const EkdbNode* n) {
          for (PointId id : n->points) {
            EXPECT_EQ(tree.StripeIndex(data.Row(id)[split_dim]), stripe);
          }
          for (const auto& [s, c] : n->children) check_points(c.get());
        };
    check_points(child.get());
    CheckSubtree(tree, child.get());
  }
}

TEST(EkdbTreeInvariantTest, UniformCloud) {
  auto data = GenerateUniform({.n = 600, .dims = 5, .seed = 2});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, SmallConfig(0.15, 8));
  ASSERT_TRUE(tree.ok());
  CheckSubtree(*tree, tree->root());
}

TEST(EkdbTreeInvariantTest, ClusteredCloudWithCustomDimOrder) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 3, .sigma = 0.02, .seed = 3});
  ASSERT_TRUE(data.ok());
  EkdbConfig config = SmallConfig(0.08, 10);
  config.dim_order = {3, 1, 0, 2};
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());
  CheckSubtree(*tree, tree->root());
}

TEST(EkdbTreeBuildTest, DepthNeverExceedsDims) {
  // All points identical: splitting puts everything in one stripe at every
  // level; the build must terminate at depth == dims with one big leaf.
  Dataset ds;
  for (int i = 0; i < 100; ++i) ds.Append(std::vector<float>{0.42f, 0.42f});
  auto tree = EkdbTree::Build(ds, SmallConfig(0.1, 4));
  ASSERT_TRUE(tree.ok());
  const auto stats = tree->ComputeStats();
  EXPECT_LE(stats.max_depth, 2u);
  EXPECT_EQ(stats.total_points, 100u);
}

TEST(EkdbTreeBuildTest, LargeEpsilonSingleStripeStaysLeaf) {
  // epsilon > 0.5 gives one stripe per dimension: no split is useful and the
  // tree must degenerate to a single leaf rather than recurse forever.
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, SmallConfig(0.7, 8));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
  EXPECT_EQ(tree->root()->points.size(), 300u);
}

TEST(EkdbTreeStatsTest, CountsAreConsistent) {
  auto data = GenerateUniform({.n = 1000, .dims = 6, .seed = 5});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, SmallConfig(0.12, 20));
  ASSERT_TRUE(tree.ok());
  const auto stats = tree->ComputeStats();
  EXPECT_EQ(stats.total_points, 1000u);
  EXPECT_GE(stats.nodes, stats.leaves);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GT(stats.avg_leaf_size, 0.0);
  EXPECT_LE(stats.max_depth, 6u);
  EXPECT_EQ(tree->root()->SubtreeSize(), 1000u);
}

TEST(EkdbTreeTest, JoinCompatibleRequiresMatchingGrid) {
  auto d1 = GenerateUniform({.n = 50, .dims = 3, .seed = 6});
  auto d2 = GenerateUniform({.n = 60, .dims = 3, .seed = 7});
  ASSERT_TRUE(d1.ok() && d2.ok());
  auto t1 = EkdbTree::Build(*d1, SmallConfig(0.1));
  auto t2 = EkdbTree::Build(*d2, SmallConfig(0.1));
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_TRUE(EkdbTree::JoinCompatible(*t1, *t2));

  auto t3 = EkdbTree::Build(*d2, SmallConfig(0.2));
  ASSERT_TRUE(t3.ok());
  EXPECT_FALSE(EkdbTree::JoinCompatible(*t1, *t3));

  EkdbConfig reordered = SmallConfig(0.1);
  reordered.dim_order = {2, 1, 0};
  auto t4 = EkdbTree::Build(*d2, reordered);
  ASSERT_TRUE(t4.ok());
  EXPECT_FALSE(EkdbTree::JoinCompatible(*t1, *t4));
}

// Recursively compares two trees for structural identity.
void ExpectSameStructure(const EkdbNode* a, const EkdbNode* b) {
  ASSERT_EQ(a->is_leaf(), b->is_leaf());
  EXPECT_EQ(a->depth, b->depth);
  if (a->is_leaf()) {
    EXPECT_EQ(a->sort_dim, b->sort_dim);
    EXPECT_EQ(a->points, b->points);
    return;
  }
  ASSERT_EQ(a->children.size(), b->children.size());
  for (size_t i = 0; i < a->children.size(); ++i) {
    EXPECT_EQ(a->children[i].first, b->children[i].first);
    ExpectSameStructure(a->children[i].second.get(),
                        b->children[i].second.get());
  }
}

TEST(EkdbTreeParallelBuildTest, IdenticalToSequentialBuild) {
  for (uint64_t seed : {10u, 11u}) {
    auto data = GenerateClustered(
        {.n = 3000, .dims = 5, .clusters = 6, .sigma = 0.05, .seed = seed});
    ASSERT_TRUE(data.ok());
    for (size_t threads : {1u, 4u}) {
      auto sequential = EkdbTree::Build(*data, SmallConfig(0.07, 16));
      auto parallel = EkdbTree::BuildParallel(*data, SmallConfig(0.07, 16),
                                              threads);
      ASSERT_TRUE(sequential.ok() && parallel.ok());
      ExpectSameStructure(sequential->root(), parallel->root());
      const auto s1 = sequential->ComputeStats();
      const auto s2 = parallel->ComputeStats();
      EXPECT_EQ(s1.nodes, s2.nodes);
      EXPECT_EQ(s1.total_points, s2.total_points);
    }
  }
}

TEST(EkdbTreeParallelBuildTest, SingleLeafCaseWorks) {
  auto data = GenerateUniform({.n = 50, .dims = 3, .seed = 12});
  auto tree = EkdbTree::BuildParallel(*data, SmallConfig(0.1, 1000), 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
}

TEST(EkdbTreeParallelBuildTest, RejectsSameInvalidInputsAsSequential) {
  Dataset empty;
  EXPECT_FALSE(EkdbTree::BuildParallel(empty, SmallConfig(), 2).ok());
  const Dataset bad = MakeDataset({{0.5f, 1.5f}});
  EXPECT_FALSE(EkdbTree::BuildParallel(bad, SmallConfig(), 2).ok());
}

TEST(EkdbTreeTest, LeafThresholdControlsLeafSizes) {
  auto data = GenerateUniform({.n = 2000, .dims = 8, .seed = 8});
  ASSERT_TRUE(data.ok());
  auto coarse = EkdbTree::Build(*data, SmallConfig(0.1, 256));
  auto fine = EkdbTree::Build(*data, SmallConfig(0.1, 16));
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(coarse->ComputeStats().leaves, fine->ComputeStats().leaves);
}

}  // namespace
}  // namespace simjoin
