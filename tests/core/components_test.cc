// Tests for union-find and epsilon-connected components clustering.

#include "core/components.h"

#include <map>
#include <queue>

#include "common/union_find.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

// ---------------------------------------------------------------------------
// UnionFind.
// ---------------------------------------------------------------------------

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumComponents(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.ComponentSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_TRUE(uf.Union(0, 2));
  EXPECT_FALSE(uf.Union(1, 3)) << "already connected";
  EXPECT_EQ(uf.NumComponents(), 3u);
  EXPECT_EQ(uf.ComponentSize(3), 4u);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
  EXPECT_NE(uf.Find(0), uf.Find(4));
}

TEST(UnionFindTest, DenseLabelsAreCanonical) {
  UnionFind uf(5);
  uf.Union(3, 4);
  uf.Union(0, 2);
  const auto labels = uf.DenseLabels();
  // First-appearance order: 0 -> 0, 1 -> 1, 2 -> 0, 3 -> 2, 4 -> 2.
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 2u);
}

TEST(UnionFindDeathTest, OutOfRangeAborts) {
  UnionFind uf(3);
  EXPECT_DEATH(uf.Find(3), "Check failed");
}

// ---------------------------------------------------------------------------
// EpsilonConnectedComponents.
// ---------------------------------------------------------------------------

// Oracle: BFS over the brute-force epsilon graph.
std::vector<uint32_t> OracleComponents(const Dataset& data, double eps,
                                       Metric metric) {
  DistanceKernel kernel(metric);
  const size_t n = data.size();
  std::vector<uint32_t> labels(n, UINT32_MAX);
  uint32_t next = 0;
  for (size_t s = 0; s < n; ++s) {
    if (labels[s] != UINT32_MAX) continue;
    const uint32_t label = next++;
    std::queue<size_t> frontier;
    frontier.push(s);
    labels[s] = label;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop();
      for (size_t v = 0; v < n; ++v) {
        if (labels[v] != UINT32_MAX) continue;
        if (kernel.WithinEpsilon(data.Row(static_cast<PointId>(u)),
                                 data.Row(static_cast<PointId>(v)),
                                 data.dims(), eps)) {
          labels[v] = label;
          frontier.push(v);
        }
      }
    }
  }
  return labels;
}

// Two labelings describe the same partition iff their label pairs biject.
void ExpectSamePartition(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<uint32_t, uint32_t> fwd, bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it1, fresh1] = fwd.emplace(a[i], b[i]);
    EXPECT_EQ(it1->second, b[i]) << "point " << i;
    auto [it2, fresh2] = bwd.emplace(b[i], a[i]);
    EXPECT_EQ(it2->second, a[i]) << "point " << i;
  }
}

TEST(ComponentsTest, RejectsEmptyDataset) {
  Dataset empty;
  EXPECT_FALSE(EpsilonConnectedComponents(empty, 0.1, Metric::kL2).ok());
}

TEST(ComponentsTest, SeparatedClustersGetDistinctLabels) {
  // Two tight groups far apart.
  Dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.Append(std::vector<float>{0.1f + 0.001f * static_cast<float>(i), 0.1f});
    ds.Append(std::vector<float>{0.9f - 0.001f * static_cast<float>(i), 0.9f});
  }
  auto result = EpsilonConnectedComponents(ds, 0.05, Metric::kL2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 2u);
  EXPECT_EQ(result->sizes[0], 20u);
  EXPECT_EQ(result->sizes[1], 20u);
}

TEST(ComponentsTest, ChainTransitivityLinksDistantEndpoints) {
  // A 1-D chain with spacing just under epsilon: one component even though
  // the endpoints are far apart.
  Dataset ds;
  for (int i = 0; i < 50; ++i) {
    ds.Append(std::vector<float>{0.018f * static_cast<float>(i), 0.5f});
  }
  auto result = EpsilonConnectedComponents(ds, 0.02, Metric::kL2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 1u);

  // Spacing just over epsilon: all singletons.
  Dataset sparse;
  for (int i = 0; i < 40; ++i) {
    sparse.Append(std::vector<float>{0.022f * static_cast<float>(i), 0.5f});
  }
  auto singletons = EpsilonConnectedComponents(sparse, 0.02, Metric::kL2);
  ASSERT_TRUE(singletons.ok());
  EXPECT_EQ(singletons->num_components, 40u);
}

TEST(ComponentsTest, MatchesBfsOracleOnRandomWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto data = GenerateClustered(
        {.n = 400, .dims = 3, .clusters = 6, .sigma = 0.03, .seed = seed});
    ASSERT_TRUE(data.ok());
    for (double eps : {0.03, 0.1}) {
      auto result = EpsilonConnectedComponents(*data, eps, Metric::kL2);
      ASSERT_TRUE(result.ok());
      ExpectSamePartition(OracleComponents(*data, eps, Metric::kL2),
                          result->labels);
      // Sizes sum to n.
      uint64_t total = 0;
      for (uint32_t s : result->sizes) total += s;
      EXPECT_EQ(total, data->size());
    }
  }
}

}  // namespace
}  // namespace simjoin
