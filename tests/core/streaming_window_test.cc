// Tests for EkdbTree::Remove and the sliding-window streaming join.

#include "core/streaming_window.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/ekdb_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 8) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

// ---------------------------------------------------------------------------
// Remove.
// ---------------------------------------------------------------------------

TEST(EkdbRemoveTest, RemovedPointsStopJoiningAndQuerying) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08));
  ASSERT_TRUE(tree.ok());

  // Remove every third point.
  std::set<PointId> removed;
  for (PointId id = 0; id < data->size(); id += 3) {
    ASSERT_TRUE(tree->Remove(id).ok()) << "id " << id;
    removed.insert(id);
  }

  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  // Expected: oracle pairs with both endpoints surviving.
  VectorSink oracle;
  ASSERT_TRUE(NestedLoopSelfJoin(*data, 0.08, Metric::kL2, &oracle).ok());
  std::vector<IdPair> expected;
  for (const auto& p : oracle.Sorted()) {
    if (!removed.count(p.first) && !removed.count(p.second)) {
      expected.push_back(p);
    }
  }
  ExpectSamePairs(expected, sink.Sorted(), "post-remove join");

  EXPECT_EQ(tree->ComputeStats().total_points, data->size() - removed.size());
}

TEST(EkdbRemoveTest, RemoveThenReinsertRestoresJoin) {
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 2});
  auto tree = EkdbTree::Build(*data, Config(0.12));
  ASSERT_TRUE(tree.ok());
  VectorSink before;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &before).ok());

  for (PointId id = 10; id < 60; ++id) ASSERT_TRUE(tree->Remove(id).ok());
  for (PointId id = 10; id < 60; ++id) ASSERT_TRUE(tree->Insert(id).ok());

  VectorSink after;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &after).ok());
  ExpectSamePairs(before.Sorted(), after.Sorted(), "remove+reinsert");
}

TEST(EkdbRemoveTest, RemoveAllThenTreeIsEmptyButUsable) {
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 3});
  auto tree = EkdbTree::Build(*data, Config(0.1, 4));
  ASSERT_TRUE(tree.ok());
  for (PointId id = 0; id < 50; ++id) ASSERT_TRUE(tree->Remove(id).ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 0u);
  CountingSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  EXPECT_EQ(sink.count(), 0u);
  // Reinserting works after a full drain.
  ASSERT_TRUE(tree->Insert(0).ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 1u);
}

TEST(EkdbRemoveTest, ErrorsOnMissingAndOutOfRangeIds) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 4});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Remove(static_cast<PointId>(99)).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(tree->Remove(5).ok());
  EXPECT_EQ(tree->Remove(5).code(), StatusCode::kNotFound);
}

TEST(EkdbRemoveTest, DuplicateCoordinatesRemoveExactId) {
  Dataset data;
  for (int i = 0; i < 10; ++i) data.Append(std::vector<float>{0.5f, 0.5f});
  auto tree = EkdbTree::Build(data, Config(0.1, 4));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Remove(7).ok());
  EXPECT_EQ(tree->Remove(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree->ComputeStats().total_points, 9u);
}

// ---------------------------------------------------------------------------
// StreamingWindowJoin.
// ---------------------------------------------------------------------------

TEST(StreamingWindowJoinTest, CreateRejectsBadArgs) {
  EXPECT_FALSE(StreamingWindowJoin::Create(1, 4, Config(0.1)).ok());
  EXPECT_FALSE(StreamingWindowJoin::Create(10, 0, Config(0.1)).ok());
  EXPECT_FALSE(StreamingWindowJoin::Create(10, 4, Config(0.0)).ok());
}

TEST(StreamingWindowJoinTest, FeedRejectsUnnormalisedPoints) {
  auto join = StreamingWindowJoin::Create(8, 2, Config(0.1));
  ASSERT_TRUE(join.ok());
  const float bad[] = {0.5f, 1.5f};
  EXPECT_FALSE((*join)->Feed(bad, [](StreamPos, StreamPos) {}).ok());
}

// Oracle: all pairs (i, j), i < j, j - i <= window - 1, dist <= eps.
std::vector<std::pair<StreamPos, StreamPos>> WindowOracle(
    const Dataset& stream, size_t window, double eps, Metric metric) {
  DistanceKernel kernel(metric);
  std::vector<std::pair<StreamPos, StreamPos>> out;
  for (size_t j = 0; j < stream.size(); ++j) {
    const size_t lo = j + 1 >= window ? j + 1 - window : 0;
    for (size_t i = lo; i < j; ++i) {
      if (kernel.WithinEpsilon(stream.Row(static_cast<PointId>(i)),
                               stream.Row(static_cast<PointId>(j)),
                               stream.dims(), eps)) {
        out.emplace_back(i, j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class StreamingWindowPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(StreamingWindowPropertyTest, MatchesWindowOracle) {
  const auto [window, epsilon] = GetParam();
  auto stream = GenerateClustered(
      {.n = 900, .dims = 4, .clusters = 4, .sigma = 0.06, .seed = 5});
  ASSERT_TRUE(stream.ok());

  auto join = StreamingWindowJoin::Create(window, 4, Config(epsilon));
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  std::vector<std::pair<StreamPos, StreamPos>> got;
  for (size_t i = 0; i < stream->size(); ++i) {
    auto pos = (*join)->Feed(stream->Row(static_cast<PointId>(i)),
                             [&got](StreamPos a, StreamPos b) {
                               got.emplace_back(a, b);
                             });
    ASSERT_TRUE(pos.ok());
    EXPECT_EQ(pos.value(), i);
  }
  std::sort(got.begin(), got.end());
  const auto expected =
      WindowOracle(*stream, window, epsilon, Metric::kL2);
  EXPECT_EQ(got, expected) << "window=" << window << " eps=" << epsilon;
  EXPECT_EQ((*join)->resident(), std::min<size_t>(window, stream->size()));
  EXPECT_EQ((*join)->arrivals(), stream->size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingWindowPropertyTest,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{5}, size_t{64},
                                         size_t{500}, size_t{2000}),
                       ::testing::Values(0.05, 0.15)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(StreamingWindowJoinTest, NonDefaultMetricsStayExact) {
  for (Metric metric : {Metric::kL1, Metric::kLinf}) {
    auto stream = GenerateClustered(
        {.n = 500, .dims = 3, .clusters = 3, .sigma = 0.06, .seed = 7});
    ASSERT_TRUE(stream.ok());
    EkdbConfig config = Config(0.1);
    config.metric = metric;
    auto join = StreamingWindowJoin::Create(100, 3, config);
    ASSERT_TRUE(join.ok());
    std::vector<std::pair<StreamPos, StreamPos>> got;
    for (size_t i = 0; i < stream->size(); ++i) {
      ASSERT_TRUE((*join)
                      ->Feed(stream->Row(static_cast<PointId>(i)),
                             [&got](StreamPos a, StreamPos b) {
                               got.emplace_back(a, b);
                             })
                      .ok());
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, WindowOracle(*stream, 100, 0.1, metric))
        << MetricName(metric);
  }
}

TEST(StreamingWindowJoinTest, WindowLargerThanStreamActsAgglomerative) {
  auto stream = GenerateUniform({.n = 100, .dims = 3, .seed = 6});
  auto join = StreamingWindowJoin::Create(1000, 3, Config(0.2));
  ASSERT_TRUE(join.ok());
  uint64_t pairs = 0;
  for (size_t i = 0; i < stream->size(); ++i) {
    ASSERT_TRUE((*join)
                    ->Feed(stream->Row(static_cast<PointId>(i)),
                           [&pairs](StreamPos, StreamPos) { ++pairs; })
                    .ok());
  }
  VectorSink oracle;
  ASSERT_TRUE(NestedLoopSelfJoin(*stream, 0.2, Metric::kL2, &oracle).ok());
  EXPECT_EQ(pairs, oracle.pairs().size());
}

}  // namespace
}  // namespace simjoin
