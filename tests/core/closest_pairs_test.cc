#include "core/closest_pairs.h"

#include <cmath>

#include "common/metric.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::MakeDataset;

// Brute-force oracle with identical tie-breaking.
std::vector<ClosestPair> OracleTopK(const Dataset& data, size_t k,
                                    Metric metric) {
  DistanceKernel kernel(metric);
  std::vector<ClosestPair> all;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      all.push_back(
          ClosestPair{static_cast<PointId>(i), static_cast<PointId>(j),
                      kernel.Distance(data.Row(static_cast<PointId>(i)),
                                      data.Row(static_cast<PointId>(j)),
                                      data.dims())});
    }
  }
  std::sort(all.begin(), all.end(), [](const ClosestPair& x, const ClosestPair& y) {
    if (x.distance != y.distance) return x.distance < y.distance;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectSameTopK(const std::vector<ClosestPair>& expected,
                    const std::vector<ClosestPair>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].a, actual[i].a) << "rank " << i;
    EXPECT_EQ(expected[i].b, actual[i].b) << "rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].distance, actual[i].distance) << "rank " << i;
  }
}

TEST(TopKClosestPairsTest, RejectsBadArgs) {
  Dataset one;
  one.Append(std::vector<float>{0.5f});
  EXPECT_FALSE(TopKClosestPairs(one, 3, Metric::kL2).ok());
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(TopKClosestPairs(*data, 0, Metric::kL2).ok());
}

TEST(TopKClosestPairsTest, PlantedClosestPairIsRankOne) {
  auto base = GenerateUniform({.n = 500, .dims = 4, .seed = 2});
  Dataset data = *base;
  // Plant two nearly identical points.
  std::vector<float> twin(data.Row(42), data.Row(42) + 4);
  twin[0] += 1e-5f;
  data.Append(twin);
  auto result = TopKClosestPairs(data, 1, Metric::kL2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].a, 42u);
  EXPECT_EQ((*result)[0].b, 500u);
  EXPECT_LT((*result)[0].distance, 1e-4);
}

class TopKPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, Metric>> {};

TEST_P(TopKPropertyTest, MatchesOracleOnClusteredData) {
  const auto [k, metric] = GetParam();
  auto data = GenerateClustered(
      {.n = 800, .dims = 4, .clusters = 6, .sigma = 0.05, .seed = 3});
  ASSERT_TRUE(data.ok());
  auto result = TopKClosestPairs(*data, k, metric);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameTopK(OracleTopK(*data, k, metric), *result);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKPropertyTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{10}, size_t{100},
                                         size_t{5000}),
                       ::testing::Values(Metric::kL1, Metric::kL2,
                                         Metric::kLinf)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             MetricName(std::get<1>(info.param));
    });

TEST(TopKClosestPairsTest, KBeyondAllPairsReturnsEverything) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 4});
  auto result = TopKClosestPairs(*data, 1000000, Metric::kL2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 20u * 19u / 2u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i].distance, (*result)[i - 1].distance);
  }
}

TEST(TopKClosestPairsTest, AllDuplicatePointsHandled) {
  Dataset data;
  for (int i = 0; i < 300; ++i) data.Append(std::vector<float>{0.5f, 0.5f});
  auto result = TopKClosestPairs(data, 5, Metric::kL2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  for (const auto& p : *result) EXPECT_EQ(p.distance, 0.0);
}

TEST(TopKClosestPairsTest, SeedDoesNotChangeResult) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 3, .clusters = 4, .sigma = 0.04, .seed = 5});
  auto a = TopKClosestPairs(*data, 25, Metric::kL2, 1);
  auto b = TopKClosestPairs(*data, 25, Metric::kL2, 999);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameTopK(*a, *b);
}

}  // namespace
}  // namespace simjoin
