#include "core/planner.h"

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

TEST(PlannerTest, NamesAreStable) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kEkdb), "ekdb");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kNestedLoop), "nested-loop");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kGrid), "grid");
}

TEST(PlannerTest, RejectsBadInputs) {
  Dataset one;
  one.Append(std::vector<float>{0.5f});
  EXPECT_FALSE(PlanSelfJoin(one, 0.1, Metric::kL2).ok());
  auto data = GenerateUniform({.n = 100, .dims = 2, .seed = 1});
  EXPECT_FALSE(PlanSelfJoin(*data, 0.0, Metric::kL2).ok());
  PlannerOptions bad;
  bad.selectivity_samples = 0;
  EXPECT_FALSE(PlanSelfJoin(*data, 0.1, Metric::kL2, bad).ok());
}

TEST(PlannerTest, TinyInputPicksNestedLoop) {
  auto data = GenerateUniform({.n = 150, .dims = 8, .seed = 2});
  auto plan = PlanSelfJoin(*data, 0.1, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kNestedLoop);
  EXPECT_NE(plan->rationale.find("tiny"), std::string::npos);
}

TEST(PlannerTest, FewHundredPointsAlreadyPreferIndex) {
  // Tuned by experiment R16: at n=600 the eps-k-d-B tree beats brute force
  // by ~8x, so the cutoff must sit below that.
  auto data = GenerateUniform({.n = 600, .dims = 8, .seed = 22});
  auto plan = PlanSelfJoin(*data, 0.05, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kEkdb);
}

TEST(PlannerTest, OutputBoundJoinPicksNestedLoop) {
  // One tight cluster and a huge radius: nearly every pair joins.
  auto data = GenerateClustered(
      {.n = 5000, .dims = 4, .clusters = 1, .sigma = 0.01, .seed = 3});
  auto plan = PlanSelfJoin(*data, 0.5, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kNestedLoop);
  EXPECT_GT(plan->estimated_density, 0.2);
}

TEST(PlannerTest, LowDimensionalityPicksGrid) {
  auto data = GenerateUniform({.n = 5000, .dims = 2, .seed = 4});
  auto plan = PlanSelfJoin(*data, 0.03, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kGrid);
}

TEST(PlannerTest, HighDimensionalSelectiveJoinPicksEkdb) {
  auto data = GenerateClustered(
      {.n = 5000, .dims = 10, .clusters = 20, .sigma = 0.05, .seed = 5});
  auto plan = PlanSelfJoin(*data, 0.05, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kEkdb);
  EXPECT_GE(plan->estimated_pairs, 0.0);
}

TEST(PlannerTest, OversizedEpsilonFallsBackToKdTree) {
  // In 32 uniform dims the mean pairwise L2 distance is ~2.3, so a radius
  // just above 1 is still selective — but too large for the stripe grid.
  auto data = GenerateUniform({.n = 5000, .dims = 32, .seed = 6});
  auto plan = PlanSelfJoin(*data, 1.05, Metric::kL2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithm::kKdTree);
}

TEST(PlannerTest, EveryExecutablePlanMatchesOracle) {
  auto data = GenerateClustered(
      {.n = 800, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 7});
  ASSERT_TRUE(data.ok());
  const double eps = 0.08;
  const auto expected = OracleSelfJoin(*data, eps, Metric::kL2);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kSortMerge,
        JoinAlgorithm::kGrid, JoinAlgorithm::kKdTree, JoinAlgorithm::kRTree,
        JoinAlgorithm::kEkdb}) {
    JoinPlan plan;
    plan.algorithm = algorithm;
    VectorSink sink;
    ASSERT_TRUE(ExecuteSelfJoin(*data, eps, Metric::kL2, plan, &sink).ok())
        << JoinAlgorithmName(algorithm);
    ExpectSamePairs(expected, sink.Sorted(), JoinAlgorithmName(algorithm));
  }
}

TEST(PlannerTest, PlanAndRunEndToEnd) {
  auto data = GenerateClustered(
      {.n = 3000, .dims = 6, .clusters = 8, .sigma = 0.05, .seed = 8});
  ASSERT_TRUE(data.ok());
  VectorSink sink;
  JoinPlan used;
  JoinStats stats;
  ASSERT_TRUE(
      PlanAndRunSelfJoin(*data, 0.06, Metric::kL2, &sink, &used, &stats).ok());
  EXPECT_EQ(used.algorithm, JoinAlgorithm::kEkdb);
  ExpectSamePairs(OracleSelfJoin(*data, 0.06, Metric::kL2), sink.Sorted(),
                  "planned run");
  EXPECT_EQ(stats.pairs_emitted, sink.pairs().size());
  EXPECT_FALSE(used.rationale.empty());
}

}  // namespace
}  // namespace simjoin
