// Tests of the epsilon-grid backend: correctness against the brute-force
// oracle, contract parity with the flat tree (same id sets for the same
// queries), and fused-vs-solo bit-identity.

#include "core/epsilon_grid.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/metric.h"
#include "common/rng.h"
#include "core/ekdb_tree.h"
#include "core/index_backend.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon, Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = metric;
  return config;
}

Dataset UniformData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform());
    }
  }
  return data;
}

std::vector<PointId> OracleNeighbours(const Dataset& data, const float* query,
                                      double eps, Metric metric) {
  DistanceKernel kernel(metric);
  std::vector<PointId> out;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto id = static_cast<PointId>(i);
    if (kernel.WithinEpsilon(query, data.Row(id), data.dims(), eps)) {
      out.push_back(id);
    }
  }
  return out;
}

TEST(EpsilonGridTest, MatchesBruteForceAcrossDimsMetricsAndRadii) {
  for (const size_t dims : {1, 2, 3, 4, 16}) {
    for (const Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
      const double eps = 0.15;
      const Dataset data = UniformData(800, dims, 0x9d1d + dims);
      auto grid = EpsilonGrid::Build(data, Config(eps, metric));
      ASSERT_TRUE(grid.ok()) << grid.status().ToString();
      for (size_t q = 0; q < 24; ++q) {
        const float* query = data.Row(static_cast<PointId>(q * 31 % 800));
        const double eps_query = q % 2 == 0 ? eps : eps * 0.4;
        std::vector<PointId> got;
        JoinStats stats;
        ASSERT_TRUE(grid->RangeQuery(query, eps_query, &got, &stats).ok());
        std::vector<PointId> sorted_got = got;
        std::sort(sorted_got.begin(), sorted_got.end());
        EXPECT_EQ(sorted_got,
                  OracleNeighbours(data, query, eps_query, metric))
            << "d" << dims << " " << MetricName(metric) << " q" << q;
        EXPECT_GE(stats.candidate_pairs, got.size());
        EXPECT_EQ(stats.pairs_emitted, got.size());
      }
    }
  }
}

TEST(EpsilonGridTest, FusedMatchesSoloExactly) {
  const double eps = 0.12;
  for (const size_t dims : {2, 3, 16}) {
    const Dataset data = UniformData(1000, dims, 0xf00d + dims);
    auto grid = EpsilonGrid::Build(data, Config(eps));
    ASSERT_TRUE(grid.ok()) << grid.status().ToString();

    std::vector<RangeQuerySpec> specs;
    Rng rng(0x77 + dims);
    for (size_t i = 0; i < 64; ++i) {
      const double e = i % 3 == 0 ? eps : eps * (0.3 + 0.5 * rng.Uniform());
      specs.push_back(
          RangeQuerySpec{data.Row(static_cast<PointId>(i * 13 % 1000)), e});
    }

    std::vector<std::vector<PointId>> solo(specs.size());
    std::vector<JoinStats> solo_stats(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(grid->RangeQuery(specs[i].query, specs[i].epsilon, &solo[i],
                                   &solo_stats[i])
                      .ok());
    }
    std::vector<std::vector<PointId>> fused;
    std::vector<JoinStats> fused_stats;
    ASSERT_TRUE(
        grid->RangeQueryBatch(specs.data(), specs.size(), &fused, &fused_stats)
            .ok());
    ASSERT_EQ(fused.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(solo[i], fused[i]) << "d" << dims << " query " << i;
      EXPECT_EQ(solo_stats[i].candidate_pairs, fused_stats[i].candidate_pairs);
      EXPECT_EQ(solo_stats[i].distance_calls, fused_stats[i].distance_calls);
      EXPECT_EQ(solo_stats[i].pairs_emitted, fused_stats[i].pairs_emitted);
      EXPECT_EQ(solo_stats[i].simd_batches, fused_stats[i].simd_batches);
      EXPECT_EQ(solo_stats[i].scalar_fallbacks,
                fused_stats[i].scalar_fallbacks);
    }
  }
}

TEST(EpsilonGridTest, SameIdSetsAsFlatTree) {
  const double eps = 0.1;
  const Dataset data = UniformData(700, 3, 0xabc);
  auto grid = EpsilonGrid::Build(data, Config(eps));
  ASSERT_TRUE(grid.ok());
  auto tree = EkdbTree::Build(data, Config(eps));
  ASSERT_TRUE(tree.ok());
  auto flat = FlatEkdbTree::FromTree(*tree);
  ASSERT_TRUE(flat.ok());
  for (size_t q = 0; q < 32; ++q) {
    const float* query = data.Row(static_cast<PointId>(q * 17 % 700));
    std::vector<PointId> from_grid, from_tree;
    ASSERT_TRUE(grid->RangeQuery(query, eps, &from_grid).ok());
    ASSERT_TRUE(flat->RangeQuery(query, eps, &from_tree).ok());
    std::sort(from_grid.begin(), from_grid.end());
    std::sort(from_tree.begin(), from_tree.end());
    EXPECT_EQ(from_grid, from_tree) << "query " << q;
  }
}

TEST(EpsilonGridTest, ValidationMatchesTreeContract) {
  const double eps = 0.2;
  const Dataset data = UniformData(100, 2, 0x5);
  auto grid = EpsilonGrid::Build(data, Config(eps));
  ASSERT_TRUE(grid.ok());
  EXPECT_TRUE(grid->ValidateQueryEpsilon(eps).ok());
  EXPECT_TRUE(grid->ValidateQueryEpsilon(eps * 0.5).ok());
  EXPECT_FALSE(grid->ValidateQueryEpsilon(0.0).ok());
  EXPECT_FALSE(grid->ValidateQueryEpsilon(eps * 1.01).ok());
  std::vector<PointId> out;
  EXPECT_FALSE(grid->RangeQuery(data.Row(0), eps * 2, &out).ok());

  Dataset empty;
  EXPECT_FALSE(EpsilonGrid::Build(empty, Config(eps)).ok());
}

TEST(EpsilonGridTest, BackendWireCodecRejectsUnknownValues) {
  auto flat = BackendKindFromWire(0);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(*flat, BackendKind::kEkdbFlat);
  auto grid = BackendKindFromWire(1);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(*grid, BackendKind::kEpsilonGrid);
  auto lsh = BackendKindFromWire(2);
  ASSERT_TRUE(lsh.ok());
  EXPECT_EQ(*lsh, BackendKind::kLsh);
  auto brute = BackendKindFromWire(3);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(*brute, BackendKind::kBruteSimd);
  auto rtree = BackendKindFromWire(4);
  ASSERT_TRUE(rtree.ok());
  EXPECT_EQ(*rtree, BackendKind::kRTree);
  auto updatable = BackendKindFromWire(5);
  ASSERT_TRUE(updatable.ok());
  EXPECT_EQ(*updatable, BackendKind::kUpdatable);
  EXPECT_FALSE(BackendKindFromWire(6).ok());
  EXPECT_FALSE(BackendKindFromWire(255).ok());
  // Only the structural kinds may anchor a build; the rest are per-query
  // tiers (0xFF is the wire's "auto" marker, never a kind).
  EXPECT_TRUE(BackendKindBuildable(BackendKind::kEkdbFlat));
  EXPECT_TRUE(BackendKindBuildable(BackendKind::kEpsilonGrid));
  EXPECT_TRUE(BackendKindBuildable(BackendKind::kUpdatable));
  EXPECT_FALSE(BackendKindBuildable(BackendKind::kLsh));
  EXPECT_FALSE(BackendKindBuildable(BackendKind::kBruteSimd));
  EXPECT_FALSE(BackendKindBuildable(BackendKind::kRTree));
}

/// Respects the cell-table cap: a tiny epsilon in 3-d would want millions of
/// cells; the build must degrade the binned-dim count instead of exploding.
TEST(EpsilonGridTest, CellTableCapDegradesGracefully) {
  const Dataset data = UniformData(500, 3, 0x42);
  auto grid = EpsilonGrid::Build(data, Config(0.0005));
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_LE(grid->num_cells(), EpsilonGrid::kMaxCells);
  EXPECT_LT(grid->binned_dims().size(), 3u);
  // Still correct.
  std::vector<PointId> got;
  ASSERT_TRUE(grid->RangeQuery(data.Row(0), 0.0005, &got).ok());
  std::vector<PointId> sorted_got = got;
  std::sort(sorted_got.begin(), sorted_got.end());
  EXPECT_EQ(sorted_got,
            OracleNeighbours(data, data.Row(0), 0.0005, Metric::kL2));
}

}  // namespace
}  // namespace simjoin
