#include "core/selectivity.h"

#include <cmath>

#include "baselines/nested_loop.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

uint64_t ExactPairs(const Dataset& data, double epsilon, Metric metric) {
  CountingSink sink;
  const Status st = NestedLoopSelfJoin(data, epsilon, metric, &sink);
  EXPECT_TRUE(st.ok());
  return sink.count();
}

TEST(PairSamplingTest, RejectsBadArgs) {
  Dataset tiny;
  tiny.Append(std::vector<float>{0.5f});
  EXPECT_FALSE(
      EstimatePairsByPairSampling(tiny, 0.1, Metric::kL2, 10, 1).ok());
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(
      EstimatePairsByPairSampling(*data, 0.0, Metric::kL2, 10, 1).ok());
  EXPECT_FALSE(
      EstimatePairsByPairSampling(*data, 0.1, Metric::kL2, 0, 1).ok());
}

TEST(PairSamplingTest, ConvergesOnDenseJoin) {
  // Use a radius where the hit probability is large so pair sampling has
  // reasonable variance.
  auto data = GenerateClustered(
      {.n = 800, .dims = 3, .clusters = 3, .sigma = 0.05, .seed = 2});
  ASSERT_TRUE(data.ok());
  const double eps = 0.2;
  const uint64_t exact = ExactPairs(*data, eps, Metric::kL2);
  ASSERT_GT(exact, 1000u);
  auto estimate =
      EstimatePairsByPairSampling(*data, eps, Metric::kL2, 50000, 3);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->estimated_pairs, static_cast<double>(exact),
              0.15 * static_cast<double>(exact));
}

TEST(PointSamplingTest, FullSampleIsExact) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.08));
  ASSERT_TRUE(tree.ok());
  const uint64_t exact = ExactPairs(*data, 0.08, Metric::kL2);
  auto estimate = EstimatePairsByPointSampling(*tree, data->size(), 5);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->samples, data->size());
  EXPECT_DOUBLE_EQ(estimate->estimated_pairs, static_cast<double>(exact));
}

TEST(PointSamplingTest, PartialSampleIsClose) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 4, .clusters = 6, .sigma = 0.05, .seed = 6});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.06));
  ASSERT_TRUE(tree.ok());
  const uint64_t exact = ExactPairs(*data, 0.06, Metric::kL2);
  ASSERT_GT(exact, 100u);
  auto estimate = EstimatePairsByPointSampling(*tree, 500, 7);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->samples, 500u);
  EXPECT_NEAR(estimate->estimated_pairs, static_cast<double>(exact),
              0.5 * static_cast<double>(exact));
}

TEST(PointSamplingTest, MoreSamplesReduceAverageError) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 8});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.07));
  ASSERT_TRUE(tree.ok());
  const double exact =
      static_cast<double>(ExactPairs(*data, 0.07, Metric::kL2));
  ASSERT_GT(exact, 0.0);
  // Average relative error over several seeds at two sample sizes.
  auto avg_error = [&](size_t samples) {
    double total = 0.0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      auto est = EstimatePairsByPointSampling(*tree, samples, 100 + seed);
      EXPECT_TRUE(est.ok());
      total += std::fabs(est->estimated_pairs - exact) / exact;
    }
    return total / 10.0;
  };
  EXPECT_LT(avg_error(750), avg_error(30) + 1e-9);
}

TEST(PointSamplingTest, RejectsZeroSamples) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 9});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(EstimatePairsByPointSampling(*tree, 0, 1).ok());
}

TEST(SuggestEpsilonTest, RejectsBadArgs) {
  Dataset one;
  one.Append(std::vector<float>{0.5f});
  EXPECT_FALSE(SuggestEpsilonForTargetPairs(one, 1, Metric::kL2).ok());
  auto data = GenerateUniform({.n = 100, .dims = 2, .seed = 20});
  EXPECT_FALSE(SuggestEpsilonForTargetPairs(*data, 0, Metric::kL2).ok());
  EXPECT_FALSE(
      SuggestEpsilonForTargetPairs(*data, 1u << 30, Metric::kL2).ok());
  EXPECT_FALSE(
      SuggestEpsilonForTargetPairs(*data, 10, Metric::kL2, 0).ok());
}

TEST(SuggestEpsilonTest, SuggestedRadiusHitsTargetWithinFactor) {
  auto data = GenerateClustered(
      {.n = 1500, .dims = 4, .clusters = 5, .sigma = 0.08, .seed = 21});
  ASSERT_TRUE(data.ok());
  for (uint64_t target : {500u, 5000u, 50000u}) {
    auto eps = SuggestEpsilonForTargetPairs(*data, target, Metric::kL2,
                                            20000, 22);
    ASSERT_TRUE(eps.ok());
    const uint64_t actual = ExactPairs(*data, eps.value(), Metric::kL2);
    EXPECT_GT(actual, target / 4) << "target " << target << " eps " << *eps;
    EXPECT_LT(actual, target * 4) << "target " << target << " eps " << *eps;
  }
}

TEST(SuggestEpsilonTest, MonotoneInTarget) {
  auto data = GenerateUniform({.n = 800, .dims = 3, .seed = 23});
  auto small = SuggestEpsilonForTargetPairs(*data, 100, Metric::kL2, 8000, 24);
  auto large = SuggestEpsilonForTargetPairs(*data, 50000, Metric::kL2, 8000, 24);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small.value(), large.value());
}

TEST(SuggestEpsilonTest, DuplicateHeavyDataStaysPositive) {
  Dataset data;
  for (int i = 0; i < 200; ++i) data.Append(std::vector<float>{0.5f, 0.5f});
  auto eps = SuggestEpsilonForTargetPairs(data, 10, Metric::kL2, 500, 25);
  ASSERT_TRUE(eps.ok());
  EXPECT_GT(eps.value(), 0.0);
}

TEST(PointSamplingTest, EstimateIsDeterministicInSeed) {
  auto data = GenerateUniform({.n = 500, .dims = 3, .seed = 10});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  auto a = EstimatePairsByPointSampling(*tree, 100, 77);
  auto b = EstimatePairsByPointSampling(*tree, 100, 77);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimated_pairs, b->estimated_pairs);
}

}  // namespace
}  // namespace simjoin
