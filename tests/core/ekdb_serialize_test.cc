#include <cstdio>
#include <fstream>

#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EkdbConfig Config(double epsilon) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 12;
  config.metric = Metric::kL1;
  config.dim_order = {3, 0, 2, 1};
  return config;
}

TEST(EkdbSerializeTest, RoundTripPreservesJoinsAndConfig) {
  auto data = GenerateClustered(
      {.n = 900, .dims = 4, .clusters = 6, .sigma = 0.05, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.07));
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("tree.sjet");
  ASSERT_TRUE(tree->Save(path).ok());

  auto loaded = EkdbTree::Load(*data, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config().epsilon, 0.07);
  EXPECT_EQ(loaded->config().leaf_threshold, 12u);
  EXPECT_EQ(loaded->config().metric, Metric::kL1);
  EXPECT_EQ(loaded->dim_order(), (std::vector<uint32_t>{3, 0, 2, 1}));

  VectorSink original, reloaded;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &original).ok());
  ASSERT_TRUE(EkdbSelfJoin(*loaded, &reloaded).ok());
  ExpectSamePairs(original.Sorted(), reloaded.Sorted(), "serialised join");

  const auto s1 = tree->ComputeStats();
  const auto s2 = loaded->ComputeStats();
  EXPECT_EQ(s1.nodes, s2.nodes);
  EXPECT_EQ(s1.leaves, s2.leaves);
  EXPECT_EQ(s1.max_depth, s2.max_depth);
  EXPECT_EQ(s1.total_points, s2.total_points);
  std::remove(path.c_str());
}

TEST(EkdbSerializeTest, LoadedTreeSupportsDynamicOps) {
  auto base = GenerateUniform({.n = 400, .dims = 3, .seed = 2});
  ASSERT_TRUE(base.ok());
  Dataset data = *base;
  EkdbConfig config;
  config.epsilon = 0.1;
  config.leaf_threshold = 8;
  auto tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("dyn.sjet");
  ASSERT_TRUE(tree->Save(path).ok());
  auto loaded = EkdbTree::Load(data, path);
  ASSERT_TRUE(loaded.ok());

  // Loaded trees keep working for insert/remove/range queries.
  ASSERT_TRUE(loaded->Remove(0).ok());
  data.Append(std::vector<float>{0.5f, 0.5f, 0.5f});
  ASSERT_TRUE(loaded->Insert(static_cast<PointId>(data.size() - 1)).ok());
  std::vector<PointId> hits;
  ASSERT_TRUE(loaded->RangeQuery(data.Row(1), 0.05, &hits).ok());
  std::remove(path.c_str());
}

TEST(EkdbSerializeTest, LoadRejectsMismatchedDataset) {
  auto data = GenerateUniform({.n = 100, .dims = 4, .seed = 3});
  auto other = GenerateUniform({.n = 120, .dims = 4, .seed = 4});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("mismatch.sjet");
  ASSERT_TRUE(tree->Save(path).ok());
  auto loaded = EkdbTree::Load(*other, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(EkdbSerializeTest, LoadRejectsGarbageAndTruncation) {
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 5});
  const std::string garbage = TempPath("garbage.sjet");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a tree";
  }
  EXPECT_FALSE(EkdbTree::Load(*data, garbage).ok());
  std::remove(garbage.c_str());

  EkdbConfig config;
  config.epsilon = 0.1;
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());
  const std::string path = TempPath("trunc.sjet");
  ASSERT_TRUE(tree->Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() * 2 / 3);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(EkdbTree::Load(*data, path).ok());
  std::remove(path.c_str());

  EXPECT_EQ(EkdbTree::Load(*data, TempPath("missing.sjet")).status().code(),
            StatusCode::kIoError);
}

TEST(EkdbSerializeTest, SaveToUnwritablePathFails) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 6});
  EkdbConfig config;
  config.epsilon = 0.1;
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Save("/nonexistent_dir_xyz/tree.sjet").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace simjoin
