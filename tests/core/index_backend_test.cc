// Contract tests of the IndexBackend interface: every exact backend must
// return the same id *set* for the same query (order is backend-specific),
// batch execution must be bit-identical to solo, SelfJoin must either work
// or fail with Unimplemented, and the cost hooks must behave sanely.

#include "core/index_backend.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/metric.h"
#include "common/pair_sink.h"
#include "common/rng.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_tree.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon, Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = metric;
  return config;
}

Dataset UniformData(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform());
    }
  }
  return data;
}

std::vector<PointId> SortedIds(std::vector<PointId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Builds every exact backend buildable over this dataset/config.
std::vector<std::unique_ptr<IndexBackend>> BuildExactBackends(
    const Dataset& data, const EkdbConfig& config) {
  std::vector<std::unique_ptr<IndexBackend>> backends;
  auto tree = EkdbFlatBackend::Build(data, config, /*num_threads=*/1);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  backends.push_back(std::move(*tree));
  if (data.dims() <= EpsilonGrid::kMaxBinnedDims) {
    auto grid = EpsilonGridBackend::Build(data, config);
    EXPECT_TRUE(grid.ok()) << grid.status().ToString();
    backends.push_back(std::move(*grid));
  }
  auto brute = BruteSimdBackend::Build(data, config);
  EXPECT_TRUE(brute.ok()) << brute.status().ToString();
  backends.push_back(std::move(*brute));
  return backends;
}

TEST(IndexBackendTest, ExactBackendsAgreeOnSortedIdSets) {
  for (const size_t dims : {2, 3, 8, 16}) {
    for (const Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
      const double eps = 0.15;
      const Dataset data = UniformData(600, dims, 0xbac0 + dims);
      const auto backends = BuildExactBackends(data, Config(eps, metric));
      ASSERT_GE(backends.size(), 2u);
      Rng rng(0x11 + dims);
      for (size_t q = 0; q < 24; ++q) {
        const float* query = data.Row(static_cast<PointId>(q * 23 % 600));
        const double eps_query =
            q % 2 == 0 ? eps : eps * (0.3 + 0.6 * rng.Uniform());
        std::vector<PointId> reference;
        ASSERT_TRUE(
            backends[0]->RangeQuery(query, eps_query, &reference).ok());
        const std::vector<PointId> want = SortedIds(reference);
        for (size_t b = 1; b < backends.size(); ++b) {
          std::vector<PointId> got;
          double recall = 0.0;
          JoinStats stats;
          ASSERT_TRUE(backends[b]
                          ->RangeQuery(query, eps_query, &got, &stats,
                                       &recall)
                          .ok());
          EXPECT_EQ(SortedIds(got), want)
              << BackendKindName(backends[b]->kind()) << " d" << dims << " "
              << MetricName(metric) << " q" << q;
          EXPECT_EQ(recall, 1.0);  // exact backends report certainty
          EXPECT_GE(stats.candidate_pairs, got.size());
        }
      }
    }
  }
}

TEST(IndexBackendTest, BatchIsBitIdenticalToSoloOnEveryBackend) {
  const double eps = 0.12;
  const Dataset data = UniformData(700, 3, 0xfeed);
  const auto backends = BuildExactBackends(data, Config(eps));
  std::vector<RangeQuerySpec> specs;
  Rng rng(0x99);
  for (size_t i = 0; i < 48; ++i) {
    const double e = i % 4 == 0 ? eps : eps * (0.2 + 0.7 * rng.Uniform());
    specs.push_back(
        RangeQuerySpec{data.Row(static_cast<PointId>(i * 13 % 700)), e});
  }
  for (const auto& backend : backends) {
    std::vector<std::vector<PointId>> solo(specs.size());
    std::vector<JoinStats> solo_stats(specs.size());
    std::vector<double> solo_recalls(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(backend
                      ->RangeQuery(specs[i].query, specs[i].epsilon, &solo[i],
                                   &solo_stats[i], &solo_recalls[i])
                      .ok());
    }
    std::vector<std::vector<PointId>> fused;
    std::vector<JoinStats> fused_stats;
    std::vector<double> fused_recalls;
    ASSERT_TRUE(backend
                    ->RangeQueryBatch(specs.data(), specs.size(), &fused,
                                      &fused_stats, &fused_recalls)
                    .ok());
    ASSERT_EQ(fused.size(), specs.size());
    ASSERT_EQ(fused_recalls.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(solo[i], fused[i])
          << BackendKindName(backend->kind()) << " query " << i;
      EXPECT_EQ(solo_stats[i].candidate_pairs,
                fused_stats[i].candidate_pairs);
      EXPECT_EQ(solo_stats[i].distance_calls, fused_stats[i].distance_calls);
      EXPECT_EQ(solo_recalls[i], fused_recalls[i]);
    }
  }
}

TEST(IndexBackendTest, SelfJoinViaInterfaceMatchesDirectFlatJoin) {
  const double eps = 0.1;
  const Dataset data = UniformData(500, 4, 0x50f7);
  auto backend = EkdbFlatBackend::Build(data, Config(eps), 1);
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE((*backend)->supports_self_join());

  VectorSink want;
  JoinStats want_stats;
  ASSERT_TRUE(FlatEkdbSelfJoinWithEpsilon(*(*backend)->flat_tree(), eps,
                                          &want, &want_stats)
                  .ok());
  VectorSink got;
  JoinStats got_stats;
  ASSERT_TRUE((*backend)->SelfJoin(eps, /*num_threads=*/1, &got, &got_stats)
                  .ok());
  EXPECT_EQ(got.pairs(), want.pairs());
  EXPECT_EQ(got_stats.pairs_emitted, want_stats.pairs_emitted);
  EXPECT_EQ(got_stats.candidate_pairs, want_stats.candidate_pairs);
}

TEST(IndexBackendTest, SelfJoinDefaultsToUnimplemented) {
  const double eps = 0.1;
  const Dataset data = UniformData(200, 2, 0x7);
  auto grid = EpsilonGridBackend::Build(data, Config(eps));
  auto brute = BruteSimdBackend::Build(data, Config(eps));
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(brute.ok());
  for (const IndexBackend* backend :
       {static_cast<const IndexBackend*>(grid->get()),
        static_cast<const IndexBackend*>(brute->get())}) {
    EXPECT_FALSE(backend->supports_self_join());
    VectorSink sink;
    const Status st = backend->SelfJoin(eps, 1, &sink);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << st.ToString();
  }
}

TEST(IndexBackendTest, BruteSimdValidatesEpsilonAndCountsWork) {
  const double eps = 0.2;
  const Dataset data = UniformData(300, 5, 0xb0b);
  auto brute = BruteSimdBackend::Build(data, Config(eps));
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE((*brute)->ValidateQueryEpsilon(eps).ok());
  EXPECT_FALSE((*brute)->ValidateQueryEpsilon(0.0).ok());
  EXPECT_FALSE((*brute)->ValidateQueryEpsilon(eps * 1.5).ok());
  EXPECT_EQ((*brute)->index_bytes(), 0u);  // no structure at all

  std::vector<PointId> out;
  JoinStats stats;
  ASSERT_TRUE(
      (*brute)->RangeQuery(data.Row(0), eps, &out, &stats, nullptr).ok());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  // The brute scan streams every row through the kernel, exactly once.
  EXPECT_EQ(stats.candidate_pairs, data.size());
  EXPECT_EQ(stats.distance_calls, data.size());
}

TEST(IndexBackendTest, CostHooksRankStructuresSensibly) {
  const double eps = 0.1;
  const Dataset data = UniformData(2000, 4, 0xc057);
  const auto backends = BuildExactBackends(data, Config(eps));
  for (const auto& backend : backends) {
    const double sparse = backend->EstimatedQueryCost(eps, 2.0);
    const double dense = backend->EstimatedQueryCost(eps, 500.0);
    EXPECT_GT(sparse, 0.0) << BackendKindName(backend->kind());
    EXPECT_LE(sparse, dense) << BackendKindName(backend->kind());
    // No structure can cost more than scanning everything plus overhead.
    EXPECT_LE(backend->EstimatedQueryCost(eps, 1.0),
              static_cast<double>(data.size()) + 1.0)
        << BackendKindName(backend->kind());
    EXPECT_EQ(backend->ExpectedRecall(eps), 1.0);
  }
  // A selective query should make the tree prior beat the brute floor.
  auto tree = EkdbFlatBackend::Build(data, Config(eps), 1);
  auto brute = BruteSimdBackend::Build(data, Config(eps));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_LT((*tree)->EstimatedQueryCost(eps, 4.0),
            (*brute)->EstimatedQueryCost(eps, 4.0));
}

TEST(IndexBackendTest, WireHelpersNameEveryKind) {
  EXPECT_STREQ(BackendKindName(BackendKind::kEkdbFlat), "ekdb-flat");
  EXPECT_STREQ(BackendKindName(BackendKind::kEpsilonGrid), "grid");
  EXPECT_STREQ(BackendKindName(BackendKind::kLsh), "lsh");
  EXPECT_STREQ(BackendKindName(BackendKind::kBruteSimd), "brute-simd");
}

}  // namespace
}  // namespace simjoin
