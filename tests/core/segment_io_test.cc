// Segment-file round-trip, external-build identity, and robustness tests.
//
// The format's two load paths (mmap fault-in, full in-memory read) and two
// build paths (WriteSegment of a heap tree, BuildSegmentExternal's
// sort-runs + merge) must all converge: same bytes on disk, same answers
// to every query.  The robustness half feeds the loader truncated,
// bit-flipped, version-skewed, and randomly mutated files — every one must
// come back as a clean Status, never a crash or a silently wrong tree.

#include "core/segment.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "common/binary_io.h"
#include "common/pair_sink.h"
#include "core/ekdb_tree.h"
#include "core/segment_backend.h"
#include "core/segment_builder.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

class SegmentIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "/segment_io";
    std::filesystem::create_directories(temp_dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(temp_dir_, ec);
  }

  std::string Path(const std::string& name) { return temp_dir_ + "/" + name; }

  FlatEkdbTree BuildFlat(const Dataset& data, const EkdbConfig& config) {
    auto tree = EkdbTree::Build(data, config);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    auto flat = FlatEkdbTree::FromTree(*tree);
    EXPECT_TRUE(flat.ok()) << flat.status().ToString();
    return std::move(flat).value();
  }

  std::vector<uint8_t> ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  /// Runs the same probe queries through both trees and demands
  /// bit-identical ids (same set, same order) and stats.
  void ExpectSameQueries(const FlatEkdbTree& a, const FlatEkdbTree& b,
                         const Dataset& queries, double eps) {
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<PointId> ids_a, ids_b;
      JoinStats stats_a, stats_b;
      ASSERT_TRUE(a.RangeQuery(queries.Row(static_cast<PointId>(i)), eps,
                               &ids_a, &stats_a)
                      .ok());
      ASSERT_TRUE(b.RangeQuery(queries.Row(static_cast<PointId>(i)), eps,
                               &ids_b, &stats_b)
                      .ok());
      ASSERT_EQ(ids_a, ids_b) << "query " << i;
      EXPECT_EQ(stats_a.candidate_pairs, stats_b.candidate_pairs);
      EXPECT_EQ(stats_a.pairs_emitted, stats_b.pairs_emitted);
    }
  }

  std::string temp_dir_;
};

// ---------------------------------------------------------------------------
// Round trips

TEST_F(SegmentIoTest, InMemoryRoundTripServesIdenticalQueries) {
  auto data = GenerateUniform({.n = 600, .dims = 6, .seed = 7});
  ASSERT_TRUE(data.ok());
  FlatEkdbTree tree = BuildFlat(*data, Config(0.15));
  const std::string path = Path("roundtrip.seg");
  ASSERT_TRUE(WriteSegment(tree, path).ok());

  auto loaded = OpenSegment(path, SegmentOpenMode::kInMemory);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->tree->num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded->tree->arena_size(), tree.arena_size());
  EXPECT_EQ(loaded->segment, nullptr);
  ExpectSameQueries(tree, *loaded->tree, *data, 0.15);
  ExpectSameQueries(tree, *loaded->tree, *data, 0.04);
}

TEST_F(SegmentIoTest, MmapRoundTripServesIdenticalQueries) {
  auto data = GenerateClustered({.n = 700, .dims = 8, .seed = 11});
  ASSERT_TRUE(data.ok());
  FlatEkdbTree tree = BuildFlat(*data, Config(0.2));
  const std::string path = Path("mapped.seg");
  ASSERT_TRUE(WriteSegment(tree, path).ok());

  auto mapped = OpenSegment(path, SegmentOpenMode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_NE(mapped->segment, nullptr);
  EXPECT_TRUE(mapped->segment->VerifyChecksums().ok());
  EXPECT_GT(mapped->segment->mapped_bytes(), 0u);
  ExpectSameQueries(tree, *mapped->tree, *data, 0.2);
  ExpectSameQueries(tree, *mapped->tree, *data, 0.05);
  // Releasing residency must not change answers (pages fault back in).
  mapped->segment->ReleaseResidentPages();
  ExpectSameQueries(tree, *mapped->tree, *data, 0.1);
}

TEST_F(SegmentIoTest, ReadSegmentInfoReportsShape) {
  auto data = GenerateUniform({.n = 300, .dims = 5, .seed = 3});
  ASSERT_TRUE(data.ok());
  FlatEkdbTree tree = BuildFlat(*data, Config(0.25));
  const std::string path = Path("info.seg");
  ASSERT_TRUE(WriteSegment(tree, path).ok());

  auto info = ReadSegmentInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSegmentVersion);
  EXPECT_EQ(info->dims, 5u);
  EXPECT_EQ(info->num_points, 300u);
  EXPECT_EQ(info->num_nodes, tree.num_nodes());
  EXPECT_DOUBLE_EQ(info->config.epsilon, 0.25);
  for (size_t s = 0; s < kNumSegmentSections; ++s) {
    EXPECT_EQ(info->sections[s].offset % kSegmentPageBytes, 0u) << s;
  }
}

// ---------------------------------------------------------------------------
// External build identity

TEST_F(SegmentIoTest, ExternalBuildIsByteIdenticalToInMemoryBuild) {
  auto data = GenerateClustered({.n = 2500, .dims = 6, .seed = 23});
  ASSERT_TRUE(data.ok());
  const EkdbConfig config = Config(0.1);
  const std::string input = Path("points.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*data, input).ok());

  // In-memory reference: full build + WriteSegment.
  FlatEkdbTree tree = BuildFlat(*data, config);
  const std::string ram_path = Path("ram.seg");
  ASSERT_TRUE(WriteSegment(tree, ram_path).ok());

  // External build with tiny runs, forcing many sort runs and a real merge.
  ExternalBuildConfig ext;
  ext.ekdb = config;
  ext.temp_dir = temp_dir_;
  ext.sort_run_points = 256;
  ext.io_batch_points = 128;
  const std::string ext_path = Path("ext.seg");
  auto report = BuildSegmentExternal(input, ext_path, ext);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->fallback_in_memory);
  EXPECT_GT(report->num_runs, 1u);
  EXPECT_GT(report->num_fragments, 1u);
  EXPECT_EQ(report->num_points, 2500u);

  EXPECT_EQ(ReadFile(ram_path), ReadFile(ext_path))
      << "external build diverged from the in-memory segment bytes";
}

TEST_F(SegmentIoTest, ExternalBuildFallbackStillByteIdentical) {
  // Few points (<= leaf threshold): the builder takes its in-memory
  // fallback, which must still produce the canonical bytes.
  auto data = GenerateUniform({.n = 12, .dims = 4, .seed = 5});
  ASSERT_TRUE(data.ok());
  const EkdbConfig config = Config(0.3, /*leaf_threshold=*/16);
  const std::string input = Path("small.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*data, input).ok());

  FlatEkdbTree tree = BuildFlat(*data, config);
  const std::string ram_path = Path("small_ram.seg");
  ASSERT_TRUE(WriteSegment(tree, ram_path).ok());

  ExternalBuildConfig ext;
  ext.ekdb = config;
  ext.temp_dir = temp_dir_;
  const std::string ext_path = Path("small_ext.seg");
  auto report = BuildSegmentExternal(input, ext_path, ext);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->fallback_in_memory);
  EXPECT_EQ(ReadFile(ram_path), ReadFile(ext_path));
}

TEST_F(SegmentIoTest, ExternalBuildMappedServesIdenticalQueries) {
  auto data = GenerateUniform({.n = 1500, .dims = 8, .seed = 31});
  ASSERT_TRUE(data.ok());
  const EkdbConfig config = Config(0.12);
  const std::string input = Path("q.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*data, input).ok());

  ExternalBuildConfig ext;
  ext.ekdb = config;
  ext.temp_dir = temp_dir_;
  ext.sort_run_points = 300;
  const std::string seg = Path("q.seg");
  ASSERT_TRUE(BuildSegmentExternal(input, seg, ext).ok());

  FlatEkdbTree tree = BuildFlat(*data, config);
  auto mapped = OpenSegment(seg, SegmentOpenMode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameQueries(tree, *mapped->tree, *data, 0.12);
  ExpectSameQueries(tree, *mapped->tree, *data, 0.03);
}

// ---------------------------------------------------------------------------
// Mapped backend

TEST_F(SegmentIoTest, MmapBackendMatchesHeapBackendAndSpillJoins) {
  auto data = GenerateClustered({.n = 900, .dims = 6, .seed = 41});
  ASSERT_TRUE(data.ok());
  const EkdbConfig config = Config(0.1);
  FlatEkdbTree tree = BuildFlat(*data, config);
  const std::string path = Path("backend.seg");
  ASSERT_TRUE(WriteSegment(tree, path).ok());

  MmapBackendOptions options;
  options.spill_temp_dir = temp_dir_;
  auto backend = MmapEkdbBackend::Open(path, options);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  EXPECT_TRUE((*backend)->mapped());
  EXPECT_TRUE((*backend)->exact());
  // Heap bookkeeping must be tiny next to the mapped file.
  EXPECT_LT((*backend)->index_bytes(), (*backend)->mapped_bytes() / 4);

  // Range queries: bit-identical to the heap tree, recall 1.
  EXPECT_EQ((*backend)->queries_served(), 0u);
  for (size_t i = 0; i < 32; ++i) {
    std::vector<PointId> want, got;
    double recall = 0.0;
    ASSERT_TRUE(
        tree.RangeQuery(data->Row(static_cast<PointId>(i)), 0.1, &want).ok());
    ASSERT_TRUE((*backend)
                    ->RangeQuery(data->Row(static_cast<PointId>(i)), 0.1,
                                 &got, nullptr, &recall)
                    .ok());
    ASSERT_EQ(want, got);
    EXPECT_DOUBLE_EQ(recall, 1.0);
  }
  EXPECT_EQ((*backend)->queries_served(), 32u);

  // In-core self-join path (mapped bytes below the spill threshold).
  VectorSink in_core;
  ASSERT_TRUE((*backend)->SelfJoin(0.1, 1, &in_core, nullptr).ok());

  // Force the spill path and demand the identical canonical pair set.
  MmapBackendOptions spill = options;
  spill.spill_join_bytes = 0;
  spill.spill_memory_budget_points = 128;
  auto spilling = MmapEkdbBackend::Open(path, spill);
  ASSERT_TRUE(spilling.ok());
  VectorSink spilled;
  ASSERT_TRUE((*spilling)->SelfJoin(0.1, 1, &spilled, nullptr).ok());
  ExpectSamePairs(in_core.Sorted(), spilled.Sorted(), "spilled self-join");

  // Cold-cost penalty: a fresh mapping prices queries higher, and the
  // penalty disappears once queries have been served.
  auto cold = MmapEkdbBackend::Open(path, options);
  ASSERT_TRUE(cold.ok());
  const double cold_cost = (*cold)->EstimatedQueryCost(0.1, 4.0);
  std::vector<PointId> ids;
  ASSERT_TRUE((*cold)->RangeQuery(data->Row(0), 0.1, &ids, nullptr, nullptr)
                  .ok());
  const double warm_cost = (*cold)->EstimatedQueryCost(0.1, 4.0);
  EXPECT_GT(cold_cost, warm_cost);
}

// ---------------------------------------------------------------------------
// Robustness: every malformed file must fail with a clean Status.

class SegmentRobustnessTest : public SegmentIoTest {
 protected:
  /// Writes a valid segment and returns its bytes.
  std::vector<uint8_t> ValidSegment() {
    auto data = GenerateUniform({.n = 400, .dims = 4, .seed = 13});
    EXPECT_TRUE(data.ok());
    FlatEkdbTree tree = BuildFlat(*data, Config(0.2));
    const std::string path = Path("valid.seg");
    EXPECT_TRUE(WriteSegment(tree, path).ok());
    return ReadFile(path);
  }

  /// Both open modes must reject the file (or, for kMmap, at latest its
  /// checksum verification must fail) without crashing.
  void ExpectRejected(const std::vector<uint8_t>& bytes,
                      const std::string& label) {
    const std::string path = Path("mutated.seg");
    WriteFile(path, bytes);
    auto in_memory = OpenSegment(path, SegmentOpenMode::kInMemory);
    EXPECT_FALSE(in_memory.ok()) << label << ": in-memory open accepted it";
    auto mapped = OpenSegment(path, SegmentOpenMode::kMmap);
    if (mapped.ok()) {
      EXPECT_FALSE(mapped->segment->VerifyChecksums().ok())
          << label << ": mapped open and checksums both accepted it";
    }
  }
};

TEST_F(SegmentRobustnessTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = ValidSegment();
  bytes[0] ^= 0xFF;
  ExpectRejected(bytes, "bad magic");
}

TEST_F(SegmentRobustnessTest, RejectsVersionSkew) {
  std::vector<uint8_t> bytes = ValidSegment();
  bytes[4] = static_cast<uint8_t>(kSegmentVersion + 1);  // version u32 @4
  const std::string path = Path("skew.seg");
  WriteFile(path, bytes);
  auto opened = OpenSegment(path, SegmentOpenMode::kInMemory);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("version"), std::string::npos)
      << "error should name the version mismatch: "
      << opened.status().ToString();
}

TEST_F(SegmentRobustnessTest, RejectsTruncation) {
  const std::vector<uint8_t> bytes = ValidSegment();
  // Truncations at several depths: inside the header, at a section
  // boundary, and mid-way through the last section.
  for (const size_t keep :
       {size_t{0}, size_t{100}, size_t{4096}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    ExpectRejected(cut, "truncated to " + std::to_string(keep));
  }
}

TEST_F(SegmentRobustnessTest, RejectsCorruptionInEverySection) {
  const std::vector<uint8_t> bytes = ValidSegment();
  const std::string valid_path = Path("for_info.seg");
  WriteFile(valid_path, bytes);
  auto info = ReadSegmentInfo(valid_path);
  ASSERT_TRUE(info.ok());
  for (size_t s = 0; s < kNumSegmentSections; ++s) {
    const SegmentInfo::Section& section = info->sections[s];
    if (section.bytes == 0) continue;
    std::vector<uint8_t> mutated = bytes;
    mutated[section.offset + section.bytes / 2] ^= 0x40;
    ExpectRejected(mutated, "flip in section " + std::to_string(s));
  }
}

TEST_F(SegmentRobustnessTest, HeaderFuzzNeverCrashes) {
  const std::vector<uint8_t> bytes = ValidSegment();
  std::mt19937_64 rng(20260809);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> mutated = bytes;
    // 1-4 byte flips confined to the header page, where every parsed field
    // lives — the loader's bounds and checksum logic must hold under all
    // of them.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % kSegmentPageBytes] ^= static_cast<uint8_t>(1u << (rng() % 8));
    }
    const std::string path = Path("fuzz.seg");
    WriteFile(path, mutated);
    auto in_memory = OpenSegment(path, SegmentOpenMode::kInMemory);
    if (in_memory.ok()) {
      // A mutation that still parses must have hit padding; the tree is
      // then fully intact and must answer queries.
      std::vector<PointId> ids;
      EXPECT_TRUE(in_memory->tree
                      ->RangeQuery(in_memory->dataset->Row(0), 0.05, &ids)
                      .ok());
    }
    auto mapped = OpenSegment(path, SegmentOpenMode::kMmap);
    if (mapped.ok()) {
      (void)mapped->segment->VerifyChecksums();  // must not crash either way
    }
  }
}

TEST_F(SegmentRobustnessTest, MissingFileIsCleanError) {
  auto opened = OpenSegment(Path("does_not_exist.seg"),
                            SegmentOpenMode::kMmap);
  EXPECT_FALSE(opened.ok());
  auto info = ReadSegmentInfo(Path("does_not_exist.seg"));
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace simjoin
