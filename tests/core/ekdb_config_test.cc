#include "core/ekdb_config.h"

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(EkdbConfigTest, DefaultIsValid) {
  EkdbConfig config;
  EXPECT_TRUE(config.Validate(8).ok());
}

TEST(EkdbConfigTest, RejectsBadEpsilon) {
  EkdbConfig config;
  config.epsilon = 0.0;
  EXPECT_FALSE(config.Validate(4).ok());
  config.epsilon = -0.1;
  EXPECT_FALSE(config.Validate(4).ok());
  config.epsilon = 1.0;
  EXPECT_FALSE(config.Validate(4).ok());
  config.epsilon = 1.5;
  EXPECT_FALSE(config.Validate(4).ok());
}

TEST(EkdbConfigTest, RejectsZeroLeafThresholdAndZeroDims) {
  EkdbConfig config;
  config.leaf_threshold = 0;
  EXPECT_FALSE(config.Validate(4).ok());
  EkdbConfig ok_config;
  EXPECT_FALSE(ok_config.Validate(0).ok());
}

TEST(EkdbConfigTest, ValidatesDimOrderPermutation) {
  EkdbConfig config;
  config.dim_order = {2, 0, 1};
  EXPECT_TRUE(config.Validate(3).ok());
  config.dim_order = {0, 1};
  EXPECT_FALSE(config.Validate(3).ok());  // wrong arity
  config.dim_order = {0, 0, 1};
  EXPECT_FALSE(config.Validate(3).ok());  // duplicate
  config.dim_order = {0, 1, 3};
  EXPECT_FALSE(config.Validate(3).ok());  // out of range
}

TEST(EkdbConfigTest, NumStripesIsFloorOfInverseEpsilon) {
  EkdbConfig config;
  config.epsilon = 0.1;
  EXPECT_EQ(config.NumStripes(), 10u);
  config.epsilon = 0.3;
  EXPECT_EQ(config.NumStripes(), 3u);
  config.epsilon = 0.6;
  EXPECT_EQ(config.NumStripes(), 1u);
  config.epsilon = 0.25;
  EXPECT_EQ(config.NumStripes(), 4u);
}

TEST(EkdbConfigTest, StripeWidthAtLeastEpsilon) {
  for (double eps : {0.01, 0.03, 0.07, 0.1, 0.15, 0.33, 0.49}) {
    EkdbConfig config;
    config.epsilon = eps;
    EXPECT_GE(config.StripeWidth(), eps)
        << "stripe width must dominate epsilon for adjacency soundness";
  }
}

TEST(EkdbConfigTest, ResolvedDimOrderDefaultsToIdentity) {
  EkdbConfig config;
  EXPECT_EQ(config.ResolvedDimOrder(3), (std::vector<uint32_t>{0, 1, 2}));
  config.dim_order = {1, 2, 0};
  EXPECT_EQ(config.ResolvedDimOrder(3), (std::vector<uint32_t>{1, 2, 0}));
}

}  // namespace
}  // namespace simjoin
