// Tests for incremental maintenance (EkdbTree::Insert), epsilon-range
// queries, and radius-override joins on the eps-k-d-B tree.

#include <algorithm>
#include <optional>

#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"
#include "common/rng.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

EkdbConfig Config(double epsilon, size_t leaf_threshold = 16) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = leaf_threshold;
  return config;
}

// ---------------------------------------------------------------------------
// Insert.
// ---------------------------------------------------------------------------

TEST(EkdbInsertTest, AppendThenInsertKeepsJoinsExact) {
  // The real incremental workflow: build on n points, append m more to the
  // dataset, Insert their ids, and verify the join equals a from-scratch
  // build over all n+m points.
  auto base = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 2});
  ASSERT_TRUE(base.ok());
  auto extra = GenerateClustered(
      {.n = 400, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 3});
  ASSERT_TRUE(extra.ok());

  Dataset data = *base;
  auto tree = EkdbTree::Build(data, Config(0.08, 8));
  ASSERT_TRUE(tree.ok());

  for (size_t i = 0; i < extra->size(); ++i) {
    data.Append(extra->RowSpan(static_cast<PointId>(i)));
    ASSERT_TRUE(tree->Insert(static_cast<PointId>(data.size() - 1)).ok());
  }

  VectorSink incremental;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &incremental).ok());
  ExpectSamePairs(OracleSelfJoin(data, 0.08, Metric::kL2),
                  incremental.Sorted(), "append+insert");

  // Structural sanity after heavy insertion.
  const auto stats = tree->ComputeStats();
  EXPECT_EQ(stats.total_points, 1000u);
}

TEST(EkdbInsertTest, InsertTriggersLeafSplits) {
  Dataset data;
  Rng rng(4);
  for (int i = 0; i < 4; ++i) {
    data.Append(std::vector<float>{rng.UniformFloat(), rng.UniformFloat()});
  }
  auto tree = EkdbTree::Build(data, Config(0.1, 4));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->root()->is_leaf());
  for (int i = 0; i < 200; ++i) {
    data.Append(std::vector<float>{rng.UniformFloat(), rng.UniformFloat()});
    ASSERT_TRUE(tree->Insert(static_cast<PointId>(data.size() - 1)).ok());
  }
  EXPECT_FALSE(tree->root()->is_leaf()) << "inserts must split the root leaf";
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(data, 0.1, Metric::kL2), sink.Sorted(),
                  "post-split joins");
}

TEST(EkdbInsertTest, RejectsOutOfRangeAndUnnormalisedPoints) {
  Dataset data;
  data.Append(std::vector<float>{0.5f, 0.5f});
  auto tree = EkdbTree::Build(data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Insert(static_cast<PointId>(5)).code(),
            StatusCode::kOutOfRange);
  data.Append(std::vector<float>{0.5f, 1.5f});
  EXPECT_EQ(tree->Insert(static_cast<PointId>(1)).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// RangeQuery.
// ---------------------------------------------------------------------------

TEST(EkdbRangeQueryTest, MatchesLinearScanAcrossMetrics) {
  for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    auto data = GenerateClustered(
        {.n = 700, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 5});
    ASSERT_TRUE(data.ok());
    EkdbConfig config = Config(0.1, 8);
    config.metric = metric;
    auto tree = EkdbTree::Build(*data, config);
    ASSERT_TRUE(tree.ok());
    DistanceKernel kernel(metric);
    for (PointId q = 0; q < 25; ++q) {
      std::vector<PointId> got;
      ASSERT_TRUE(tree->RangeQuery(data->Row(q), 0.08, &got).ok());
      std::vector<PointId> expected;
      for (size_t i = 0; i < data->size(); ++i) {
        if (kernel.WithinEpsilon(data->Row(q),
                                 data->Row(static_cast<PointId>(i)), 4, 0.08)) {
          expected.push_back(static_cast<PointId>(i));
        }
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << MetricName(metric) << " query " << q;
    }
  }
}

TEST(EkdbRangeQueryTest, QueryPointNeedNotBeIndexed) {
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 6});
  auto tree = EkdbTree::Build(*data, Config(0.15, 8));
  ASSERT_TRUE(tree.ok());
  const float external_query[] = {0.51f, 0.49f, 0.5f};
  std::vector<PointId> got;
  ASSERT_TRUE(tree->RangeQuery(external_query, 0.15, &got).ok());
  DistanceKernel kernel(Metric::kL2);
  size_t expected = 0;
  for (size_t i = 0; i < data->size(); ++i) {
    expected += kernel.WithinEpsilon(external_query,
                                     data->Row(static_cast<PointId>(i)), 3,
                                     0.15);
  }
  EXPECT_EQ(got.size(), expected);
}

TEST(EkdbRangeQueryTest, RejectsRadiusAboveBuildEpsilon) {
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 7});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  std::vector<PointId> out;
  EXPECT_FALSE(tree->RangeQuery(data->Row(0), 0.2, &out).ok());
  EXPECT_FALSE(tree->RangeQuery(data->Row(0), 0.0, &out).ok());
  EXPECT_FALSE(tree->RangeQuery(data->Row(0), 0.05, nullptr).ok());
}

// ---------------------------------------------------------------------------
// Epsilon-override joins.
// ---------------------------------------------------------------------------

TEST(EkdbEpsilonOverrideTest, SelfJoinAtSmallerRadiusIsExact) {
  auto data = GenerateClustered(
      {.n = 800, .dims = 5, .clusters = 6, .sigma = 0.05, .seed = 8});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.2, 16));
  ASSERT_TRUE(tree.ok());
  for (double eps_query : {0.02, 0.07, 0.15, 0.2}) {
    VectorSink sink;
    ASSERT_TRUE(EkdbSelfJoinWithEpsilon(*tree, eps_query, &sink).ok());
    ExpectSamePairs(OracleSelfJoin(*data, eps_query, Metric::kL2),
                    sink.Sorted(),
                    ("override eps " + std::to_string(eps_query)).c_str());
  }
}

TEST(EkdbEpsilonOverrideTest, CrossJoinAtSmallerRadiusIsExact) {
  auto a = GenerateClustered(
      {.n = 400, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 9});
  auto b = GenerateClustered(
      {.n = 350, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 10});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = EkdbTree::Build(*a, Config(0.15, 16));
  auto tb = EkdbTree::Build(*b, Config(0.15, 16));
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbJoinWithEpsilon(*ta, *tb, 0.05, &sink).ok());
  ExpectSamePairs(testing_util::OracleJoin(*a, *b, 0.05, Metric::kL2),
                  sink.Sorted(), "cross override");
}

TEST(EkdbEpsilonOverrideTest, RejectsRadiusAboveBuildEpsilon) {
  auto data = GenerateUniform({.n = 50, .dims = 2, .seed = 11});
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  EXPECT_FALSE(EkdbSelfJoinWithEpsilon(*tree, 0.3, &sink).ok());
  EXPECT_FALSE(EkdbSelfJoinWithEpsilon(*tree, 0.0, &sink).ok());
  EXPECT_FALSE(EkdbSelfJoinWithEpsilon(*tree, 0.05, nullptr).ok());
}

// ---------------------------------------------------------------------------
// Remove, and randomized Insert/Remove differential against fresh rebuilds.
// ---------------------------------------------------------------------------

/// Rebuild oracle for a tree whose live rows are `live` (ascending row ids
/// into `data`): fresh build over just those rows, results remapped back to
/// the original row ids and sorted — the canonical expected answer.
struct RebuildOracle {
  Dataset data;
  std::vector<PointId> live;

  RebuildOracle(const Dataset& full, const std::vector<PointId>& live_ids,
                const EkdbConfig& config)
      : live(live_ids) {
    std::sort(live.begin(), live.end());
    std::vector<float> flat;
    for (PointId id : live) {
      const float* row = full.Row(id);
      flat.insert(flat.end(), row, row + full.dims());
    }
    auto made = Dataset::FromFlat(std::move(flat), full.dims());
    EXPECT_TRUE(made.ok());
    data = std::move(*made);
    auto tree = EkdbTree::Build(data, config);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    tree_.emplace(std::move(*tree));
  }

  std::vector<PointId> Range(const float* query, double eps) const {
    std::vector<PointId> rows;
    EXPECT_TRUE(tree_->RangeQuery(query, eps, &rows).ok());
    std::vector<PointId> out;
    for (PointId r : rows) out.push_back(live[r]);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<IdPair> SelfJoin() const {
    VectorSink sink;
    EXPECT_TRUE(EkdbSelfJoin(*tree_, &sink).ok());
    std::vector<IdPair> out;
    for (const IdPair& p : sink.pairs()) {
      const PointId a = live[p.first];
      const PointId b = live[p.second];
      out.push_back({std::min(a, b), std::max(a, b)});
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::optional<EkdbTree> tree_;
};

TEST(EkdbRemoveTest, RemoveThenResultsMatchFreshRebuild) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 21});
  ASSERT_TRUE(data.ok());
  const EkdbConfig config = Config(0.1, 8);
  auto tree = EkdbTree::Build(*data, config);
  ASSERT_TRUE(tree.ok());

  std::vector<PointId> live(data->size());
  for (size_t i = 0; i < live.size(); ++i) live[i] = static_cast<PointId>(i);
  Rng rng(22);
  for (int k = 0; k < 150; ++k) {
    const size_t victim = static_cast<size_t>(rng.UniformInt(live.size()));
    ASSERT_TRUE(tree->Remove(live[victim]).ok());
    live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
  }

  const RebuildOracle oracle(*data, live, config);
  for (PointId q = 0; q < 20; ++q) {
    std::vector<PointId> got;
    ASSERT_TRUE(tree->RangeQuery(data->Row(q), 0.08, &got).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, oracle.Range(data->Row(q), 0.08)) << "query " << q;
  }
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  EXPECT_EQ(sink.Sorted(), oracle.SelfJoin());
}

TEST(EkdbRemoveTest, RemoveUnknownOrRepeatedIdIsNotFound) {
  auto data = GenerateUniform({.n = 100, .dims = 3, .seed = 23});
  ASSERT_TRUE(data.ok());
  auto tree = EkdbTree::Build(*data, Config(0.1));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Remove(7).ok());
  EXPECT_EQ(tree->Remove(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree->Remove(100).code(), StatusCode::kOutOfRange);
}

TEST(EkdbDynamicDifferentialTest, InterleavedInsertRemoveMatchesRebuild) {
  // The satellite contract: any interleaving of Insert and Remove leaves
  // the tree answering range queries and self-joins bit-identically (after
  // canonical sorting) to a from-scratch build over the surviving points.
  auto seeded = GenerateClustered(
      {.n = 200, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 24});
  ASSERT_TRUE(seeded.ok());
  Dataset data = *seeded;
  const EkdbConfig config = Config(0.12, 8);
  auto tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(tree.ok());

  std::vector<PointId> live(data.size());
  for (size_t i = 0; i < live.size(); ++i) live[i] = static_cast<PointId>(i);

  Rng rng(25);
  for (int op = 0; op < 300; ++op) {
    if (rng.Bernoulli(0.55) || live.size() <= 1) {
      data.Append(std::vector<float>{rng.UniformFloat(), rng.UniformFloat(),
                                     rng.UniformFloat(), rng.UniformFloat()});
      const PointId id = static_cast<PointId>(data.size() - 1);
      ASSERT_TRUE(tree->Insert(id).ok());
      live.push_back(id);
    } else {
      const size_t victim = static_cast<size_t>(rng.UniformInt(live.size()));
      ASSERT_TRUE(tree->Remove(live[victim]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    if (op % 60 == 59) {
      const RebuildOracle oracle(data, live, config);
      for (int probe = 0; probe < 5; ++probe) {
        const float query[4] = {rng.UniformFloat(), rng.UniformFloat(),
                                rng.UniformFloat(), rng.UniformFloat()};
        std::vector<PointId> got;
        ASSERT_TRUE(tree->RangeQuery(query, 0.1, &got).ok());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, oracle.Range(query, 0.1)) << "op " << op;
      }
      VectorSink sink;
      ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
      EXPECT_EQ(sink.Sorted(), oracle.SelfJoin()) << "op " << op;
    }
  }
  const auto stats = tree->ComputeStats();
  EXPECT_EQ(stats.total_points, live.size());
}

TEST(EkdbEpsilonOverrideTest, SmallerRadiusDoesLessWork) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 4, .clusters = 8, .sigma = 0.05, .seed = 12});
  auto tree = EkdbTree::Build(*data, Config(0.2, 32));
  ASSERT_TRUE(tree.ok());
  JoinStats tight, loose;
  CountingSink s1, s2;
  ASSERT_TRUE(EkdbSelfJoinWithEpsilon(*tree, 0.02, &s1, &tight).ok());
  ASSERT_TRUE(EkdbSelfJoinWithEpsilon(*tree, 0.2, &s2, &loose).ok());
  EXPECT_LT(tight.candidate_pairs, loose.candidate_pairs);
  EXPECT_LE(s1.count(), s2.count());
}

}  // namespace
}  // namespace simjoin
