// Differential loopback tests: every result that crosses the wire must be
// bit-identical to the in-process FlatEkdbTree APIs on the same data —
// same neighbour id order, same join pair sequence, same JoinStats — at
// every thread count.  The service adds transport, not semantics.

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_tree.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon = 0.1) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

Dataset MakeData(size_t n, size_t dims, uint64_t seed) {
  auto data = GenerateUniform({.n = n, .dims = dims, .seed = seed});
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

BuildIndexRequest BuildRequestFor(const std::string& name,
                                  const Dataset& data,
                                  const EkdbConfig& config) {
  BuildIndexRequest req;
  req.name = name;
  req.config = config;
  req.dims = static_cast<uint32_t>(data.dims());
  req.points = data.flat();
  return req;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  Client client;
};

LiveServer StartWithClient(ServerConfig config = {}) {
  auto server = Server::Start(config);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  ClientConfig client_config;
  client_config.port = (*server)->port();
  auto client = Client::Connect(client_config);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return LiveServer{std::move(*server), std::move(*client)};
}

void ExpectStatsEqual(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
  EXPECT_EQ(a.distance_calls, b.distance_calls);
  EXPECT_EQ(a.node_pairs_visited, b.node_pairs_visited);
  EXPECT_EQ(a.node_pairs_pruned, b.node_pairs_pruned);
  EXPECT_EQ(a.pairs_emitted, b.pairs_emitted);
  EXPECT_EQ(a.simd_batches, b.simd_batches);
  EXPECT_EQ(a.scalar_fallbacks, b.scalar_fallbacks);
}

TEST(ServerLoopbackTest, PingAndStats) {
  LiveServer live = StartWithClient();
  ASSERT_TRUE(live.client.Ping().ok());
  auto stats = live.client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->accepted_connections, 1u);
  EXPECT_EQ(stats->indexes.size(), 0u);
}

TEST(ServerLoopbackTest, StatsRpcRoundTripsEveryRegisteredMetric) {
  const Dataset data = MakeData(300, 6, 17);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("m", data, Config(0.15))).ok());
  SimilarityJoinRequest req;
  req.name_a = "m";
  VectorSink sink;
  ASSERT_TRUE(live.client.SimilarityJoin(req, &sink).ok());

  // The server runs in-process, so the RPC must export (a superset of) the
  // same registry this test can snapshot locally: every metric registered
  // before the call comes back by name, counters no smaller than the local
  // reading (they are monotonic and traffic only moves them forward).
  const obs::MetricsSnapshot before = obs::GlobalMetrics().Snapshot();
  auto stats = live.client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->has_metrics);
  const obs::MetricsSnapshot& wire = stats->metrics;
  for (const obs::CounterSample& c : before.counters) {
    const obs::CounterSample* got = wire.FindCounter(c.name);
    ASSERT_NE(got, nullptr) << "counter " << c.name << " missing from RPC";
    EXPECT_GE(got->value, c.value) << c.name;
  }
  for (const obs::GaugeSample& g : before.gauges) {
    EXPECT_NE(wire.FindGauge(g.name), nullptr)
        << "gauge " << g.name << " missing from RPC";
  }
  for (const obs::HistogramSample& h : before.histograms) {
    const obs::HistogramSample* got = wire.FindHistogram(h.name);
    ASSERT_NE(got, nullptr) << "histogram " << h.name << " missing from RPC";
    EXPECT_EQ(got->boundaries, h.boundaries) << h.name;
    EXPECT_GE(got->count, h.count) << h.name;
  }

  // Spot-check the service instrumentation itself made the trip.
  const obs::CounterSample* admitted =
      wire.FindCounter("service.requests_admitted");
  ASSERT_NE(admitted, nullptr);
  EXPECT_GE(admitted->value, 3u);  // build + join + this stats request
  const obs::CounterSample* streamed =
      wire.FindCounter("service.pairs_streamed");
  ASSERT_NE(streamed, nullptr);
  EXPECT_EQ(streamed->value, sink.pairs().size());
  const obs::HistogramSample* join_lat =
      wire.FindHistogram("service.latency_us.similarity_join");
  ASSERT_NE(join_lat, nullptr);
  EXPECT_GE(join_lat->count, 1u);
  const obs::CounterSample* bytes_in = wire.FindCounter("service.bytes_in");
  const obs::CounterSample* bytes_out = wire.FindCounter("service.bytes_out");
  ASSERT_NE(bytes_in, nullptr);
  ASSERT_NE(bytes_out, nullptr);
  EXPECT_GT(bytes_in->value, 0u);
  EXPECT_GT(bytes_out->value, 0u);
}

TEST(ServerLoopbackTest, RangeQueryMatchesInProcessBitForBit) {
  const Dataset data = MakeData(500, 8, 11);
  const EkdbConfig config = Config(0.2);

  // In-process reference.
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());

  LiveServer live = StartWithClient();
  auto built = live.client.BuildIndex(BuildRequestFor("d", data, config));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->num_points, 500u);

  RangeQueryRequest req;
  req.name = "d";
  req.epsilon = 0.15;
  req.dims = static_cast<uint32_t>(data.dims());
  const size_t batch = 40;
  req.queries.assign(data.flat().begin(),
                     data.flat().begin() + batch * data.dims());
  auto resp = live.client.RangeQuery(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->results.size(), batch);

  JoinStats ref_stats;
  for (size_t i = 0; i < batch; ++i) {
    std::vector<PointId> expected;
    ASSERT_TRUE(
        ref_flat->RangeQuery(data.Row(i), 0.15, &expected, &ref_stats).ok());
    EXPECT_EQ(resp->results[i], expected) << "query " << i;
  }
  ExpectStatsEqual(resp->stats, ref_stats);
}

TEST(ServerLoopbackTest, SelfJoinMatchesInProcessAtEveryThreadCount) {
  const Dataset data = MakeData(600, 6, 23);
  const EkdbConfig config = Config(0.15);

  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());
  VectorSink expected;
  JoinStats ref_stats;
  ASSERT_TRUE(FlatEkdbSelfJoin(*ref_flat, &expected, &ref_stats).ok());

  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());

  for (const uint32_t threads : {1u, 2u, 4u}) {
    SimilarityJoinRequest req;
    req.name_a = "d";
    req.num_threads = threads;
    req.chunk_pairs = 97;  // force many chunks so reassembly is exercised
    VectorSink got;
    auto done = live.client.SimilarityJoin(req, &got);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    // Exact sequence, not just the same set: the wire preserves the
    // deterministic emission order of the join engine.
    EXPECT_EQ(got.pairs(), expected.pairs()) << "threads=" << threads;
    EXPECT_EQ(done->total_pairs, expected.pairs().size());
    ExpectStatsEqual(done->stats, ref_stats);
  }
}

TEST(ServerLoopbackTest, CrossJoinAndNarrowedEpsilonMatch) {
  const Dataset a = MakeData(300, 5, 31);
  const Dataset b = MakeData(250, 5, 37);
  const EkdbConfig config = Config(0.2);

  auto ta = EkdbTree::Build(a, config);
  auto tb = EkdbTree::Build(b, config);
  ASSERT_TRUE(ta.ok() && tb.ok());
  auto fa = FlatEkdbTree::FromTree(*ta);
  auto fb = FlatEkdbTree::FromTree(*tb);
  ASSERT_TRUE(fa.ok() && fb.ok());
  VectorSink expected;
  JoinStats ref_stats;
  ASSERT_TRUE(
      FlatEkdbJoinWithEpsilon(*fa, *fb, 0.12, &expected, &ref_stats).ok());

  LiveServer live = StartWithClient();
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("a", a, config)).ok());
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("b", b, config)).ok());

  SimilarityJoinRequest req;
  req.name_a = "a";
  req.name_b = "b";
  req.epsilon = 0.12;  // narrower than the build epsilon
  VectorSink got;
  auto done = live.client.SimilarityJoin(req, &got);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(got.pairs(), expected.pairs());
  ExpectStatsEqual(done->stats, ref_stats);
}

TEST(ServerLoopbackTest, ParallelClientsGetConsistentAnswers) {
  const Dataset data = MakeData(400, 4, 43);
  const EkdbConfig config = Config(0.1);
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());

  ServerConfig server_config;
  server_config.io_threads = 2;
  LiveServer live = StartWithClient(server_config);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());

  const uint16_t port = live.server->port();
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t]() {
      ClientConfig cc;
      cc.port = port;
      auto client = Client::Connect(cc);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 20; ++i) {
        const size_t qi = static_cast<size_t>(t * 20 + i) % data.size();
        auto ids = client->RangeQueryOne("d", data.RowSpan(qi), 0.08);
        ASSERT_TRUE(ids.ok()) << ids.status().ToString();
        std::vector<PointId> expected;
        ASSERT_TRUE(
            ref_flat->RangeQuery(data.Row(qi), 0.08, &expected).ok());
        EXPECT_EQ(*ids, expected);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(live.server->counters().decode_errors, 0u);
}

TEST(ServerLoopbackTest, ErrorPaths) {
  LiveServer live = StartWithClient();

  // Unknown index.
  auto ids = live.client.RangeQueryOne("ghost", std::vector<float>{0.5f});
  EXPECT_EQ(ids.status().code(), StatusCode::kNotFound);

  // Dimension mismatch.
  const Dataset data = MakeData(50, 3, 5);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());
  auto wrong = live.client.RangeQueryOne("d", std::vector<float>{0.5f, 0.5f});
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  // Malformed points payload (count not a multiple of dims).
  BuildIndexRequest bad = BuildRequestFor("bad", data, Config());
  bad.points.pop_back();
  EXPECT_FALSE(live.client.BuildIndex(bad).ok());

  // Radius beyond the build epsilon.
  RangeQueryRequest req;
  req.name = "d";
  req.epsilon = 0.9;
  req.dims = 3;
  req.queries = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(live.client.RangeQuery(req).status().code(),
            StatusCode::kInvalidArgument);

  // Drop, then the index really is gone.
  auto dropped = live.client.DropIndex("d");
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->found);
  EXPECT_EQ(live.client.DropIndex("d")->found, false);
  EXPECT_EQ(live.client.RangeQueryOne("d", std::vector<float>{0.0f, 0.0f,
                                                              0.0f})
                .status()
                .code(),
            StatusCode::kNotFound);

  // The connection survived every error above.
  EXPECT_TRUE(live.client.Ping().ok());
}

TEST(ServerLoopbackTest, BackpressureRejectsThenRecovers) {
  ServerConfig config;
  config.max_inflight = 1;
  config.handler_delay_ms_for_testing = 100;
  LiveServer live = StartWithClient(config);

  const Dataset data = MakeData(60, 3, 5);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());

  // Saturate the single slot from several connections at once.  With
  // max_retries = 0 the rejected requests surface as Unavailable.
  std::atomic<int> ok{0}, unavailable{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      ClientConfig cc;
      cc.port = live.server->port();
      cc.max_retries = 0;
      auto client = Client::Connect(cc);
      ASSERT_TRUE(client.ok());
      auto ids = client->RangeQueryOne("d", data.RowSpan(0), 0.05);
      if (ids.ok()) {
        ok.fetch_add(1);
      } else {
        ASSERT_EQ(ids.status().code(), StatusCode::kUnavailable)
            << ids.status().ToString();
        unavailable.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(unavailable.load(), 0);
  EXPECT_GT(live.server->counters().requests_rejected, 0u);

  // With retries enabled the same burst fully succeeds.
  std::atomic<int> retried_ok{0};
  std::vector<std::thread> retry_threads;
  for (int t = 0; t < 4; ++t) {
    retry_threads.emplace_back([&]() {
      ClientConfig cc;
      cc.port = live.server->port();
      cc.max_retries = 100;
      auto client = Client::Connect(cc);
      ASSERT_TRUE(client.ok());
      auto ids = client->RangeQueryOne("d", data.RowSpan(0), 0.05);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      retried_ok.fetch_add(1);
    });
  }
  for (std::thread& t : retry_threads) t.join();
  EXPECT_EQ(retried_ok.load(), 4);
}

TEST(ServerLoopbackTest, DeadlineExpiryReported) {
  ServerConfig config;
  config.handler_delay_ms_for_testing = 50;  // emulates queueing delay
  LiveServer live = StartWithClient(config);
  const Dataset data = MakeData(60, 3, 5);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());

  ClientConfig cc;
  cc.port = live.server->port();
  cc.deadline_ms = 1;
  auto deadline_client = Client::Connect(cc);
  ASSERT_TRUE(deadline_client.ok());
  auto ids = deadline_client->RangeQueryOne("d", data.RowSpan(0), 0.05);
  EXPECT_EQ(ids.status().code(), StatusCode::kDeadlineExceeded)
      << ids.status().ToString();
  EXPECT_GE(live.server->counters().deadline_expired, 1u);
}

TEST(ServerLoopbackTest, MalformedBytesGetErrorFrameAndClose) {
  LiveServer live = StartWithClient();
  auto raw = TcpSocket::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(raw.ok());
  const uint8_t garbage[32] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(raw->SendAll(garbage, sizeof(garbage)).ok());
  // The server answers with one kError frame, then hangs up.
  uint8_t header[kFrameHeaderSize];
  ASSERT_TRUE(raw->RecvAll(header, sizeof(header)).ok());
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(header, kDefaultMaxFramePayload, &h).ok());
  EXPECT_EQ(h.type, FrameType::kError);
  std::vector<uint8_t> payload(h.payload_size);
  ASSERT_TRUE(raw->RecvAll(payload.data(), payload.size()).ok());
  uint8_t one_more;
  EXPECT_FALSE(raw->RecvAll(&one_more, 1).ok());  // EOF: connection closed
  EXPECT_EQ(live.server->counters().decode_errors, 1u);

  // Other connections are unaffected.
  EXPECT_TRUE(live.client.Ping().ok());
}

// A hostile request may ask for u32-max threads and u32-max chunk pairs;
// the server must clamp both (not spawn a million OS threads or reserve a
// 34 GB chunk buffer) and still answer the exact join result.
TEST(ServerLoopbackTest, HostileResourceParamsAreClamped) {
  const Dataset data = MakeData(300, 4, 7);
  const EkdbConfig config = Config(0.15);
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());
  VectorSink expected;
  ASSERT_TRUE(FlatEkdbSelfJoin(*ref_flat, &expected).ok());

  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());

  SimilarityJoinRequest req;
  req.name_a = "d";
  req.num_threads = 0xFFFFFFFFu;
  req.chunk_pairs = 0xFFFFFFFFu;
  VectorSink got;
  auto done = live.client.SimilarityJoin(req, &got);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(got.pairs(), expected.pairs());

  // BuildIndex carries the same unvalidated thread count.
  BuildIndexRequest build = BuildRequestFor("d2", data, config);
  build.num_threads = 0xFFFFFFFFu;
  EXPECT_TRUE(live.client.BuildIndex(build).ok());
}

// A peer that resets mid join-stream must not leave undeliverable bytes
// queued forever: the connection is marked dead, its queue discarded, and
// shutdown still drains (the pre-fix server hung in Wait() here).
TEST(ServerLoopbackTest, AbruptDisconnectMidJoinDoesNotWedgeShutdown) {
  const Dataset data = MakeData(2000, 2, 13);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config(0.3))).ok());

  {
    auto raw = TcpSocket::Connect("127.0.0.1", live.server->port());
    ASSERT_TRUE(raw.ok());
    SimilarityJoinRequest req;
    req.name_a = "d";
    req.chunk_pairs = 1024;  // many frames, well past the socket buffers
    const std::vector<uint8_t> frame = EncodeFrame(
        FrameType::kSimilarityJoin, 1, 0, EncodeSimilarityJoinRequest(req));
    ASSERT_TRUE(raw->SendAll(frame.data(), frame.size()).ok());
    // Scope exit closes the socket while the join is still streaming.
  }

  ASSERT_TRUE(live.client.Shutdown().ok());
  live.server->Wait();  // regression: must return, not spin on the dead conn
}

// A connected client that stops reading must not buffer its entire result
// set in server memory: the stream blocks at max_conn_queued_bytes and the
// stall timeout disconnects it, leaving the server responsive.
TEST(ServerLoopbackTest, StalledStreamReaderIsDisconnected) {
  ServerConfig config;
  config.max_conn_queued_bytes = 64u << 10;
  config.write_stall_timeout_ms = 250;
  LiveServer live = StartWithClient(config);
  const Dataset data = MakeData(4000, 2, 17);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config(0.5))).ok());

  // Raw connection that requests a multi-megabyte pair stream and never
  // reads a byte of it.
  auto raw = TcpSocket::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(raw.ok());
  SimilarityJoinRequest req;
  req.name_a = "d";
  const std::vector<uint8_t> frame = EncodeFrame(
      FrameType::kSimilarityJoin, 1, 0, EncodeSimilarityJoinRequest(req));
  ASSERT_TRUE(raw->SendAll(frame.data(), frame.size()).ok());

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (live.server->counters().write_stall_disconnects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(live.server->counters().write_stall_disconnects, 1u);
  // The server shed the stalled connection and stayed responsive.
  EXPECT_TRUE(live.client.Ping().ok());
}

// A response that would overflow the frame limit is replaced by a clear
// error, never a size-field-truncated frame that desyncs the stream.
TEST(ServerLoopbackTest, OversizedResponseRejectedNotTruncated) {
  ServerConfig config;
  config.max_frame_payload = 4096;
  LiveServer live = StartWithClient(config);
  const Dataset data = MakeData(80, 3, 19);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config(0.9))).ok());

  // 50 queries at a radius that matches most of the index: the result
  // payload exceeds 4096 bytes and must come back as OUT_OF_RANGE.
  RangeQueryRequest big;
  big.name = "d";
  big.epsilon = 0.9;
  big.dims = 3;
  big.queries.assign(data.flat().begin(), data.flat().begin() + 50 * 3);
  EXPECT_EQ(live.client.RangeQuery(big).status().code(),
            StatusCode::kOutOfRange);

  // The connection survived and a small batch still works.
  auto one = live.client.RangeQueryOne("d", data.RowSpan(0), 0.05);
  EXPECT_TRUE(one.ok()) << one.status().ToString();
}

// A failed Start (here: port already bound) must surface as a Status; the
// pre-fix destructor of the partially built Server dereferenced the
// never-created task group and crashed.
TEST(ServerLoopbackTest, StartOnOccupiedPortFailsCleanly) {
  LiveServer live = StartWithClient();
  ServerConfig conflict;
  conflict.port = live.server->port();
  auto second = Server::Start(conflict);
  EXPECT_FALSE(second.ok());
}

TEST(ServerLoopbackTest, ShutdownDrainsCleanly) {
  LiveServer live = StartWithClient();
  const Dataset data = MakeData(100, 3, 5);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());
  ASSERT_TRUE(live.client.Shutdown().ok());
  live.server->Wait();
  // After the drain, new connections are refused.
  EXPECT_FALSE(Client::Connect({.port = live.server->port()}).ok());
}

}  // namespace
}  // namespace simjoin
