// Wire tests for the observability extensions: the trace-context request
// suffix (round trip on every request type, legacy byte-identity,
// truncation at every byte), the EXPLAIN ANALYZE profile response
// extension, and the Stats slow-query drain blocks.

#include <set>
#include <vector>

#include "service/protocol.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TraceContext MakeTrace(uint64_t id = 0x1122334455667788ull,
                       uint8_t flags = kTraceFlagProfile) {
  TraceContext t;
  t.present = true;
  t.trace_id = id;
  t.flags = flags;
  return t;
}

obs::RequestProfile MakeProfile() {
  obs::RequestProfile p;
  p.trace_id = 0xfeed;
  p.total_wall_ns = 123456;
  p.plan = "backend=ekdb-flat eps=0.1";
  p.nodes.push_back({obs::kProfileNoParent, "service.range_query", 0, 123456, 0});
  p.nodes.push_back({0, "queue", 0, 1000, 0});
  p.nodes.push_back({0, "execute", 1000, 122456, 98765});
  p.counters.push_back({"candidates", 88});
  p.counters.push_back({"distance_calls", 88});
  p.dropped_nodes = 2;
  return p;
}

TEST(ProtocolTraceTest, GeneratedIdsAreNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = GenerateTraceId();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ProtocolTraceTest, AbsentContextLeavesPayloadByteIdentical) {
  RangeQueryRequest req;
  req.name = "idx";
  req.epsilon = 0.1;
  req.dims = 1;
  req.queries = {0.5f};
  const std::vector<uint8_t> legacy = EncodeRangeQueryRequest(req);
  req.trace = MakeTrace();
  const std::vector<uint8_t> traced = EncodeRangeQueryRequest(req);
  // The extension is purely additive: strip the 10-byte suffix and the
  // remaining bytes are exactly the legacy frame.
  ASSERT_EQ(traced.size(), legacy.size() + kWireTraceExtBytes);
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), traced.begin()));
  EXPECT_EQ(traced.back(), kWireTraceMagic);

  std::vector<uint8_t> via_append = legacy;
  AppendTraceContext(req.trace, &via_append);
  EXPECT_EQ(via_append, traced);
  // present == false makes AppendTraceContext a no-op.
  std::vector<uint8_t> untouched = legacy;
  AppendTraceContext(TraceContext{}, &untouched);
  EXPECT_EQ(untouched, legacy);
}

TEST(ProtocolTraceTest, RangeQueryTraceRoundTripsWithAndWithoutPlanner) {
  RangeQueryRequest req;
  req.name = "idx";
  req.epsilon = 0.07;
  req.dims = 2;
  req.queries = {0.5f, 0.5f, 0.9f, 0.1f};
  req.trace = MakeTrace(42, kTraceFlagProfile);
  RangeQueryRequest out;
  ASSERT_TRUE(ParseRangeQueryRequest(EncodeRangeQueryRequest(req), &out).ok());
  EXPECT_EQ(out.trace, req.trace);
  EXPECT_TRUE(out.trace.profile());
  EXPECT_FALSE(out.has_planner);
  EXPECT_EQ(out.queries, req.queries);

  // The trace suffix stacks after the planner extension.
  req.has_planner = true;
  req.recall = 0.8;
  RangeQueryRequest both;
  ASSERT_TRUE(
      ParseRangeQueryRequest(EncodeRangeQueryRequest(req), &both).ok());
  EXPECT_TRUE(both.has_planner);
  EXPECT_EQ(both.recall, 0.8);
  EXPECT_EQ(both.trace, req.trace);
}

TEST(ProtocolTraceTest, EveryRequestTypeCarriesTheSuffix) {
  const TraceContext trace = MakeTrace(7, 0);

  BuildIndexRequest build;
  build.name = "b";
  build.dims = 1;
  build.points = {0.5f};
  build.trace = trace;
  BuildIndexRequest build_out;
  ASSERT_TRUE(
      ParseBuildIndexRequest(EncodeBuildIndexRequest(build), &build_out).ok());
  EXPECT_EQ(build_out.trace, trace);

  // ... including stacked on BuildIndex's backend/on_disk tail bytes.
  build.on_disk = true;
  ASSERT_TRUE(
      ParseBuildIndexRequest(EncodeBuildIndexRequest(build), &build_out).ok());
  EXPECT_EQ(build_out.trace, trace);
  EXPECT_TRUE(build_out.on_disk);

  SimilarityJoinRequest join;
  join.name_a = "a";
  join.trace = trace;
  SimilarityJoinRequest join_out;
  ASSERT_TRUE(
      ParseSimilarityJoinRequest(EncodeSimilarityJoinRequest(join), &join_out)
          .ok());
  EXPECT_EQ(join_out.trace, trace);

  InsertRequest ins;
  ins.name = "u";
  ins.dims = 1;
  ins.rows = {0.25f};
  ins.trace = trace;
  InsertRequest ins_out;
  ASSERT_TRUE(ParseInsertRequest(EncodeInsertRequest(ins), &ins_out).ok());
  EXPECT_EQ(ins_out.trace, trace);

  RemoveRequest rem;
  rem.name = "u";
  rem.ids = {1, 2, 3};
  rem.trace = trace;
  RemoveRequest rem_out;
  ASSERT_TRUE(ParseRemoveRequest(EncodeRemoveRequest(rem), &rem_out).ok());
  EXPECT_EQ(rem_out.trace, trace);

  FlushRequest flush;
  flush.name = "u";
  flush.trace = trace;
  FlushRequest flush_out;
  ASSERT_TRUE(ParseFlushRequest(EncodeFlushRequest(flush), &flush_out).ok());
  EXPECT_EQ(flush_out.trace, trace);
}

TEST(ProtocolTraceTest, TruncatedSuffixRejectedAtEveryByte) {
  // The valid tail shapes after the float block are exactly {0, 9, 10, 19}
  // bytes (legacy / planner / trace / both).  Truncating a trace suffix can
  // therefore only land on "rejected" or on a *different valid shape* —
  // never on a silently half-read trace.
  RangeQueryRequest req;
  req.name = "t";
  req.epsilon = 0.1;
  req.dims = 2;
  req.queries = {0.1f, 0.2f};
  req.trace = MakeTrace();
  const std::vector<uint8_t> full = EncodeRangeQueryRequest(req);
  RangeQueryRequest out;
  // Surplus 10 -> drop 1 leaves surplus 9: structurally the planner
  // extension (recall/backend get trace bytes; the server's semantic
  // validation is what rejects the garbage recall).  The parse must not
  // report a trace.
  {
    std::vector<uint8_t> cut(full.begin(), full.end() - 1);
    ASSERT_TRUE(ParseRangeQueryRequest(cut, &out).ok());
    EXPECT_FALSE(out.trace.present);
    EXPECT_TRUE(out.has_planner);
  }
  // Every other partial suffix is a framing error.
  for (size_t drop = 2; drop < kWireTraceExtBytes; ++drop) {
    std::vector<uint8_t> cut(full.begin(), full.end() - drop);
    EXPECT_FALSE(ParseRangeQueryRequest(cut, &out).ok()) << "drop " << drop;
  }
  // Stripping the whole suffix falls back to a legacy frame.
  std::vector<uint8_t> legacy(full.begin(),
                              full.end() - kWireTraceExtBytes);
  ASSERT_TRUE(ParseRangeQueryRequest(legacy, &out).ok());
  EXPECT_FALSE(out.trace.present);

  // A corrupted magic byte is rejected, not misread as point data.
  std::vector<uint8_t> bad_magic = full;
  bad_magic.back() = 0x00;
  EXPECT_FALSE(ParseRangeQueryRequest(bad_magic, &out).ok());

  // With both extensions stacked (surplus 19), partial truncations down to
  // the next valid shape are rejected: surplus 11..18 are not shapes, and
  // surplus 10 (drop 9) fails the trace magic check because the tail byte
  // is trace_id payload, not 'T'.
  req.has_planner = true;
  req.recall = 0.5;
  const std::vector<uint8_t> both = EncodeRangeQueryRequest(req);
  for (size_t drop = 1; drop <= 9; ++drop) {
    std::vector<uint8_t> cut(both.begin(), both.end() - drop);
    EXPECT_FALSE(ParseRangeQueryRequest(cut, &out).ok()) << "drop " << drop;
  }
  // Dropping the full 10-byte suffix leaves the intact planner frame.
  std::vector<uint8_t> planner_only(both.begin(),
                                    both.end() - kWireTraceExtBytes);
  ASSERT_TRUE(ParseRangeQueryRequest(planner_only, &out).ok());
  EXPECT_TRUE(out.has_planner);
  EXPECT_EQ(out.recall, 0.5);
  EXPECT_FALSE(out.trace.present);
}

TEST(ProtocolTraceTest, ProfileResponseExtensionRoundTrips) {
  RangeQueryResponse resp;
  resp.results = {{1, 5}, {}};
  resp.stats.distance_calls = 9;
  resp.has_profile = true;
  resp.profile = MakeProfile();
  RangeQueryResponse parsed;
  ASSERT_TRUE(
      ParseRangeQueryResponse(EncodeRangeQueryResponse(resp), &parsed).ok());
  ASSERT_TRUE(parsed.has_profile);
  EXPECT_EQ(parsed.profile, resp.profile);
  EXPECT_EQ(parsed.results, resp.results);
  EXPECT_FALSE(parsed.has_planner);

  // Stacked after the planner echo.
  resp.has_planner = true;
  resp.achieved_recall = 0.93;
  resp.backend_used = 3;
  RangeQueryResponse both;
  ASSERT_TRUE(
      ParseRangeQueryResponse(EncodeRangeQueryResponse(resp), &both).ok());
  ASSERT_TRUE(both.has_planner);
  ASSERT_TRUE(both.has_profile);
  EXPECT_EQ(both.achieved_recall, 0.93);
  EXPECT_EQ(both.profile, resp.profile);
}

TEST(ProtocolTraceTest, ProfileExtensionTruncationRejected) {
  RangeQueryResponse resp;
  resp.results = {{2}};
  resp.has_profile = true;
  resp.profile = MakeProfile();
  const std::vector<uint8_t> full = EncodeRangeQueryResponse(resp);
  const std::vector<uint8_t> legacy_bytes =
      EncodeRangeQueryResponse([&] {
        RangeQueryResponse r = resp;
        r.has_profile = false;
        return r;
      }());
  RangeQueryResponse out;
  // The profile is detected from the tail magic + length field.  Nearly
  // every truncation breaks that pairing and is rejected; in the rare case
  // where a profile byte happens to be the magic AND the four bytes before
  // it happen to spell a consistent length AND that prefix parses as a
  // profile, the parse may succeed — but it can only ever misread the
  // telemetry tail, never the result ids (the parser is bounds-checked and
  // the results block is consumed before extension detection).
  size_t accidental = 0;
  for (size_t drop = 1; drop < full.size() - legacy_bytes.size(); ++drop) {
    std::vector<uint8_t> cut(full.begin(), full.end() - drop);
    const Status st = ParseRangeQueryResponse(cut, &out);
    if (st.ok()) {
      ++accidental;
      EXPECT_EQ(out.results, resp.results) << "drop " << drop;
    }
  }
  // Deterministic bytes: at most a couple of alignments exist in this
  // encoding, and the overwhelming majority of truncations are rejected.
  EXPECT_LE(accidental, 2u);
  ASSERT_TRUE(ParseRangeQueryResponse(legacy_bytes, &out).ok());
  EXPECT_FALSE(out.has_profile);

  // A profile length field pointing outside the payload is rejected.
  std::vector<uint8_t> bad_len = full;
  const size_t len_at = bad_len.size() - kWireProfileFrameBytes;
  bad_len[len_at] = 0xff;
  bad_len[len_at + 1] = 0xff;
  EXPECT_FALSE(ParseRangeQueryResponse(bad_len, &out).ok());
}

TEST(ProtocolTraceTest, ProfileParserRejectsHostileCounts) {
  // Hand-crafted body claiming more nodes than kMaxProfileNodes.
  WireWriter w;
  w.U32(obs::kMaxProfileNodes + 1);
  WireReader r(w.buffer());
  obs::RequestProfile out;
  EXPECT_FALSE(ParseRequestProfile(&r, &out).ok());

  // And a node count whose minimum encoding exceeds the remaining bytes.
  WireWriter w2;
  w2.U32(100);
  w2.U32(0);  // far fewer bytes than 100 nodes need
  WireReader r2(w2.buffer());
  EXPECT_FALSE(ParseRequestProfile(&r2, &out).ok());
}

TEST(ProtocolTraceTest, StatsRequestLegacyAndDrainShapes) {
  StatsRequest legacy;
  EXPECT_TRUE(EncodeStatsRequest(legacy).empty());  // old servers accept it
  StatsRequest out;
  ASSERT_TRUE(ParseStatsRequest({}, &out).ok());
  EXPECT_FALSE(out.drain_slowlog);

  StatsRequest drain;
  drain.drain_slowlog = true;
  const std::vector<uint8_t> bytes = EncodeStatsRequest(drain);
  ASSERT_EQ(bytes.size(), 1u);
  ASSERT_TRUE(ParseStatsRequest(bytes, &out).ok());
  EXPECT_TRUE(out.drain_slowlog);
}

TEST(ProtocolTraceTest, StatsResponseSlowlogBlockRoundTrips) {
  StatsResponse resp;
  resp.requests_admitted = 10;
  resp.has_metrics = true;
  resp.has_slowlog = true;
  resp.slowlog_recorded = 5;
  resp.slowlog_evicted = 2;
  obs::SlowQueryEntry e;
  e.unix_micros = 1'700'000'000'000'000ull;
  e.trace_id = 0xabc;
  e.request_id = 9;
  e.op = 2;
  e.index = "base";
  e.wall_us = 1500;
  e.status_code = 4;
  e.status_message = "deadline exceeded";
  e.profile = MakeProfile();
  resp.slowlog.push_back(e);
  resp.slowlog.push_back(obs::SlowQueryEntry{});  // minimal entry

  StatsResponse parsed;
  ASSERT_TRUE(ParseStatsResponse(EncodeStatsResponse(resp), &parsed).ok());
  ASSERT_TRUE(parsed.has_slowlog);
  EXPECT_EQ(parsed.slowlog, resp.slowlog);
  EXPECT_EQ(parsed.slowlog_recorded, 5u);
  EXPECT_EQ(parsed.slowlog_evicted, 2u);

  // A rev-2 response (no slowlog block) still parses, flag off.
  resp.has_slowlog = false;
  ASSERT_TRUE(ParseStatsResponse(EncodeStatsResponse(resp), &parsed).ok());
  EXPECT_FALSE(parsed.has_slowlog);
  EXPECT_TRUE(parsed.slowlog.empty());
}

TEST(ProtocolTraceTest, StatsSlowlogTruncationRejected) {
  StatsResponse resp;
  resp.has_metrics = true;
  resp.has_slowlog = true;
  obs::SlowQueryEntry e;
  e.index = "x";
  e.profile = MakeProfile();
  resp.slowlog.push_back(e);
  const std::vector<uint8_t> full = EncodeStatsResponse(resp);
  const size_t legacy_size = EncodeStatsResponse([&] {
                               StatsResponse r = resp;
                               r.has_slowlog = false;
                               return r;
                             }())
                                 .size();
  StatsResponse out;
  for (size_t drop = 1; drop < full.size() - legacy_size; ++drop) {
    std::vector<uint8_t> cut(full.begin(), full.end() - drop);
    EXPECT_FALSE(ParseStatsResponse(cut, &out).ok()) << "drop " << drop;
  }
}

}  // namespace
}  // namespace simjoin
