#include "service/protocol.h"

#include <cstring>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

Frame MustDecodeOne(std::span<const uint8_t> bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool got = false;
  const Status st = decoder.Next(&frame, &got);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(got);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(ProtocolTest, FrameHeaderRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes =
      EncodeFrame(FrameType::kRangeQuery, 42, 750, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());
  const Frame frame = MustDecodeOne(bytes);
  EXPECT_EQ(frame.header.type, FrameType::kRangeQuery);
  EXPECT_EQ(frame.header.request_id, 42u);
  EXPECT_EQ(frame.header.deadline_ms, 750u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(ProtocolTest, DecoderReassemblesByteAtATime) {
  const std::vector<uint8_t> payload(300, 0xab);
  const std::vector<uint8_t> bytes =
      EncodeFrame(FrameType::kJoinChunk, 7, 0, payload);
  FrameDecoder decoder;
  Frame frame;
  bool got = false;
  for (size_t i = 0; i < bytes.size(); ++i) {
    decoder.Append(&bytes[i], 1);
    ASSERT_TRUE(decoder.Next(&frame, &got).ok());
    EXPECT_EQ(got, i + 1 == bytes.size());
  }
  EXPECT_EQ(frame.payload, payload);
}

TEST(ProtocolTest, DecoderSplitsConcatenatedFrames) {
  std::vector<uint8_t> stream;
  for (uint64_t id = 0; id < 5; ++id) {
    const std::vector<uint8_t> payload(id * 10, static_cast<uint8_t>(id));
    const auto f = EncodeFrame(FrameType::kPing, id, 0, payload);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  for (uint64_t id = 0; id < 5; ++id) {
    Frame frame;
    bool got = false;
    ASSERT_TRUE(decoder.Next(&frame, &got).ok());
    ASSERT_TRUE(got);
    EXPECT_EQ(frame.header.request_id, id);
    EXPECT_EQ(frame.payload.size(), id * 10);
  }
  bool got = true;
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame, &got).ok());
  EXPECT_FALSE(got);
}

TEST(ProtocolTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, 0, {});
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool got = false;
  EXPECT_FALSE(decoder.Next(&frame, &got).ok());
  // The error is sticky: the stream cannot be resynchronised.
  EXPECT_FALSE(decoder.Next(&frame, &got).ok());
}

TEST(ProtocolTest, WrongVersionRejected) {
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, 0, {});
  bytes[4] = kWireVersion + 1;
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool got = false;
  EXPECT_FALSE(decoder.Next(&frame, &got).ok());
}

TEST(ProtocolTest, UnknownTypeRejected) {
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, 0, {});
  bytes[5] = 40;  // not a defined FrameType
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool got = false;
  EXPECT_FALSE(decoder.Next(&frame, &got).ok());
}

TEST(ProtocolTest, OversizedPayloadRejectedBeforeBuffering) {
  // Header declares 2 MB against a 1 MB decoder bound; the decoder must
  // fail on the header alone, not wait for (or allocate) the payload.
  const std::vector<uint8_t> payload;
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, 0, payload);
  const uint32_t huge = 2u << 20;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  FrameDecoder decoder(1u << 20);
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool got = false;
  EXPECT_FALSE(decoder.Next(&frame, &got).ok());
}

TEST(ProtocolTest, BuildIndexRequestRoundTrip) {
  BuildIndexRequest req;
  req.name = "fleet";
  req.config.epsilon = 0.125;
  req.config.metric = Metric::kLinf;
  req.config.leaf_threshold = 48;
  req.config.bbox_pruning = false;
  req.config.dim_order = {2, 0, 1};
  req.num_threads = 3;
  req.dims = 3;
  req.points = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f};
  BuildIndexRequest out;
  ASSERT_TRUE(ParseBuildIndexRequest(EncodeBuildIndexRequest(req), &out).ok());
  EXPECT_EQ(out.name, req.name);
  EXPECT_EQ(out.config.epsilon, req.config.epsilon);
  EXPECT_EQ(out.config.metric, req.config.metric);
  EXPECT_EQ(out.config.leaf_threshold, req.config.leaf_threshold);
  EXPECT_EQ(out.config.bbox_pruning, req.config.bbox_pruning);
  EXPECT_EQ(out.config.dim_order, req.config.dim_order);
  EXPECT_EQ(out.num_threads, req.num_threads);
  EXPECT_EQ(out.dims, req.dims);
  EXPECT_EQ(out.points, req.points);
}

TEST(ProtocolTest, BuildIndexOnDiskFlagRoundTrip) {
  BuildIndexRequest req;
  req.name = "cold";
  req.dims = 2;
  req.points = {0.1f, 0.2f, 0.3f, 0.4f};
  req.backend = BackendKind::kEkdbFlat;
  req.on_disk = true;
  const std::vector<uint8_t> wire = EncodeBuildIndexRequest(req);
  // The flag travels as a second trailing byte: payload tail % 4 == 2.
  BuildIndexRequest out;
  ASSERT_TRUE(ParseBuildIndexRequest(wire, &out).ok());
  EXPECT_TRUE(out.on_disk);
  EXPECT_EQ(out.backend, BackendKind::kEkdbFlat);
  EXPECT_EQ(out.points, req.points);

  // Without the flag the frame stays in the legacy/backend-byte shapes and
  // parses with on_disk false.
  req.on_disk = false;
  BuildIndexRequest legacy;
  ASSERT_TRUE(
      ParseBuildIndexRequest(EncodeBuildIndexRequest(req), &legacy).ok());
  EXPECT_FALSE(legacy.on_disk);

  // A three-byte tail is no extension this codec knows — reject, don't
  // misread someone's floats.
  std::vector<uint8_t> mutated = wire;
  mutated.push_back(0);
  BuildIndexRequest bad;
  EXPECT_FALSE(ParseBuildIndexRequest(mutated, &bad).ok());
}

TEST(ProtocolTest, BuildIndexRequestPointCountMismatchRejected) {
  BuildIndexRequest req;
  req.name = "x";
  req.dims = 4;
  req.points = {0.1f, 0.2f, 0.3f};  // not a multiple of dims
  BuildIndexRequest out;
  EXPECT_FALSE(
      ParseBuildIndexRequest(EncodeBuildIndexRequest(req), &out).ok());
}

TEST(ProtocolTest, RangeQueryRoundTrip) {
  RangeQueryRequest req;
  req.name = "idx";
  req.epsilon = 0.07;
  req.dims = 2;
  req.queries = {0.5f, 0.5f, 0.9f, 0.1f};
  RangeQueryRequest out;
  ASSERT_TRUE(ParseRangeQueryRequest(EncodeRangeQueryRequest(req), &out).ok());
  EXPECT_EQ(out.name, req.name);
  EXPECT_EQ(out.epsilon, req.epsilon);
  EXPECT_EQ(out.queries, req.queries);

  RangeQueryResponse resp;
  resp.results = {{1, 5, 9}, {}, {1u << 30}};
  resp.stats.distance_calls = 77;
  resp.stats.simd_batches = 3;
  RangeQueryResponse parsed;
  ASSERT_TRUE(
      ParseRangeQueryResponse(EncodeRangeQueryResponse(resp), &parsed).ok());
  EXPECT_EQ(parsed.results, resp.results);
  EXPECT_EQ(parsed.stats.distance_calls, 77u);
  EXPECT_EQ(parsed.stats.simd_batches, 3u);
}

TEST(ProtocolTest, RangeQueryPlannerExtensionRoundTrip) {
  RangeQueryRequest req;
  req.name = "idx";
  req.epsilon = 0.07;
  req.dims = 2;
  req.queries = {0.5f, 0.5f, 0.9f, 0.1f};
  req.has_planner = true;
  req.recall = 0.85;
  req.backend = static_cast<uint8_t>(BackendKind::kLsh);
  RangeQueryRequest out;
  ASSERT_TRUE(ParseRangeQueryRequest(EncodeRangeQueryRequest(req), &out).ok());
  EXPECT_TRUE(out.has_planner);
  EXPECT_EQ(out.recall, 0.85);
  EXPECT_EQ(out.backend, static_cast<uint8_t>(BackendKind::kLsh));
  EXPECT_EQ(out.queries, req.queries);

  RangeQueryResponse resp;
  resp.results = {{1, 5, 9}, {}};
  resp.has_planner = true;
  resp.achieved_recall = 0.91;
  resp.backend_used = static_cast<uint8_t>(BackendKind::kLsh);
  resp.plan_cache_hit = true;
  RangeQueryResponse parsed;
  ASSERT_TRUE(
      ParseRangeQueryResponse(EncodeRangeQueryResponse(resp), &parsed).ok());
  EXPECT_TRUE(parsed.has_planner);
  EXPECT_EQ(parsed.achieved_recall, 0.91);
  EXPECT_EQ(parsed.backend_used, static_cast<uint8_t>(BackendKind::kLsh));
  EXPECT_TRUE(parsed.plan_cache_hit);
  EXPECT_EQ(parsed.results, resp.results);
}

TEST(ProtocolTest, LegacyRangeQueryFramesParseWithPlannerDefaults) {
  // A frame without the trailing extension must decode to the exact-path
  // defaults; a frame with it must not perturb the legacy fields.
  RangeQueryRequest legacy;
  legacy.name = "idx";
  legacy.epsilon = 0.05;
  legacy.dims = 1;
  legacy.queries = {0.25f};
  RangeQueryRequest out;
  ASSERT_TRUE(
      ParseRangeQueryRequest(EncodeRangeQueryRequest(legacy), &out).ok());
  EXPECT_FALSE(out.has_planner);
  EXPECT_EQ(out.recall, 1.0);
  EXPECT_EQ(out.backend, kWireBackendAuto);

  RangeQueryResponse legacy_resp;
  legacy_resp.results = {{3}};
  RangeQueryResponse parsed;
  ASSERT_TRUE(
      ParseRangeQueryResponse(EncodeRangeQueryResponse(legacy_resp), &parsed)
          .ok());
  EXPECT_FALSE(parsed.has_planner);
  EXPECT_EQ(parsed.achieved_recall, 1.0);
  EXPECT_FALSE(parsed.plan_cache_hit);
}

TEST(ProtocolTest, RangeQueryExtensionTruncationRejected) {
  // The extension is exactly 9 bytes after the float block; any partial
  // suffix is a malformed frame, and stripping all 9 falls back to legacy.
  RangeQueryRequest req;
  req.name = "t";
  req.epsilon = 0.1;
  req.dims = 2;
  req.queries = {0.1f, 0.2f};
  req.has_planner = true;
  req.recall = 0.5;
  const std::vector<uint8_t> full = EncodeRangeQueryRequest(req);
  RangeQueryRequest out;
  for (size_t drop = 1; drop < 9; ++drop) {
    std::vector<uint8_t> cut(full.begin(), full.end() - drop);
    EXPECT_FALSE(ParseRangeQueryRequest(cut, &out).ok()) << "drop " << drop;
  }
  std::vector<uint8_t> legacy(full.begin(), full.end() - 9);
  ASSERT_TRUE(ParseRangeQueryRequest(legacy, &out).ok());
  EXPECT_FALSE(out.has_planner);

  RangeQueryResponse resp;
  resp.results = {{1, 2}};
  resp.has_planner = true;
  resp.achieved_recall = 0.7;
  const std::vector<uint8_t> full_resp = EncodeRangeQueryResponse(resp);
  RangeQueryResponse parsed;
  for (size_t drop = 1; drop < 10; ++drop) {
    std::vector<uint8_t> cut(full_resp.begin(), full_resp.end() - drop);
    EXPECT_FALSE(ParseRangeQueryResponse(cut, &parsed).ok())
        << "drop " << drop;
  }
  std::vector<uint8_t> legacy_resp(full_resp.begin(), full_resp.end() - 10);
  ASSERT_TRUE(ParseRangeQueryResponse(legacy_resp, &parsed).ok());
  EXPECT_FALSE(parsed.has_planner);
}

TEST(ProtocolTest, JoinMessagesRoundTrip) {
  SimilarityJoinRequest req;
  req.name_a = "a";
  req.name_b = "b";
  req.epsilon = 0.3;
  req.num_threads = 4;
  req.chunk_pairs = 1000;
  SimilarityJoinRequest out;
  ASSERT_TRUE(
      ParseSimilarityJoinRequest(EncodeSimilarityJoinRequest(req), &out).ok());
  EXPECT_EQ(out.name_a, "a");
  EXPECT_EQ(out.name_b, "b");
  EXPECT_EQ(out.chunk_pairs, 1000u);

  const std::vector<IdPair> pairs = {{0, 1}, {2, 3}, {1u << 20, 5}};
  JoinChunk chunk;
  ASSERT_TRUE(ParseJoinChunk(EncodeJoinChunk(pairs), &chunk).ok());
  EXPECT_EQ(chunk.pairs, pairs);

  JoinDone done;
  done.total_pairs = 3;
  done.stats.candidate_pairs = 9;
  done.stats.pairs_emitted = 3;
  done.stats.scalar_fallbacks = 1;
  JoinDone parsed;
  ASSERT_TRUE(ParseJoinDone(EncodeJoinDone(done), &parsed).ok());
  EXPECT_EQ(parsed.total_pairs, 3u);
  EXPECT_EQ(parsed.stats.candidate_pairs, 9u);
  EXPECT_EQ(parsed.stats.scalar_fallbacks, 1u);
}

TEST(ProtocolTest, StatsRoundTrip) {
  StatsResponse resp;
  resp.requests_admitted = 10;
  resp.requests_rejected = 2;
  resp.registry_bytes = 12345;
  IndexInfo info;
  info.name = "base";
  info.num_points = 100;
  info.dims = 16;
  info.bytes = 6400;
  info.hits = 9;
  info.epsilon = 0.1;
  info.metric = Metric::kL1;
  resp.indexes.push_back(info);
  StatsResponse parsed;
  ASSERT_TRUE(ParseStatsResponse(EncodeStatsResponse(resp), &parsed).ok());
  EXPECT_EQ(parsed.requests_admitted, 10u);
  ASSERT_EQ(parsed.indexes.size(), 1u);
  EXPECT_EQ(parsed.indexes[0].name, "base");
  EXPECT_EQ(parsed.indexes[0].metric, Metric::kL1);
  EXPECT_EQ(parsed.indexes[0].epsilon, 0.1);
  EXPECT_TRUE(parsed.has_metrics);  // rev-2 encoder always appends the block
}

TEST(ProtocolTest, StatsMetricsRoundTripEveryKind) {
  StatsResponse resp;
  resp.metrics.counters = {{"a.count", 7}, {"b.count", 1ull << 60}};
  resp.metrics.gauges = {{"depth", -12}, {"inflight", 3}};
  obs::HistogramSample h;
  h.name = "latency_us";
  h.boundaries = {1.0, 10.0, 100.0};
  h.counts = {4, 3, 2, 1};
  h.count = 10;
  h.sum = 256.5;
  resp.metrics.histograms = {h};

  StatsResponse parsed;
  ASSERT_TRUE(ParseStatsResponse(EncodeStatsResponse(resp), &parsed).ok());
  ASSERT_TRUE(parsed.has_metrics);
  EXPECT_EQ(parsed.metrics, resp.metrics);  // field-exact, all three kinds
  // Quantiles survive the trip because bucket structure is preserved.
  EXPECT_DOUBLE_EQ(parsed.metrics.histograms[0].Quantile(0.5),
                   resp.metrics.histograms[0].Quantile(0.5));
}

TEST(ProtocolTest, StatsLegacyPayloadWithoutMetricsStillParses) {
  // A rev-1 peer ends the payload right after the index list; the parser
  // must accept it and report has_metrics = false.
  StatsResponse resp;
  resp.requests_admitted = 5;
  IndexInfo info;
  info.name = "old";
  info.metric = Metric::kL2;
  resp.indexes.push_back(info);
  std::vector<uint8_t> payload = EncodeStatsResponse(resp);
  // Strip the trailing metrics block (three empty sections = 12 bytes).
  ASSERT_GE(payload.size(), 12u);
  payload.resize(payload.size() - 12);

  StatsResponse parsed;
  ASSERT_TRUE(ParseStatsResponse(payload, &parsed).ok());
  EXPECT_FALSE(parsed.has_metrics);
  EXPECT_EQ(parsed.requests_admitted, 5u);
  ASSERT_EQ(parsed.indexes.size(), 1u);
  EXPECT_EQ(parsed.indexes[0].name, "old");
}

TEST(ProtocolTest, StatsMetricsRejectsOversizedCounts) {
  // A counter count far beyond the remaining payload must fail cleanly
  // before any allocation.
  StatsResponse resp;
  std::vector<uint8_t> payload = EncodeStatsResponse(resp);
  ASSERT_GE(payload.size(), 12u);
  const size_t counter_count_off = payload.size() - 12;
  payload[counter_count_off] = 0xff;
  payload[counter_count_off + 1] = 0xff;
  payload[counter_count_off + 2] = 0xff;
  payload[counter_count_off + 3] = 0xff;
  StatsResponse parsed;
  EXPECT_FALSE(ParseStatsResponse(payload, &parsed).ok());
}

TEST(ProtocolTest, ErrorStatusRoundTrip) {
  const Status original = Status::NotFound("no index named 'zap'");
  Status parsed = Status::OK();
  ASSERT_TRUE(ParseErrorResponse(EncodeErrorResponse(original), &parsed).ok());
  EXPECT_EQ(parsed.code(), StatusCode::kNotFound);
  EXPECT_EQ(parsed.message(), original.message());
}

TEST(ProtocolTest, RetryAfterRoundTrip) {
  RetryAfterResponse parsed;
  ASSERT_TRUE(
      ParseRetryAfterResponse(EncodeRetryAfterResponse(35), &parsed).ok());
  EXPECT_EQ(parsed.retry_after_ms, 35u);
}

TEST(ProtocolTest, TruncatedPayloadsRejected) {
  BuildIndexRequest req;
  req.name = "idx";
  req.dims = 2;
  req.points = {0.1f, 0.2f};
  const std::vector<uint8_t> full = EncodeBuildIndexRequest(req);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    BuildIndexRequest out;
    EXPECT_FALSE(
        ParseBuildIndexRequest(std::span(full.data(), cut), &out).ok())
        << "accepted a payload truncated to " << cut << " bytes";
  }
}

TEST(ProtocolTest, TrailingGarbageRejected) {
  DropIndexRequest req;
  req.name = "idx";
  std::vector<uint8_t> payload = EncodeDropIndexRequest(req);
  payload.push_back(0);
  DropIndexRequest out;
  EXPECT_FALSE(ParseDropIndexRequest(payload, &out).ok());
}

TEST(ProtocolTest, HostileStringLengthRejected) {
  // A name length field of 0xffffffff must fail cleanly, not allocate 4 GB.
  WireWriter w;
  w.U32(0xffffffffu);
  const std::vector<uint8_t>& payload = w.buffer();
  DropIndexRequest out;
  EXPECT_FALSE(ParseDropIndexRequest(payload, &out).ok());
}

TEST(ProtocolTest, WireReaderBounds) {
  const uint8_t bytes[] = {1, 2, 3};
  WireReader r(bytes);
  uint32_t v32 = 0;
  EXPECT_FALSE(r.U32(&v32).ok());  // only 3 bytes left
  uint8_t v8 = 0;
  ASSERT_TRUE(r.U8(&v8).ok());
  EXPECT_EQ(v8, 1);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.ExpectEnd().ok());
  uint16_t v16 = 0;
  ASSERT_TRUE(r.U16(&v16).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(ProtocolTest, FloatArrayOverflowGuard) {
  // Request more floats than the payload could hold; the count * 4
  // multiplication must not wrap into a small allocation.
  WireWriter w;
  w.U32(7);
  WireReader r(w.buffer());
  std::vector<float> out;
  EXPECT_FALSE(r.FloatArray(static_cast<size_t>(1) << 62, &out).ok());
}

}  // namespace
}  // namespace simjoin
