// Randomized differential tests of the cost-based range planner over the
// wire: planner-routed exact answers must be bit-identical to forced
// ekdb-flat answers (both canonical ascending order) at every worker count,
// solo and under concurrent fused traffic; the recall-controlled LSH tier
// must return a verified subset meeting its target; bad planner fields must
// be rejected; repeated (epsilon, recall) pairs must hit the plan cache.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/metric.h"
#include "common/rng.h"
#include "core/index_backend.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

BuildIndexRequest BuildRequestFor(const std::string& name,
                                  const Dataset& data,
                                  const EkdbConfig& config,
                                  BackendKind backend = BackendKind::kEkdbFlat) {
  BuildIndexRequest req;
  req.name = name;
  req.config = config;
  req.dims = static_cast<uint32_t>(data.dims());
  req.points = data.flat();
  req.backend = backend;
  return req;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  Client client;
};

LiveServer StartWithClient(ServerConfig config = {}) {
  auto server = Server::Start(config);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  ClientConfig client_config;
  client_config.port = (*server)->port();
  auto client = Client::Connect(client_config);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return LiveServer{std::move(*server), std::move(*client)};
}

RangeQueryRequest QueriesFor(const std::string& name, const Dataset& data,
                             double epsilon, size_t count, uint64_t seed) {
  RangeQueryRequest req;
  req.name = name;
  req.epsilon = epsilon;
  req.dims = static_cast<uint32_t>(data.dims());
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const auto row = static_cast<PointId>(rng.UniformInt(data.size()));
    const float* p = data.Row(row);
    req.queries.insert(req.queries.end(), p, p + data.dims());
  }
  return req;
}

std::vector<std::vector<PointId>> SortedResults(
    std::vector<std::vector<PointId>> results) {
  for (auto& ids : results) {
    std::sort(ids.begin(), ids.end());
  }
  return results;
}

TEST(PlannerRoutingTest, RoutedExactIsBitIdenticalToForcedEkdbAcrossWorkers) {
  auto data = GenerateUniform({.n = 1500, .dims = 6, .seed = 0x41});
  ASSERT_TRUE(data.ok());
  const double eps = 0.12;
  for (const size_t workers : {1u, 2u, 4u}) {
    ServerConfig config;
    config.worker_threads = workers;
    LiveServer live = StartWithClient(config);
    ASSERT_TRUE(
        live.client.BuildIndex(BuildRequestFor("u", *data, Config(eps)))
            .ok());

    for (size_t round = 0; round < 4; ++round) {
      RangeQueryRequest req =
          QueriesFor("u", *data, round % 2 == 0 ? eps : eps * 0.5,
                     round == 0 ? 1 : 24, 0x900 + round + workers);

      RangeQueryRequest forced = req;
      forced.has_planner = true;
      forced.backend = static_cast<uint8_t>(BackendKind::kEkdbFlat);
      auto want = live.client.RangeQuery(forced);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(want->has_planner);
      EXPECT_EQ(want->backend_used,
                static_cast<uint8_t>(BackendKind::kEkdbFlat));
      EXPECT_EQ(want->achieved_recall, 1.0);

      RangeQueryRequest routed = req;
      routed.has_planner = true;  // recall 1, backend auto
      auto got = live.client.RangeQuery(routed);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got->has_planner);
      EXPECT_EQ(got->achieved_recall, 1.0);
      const auto kind = BackendKindFromWire(got->backend_used);
      ASSERT_TRUE(kind.ok());
      EXPECT_NE(*kind, BackendKind::kLsh);  // recall 1 must stay exact

      // The planner may route anywhere exact; the canonical answer bytes
      // must not change.
      EXPECT_EQ(got->results, want->results)
          << "workers=" << workers << " round=" << round << " routed to "
          << BackendKindName(*kind);

      // Legacy (plannerless) traffic still answers in traversal order with
      // the same id sets and no extension fields.
      auto legacy = live.client.RangeQuery(req);
      ASSERT_TRUE(legacy.ok());
      EXPECT_FALSE(legacy->has_planner);
      EXPECT_EQ(SortedResults(legacy->results), want->results);
    }
  }
}

TEST(PlannerRoutingTest, ConcurrentPlannerAndLegacyTrafficStaysConsistent) {
  auto data = GenerateUniform({.n = 1200, .dims = 4, .seed = 0x77});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  ServerConfig config;
  config.worker_threads = 4;
  auto server = Server::Start(config);
  ASSERT_TRUE(server.ok());
  ClientConfig client_config;
  client_config.port = (*server)->port();

  {
    auto setup = Client::Connect(client_config);
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        setup->BuildIndex(BuildRequestFor("c", *data, Config(eps))).ok());
  }

  // Reference answers, canonical order, computed up front.
  std::vector<RangeQueryRequest> reqs;
  std::vector<std::vector<std::vector<PointId>>> want;
  {
    auto ref = Client::Connect(client_config);
    ASSERT_TRUE(ref.ok());
    for (size_t i = 0; i < 6; ++i) {
      RangeQueryRequest req = QueriesFor("c", *data, eps, 16, 0xabc + i);
      req.has_planner = true;
      req.backend = static_cast<uint8_t>(BackendKind::kEkdbFlat);
      auto resp = ref->RangeQuery(req);
      ASSERT_TRUE(resp.ok());
      reqs.push_back(req);
      want.push_back(resp->results);
    }
  }

  // Several connections fire planner-auto and legacy requests at once so
  // the fusion collector sees mixed batches; every answer must match.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(client_config);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t iter = 0; iter < 12; ++iter) {
        const size_t i = (t * 5 + iter) % reqs.size();
        RangeQueryRequest req = reqs[i];
        const bool planner = (t + iter) % 2 == 0;
        if (planner) {
          req.has_planner = true;
          req.backend = kWireBackendAuto;
        } else {
          req.has_planner = false;
        }
        auto resp = client->RangeQuery(req);
        if (!resp.ok()) {
          ++failures;
          continue;
        }
        const auto got = planner ? resp->results
                                 : SortedResults(resp->results);
        if (got != want[i]) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(PlannerRoutingTest, ForcedBackendsEchoAndAgreeOnGridPrimaryToo) {
  auto data = GenerateUniform({.n = 800, .dims = 3, .seed = 0x3});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  LiveServer live = StartWithClient();
  ASSERT_TRUE(live.client
                  .BuildIndex(BuildRequestFor("g", *data, Config(eps),
                                              BackendKind::kEpsilonGrid))
                  .ok());

  RangeQueryRequest base = QueriesFor("g", *data, eps, 12, 0x5eed);
  base.has_planner = true;

  std::vector<std::vector<PointId>> reference;
  for (const BackendKind kind :
       {BackendKind::kEkdbFlat, BackendKind::kEpsilonGrid,
        BackendKind::kBruteSimd}) {
    RangeQueryRequest req = base;
    req.backend = static_cast<uint8_t>(kind);
    auto resp = live.client.RangeQuery(req);
    ASSERT_TRUE(resp.ok()) << BackendKindName(kind) << ": "
                           << resp.status().ToString();
    ASSERT_TRUE(resp->has_planner);
    EXPECT_EQ(resp->backend_used, static_cast<uint8_t>(kind));
    EXPECT_EQ(resp->achieved_recall, 1.0);
    if (reference.empty()) {
      reference = resp->results;
    } else {
      EXPECT_EQ(resp->results, reference) << BackendKindName(kind);
    }
  }
}

TEST(PlannerRoutingTest, ForcedRTreeIsBitIdenticalToRoutedExact) {
  auto data = GenerateClustered({.n = 1000, .dims = 5, .seed = 0x52});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("r", *data, Config(eps))).ok());

  for (const double query_eps : {eps, eps * 0.4}) {
    RangeQueryRequest base = QueriesFor("r", *data, query_eps, 20, 0x717);
    base.has_planner = true;

    RangeQueryRequest forced_tree = base;
    forced_tree.backend = static_cast<uint8_t>(BackendKind::kEkdbFlat);
    auto want = live.client.RangeQuery(forced_tree);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // The R-tree is an auxiliary (never planner-chosen) backend; forcing it
    // must echo the choice and return the identical canonical answers.
    RangeQueryRequest forced_rtree = base;
    forced_rtree.backend = static_cast<uint8_t>(BackendKind::kRTree);
    auto got = live.client.RangeQuery(forced_rtree);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got->has_planner);
    EXPECT_EQ(got->backend_used, static_cast<uint8_t>(BackendKind::kRTree));
    EXPECT_EQ(got->achieved_recall, 1.0);
    EXPECT_EQ(got->results, want->results) << "eps=" << query_eps;

    // Routed traffic must never pick the R-tree on its own.
    RangeQueryRequest routed = base;
    routed.backend = kWireBackendAuto;
    auto auto_resp = live.client.RangeQuery(routed);
    ASSERT_TRUE(auto_resp.ok());
    EXPECT_NE(auto_resp->backend_used,
              static_cast<uint8_t>(BackendKind::kRTree));
    EXPECT_EQ(auto_resp->results, want->results);
  }
}

TEST(PlannerRoutingTest, OnDiskBuildServesIdenticallyToInMemoryBuild) {
  const std::string spill_dir = ::testing::TempDir() + "/routing_spill";
  std::filesystem::create_directories(spill_dir);
  auto data = GenerateUniform({.n = 1200, .dims = 6, .seed = 0x61});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  ServerConfig config;
  config.segment_spill_dir = spill_dir;
  LiveServer live = StartWithClient(config);

  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("ram", *data, Config(eps)))
          .ok());
  BuildIndexRequest on_disk = BuildRequestFor("disk", *data, Config(eps));
  on_disk.on_disk = true;
  ASSERT_TRUE(live.client.BuildIndex(on_disk).ok());

  for (size_t round = 0; round < 3; ++round) {
    RangeQueryRequest ram_req =
        QueriesFor("ram", *data, eps, 16, 0x8000 + round);
    RangeQueryRequest disk_req = ram_req;
    disk_req.name = "disk";
    auto want = live.client.RangeQuery(ram_req);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    auto got = live.client.RangeQuery(disk_req);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->results, want->results) << "round " << round;
  }

  // Without a spill dir the server must reject on-disk builds cleanly.
  LiveServer no_spill = StartWithClient();
  BuildIndexRequest rejected = BuildRequestFor("d2", *data, Config(eps));
  rejected.on_disk = true;
  EXPECT_FALSE(no_spill.client.BuildIndex(rejected).ok());

  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

TEST(PlannerRoutingTest, LshTierReturnsVerifiedSubsetMeetingTarget) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 24, .clusters = 16, .sigma = 0.05, .seed = 0x15});
  ASSERT_TRUE(data.ok());
  const double eps = 0.4;
  const double target = 0.9;
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("k", *data, Config(eps))).ok());

  RangeQueryRequest req = QueriesFor("k", *data, eps, 48, 0xdead);
  req.has_planner = true;
  req.recall = target;
  req.backend = static_cast<uint8_t>(BackendKind::kLsh);  // pin the tier
  auto resp = live.client.RangeQuery(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->has_planner);
  EXPECT_EQ(resp->backend_used, static_cast<uint8_t>(BackendKind::kLsh));
  EXPECT_GT(resp->achieved_recall, 0.0);
  EXPECT_LE(resp->achieved_recall, 1.0);

  // Ground truth by brute force; every returned id must be a true
  // neighbour (precision 1) and overall recall must clear the target with
  // a sampling allowance.
  DistanceKernel kernel(Metric::kL2);
  const size_t count = resp->results.size();
  ASSERT_EQ(count, 48u);
  size_t found = 0;
  size_t truth_total = 0;
  for (size_t q = 0; q < count; ++q) {
    const float* query = req.queries.data() + q * data->dims();
    std::set<PointId> truth;
    for (size_t i = 0; i < data->size(); ++i) {
      const auto id = static_cast<PointId>(i);
      if (kernel.WithinEpsilon(query, data->Row(id), data->dims(), eps)) {
        truth.insert(id);
      }
    }
    EXPECT_TRUE(
        std::is_sorted(resp->results[q].begin(), resp->results[q].end()));
    for (const PointId id : resp->results[q]) {
      EXPECT_TRUE(truth.count(id)) << "false positive q" << q;
    }
    found += resp->results[q].size();
    truth_total += truth.size();
  }
  ASSERT_GT(truth_total, 0u);
  const double measured =
      static_cast<double>(found) / static_cast<double>(truth_total);
  EXPECT_GE(measured, target - 0.07) << "measured recall " << measured;
  // The wire estimate should be in the measurement's neighbourhood.
  EXPECT_GE(resp->achieved_recall, measured - 0.15);
  EXPECT_LE(resp->achieved_recall, 1.0);
}

TEST(PlannerRoutingTest, SecondIdenticalRequestHitsThePlanCache) {
  auto data = GenerateUniform({.n = 600, .dims = 5, .seed = 0x21});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("p", *data, Config(eps))).ok());

  RangeQueryRequest req = QueriesFor("p", *data, eps, 4, 0x44);
  req.has_planner = true;
  auto first = live.client.RangeQuery(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = live.client.RangeQuery(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(second->backend_used, first->backend_used);
  EXPECT_EQ(second->results, first->results);

  // A different epsilon is a different cache key.
  RangeQueryRequest other = req;
  other.epsilon = eps * 0.5;
  auto third = live.client.RangeQuery(other);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->plan_cache_hit);
}

TEST(PlannerRoutingTest, InvalidPlannerFieldsAreRejected) {
  auto data = GenerateUniform({.n = 200, .dims = 3, .seed = 0x8});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("v", *data, Config(eps))).ok());

  RangeQueryRequest good = QueriesFor("v", *data, eps, 2, 0x2);
  good.has_planner = true;
  ASSERT_TRUE(live.client.RangeQuery(good).ok());

  for (const double bad_recall : {0.0, -0.5, 1.5}) {
    RangeQueryRequest req = good;
    req.recall = bad_recall;
    EXPECT_FALSE(live.client.RangeQuery(req).ok())
        << "recall " << bad_recall;
  }
  RangeQueryRequest bad_backend = good;
  bad_backend.backend = 7;  // not a BackendKind, not the auto marker
  EXPECT_FALSE(live.client.RangeQuery(bad_backend).ok());

  // recall < 1 forced onto an exact backend is fine (it just stays exact),
  // but recall < 1 with Linf metric has no LSH family — auto must still
  // answer exactly rather than fail.
  RangeQueryRequest lenient = good;
  lenient.recall = 0.8;
  auto resp = live.client.RangeQuery(lenient);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_GE(resp->achieved_recall, 0.8);
}

}  // namespace
}  // namespace simjoin
