// Tests for the Prometheus HTTP endpoint: request forms, the 404 path,
// response well-formedness, and serving /metrics while the service is
// under concurrent query load.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/prom_exporter.h"
#include "service/server.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

/// One blocking HTTP exchange: send `request` verbatim, read to close.
std::string HttpExchange(uint16_t port, const std::string& request) {
  auto sock = TcpSocket::Connect("127.0.0.1", port);
  EXPECT_TRUE(sock.ok()) << sock.status().ToString();
  if (!sock.ok()) return "";
  EXPECT_TRUE(sock->SendAll(request.data(), request.size()).ok());
  std::string response;
  char buf[4096];
  // The exporter closes the connection after each response; a failed
  // RecvAll tail read is the natural end-of-stream signal.
  while (true) {
    const size_t want = 1;
    if (!sock->RecvAll(buf, want).ok()) break;
    response.push_back(buf[0]);
    if (response.size() > (4u << 20)) break;  // runaway guard
  }
  return response;
}

TEST(PromExporterTest, ServesMetricsForEveryAcceptedRequestForm) {
  auto exporter = PromExporter::Start("127.0.0.1", 0);
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  const uint16_t port = (*exporter)->port();
  obs::GlobalMetrics().GetCounter("prom_test.marker")->Add(7);

  for (const std::string request :
       {std::string("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
        std::string("GET /metrics HTTP/1.0\r\n\r\n"),
        std::string("GET /metrics\r\n\r\n")}) {
    const std::string response = HttpExchange(port, request);
    EXPECT_NE(response.find("200 OK"), std::string::npos) << request;
    EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(response.find("simjoin_prom_test_marker_total 7"),
              std::string::npos)
        << request;
  }
}

TEST(PromExporterTest, NonMetricsPathsGet404) {
  auto exporter = PromExporter::Start("127.0.0.1", 0);
  ASSERT_TRUE(exporter.ok());
  const uint16_t port = (*exporter)->port();
  for (const std::string request :
       {std::string("GET / HTTP/1.1\r\n\r\n"),
        std::string("GET /metricsss HTTP/1.1\r\n\r\n"),
        std::string("POST /metrics HTTP/1.1\r\n\r\n")}) {
    const std::string response = HttpExchange(port, request);
    EXPECT_NE(response.find("404"), std::string::npos) << request;
    EXPECT_EQ(response.find("simjoin_"), std::string::npos) << request;
  }
}

TEST(PromExporterTest, ShutdownIsPromptAndIdempotent) {
  auto exporter = PromExporter::Start("127.0.0.1", 0);
  ASSERT_TRUE(exporter.ok());
  (*exporter)->Shutdown();
  (*exporter)->Shutdown();  // second call is a no-op
}

TEST(PromExporterTest, ServesParseableBodyMidQueryLoad) {
  auto data = GenerateUniform({.n = 300, .dims = 4, .seed = 23});
  ASSERT_TRUE(data.ok());
  ServerConfig config;
  auto server = Server::Start(config);
  ASSERT_TRUE(server.ok());
  auto exporter = PromExporter::Start("127.0.0.1", 0);
  ASSERT_TRUE(exporter.ok());
  const uint16_t prom_port = (*exporter)->port();

  ClientConfig cc;
  cc.port = (*server)->port();
  auto client = Client::Connect(cc);
  ASSERT_TRUE(client.ok());
  BuildIndexRequest build;
  build.name = "idx";
  build.config.epsilon = 0.2;
  build.dims = 4;
  build.points = data->flat();
  ASSERT_TRUE(client->BuildIndex(build).ok());

  std::atomic<bool> stop{false};
  std::thread load([&] {
    RangeQueryRequest req;
    req.name = "idx";
    req.epsilon = 0.2;
    req.dims = 4;
    req.queries = {data->flat().begin(), data->flat().begin() + 4};
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(client->RangeQuery(req).ok());
    }
  });

  for (int i = 0; i < 5; ++i) {
    const std::string response =
        HttpExchange(prom_port, "GET /metrics HTTP/1.1\r\n\r\n");
    ASSERT_NE(response.find("200 OK"), std::string::npos);
    const std::string body =
        response.substr(response.find("\r\n\r\n") + 4);
    ASSERT_FALSE(body.empty());
    // Every line is a comment or "name[{labels}] value" — the contract a
    // Prometheus scraper needs.
    size_t start = 0;
    while (start < body.size()) {
      size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      const std::string line = body.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        EXPECT_EQ(line.rfind("# TYPE simjoin_", 0), 0u) << line;
      } else {
        EXPECT_EQ(line.rfind("simjoin_", 0), 0u) << line;
        EXPECT_NE(line.find(' '), std::string::npos) << line;
      }
    }
    EXPECT_NE(body.find("simjoin_service_requests_admitted_total"),
              std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  load.join();
  ASSERT_TRUE(client->Shutdown().ok());
  (*server)->Wait();
}

}  // namespace
}  // namespace simjoin
