// Loopback tests for the live-update RPCs (Insert / Remove / Flush) and
// for querying an updatable index over the wire.  The contract mirrors the
// rest of the service: transport adds no semantics, so every result must
// be bit-identical to the canonical answer — the sorted, id-remapped
// result of a stop-the-world rebuild over the current live point set.

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/delta_index.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_tree.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/drift.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon = 0.1) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

Dataset MakeData(size_t n, size_t dims, uint64_t seed) {
  auto data = GenerateUniform({.n = n, .dims = dims, .seed = seed});
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

BuildIndexRequest UpdatableBuildRequest(const std::string& name,
                                        const Dataset& data,
                                        const EkdbConfig& config) {
  BuildIndexRequest req;
  req.name = name;
  req.config = config;
  req.dims = static_cast<uint32_t>(data.dims());
  req.points = data.flat();
  req.backend = BackendKind::kUpdatable;
  return req;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  Client client;
};

LiveServer StartWithClient(ServerConfig config = {}) {
  auto server = Server::Start(config);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  ClientConfig client_config;
  client_config.port = (*server)->port();
  auto client = Client::Connect(client_config);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return LiveServer{std::move(*server), std::move(*client)};
}

/// In-process model of the served index: live (logical id, row) pairs in
/// ascending-id order, with a rebuild oracle for queries and joins.
struct Mirror {
  size_t dims;
  std::vector<std::pair<PointId, std::vector<float>>> live;

  explicit Mirror(const Dataset& initial) : dims(initial.dims()) {
    for (size_t i = 0; i < initial.size(); ++i) {
      const float* row = initial.Row(static_cast<PointId>(i));
      live.emplace_back(static_cast<PointId>(i),
                        std::vector<float>(row, row + dims));
    }
  }

  void Insert(PointId first_id, const std::vector<float>& rows) {
    const size_t count = rows.size() / dims;
    for (size_t i = 0; i < count; ++i) {
      live.emplace_back(
          first_id + static_cast<PointId>(i),
          std::vector<float>(rows.begin() + i * dims,
                             rows.begin() + (i + 1) * dims));
    }
  }

  bool Remove(PointId id) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == id) {
        live.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<PointId> OracleRange(const float* query, double eps,
                                   const EkdbConfig& config) const {
    std::vector<PointId> out;
    if (!live.empty()) {
      std::vector<float> flat;
      std::vector<PointId> logical;
      for (const auto& [id, row] : live) {
        logical.push_back(id);
        flat.insert(flat.end(), row.begin(), row.end());
      }
      auto data = Dataset::FromFlat(std::move(flat), dims);
      EXPECT_TRUE(data.ok());
      auto tree = EkdbTree::Build(*data, config);
      EXPECT_TRUE(tree.ok()) << tree.status().ToString();
      std::vector<PointId> rows;
      EXPECT_TRUE(tree->RangeQuery(query, eps, &rows).ok());
      for (PointId r : rows) out.push_back(logical[r]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

// ---------------------------------------------------------------------------
// The update RPCs round-trip and match the rebuild oracle.
// ---------------------------------------------------------------------------

TEST(UpdatableServiceTest, InsertRemoveFlushRoundTripAgainstOracle) {
  const Dataset data = MakeData(300, 4, 51);
  const EkdbConfig config = Config(0.15);
  LiveServer live = StartWithClient();
  auto built =
      live.client.BuildIndex(UpdatableBuildRequest("u", data, config));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->num_points, 300u);
  Mirror mirror(data);
  Rng rng(53);

  // Insert a batch; the response reports contiguous fresh ids.
  InsertRequest ins;
  ins.name = "u";
  ins.dims = 4;
  ins.rows.resize(60 * 4);
  for (float& f : ins.rows) f = rng.UniformFloat();
  auto inserted = live.client.Insert(ins);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(inserted->first_id, 300u);
  EXPECT_EQ(inserted->count, 60u);
  EXPECT_EQ(inserted->delta_points, 60u);
  EXPECT_EQ(inserted->tombstones, 0u);
  mirror.Insert(inserted->first_id, ins.rows);

  // Remove a mix of base ids, delta ids, and dead/unknown ids.
  RemoveRequest rem;
  rem.name = "u";
  rem.ids = {3, 7, 7, 320, 9999};
  auto removed = live.client.Remove(rem);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->removed, 3u);  // 3, 7, 320
  EXPECT_EQ(removed->missing, 2u);  // duplicate 7, unknown 9999
  EXPECT_EQ(removed->tombstones, 3u);
  ASSERT_TRUE(mirror.Remove(3));
  ASSERT_TRUE(mirror.Remove(7));
  ASSERT_TRUE(mirror.Remove(320));

  // Queries over the wire equal the rebuild oracle, before the flush...
  for (PointId q = 0; q < 15; ++q) {
    auto ids = live.client.RangeQueryOne("u", data.RowSpan(q), 0.1);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    EXPECT_EQ(*ids, mirror.OracleRange(data.Row(q), 0.1, config))
        << "query " << q;
  }

  // ... and bit-identically after it.
  auto flushed = live.client.Flush("u");
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_TRUE(flushed->compacted);
  EXPECT_EQ(flushed->base_points, 300u + 60u - 3u);
  EXPECT_EQ(flushed->delta_points, 0u);
  EXPECT_EQ(flushed->tombstones, 0u);
  EXPECT_GT(flushed->index_bytes, 0u);
  for (PointId q = 0; q < 15; ++q) {
    auto ids = live.client.RangeQueryOne("u", data.RowSpan(q), 0.1);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(*ids, mirror.OracleRange(data.Row(q), 0.1, config))
        << "post-flush query " << q;
  }

  // A second flush has nothing to fold.
  auto again = live.client.Flush("u");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->compacted);
}

TEST(UpdatableServiceTest, SelfJoinMatchesInProcessAtEveryThreadCount) {
  const Dataset data = MakeData(400, 4, 57);
  const EkdbConfig config = Config(0.12);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(UpdatableBuildRequest("u", data, config)).ok());

  Rng rng(59);
  InsertRequest ins;
  ins.name = "u";
  ins.dims = 4;
  ins.rows.resize(80 * 4);
  for (float& f : ins.rows) f = rng.UniformFloat();
  ASSERT_TRUE(live.client.Insert(ins).ok());
  RemoveRequest rem;
  rem.name = "u";
  rem.ids = {0, 11, 405};
  ASSERT_TRUE(live.client.Remove(rem).ok());

  // In-process reference over the same mutation sequence.
  auto ref = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data), config, 1,
                                   {.auto_compact = false});
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE((*ref)->InsertBatch(ins.rows.data(), 80).ok());
  uint32_t removed = 0;
  (*ref)->RemoveBatch(rem.ids.data(), rem.ids.size(), &removed, nullptr);
  ASSERT_EQ(removed, 3u);
  VectorSink expected;
  JoinStats ref_stats;
  ASSERT_TRUE((*ref)->SelfJoin(0.12, 1, &expected, &ref_stats).ok());

  for (const uint32_t threads : {1u, 2u, 4u}) {
    SimilarityJoinRequest req;
    req.name_a = "u";
    req.num_threads = threads;
    req.chunk_pairs = 97;  // many chunks, so reassembly is exercised
    VectorSink got;
    auto done = live.client.SimilarityJoin(req, &got);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    EXPECT_EQ(got.pairs(), expected.pairs()) << "threads=" << threads;
    EXPECT_EQ(done->total_pairs, expected.pairs().size());
  }

  // An explicit self-join spelling (name_b == name_a) works too.
  SimilarityJoinRequest self;
  self.name_a = "u";
  self.name_b = "u";
  VectorSink got;
  ASSERT_TRUE(live.client.SimilarityJoin(self, &got).ok());
  EXPECT_EQ(got.pairs(), expected.pairs());
}

TEST(UpdatableServiceTest, ConcurrentClientsUpdateAndQueryConsistently) {
  const Dataset data = MakeData(300, 4, 61);
  const EkdbConfig config = Config(0.1);
  ServerConfig server_config;
  server_config.io_threads = 2;
  LiveServer live = StartWithClient(server_config);
  ASSERT_TRUE(
      live.client.BuildIndex(UpdatableBuildRequest("u", data, config)).ok());

  // One updating connection races three querying connections (the fused
  // collector path batches across them).  Results under the race are only
  // checked for internal consistency; exactness is asserted afterwards.
  const uint16_t port = live.server->port();
  std::thread updater([&]() {
    ClientConfig cc;
    cc.port = port;
    auto client = Client::Connect(cc);
    ASSERT_TRUE(client.ok());
    Rng rng(63);
    for (int op = 0; op < 30; ++op) {
      InsertRequest ins;
      ins.name = "u";
      ins.dims = 4;
      ins.rows.resize(8 * 4);
      for (float& f : ins.rows) f = rng.UniformFloat();
      auto got = client->Insert(ins);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      RemoveRequest rem;
      rem.name = "u";
      rem.ids = {got->first_id + 1};
      ASSERT_TRUE(client->Remove(rem).ok());
      if (op % 10 == 9) ASSERT_TRUE(client->Flush("u").ok());
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      ClientConfig cc;
      cc.port = port;
      auto client = Client::Connect(cc);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 40; ++i) {
        const size_t qi = static_cast<size_t>(t * 40 + i) % data.size();
        auto ids = client->RangeQueryOne("u", data.RowSpan(qi), 0.08);
        ASSERT_TRUE(ids.ok()) << ids.status().ToString();
        ASSERT_TRUE(std::is_sorted(ids->begin(), ids->end()));
        ASSERT_TRUE(std::adjacent_find(ids->begin(), ids->end()) ==
                    ids->end());
      }
    });
  }
  updater.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(live.server->counters().decode_errors, 0u);

  // Quiesced: the server's answer equals a fresh rebuild of the live set.
  ASSERT_TRUE(live.client.Flush("u").ok());
  auto ref = UpdatableIndex::Build(
      std::make_shared<const Dataset>(data),
      config, 1, {.auto_compact = false});
  ASSERT_TRUE(ref.ok());
  Rng replay(63);
  for (int op = 0; op < 30; ++op) {
    std::vector<float> rows(8 * 4);
    for (float& f : rows) f = replay.UniformFloat();
    auto first = (*ref)->InsertBatch(rows.data(), 8);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE((*ref)->Remove(*first + 1).ok());
  }
  for (PointId q = 0; q < 20; ++q) {
    auto ids = live.client.RangeQueryOne("u", data.RowSpan(q), 0.08);
    ASSERT_TRUE(ids.ok());
    std::vector<PointId> expected;
    ASSERT_TRUE(
        (*ref)->RangeQuery(data.Row(q), 0.08, &expected, nullptr, nullptr)
            .ok());
    EXPECT_EQ(*ids, expected) << "query " << q;
  }
}

TEST(UpdatableServiceTest, DriftTimelineReplaysOverTheWire) {
  DriftConfig dc;
  dc.dims = 4;
  dc.clusters = 3;
  dc.points_per_cluster = 24;
  dc.steps = 6;
  dc.queries_per_step = 4;
  dc.seed = 67;
  auto timeline = GenerateDrift(dc);
  ASSERT_TRUE(timeline.ok());

  const EkdbConfig config = Config(0.15);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(live.client
                  .BuildIndex(UpdatableBuildRequest("drift", timeline->initial,
                                                    config))
                  .ok());
  Mirror mirror(timeline->initial);

  for (size_t s = 0; s < timeline->steps.size(); ++s) {
    const DriftStep& step = timeline->steps[s];
    if (!step.remove_ids.empty()) {
      RemoveRequest rem;
      rem.name = "drift";
      rem.ids = step.remove_ids;
      auto got = live.client.Remove(rem);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->removed, step.remove_ids.size()) << "step " << s;
      EXPECT_EQ(got->missing, 0u) << "step " << s;
      for (PointId id : step.remove_ids) ASSERT_TRUE(mirror.Remove(id));
    }
    if (!step.insert_rows.empty()) {
      InsertRequest ins;
      ins.name = "drift";
      ins.dims = 4;
      ins.rows = step.insert_rows;
      auto got = live.client.Insert(ins);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      mirror.Insert(got->first_id, step.insert_rows);
    }
    for (size_t q = 0; q < step.queries(dc.dims); ++q) {
      const float* query = step.query_rows.data() + q * dc.dims;
      auto ids = live.client.RangeQueryOne(
          "drift", std::span<const float>(query, dc.dims), 0.1);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      EXPECT_EQ(*ids, mirror.OracleRange(query, 0.1, config))
          << "step " << s << " query " << q;
    }
  }
  ASSERT_TRUE(live.client.Flush("drift").ok());
}

// ---------------------------------------------------------------------------
// Error paths and metrics.
// ---------------------------------------------------------------------------

TEST(UpdatableServiceTest, ErrorPaths) {
  const Dataset data = MakeData(80, 3, 71);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(UpdatableBuildRequest("u", data, Config())).ok());

  // Updates against an unknown index.
  InsertRequest ins;
  ins.name = "ghost";
  ins.dims = 3;
  ins.rows = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(live.client.Insert(ins).status().code(), StatusCode::kNotFound);
  RemoveRequest rem;
  rem.name = "ghost";
  rem.ids = {0};
  EXPECT_EQ(live.client.Remove(rem).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(live.client.Flush("ghost").status().code(),
            StatusCode::kNotFound);

  // Updates against an immutable (tree-backed) index.
  BuildIndexRequest tree_req;
  tree_req.name = "frozen";
  tree_req.config = Config();
  tree_req.dims = 3;
  tree_req.points = data.flat();
  ASSERT_TRUE(live.client.BuildIndex(tree_req).ok());
  ins.name = "frozen";
  EXPECT_EQ(live.client.Insert(ins).status().code(),
            StatusCode::kInvalidArgument);
  rem.name = "frozen";
  EXPECT_EQ(live.client.Remove(rem).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(live.client.Flush("frozen").status().code(),
            StatusCode::kInvalidArgument);

  // Dimension mismatch and out-of-domain coordinates.
  ins.name = "u";
  ins.dims = 2;
  ins.rows = {0.5f, 0.5f};
  EXPECT_EQ(live.client.Insert(ins).status().code(),
            StatusCode::kInvalidArgument);
  ins.dims = 3;
  ins.rows = {0.5f, 0.5f, 1.5f};
  EXPECT_EQ(live.client.Insert(ins).status().code(),
            StatusCode::kInvalidArgument);

  // Cross-index joins that touch an updatable index are rejected (flush
  // and rebuild immutable to join across).
  SimilarityJoinRequest cross;
  cross.name_a = "u";
  cross.name_b = "frozen";
  EXPECT_EQ(live.client.SimilarityJoin(cross, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  cross.name_a = "frozen";
  cross.name_b = "u";
  EXPECT_EQ(live.client.SimilarityJoin(cross, nullptr).status().code(),
            StatusCode::kInvalidArgument);

  // The connection survived every error above.
  EXPECT_TRUE(live.client.Ping().ok());
}

TEST(UpdatableServiceTest, UpdateMetricsFlowThroughStatsRpc) {
  const Dataset data = MakeData(100, 3, 73);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(UpdatableBuildRequest("u", data, Config())).ok());

  InsertRequest ins;
  ins.name = "u";
  ins.dims = 3;
  ins.rows = {0.5f, 0.5f, 0.5f, 0.25f, 0.25f, 0.25f};
  ASSERT_TRUE(live.client.Insert(ins).ok());
  RemoveRequest rem;
  rem.name = "u";
  rem.ids = {0};
  ASSERT_TRUE(live.client.Remove(rem).ok());
  ASSERT_TRUE(live.client.Flush("u").ok());

  auto stats = live.client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->has_metrics);
  const obs::MetricsSnapshot& wire = stats->metrics;

  const obs::CounterSample* inserts =
      wire.FindCounter("service.updates.inserts");
  ASSERT_NE(inserts, nullptr);
  EXPECT_GE(inserts->value, 1u);
  const obs::CounterSample* rows =
      wire.FindCounter("service.updates.rows_inserted");
  ASSERT_NE(rows, nullptr);
  EXPECT_GE(rows->value, 2u);
  const obs::CounterSample* removes =
      wire.FindCounter("service.updates.removes");
  ASSERT_NE(removes, nullptr);
  EXPECT_GE(removes->value, 1u);
  const obs::CounterSample* flushes =
      wire.FindCounter("service.updates.flushes");
  ASSERT_NE(flushes, nullptr);
  EXPECT_GE(flushes->value, 1u);
  const obs::CounterSample* compactions = wire.FindCounter("compaction.count");
  ASSERT_NE(compactions, nullptr);
  EXPECT_GE(compactions->value, 1u);
  const obs::HistogramSample* compact_us =
      wire.FindHistogram("compaction.duration_us");
  ASSERT_NE(compact_us, nullptr);
  EXPECT_GE(compact_us->count, 1u);
  // After the flush folded everything in, the delta gauges read zero.
  const obs::GaugeSample* delta_points = wire.FindGauge("delta.points");
  ASSERT_NE(delta_points, nullptr);
  EXPECT_EQ(delta_points->value, 0);
  const obs::GaugeSample* tombstones = wire.FindGauge("delta.tombstones");
  ASSERT_NE(tombstones, nullptr);
  EXPECT_EQ(tombstones->value, 0);
  ASSERT_NE(wire.FindGauge("delta.bytes"), nullptr);
  const obs::HistogramSample* insert_lat =
      wire.FindHistogram("service.latency_us.insert");
  ASSERT_NE(insert_lat, nullptr);
  EXPECT_GE(insert_lat->count, 1u);
}

TEST(UpdatableServiceTest, DropReleasesUpdatableIndex) {
  const Dataset data = MakeData(60, 3, 79);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(
      live.client.BuildIndex(UpdatableBuildRequest("u", data, Config())).ok());
  auto dropped = live.client.DropIndex("u");
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->found);
  InsertRequest ins;
  ins.name = "u";
  ins.dims = 3;
  ins.rows = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(live.client.Insert(ins).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(live.client.Ping().ok());
}

}  // namespace
}  // namespace simjoin
