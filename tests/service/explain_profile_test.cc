// Loopback tests for per-request observability: EXPLAIN ANALYZE profiles
// must ride along without perturbing results (bit-identical ids to the
// unprofiled request at every worker count, fused and unfused), the phase
// tree must account for essentially all of the request's wall time and
// name the backend that served it, and the slow-query log must capture
// every over-threshold or failed request under concurrent load.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

Dataset MakeData(size_t n, size_t dims, uint64_t seed) {
  auto data = GenerateUniform({.n = n, .dims = dims, .seed = seed});
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

BuildIndexRequest BuildRequestFor(const std::string& name,
                                  const Dataset& data, double epsilon) {
  BuildIndexRequest req;
  req.name = name;
  req.config.epsilon = epsilon;
  req.config.leaf_threshold = 16;
  req.dims = static_cast<uint32_t>(data.dims());
  req.points = data.flat();
  return req;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  Client client;
};

LiveServer StartWithClient(ServerConfig config = {}) {
  auto server = Server::Start(config);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  ClientConfig client_config;
  client_config.port = (*server)->port();
  auto client = Client::Connect(client_config);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return LiveServer{std::move(*server), std::move(*client)};
}

RangeQueryRequest QueryBatch(const Dataset& data, bool planner) {
  RangeQueryRequest req;
  req.name = "idx";
  req.epsilon = 0.2;
  req.dims = static_cast<uint32_t>(data.dims());
  // A handful of query rows straight from the dataset: nonempty results.
  for (size_t i = 0; i < 5; ++i) {
    const auto row = data.RowSpan(static_cast<PointId>(i * 7));
    req.queries.insert(req.queries.end(), row.begin(), row.end());
  }
  if (planner) {
    req.has_planner = true;
    req.recall = 1.0;
  }
  return req;
}

/// Index of the first root node, checked to be the request span.
uint32_t RootNode(const obs::RequestProfile& p) {
  for (uint32_t i = 0; i < p.nodes.size(); ++i) {
    if (p.nodes[i].parent == obs::kProfileNoParent) return i;
  }
  return obs::kProfileNoParent;
}

void ExpectWellFormedProfile(const obs::RequestProfile& p,
                             uint64_t trace_id) {
  EXPECT_EQ(p.trace_id, trace_id);
  EXPECT_GT(p.total_wall_ns, 0u);
  EXPECT_EQ(p.dropped_nodes, 0u);
  // The plan names the backend that served the request.
  EXPECT_NE(p.plan.find("backend="), std::string::npos) << p.plan;

  const uint32_t root = RootNode(p);
  ASSERT_NE(root, obs::kProfileNoParent);
  EXPECT_EQ(p.nodes[root].name, "service.range_query");
  // The root span covers the request end to end and its direct children
  // (queue / resolve-or-parse / execute phases) account for >= 95% of it:
  // no invisible time.
  EXPECT_GE(p.nodes[root].wall_ns, p.total_wall_ns * 95 / 100);
  EXPECT_GE(p.ChildWallNanos(root), p.nodes[root].wall_ns * 95 / 100);
  // Execution surfaced its work counters.
  bool saw_queries = false;
  for (const obs::ProfileCounter& c : p.counters) {
    if (c.name == "query_points") {
      saw_queries = true;
      EXPECT_EQ(c.value, 5u);
    }
  }
  EXPECT_TRUE(saw_queries);
}

TEST(ExplainProfileTest, ProfiledQueriesAreBitIdenticalAtEveryShape) {
  const Dataset data = MakeData(400, 6, 17);
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const bool fusion : {false, true}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " fusion=" + std::to_string(fusion));
      ServerConfig config;
      config.worker_threads = workers;
      config.fusion_enabled = fusion;
      LiveServer live = StartWithClient(config);
      ASSERT_TRUE(
          live.client.BuildIndex(BuildRequestFor("idx", data, 0.2)).ok());

      for (const bool planner : {false, true}) {
        RangeQueryRequest plain = QueryBatch(data, planner);
        auto baseline = live.client.RangeQuery(plain);
        ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
        EXPECT_FALSE(baseline->has_profile);

        RangeQueryRequest profiled = QueryBatch(data, planner);
        profiled.trace.present = true;
        profiled.trace.trace_id = GenerateTraceId();
        profiled.trace.flags = kTraceFlagProfile;
        auto traced = live.client.RangeQuery(profiled);
        ASSERT_TRUE(traced.ok()) << traced.status().ToString();

        // Profiling must not perturb the answer.
        EXPECT_EQ(traced->results, baseline->results);
        ASSERT_TRUE(traced->has_profile);
        ExpectWellFormedProfile(traced->profile, profiled.trace.trace_id);
        // Some result row is nonempty, so the comparison is meaningful.
        size_t total_ids = 0;
        for (const auto& ids : baseline->results) total_ids += ids.size();
        EXPECT_GT(total_ids, 0u);
      }
    }
  }
}

TEST(ExplainProfileTest, UntracedRequestsCarryNoProfile) {
  const Dataset data = MakeData(100, 4, 3);
  LiveServer live = StartWithClient();
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("idx", data, 0.2)).ok());
  // The client auto-attaches a trace id, but without the profile flag the
  // response must stay profile-free (and legacy-shaped).
  auto resp = live.client.RangeQuery(QueryBatch(data, false));
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->has_profile);
}

TEST(ExplainProfileTest, SlowLogCapturesEveryRequestUnderConcurrentLoad) {
  const Dataset data = MakeData(200, 4, 11);
  ServerConfig config;
  config.slow_query_us = 1;  // every request is over threshold
  config.slow_query_capacity = 2048;
  LiveServer live = StartWithClient(config);
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("idx", data, 0.2)).ok());

  constexpr size_t kConnections = 16;
  constexpr size_t kQueriesPerConnection = 8;
  std::atomic<size_t> sent{0};
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  const uint16_t port = live.server->port();
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig cc;
      cc.port = port;
      auto client = Client::Connect(cc);
      ASSERT_TRUE(client.ok());
      for (size_t i = 0; i < kQueriesPerConnection; ++i) {
        auto resp = client->RangeQuery(QueryBatch(data, c % 2 == 0));
        if (resp.ok()) sent.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(sent.load(), kConnections * kQueriesPerConnection);

  auto stats = live.client.GetStats(/*drain_slowlog=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->has_slowlog);
  size_t range_entries = 0;
  for (const obs::SlowQueryEntry& e : stats->slowlog) {
    if (e.op != static_cast<uint8_t>(FrameType::kRangeQuery)) continue;
    ++range_entries;
    EXPECT_EQ(e.index, "idx");
    EXPECT_EQ(e.status_code, 0u);
    EXPECT_NE(e.trace_id, 0u);  // client auto-attached an id
    // Each entry carries the phase tree that explains its latency.
    EXPECT_FALSE(e.profile.nodes.empty());
    EXPECT_NE(e.profile.plan.find("backend="), std::string::npos);
  }
  // 100% capture: every over-threshold request left an entry (none were
  // evicted: capacity exceeds the load).
  EXPECT_EQ(range_entries, kConnections * kQueriesPerConnection);
  EXPECT_EQ(stats->slowlog_evicted, 0u);
  EXPECT_GE(stats->slowlog_recorded, range_entries);

  // Draining removed them: a second drain returns only newer entries.
  auto again = live.client.GetStats(true);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again->has_slowlog);
  for (const obs::SlowQueryEntry& e : again->slowlog) {
    EXPECT_NE(e.op, static_cast<uint8_t>(FrameType::kRangeQuery));
  }
}

TEST(ExplainProfileTest, FailedRequestsAreAlwaysRecorded) {
  ServerConfig config;
  config.slow_query_us = 60'000'000;  // threshold no fast request reaches
  LiveServer live = StartWithClient(config);
  RangeQueryRequest req;
  req.name = "no-such-index";
  req.dims = 2;
  req.queries = {0.1f, 0.2f};
  EXPECT_FALSE(live.client.RangeQuery(req).ok());

  auto stats = live.client.GetStats(true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->has_slowlog);
  ASSERT_EQ(stats->slowlog.size(), 1u);  // the failure, not the fast stats
  EXPECT_NE(stats->slowlog[0].status_code, 0u);
  EXPECT_EQ(stats->slowlog[0].index, "no-such-index");
}

TEST(ExplainProfileTest, DisabledSlowLogAnswersDrainWithEmptyBlock) {
  LiveServer live = StartWithClient();  // slow_query_us == 0: no log
  auto stats = live.client.GetStats(true);
  ASSERT_TRUE(stats.ok());
  // The block is present (the server understood the request) but empty —
  // distinguishable from talking to a pre-extension server.
  ASSERT_TRUE(stats->has_slowlog);
  EXPECT_TRUE(stats->slowlog.empty());
  EXPECT_EQ(stats->slowlog_recorded, 0u);
}

TEST(ExplainProfileTest, ProfiledJoinAttributesParallelSweepSpans) {
  // A profiled request that fans work onto the ThreadPool must see its
  // spans come back to the request's own tree (context propagation), and
  // the un-profiled path must stay unaffected.
  const Dataset data = MakeData(300, 4, 5);
  ServerConfig config;
  config.worker_threads = 4;
  config.slow_query_us = 1;  // arm collectors for every request
  LiveServer live = StartWithClient(config);
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("idx", data, 0.2)).ok());

  SimilarityJoinRequest join;
  join.name_a = "idx";
  join.num_threads = 4;
  VectorSink sink;
  auto done = live.client.SimilarityJoin(join, &sink);
  ASSERT_TRUE(done.ok()) << done.status().ToString();

  auto stats = live.client.GetStats(true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->has_slowlog);
  bool saw_join = false;
  for (const obs::SlowQueryEntry& e : stats->slowlog) {
    if (e.op != static_cast<uint8_t>(FrameType::kSimilarityJoin)) continue;
    saw_join = true;
    EXPECT_FALSE(e.profile.nodes.empty());
  }
  EXPECT_TRUE(saw_join);
}

}  // namespace
}  // namespace simjoin
