#include "service/registry.h"

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/delta_index.h"
#include "core/segment_builder.h"
#include "common/binary_io.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon = 0.1) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

std::shared_ptr<const IndexSnapshot> MustBuild(const std::string& name,
                                               size_t n, uint64_t seed,
                                               size_t threads = 1) {
  auto data = GenerateUniform({.n = n, .dims = 4, .seed = seed});
  EXPECT_TRUE(data.ok());
  auto snapshot =
      IndexSnapshot::Build(name, std::move(*data), Config(), threads);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return *snapshot;
}

TEST(RegistryTest, PutGetErase) {
  IndexRegistry registry(64 << 20);
  auto snap = MustBuild("alpha", 200, 1);
  ASSERT_TRUE(registry.Put(snap).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.bytes_in_use(), snap->memory_bytes());

  auto got = registry.Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), snap.get());
  EXPECT_FALSE(registry.Get("beta").ok());

  EXPECT_TRUE(registry.Erase("alpha"));
  EXPECT_FALSE(registry.Erase("alpha"));
  EXPECT_EQ(registry.bytes_in_use(), 0u);
}

TEST(RegistryTest, PutReplacesSameName) {
  IndexRegistry registry(64 << 20);
  auto first = MustBuild("idx", 100, 1);
  auto second = MustBuild("idx", 300, 2);
  ASSERT_TRUE(registry.Put(first).ok());
  ASSERT_TRUE(registry.Put(second).ok());
  EXPECT_EQ(registry.size(), 1u);
  auto got = registry.Get("idx");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->dataset().size(), 300u);
  EXPECT_EQ(registry.bytes_in_use(), second->memory_bytes());
}

TEST(RegistryTest, LruEvictionUnderByteBudget) {
  auto a = MustBuild("a", 200, 1);
  auto b = MustBuild("b", 200, 2);
  auto c = MustBuild("c", 200, 3);
  // Budget fits roughly two of the three same-sized indexes.
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() +
                         c->memory_bytes() / 2);
  ASSERT_TRUE(registry.Put(a).ok());
  ASSERT_TRUE(registry.Put(b).ok());
  // Touch "a" so "b" is the LRU entry when "c" arrives.
  ASSERT_TRUE(registry.Get("a").ok());
  size_t evicted = 0;
  ASSERT_TRUE(registry.Put(c, &evicted).ok());
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(registry.evictions(), 1u);
  EXPECT_TRUE(registry.Get("a").ok());
  EXPECT_FALSE(registry.Get("b").ok());
  EXPECT_TRUE(registry.Get("c").ok());
  EXPECT_LE(registry.bytes_in_use(), registry.byte_budget());
}

TEST(RegistryTest, NewestEntryNeverEvicted) {
  auto a = MustBuild("a", 200, 1);
  auto b = MustBuild("b", 200, 2);
  // Budget below one index would reject; budget between one and two must
  // keep exactly the new arrival.
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2);
  ASSERT_TRUE(registry.Put(a).ok());
  size_t evicted = 0;
  ASSERT_TRUE(registry.Put(b, &evicted).ok());
  EXPECT_EQ(evicted, 1u);
  EXPECT_FALSE(registry.Get("a").ok());
  EXPECT_TRUE(registry.Get("b").ok());
}

TEST(RegistryTest, OverBudgetSnapshotRejected) {
  auto a = MustBuild("a", 200, 1);
  IndexRegistry registry(a->memory_bytes() - 1);
  EXPECT_FALSE(registry.Put(a).ok());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.bytes_in_use(), 0u);
}

TEST(RegistryTest, ListIsMruFirst) {
  IndexRegistry registry(256 << 20);
  ASSERT_TRUE(registry.Put(MustBuild("one", 100, 1)).ok());
  ASSERT_TRUE(registry.Put(MustBuild("two", 100, 2)).ok());
  ASSERT_TRUE(registry.Get("one").ok());
  const std::vector<RegistryEntryInfo> list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "one");
  EXPECT_EQ(list[1].name, "two");
  EXPECT_EQ(list[0].hits, 1u);
  EXPECT_EQ(list[0].num_points, 100u);
}

TEST(RegistryTest, EvictedSnapshotStaysQueryable) {
  auto a = MustBuild("a", 300, 1);
  auto b = MustBuild("b", 300, 2);
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2);
  ASSERT_TRUE(registry.Put(a).ok());
  auto held = registry.Get("a");
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(registry.Put(b).ok());  // evicts "a" from the registry
  EXPECT_FALSE(registry.Get("a").ok());
  // The held reference is unaffected by eviction.
  std::vector<PointId> out;
  const float* q = (*held)->dataset().Row(0);
  EXPECT_TRUE((*held)->tree().RangeQuery(q, 0.05, &out).ok());
}

// -- updatable entries: dynamic byte accounting via RefreshCharge ------------

std::shared_ptr<const IndexSnapshot> MustBuildUpdatable(
    const std::string& name, size_t n, uint64_t seed) {
  auto data = GenerateUniform({.n = n, .dims = 4, .seed = seed});
  EXPECT_TRUE(data.ok());
  auto snapshot = IndexSnapshot::Build(name, std::move(*data), Config(), 1,
                                       BackendKind::kUpdatable);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return *snapshot;
}

/// Grows the delta memtable by `count` points (valid in-domain rows).
void GrowDelta(const IndexSnapshot& snapshot, size_t count, uint64_t seed) {
  auto rows = GenerateUniform({.n = count, .dims = 4, .seed = seed});
  ASSERT_TRUE(rows.ok());
  auto first = snapshot.updatable()->InsertBatch(rows->flat().data(), count);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
}

TEST(RegistryUpdatableTest, RefreshChargeFollowsDeltaGrowthAndCompaction) {
  IndexRegistry registry(64 << 20);
  // A base large enough that the delta below stays under the snapshot's
  // auto-compaction thresholds — the footprint only moves when this test
  // says so.
  auto snap = MustBuildUpdatable("u", 2000, 5);
  ASSERT_TRUE(registry.Put(snap).ok());
  const uint64_t admitted = registry.bytes_in_use();
  EXPECT_EQ(admitted, snap->memory_bytes());

  // Mutations move memory_bytes() under the entry; the ledger only moves
  // when RefreshCharge folds the new reading in.
  GrowDelta(*snap, 400, 6);
  const uint64_t grown = snap->memory_bytes();
  EXPECT_GT(grown, admitted);
  EXPECT_EQ(registry.bytes_in_use(), admitted);
  registry.RefreshCharge("u");
  EXPECT_EQ(registry.bytes_in_use(), grown);

  // Compaction moves the footprint again (the delta estimate folds away;
  // the merged tier now owns its row storage); the next refresh trues the
  // ledger up to whatever memory_bytes() reads now.
  auto ran = snap->updatable()->Flush();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  EXPECT_NE(snap->memory_bytes(), grown);
  registry.RefreshCharge("u");
  EXPECT_EQ(registry.bytes_in_use(), snap->memory_bytes());

  // Erase returns exactly the refreshed charge: the ledger lands on zero
  // even though the footprint moved repeatedly since admission.
  EXPECT_TRUE(registry.Erase("u"));
  EXPECT_EQ(registry.bytes_in_use(), 0u);
}

TEST(RegistryUpdatableTest, RefreshChargeIsNoOpForUnknownName) {
  IndexRegistry registry(64 << 20);
  auto snap = MustBuildUpdatable("u", 100, 7);
  ASSERT_TRUE(registry.Put(snap).ok());
  const uint64_t before = registry.bytes_in_use();
  registry.RefreshCharge("ghost");
  EXPECT_EQ(registry.bytes_in_use(), before);
}

TEST(RegistryUpdatableTest, DeltaGrowthEvictsOthersNeverItself) {
  auto u = MustBuildUpdatable("u", 2000, 8);
  auto other = MustBuild("other", 200, 9);
  // Roomy enough for both at admission, but not for a grown delta.
  IndexRegistry registry(u->memory_bytes() + other->memory_bytes() +
                         (4 << 10));
  ASSERT_TRUE(registry.Put(u).ok());
  ASSERT_TRUE(registry.Put(other).ok());
  ASSERT_EQ(registry.size(), 2u);

  // ~84 bytes per delta point: 400 points blows the 4 KiB headroom while
  // staying under the snapshot's auto-compaction thresholds.
  GrowDelta(*u, 400, 10);
  registry.RefreshCharge("u");
  EXPECT_TRUE(registry.Get("u").ok())
      << "an index must not be evicted by its own growth";
  EXPECT_FALSE(registry.Get("other").ok());
  EXPECT_GE(registry.evictions(), 1u);
  EXPECT_EQ(registry.bytes_in_use(), u->memory_bytes());
}

// -- out-of-core tier (segment spill + mmap fault-in) ------------------------

class RegistrySegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spill_dir_ = ::testing::TempDir() + "/registry_spill";
    std::filesystem::create_directories(spill_dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  size_t SpillFileCount() const {
    size_t n = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(spill_dir_)) {
      if (entry.path().extension() == ".seg") ++n;
    }
    return n;
  }

  std::string spill_dir_;
};

TEST_F(RegistrySegmentTest, EvictionDemotesToColdAndGetFaultsBackIn) {
  auto a = MustBuild("a", 400, 1);
  auto b = MustBuild("b", 400, 2);
  // Reference answers before "a" is ever evicted.
  std::vector<PointId> want;
  ASSERT_TRUE(a->tree().RangeQuery(a->dataset().Row(3), 0.08, &want).ok());

  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2,
                         spill_dir_);
  ASSERT_TRUE(registry.spill_enabled());
  ASSERT_TRUE(registry.Put(a).ok());
  ASSERT_TRUE(registry.Put(b).ok());  // evicts "a" -> cold tier
  EXPECT_EQ(registry.segment_writes(), 2u);
  EXPECT_EQ(registry.cold_evictions(), 1u);
  EXPECT_EQ(registry.cold_size(), 1u);
  EXPECT_EQ(SpillFileCount(), 2u);

  // The cold entry is still listed (zero resident bytes, cold flag set).
  bool saw_cold = false;
  for (const RegistryEntryInfo& info : registry.List()) {
    if (info.name != "a") continue;
    saw_cold = true;
    EXPECT_TRUE(info.cold);
    EXPECT_EQ(info.num_points, 400u);
  }
  EXPECT_TRUE(saw_cold);

  // Get faults it back in as a mapped snapshot — no rebuild — and the
  // answers are bit-identical to the heap build.
  auto got = registry.Get("a");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE((*got)->mapped());
  EXPECT_EQ(registry.faults_in(), 1u);
  EXPECT_EQ(registry.cold_size(), 0u);
  std::vector<PointId> have;
  ASSERT_TRUE(
      (*got)->tree().RangeQuery((*got)->dataset().Row(3), 0.08, &have).ok());
  EXPECT_EQ(want, have);
  // Mapped snapshots charge only bookkeeping bytes, far below the heap
  // snapshot they replace.
  EXPECT_LT((*got)->memory_bytes(), a->memory_bytes() / 4);
}

TEST_F(RegistrySegmentTest, MappedSnapshotAdmittedBeyondHeapBudget) {
  // Build a segment externally and serve a dataset whose heap build would
  // blow the registry budget several times over.
  auto data = GenerateUniform({.n = 3000, .dims = 4, .seed = 9});
  ASSERT_TRUE(data.ok());
  const std::string input = spill_dir_ + "/big.sjdb";
  const std::string segment = spill_dir_ + "/big.seg";
  ASSERT_TRUE(WriteBinaryDataset(*data, input).ok());
  ExternalBuildConfig ext;
  ext.ekdb = Config();
  ext.temp_dir = spill_dir_;
  ASSERT_TRUE(BuildSegmentExternal(input, segment, ext).ok());

  auto heap = MustBuild("ref", 3000, 9);
  IndexRegistry registry(heap->memory_bytes() / 4, spill_dir_);
  EXPECT_FALSE(registry.Put(heap).ok());  // heap build: over budget

  auto mapped = IndexSnapshot::OpenMapped("big", segment);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(registry.Put(*mapped).ok());  // mapped: bookkeeping only
  auto got = registry.Get("big");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)->mapped());
  EXPECT_EQ((*got)->dataset().size(), 3000u);
}

TEST_F(RegistrySegmentTest, PlanCacheSurvivesEvictFaultCycle) {
  auto a = MustBuild("a", 400, 1);
  auto b = MustBuild("b", 400, 2);
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2,
                         spill_dir_);
  ASSERT_TRUE(registry.Put(a).ok());

  RangePlannerOptions options;
  auto first = a->PlanRange(0.05, 1.0, kWireBackendAuto, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  auto repeat = a->PlanRange(0.05, 1.0, kWireBackendAuto, options);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->cache_hit);

  ASSERT_TRUE(registry.Put(b).ok());  // demotes "a" (plan cache exported)
  auto got = registry.Get("a");       // faults in (plan cache imported)
  ASSERT_TRUE(got.ok());
  auto after = (*got)->PlanRange(0.05, 1.0, kWireBackendAuto, options);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->cache_hit)
      << "the (eps, recall) decision should survive the evict/fault cycle";
  EXPECT_EQ(after->plan.kind, first->plan.kind);
}

TEST_F(RegistrySegmentTest, EraseRemovesColdEntryAndSpillFile) {
  auto a = MustBuild("a", 300, 1);
  auto b = MustBuild("b", 300, 2);
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2,
                         spill_dir_);
  ASSERT_TRUE(registry.Put(a).ok());
  ASSERT_TRUE(registry.Put(b).ok());  // "a" goes cold
  ASSERT_EQ(registry.cold_size(), 1u);
  ASSERT_EQ(SpillFileCount(), 2u);

  EXPECT_TRUE(registry.Erase("a"));
  EXPECT_EQ(registry.cold_size(), 0u);
  EXPECT_EQ(SpillFileCount(), 1u);  // only "b"'s write-through file remains
  EXPECT_FALSE(registry.Get("a").ok());

  // Erasing the hot entry unlinks its write-through file too.
  EXPECT_TRUE(registry.Erase("b"));
  EXPECT_EQ(SpillFileCount(), 0u);
}

TEST_F(RegistrySegmentTest, ReplaceDropsStaleSpillFile) {
  IndexRegistry registry(64 << 20, spill_dir_);
  ASSERT_TRUE(registry.Put(MustBuild("idx", 200, 1)).ok());
  ASSERT_TRUE(registry.Put(MustBuild("idx", 300, 2)).ok());
  // The replaced build's segment must not linger on disk.
  EXPECT_EQ(SpillFileCount(), 1u);
  EXPECT_EQ(registry.segment_writes(), 2u);
}

TEST_F(RegistrySegmentTest, UnwritableSpillDirDegradesToDestroyOnEvict) {
  auto a = MustBuild("a", 300, 1);
  auto b = MustBuild("b", 300, 2);
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2,
                         spill_dir_ + "/does/not/exist");
  ASSERT_TRUE(registry.Put(a).ok());  // Put still succeeds...
  EXPECT_GE(registry.segment_write_errors(), 1u);
  ASSERT_TRUE(registry.Put(b).ok());
  // ...but the evicted entry has no segment to demote to: destroyed.
  EXPECT_EQ(registry.cold_size(), 0u);
  EXPECT_FALSE(registry.Get("a").ok());
}

TEST_F(RegistrySegmentTest, CorruptSpillFileFailsFaultInCleanly) {
  auto a = MustBuild("a", 300, 1);
  auto b = MustBuild("b", 300, 2);
  IndexRegistry registry(a->memory_bytes() + b->memory_bytes() / 2,
                         spill_dir_);
  ASSERT_TRUE(registry.Put(a).ok());
  ASSERT_TRUE(registry.Put(b).ok());  // "a" goes cold
  ASSERT_EQ(registry.cold_size(), 1u);
  // Truncate every spill file; the fault-in must surface a clean error.
  for (const auto& entry :
       std::filesystem::directory_iterator(spill_dir_)) {
    if (entry.path().extension() == ".seg") {
      std::filesystem::resize_file(entry.path(), 64);
    }
  }
  auto got = registry.Get("a");
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("faulted back"), std::string::npos)
      << got.status().ToString();
}

// -- concurrency (exercised under scripts/check_tsan.sh) --------------------

TEST(RegistryConcurrencyTest, SegmentFaultInWhileEvicting) {
  const std::string spill_dir =
      ::testing::TempDir() + "/registry_spill_race";
  std::filesystem::create_directories(spill_dir);
  auto first = MustBuild("cold-0", 300, 1);
  // Budget of ~1.5 indexes over 4 names: every Put demotes someone, and the
  // readers' Gets keep faulting cold entries back in concurrently.
  IndexRegistry registry(first->memory_bytes() + first->memory_bytes() / 2,
                         spill_dir);
  ASSERT_TRUE(registry.Put(first).ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&]() {
      while (!done.load()) {
        for (int i = 0; i < 4; ++i) {
          auto snap = registry.Get("cold-" + std::to_string(i));
          if (!snap.ok()) continue;  // erased mid-race; fine
          std::vector<PointId> out;
          const float* q = (*snap)->dataset().Row(0);
          ASSERT_TRUE((*snap)->tree().RangeQuery(q, 0.05, &out).ok());
          served.fetch_add(1);
        }
      }
    });
  }
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(
        registry.Put(MustBuild("cold-" + std::to_string(i % 4), 300, 50 + i))
            .ok());
  }
  while (served.load() == 0) std::this_thread::yield();
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(registry.cold_evictions(), 0u);
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}


TEST(RegistryConcurrencyTest, BuildWhileQuerying) {
  IndexRegistry registry(512 << 20);
  ASSERT_TRUE(registry.Put(MustBuild("serve", 400, 7)).ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::thread reader([&]() {
    while (!done.load()) {
      auto snap = registry.Get("serve");
      ASSERT_TRUE(snap.ok());
      std::vector<PointId> out;
      const float* q = (*snap)->dataset().Row(0);
      ASSERT_TRUE((*snap)->tree().RangeQuery(q, 0.08, &out).ok());
      EXPECT_FALSE(out.empty());  // the query point itself is in range
      queries.fetch_add(1);
    }
  });
  // Keep replacing the snapshot the reader is querying.
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(registry.Put(MustBuild("serve", 400, 100 + i)).ok());
  }
  // On a loaded single-core host the reader may not have been scheduled at
  // all yet; hold the overlap window open until it ran at least once.
  while (queries.load() == 0) std::this_thread::yield();
  done.store(true);
  reader.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryConcurrencyTest, EvictionWhileQuerying) {
  auto first = MustBuild("hot-0", 300, 1);
  // Budget of ~2 indexes, with a writer cycling through 6 names: entries
  // are constantly evicted while readers hold and query them.
  IndexRegistry registry(2 * first->memory_bytes() +
                         first->memory_bytes() / 2);
  ASSERT_TRUE(registry.Put(first).ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&]() {
      while (!done.load()) {
        for (int i = 0; i < 6; ++i) {
          auto snap = registry.Get("hot-" + std::to_string(i));
          if (!snap.ok()) continue;  // evicted; fine
          std::vector<PointId> out;
          const float* q = (*snap)->dataset().Row(0);
          ASSERT_TRUE((*snap)->tree().RangeQuery(q, 0.05, &out).ok());
        }
      }
    });
  }
  for (int i = 1; i < 12; ++i) {
    ASSERT_TRUE(
        registry.Put(MustBuild("hot-" + std::to_string(i % 6), 300, 40 + i))
            .ok());
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(registry.evictions(), 0u);
  EXPECT_LE(registry.bytes_in_use(), registry.byte_budget());
}

TEST(RegistryConcurrencyTest, ReleaseOrderingFreesEvictedSnapshots) {
  auto probe = MustBuild("n0", 200, 1);
  std::weak_ptr<const IndexSnapshot> watch = probe;
  IndexRegistry registry(probe->memory_bytes() + probe->memory_bytes() / 2);
  ASSERT_TRUE(registry.Put(std::move(probe)).ok());

  // Hold the snapshot from another thread across its eviction, then drop
  // the reference; the snapshot must be destroyed exactly then.
  auto held = registry.Get("n0");
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(registry.Put(MustBuild("n1", 200, 2)).ok());  // evicts n0
  EXPECT_FALSE(watch.expired());
  std::thread releaser([held = std::move(*held)]() mutable { held.reset(); });
  releaser.join();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace simjoin
