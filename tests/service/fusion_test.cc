// Differential tests for the batch-fused query execution engine: fusing
// range queries across connections is an execution strategy, never a
// semantic change.  Every response produced by a fused server must be
// bit-identical — same neighbour id order, same JoinStats — to the
// in-process reference APIs and to an unfused server, at every worker
// count and every SIMD dispatch tier, and per-request failures inside a
// fused batch must stay confined to the request that caused them.

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_tree.h"
#include "core/epsilon_grid.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon = 0.1) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.leaf_threshold = 16;
  return config;
}

Dataset MakeData(size_t n, size_t dims, uint64_t seed) {
  auto data = GenerateUniform({.n = n, .dims = dims, .seed = seed});
  EXPECT_TRUE(data.ok());
  return std::move(*data);
}

BuildIndexRequest BuildRequestFor(const std::string& name,
                                  const Dataset& data,
                                  const EkdbConfig& config) {
  BuildIndexRequest req;
  req.name = name;
  req.config = config;
  req.dims = static_cast<uint32_t>(data.dims());
  req.points = data.flat();
  return req;
}

struct LiveServer {
  std::unique_ptr<Server> server;
  Client client;
};

LiveServer StartWithClient(ServerConfig config = {}) {
  auto server = Server::Start(config);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  ClientConfig client_config;
  client_config.port = (*server)->port();
  auto client = Client::Connect(client_config);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return LiveServer{std::move(*server), std::move(*client)};
}

void ExpectStatsEqual(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
  EXPECT_EQ(a.distance_calls, b.distance_calls);
  EXPECT_EQ(a.node_pairs_visited, b.node_pairs_visited);
  EXPECT_EQ(a.node_pairs_pruned, b.node_pairs_pruned);
  EXPECT_EQ(a.pairs_emitted, b.pairs_emitted);
  EXPECT_EQ(a.simd_batches, b.simd_batches);
  EXPECT_EQ(a.scalar_fallbacks, b.scalar_fallbacks);
}

/// Fusion config that reliably forms multi-request batches in a test: a
/// generous wait budget parks concurrent requests together instead of
/// flushing the first one alone.
ServerConfig FusedConfig(uint32_t worker_threads = 0) {
  ServerConfig config;
  config.fusion_enabled = true;
  config.fusion_max_batch = 64;
  config.fusion_wait_us = 2000;
  config.worker_threads = worker_threads;
  return config;
}

// The tentpole contract: a fused server answers exactly like the
// in-process FlatEkdbTree (which is also what an unfused server executes),
// per query and per JoinStats, at 1/2/4 worker threads, with many
// connections issuing overlapping requests so real multi-request batches
// form.
TEST(FusionTest, FusedMatchesReferenceAtEveryWorkerCount) {
  const Dataset data = MakeData(500, 8, 11);
  const EkdbConfig config = Config(0.2);
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kRequestsPerThread = 4;
  constexpr size_t kQueriesPerRequest = 16;

  for (const uint32_t workers : {1u, 2u, 4u}) {
    LiveServer live = StartWithClient(FusedConfig(workers));
    ASSERT_TRUE(
        live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());

    const uint16_t port = live.server->port();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        ClientConfig cc;
        cc.port = port;
        auto client = Client::Connect(cc);
        ASSERT_TRUE(client.ok());
        for (size_t r = 0; r < kRequestsPerThread; ++r) {
          RangeQueryRequest req;
          req.name = "d";
          req.epsilon = 0.15;
          req.dims = static_cast<uint32_t>(data.dims());
          std::vector<size_t> rows(kQueriesPerRequest);
          for (size_t q = 0; q < kQueriesPerRequest; ++q) {
            rows[q] = (t * 131 + r * 17 + q) % data.size();
            const float* row = data.Row(static_cast<PointId>(rows[q]));
            req.queries.insert(req.queries.end(), row, row + data.dims());
          }
          auto resp = client->RangeQuery(req);
          ASSERT_TRUE(resp.ok()) << resp.status().ToString();
          ASSERT_EQ(resp->results.size(), kQueriesPerRequest);
          JoinStats ref_stats;
          for (size_t q = 0; q < kQueriesPerRequest; ++q) {
            std::vector<PointId> expected;
            ASSERT_TRUE(ref_flat
                            ->RangeQuery(data.Row(static_cast<PointId>(
                                             rows[q])),
                                         0.15, &expected, &ref_stats)
                            .ok());
            EXPECT_EQ(resp->results[q], expected)
                << "workers=" << workers << " thread=" << t << " query=" << q;
          }
          ExpectStatsEqual(resp->stats, ref_stats);
        }
      });
    }
    for (std::thread& t : threads) t.join();

    const ServerCounters counters = live.server->counters();
    EXPECT_GT(counters.fusion_batches, 0u) << "workers=" << workers;
    EXPECT_GE(counters.fusion_fused_queries, kThreads * kRequestsPerThread)
        << "workers=" << workers;
  }
}

// The SIMD dispatch tiers (portable / AVX2 / AVX-512) are selected at
// kernel construction via SIMJOIN_KERNEL_PATH; all of them must produce
// the same fused responses down to the JoinStats.  On hosts without the
// wider ISA the pin degrades one tier at a time, so the test still
// compares three (possibly coinciding) executions.
TEST(FusionTest, DispatchTiersAgreeBitForBit) {
  const Dataset data = MakeData(400, 16, 29);
  const EkdbConfig config = Config(0.3);
  LiveServer live = StartWithClient(FusedConfig());
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());

  RangeQueryRequest req;
  req.name = "d";
  req.epsilon = 0.25;
  req.dims = static_cast<uint32_t>(data.dims());
  const size_t batch = 64;
  req.queries.assign(data.flat().begin(),
                     data.flat().begin() + batch * data.dims());

  std::vector<std::vector<std::vector<PointId>>> per_tier_results;
  std::vector<JoinStats> per_tier_stats;
  for (const char* tier : {"portable", "avx2", "avx512"}) {
    ASSERT_EQ(setenv("SIMJOIN_KERNEL_PATH", tier, /*overwrite=*/1), 0);
    auto resp = live.client.RangeQuery(req);
    ASSERT_TRUE(resp.ok()) << tier << ": " << resp.status().ToString();
    per_tier_results.push_back(resp->results);
    per_tier_stats.push_back(resp->stats);
  }
  ASSERT_EQ(unsetenv("SIMJOIN_KERNEL_PATH"), 0);

  for (size_t i = 1; i < per_tier_results.size(); ++i) {
    EXPECT_EQ(per_tier_results[i], per_tier_results[0]) << "tier " << i;
    ExpectStatsEqual(per_tier_stats[i], per_tier_stats[0]);
  }

  // And the tiers agree with the scalar reference on the ids themselves.
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());
  ASSERT_EQ(setenv("SIMJOIN_KERNEL_PATH", "scalar", 1), 0);
  for (size_t q = 0; q < batch; ++q) {
    std::vector<PointId> expected;
    ASSERT_TRUE(ref_flat
                    ->RangeQuery(data.Row(static_cast<PointId>(q)), 0.25,
                                 &expected)
                    .ok());
    EXPECT_EQ(per_tier_results[0][q], expected) << "query " << q;
  }
  ASSERT_EQ(unsetenv("SIMJOIN_KERNEL_PATH"), 0);
}

// A request whose deadline lapses while parked in the fusion buffer gets
// the same DEADLINE_EXCEEDED answer the solo path gives, and the expiry is
// counted.
TEST(FusionTest, DeadlineExpiresInsideFusionBuffer) {
  ServerConfig config = FusedConfig();
  config.handler_delay_ms_for_testing = 50;
  LiveServer live = StartWithClient(config);
  const Dataset data = MakeData(60, 3, 5);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());

  ClientConfig cc;
  cc.port = live.server->port();
  cc.deadline_ms = 1;
  auto deadline_client = Client::Connect(cc);
  ASSERT_TRUE(deadline_client.ok());
  auto ids = deadline_client->RangeQueryOne("d", data.RowSpan(0), 0.05);
  EXPECT_EQ(ids.status().code(), StatusCode::kDeadlineExceeded)
      << ids.status().ToString();
  EXPECT_GE(live.server->counters().deadline_expired, 1u);
}

// Bad requests fused into the same batch as good ones fail individually —
// exactly as they would solo — without poisoning their batchmates or their
// connections.
TEST(FusionTest, PerRequestErrorsAreIsolatedWithinABatch) {
  LiveServer live = StartWithClient(FusedConfig());
  const Dataset data = MakeData(80, 3, 7);
  const EkdbConfig config = Config(0.2);
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("d", data, config)).ok());
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());

  const uint16_t port = live.server->port();
  std::vector<std::thread> threads;
  // Unknown index.
  threads.emplace_back([&]() {
    auto client = Client::Connect({.port = port});
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      auto ids = client->RangeQueryOne("ghost", data.RowSpan(0), 0.1);
      EXPECT_EQ(ids.status().code(), StatusCode::kNotFound);
    }
    EXPECT_TRUE(client->Ping().ok());  // the connection survived
  });
  // Dimension mismatch.
  threads.emplace_back([&]() {
    auto client = Client::Connect({.port = port});
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      auto ids = client->RangeQueryOne("d", std::vector<float>{0.5f, 0.5f},
                                       0.1);
      EXPECT_EQ(ids.status().code(), StatusCode::kInvalidArgument);
    }
    EXPECT_TRUE(client->Ping().ok());
  });
  // Radius beyond the build epsilon.
  threads.emplace_back([&]() {
    auto client = Client::Connect({.port = port});
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      auto ids = client->RangeQueryOne("d", data.RowSpan(0), 0.9);
      EXPECT_EQ(ids.status().code(), StatusCode::kInvalidArgument);
    }
    EXPECT_TRUE(client->Ping().ok());
  });
  // Well-formed queries racing the bad ones still get exact answers.
  threads.emplace_back([&]() {
    auto client = Client::Connect({.port = port});
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      const size_t qi = static_cast<size_t>(i * 9) % data.size();
      auto ids = client->RangeQueryOne("d", data.RowSpan(qi), 0.1);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      std::vector<PointId> expected;
      ASSERT_TRUE(ref_flat
                      ->RangeQuery(data.Row(static_cast<PointId>(qi)), 0.1,
                                   &expected)
                      .ok());
      EXPECT_EQ(*ids, expected);
    }
  });
  for (std::thread& t : threads) t.join();
}

// The epsilon-grid backend is a first-class fusion citizen: built over the
// wire, its fused range queries are bit-identical to the in-process
// EpsilonGrid, and joins against it fall back to a lazily built flat-tree
// auxiliary — same pairs as a tree-primary index, no error.
TEST(FusionTest, GridBackendServesFusedQueriesAndJoinsViaTreeFallback) {
  const Dataset data = MakeData(600, 3, 41);
  const EkdbConfig config = Config(0.15);
  auto ref_grid = EpsilonGrid::Build(data, config);
  ASSERT_TRUE(ref_grid.ok());

  LiveServer live = StartWithClient(FusedConfig());
  BuildIndexRequest build = BuildRequestFor("g", data, config);
  build.backend = BackendKind::kEpsilonGrid;
  auto built = live.client.BuildIndex(build);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  RangeQueryRequest req;
  req.name = "g";
  req.epsilon = 0.12;
  req.dims = static_cast<uint32_t>(data.dims());
  const size_t batch = 32;
  req.queries.assign(data.flat().begin(),
                     data.flat().begin() + batch * data.dims());
  auto resp = live.client.RangeQuery(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->results.size(), batch);
  JoinStats ref_stats;
  for (size_t q = 0; q < batch; ++q) {
    std::vector<PointId> expected;
    ASSERT_TRUE(ref_grid
                    ->RangeQuery(data.Row(static_cast<PointId>(q)), 0.12,
                                 &expected, &ref_stats)
                    .ok());
    EXPECT_EQ(resp->results[q], expected) << "query " << q;
  }
  ExpectStatsEqual(resp->stats, ref_stats);

  // Self-join on the grid index streams the same pairs the flat tree
  // produces in-process (the server joins on its lazily built tree aux).
  auto ref_tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());
  VectorSink ref_sink;
  ASSERT_TRUE(FlatEkdbSelfJoin(*ref_flat, &ref_sink).ok());

  SimilarityJoinRequest join;
  join.name_a = "g";
  VectorSink sink;
  auto done = live.client.SimilarityJoin(join, &sink);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(sink.pairs(), ref_sink.pairs());

  // A cross-join naming the grid index on either side works the same way
  // (grid aux tree vs. tree primary over identical data = self-join pairs,
  // both orientations).
  ASSERT_TRUE(live.client.BuildIndex(BuildRequestFor("t", data, config)).ok());
  join.name_a = "t";
  join.name_b = "g";
  VectorSink cross_sink;
  done = live.client.SimilarityJoin(join, &cross_sink);
  ASSERT_TRUE(done.ok()) << done.status().ToString();

  join.name_a = "g";
  join.name_b = "t";
  VectorSink cross_sink2;
  done = live.client.SimilarityJoin(join, &cross_sink2);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(cross_sink.pairs(), cross_sink2.pairs());
}

// Shutdown while requests are parked in the fusion buffer: the collector
// flushes everything it holds, every parked request still gets its exact
// answer, and Wait() returns.
TEST(FusionTest, ShutdownDrainsParkedFusionEntries) {
  ServerConfig config;
  config.fusion_enabled = true;
  config.fusion_max_batch = 1000;   // never flushes on count...
  config.fusion_wait_us = 500000;   // ...or (within the test) on time
  LiveServer live = StartWithClient(config);
  const Dataset data = MakeData(200, 4, 13);
  const EkdbConfig index_config = Config(0.2);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, index_config)).ok());
  auto ref_tree = EkdbTree::Build(data, index_config);
  ASSERT_TRUE(ref_tree.ok());
  auto ref_flat = FlatEkdbTree::FromTree(*ref_tree);
  ASSERT_TRUE(ref_flat.ok());

  const uint16_t port = live.server->port();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      auto client = Client::Connect({.port = port});
      ASSERT_TRUE(client.ok());
      const size_t qi = static_cast<size_t>(t * 31) % data.size();
      auto ids = client->RangeQueryOne("d", data.RowSpan(qi), 0.1);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      std::vector<PointId> expected;
      ASSERT_TRUE(ref_flat
                      ->RangeQuery(data.Row(static_cast<PointId>(qi)), 0.1,
                                   &expected)
                      .ok());
      EXPECT_EQ(*ids, expected);
    });
  }
  // Give the requests time to park, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(live.client.Shutdown().ok());
  for (std::thread& t : threads) t.join();
  live.server->Wait();
}

// The fusion instrumentation crosses the Stats RPC: counters and the
// batch-size histogram ride the same metrics snapshot as everything else.
TEST(FusionTest, FusionMetricsSurfaceInStatsRpc) {
  LiveServer live = StartWithClient(FusedConfig());
  const Dataset data = MakeData(100, 3, 17);
  ASSERT_TRUE(
      live.client.BuildIndex(BuildRequestFor("d", data, Config())).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        live.client.RangeQueryOne("d", data.RowSpan(0), 0.05).ok());
  }

  const ServerCounters counters = live.server->counters();
  EXPECT_GT(counters.fusion_batches, 0u);
  EXPECT_GE(counters.fusion_fused_queries, 4u);
  EXPECT_EQ(counters.fusion_batch_full + counters.fusion_wait_expired,
            counters.fusion_batches);

  auto stats = live.client.GetStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->has_metrics);
  const obs::CounterSample* batches =
      stats->metrics.FindCounter("service.fusion.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_GT(batches->value, 0u);
  const obs::CounterSample* fused =
      stats->metrics.FindCounter("service.fusion.fused_queries");
  ASSERT_NE(fused, nullptr);
  EXPECT_GE(fused->value, 4u);
  const obs::HistogramSample* sizes =
      stats->metrics.FindHistogram("service.fusion.batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_GT(sizes->count, 0u);
  const obs::HistogramSample* waits =
      stats->metrics.FindHistogram("service.fusion.wait_us");
  ASSERT_NE(waits, nullptr);
  EXPECT_GE(waits->count, 4u);
}

}  // namespace
}  // namespace simjoin
