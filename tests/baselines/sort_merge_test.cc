#include "baselines/sort_merge.h"

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::MakeDataset;
using testing_util::OracleJoin;
using testing_util::OracleSelfJoin;

TEST(MaxVarianceDimTest, PicksTheSpreadColumn) {
  Dataset ds;
  ds.Append(std::vector<float>{0.5f, 0.0f});
  ds.Append(std::vector<float>{0.5f, 1.0f});
  ds.Append(std::vector<float>{0.5f, 0.5f});
  EXPECT_EQ(MaxVarianceDim(ds), 1u);
}

class SortMergeSelfJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, Metric>> {};

TEST_P(SortMergeSelfJoinPropertyTest, MatchesOracleOnClusteredData) {
  const auto [epsilon, metric] = GetParam();
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 11});
  ASSERT_TRUE(data.ok());
  VectorSink sink;
  ASSERT_TRUE(
      SortMergeSelfJoin(*data, epsilon, metric, SortMergeConfig{}, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, epsilon, metric), sink.Sorted(),
                  "sort-merge self");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortMergeSelfJoinPropertyTest,
    ::testing::Combine(::testing::Values(0.03, 0.1, 0.25),
                       ::testing::Values(Metric::kL1, Metric::kL2,
                                         Metric::kLinf)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_" + MetricName(std::get<1>(info.param));
    });

TEST(SortMergeSelfJoinTest, ExplicitSortDimStaysExact) {
  auto data = GenerateUniform({.n = 400, .dims = 3, .seed = 12});
  ASSERT_TRUE(data.ok());
  for (uint32_t dim = 0; dim < 3; ++dim) {
    SortMergeConfig config;
    config.sort_dim = dim;
    VectorSink sink;
    ASSERT_TRUE(
        SortMergeSelfJoin(*data, 0.1, Metric::kL2, config, &sink).ok());
    ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                    "explicit dim");
  }
}

TEST(SortMergeSelfJoinTest, RejectsOutOfRangeSortDim) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  SortMergeConfig config;
  config.sort_dim = 5;
  CountingSink sink;
  EXPECT_FALSE(
      SortMergeSelfJoin(*data, 0.1, Metric::kL2, config, &sink).ok());
}

TEST(SortMergeJoinTest, CrossJoinMatchesOracle) {
  auto a = GenerateClustered(
      {.n = 300, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 13});
  auto b = GenerateClustered(
      {.n = 350, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 14});
  ASSERT_TRUE(a.ok() && b.ok());
  VectorSink sink;
  ASSERT_TRUE(
      SortMergeJoin(*a, *b, 0.1, Metric::kL2, SortMergeConfig{}, &sink).ok());
  ExpectSamePairs(OracleJoin(*a, *b, 0.1, Metric::kL2), sink.Sorted(),
                  "sort-merge cross");
}

TEST(SortMergeJoinTest, InvalidInputsRejected) {
  Dataset empty;
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  CountingSink sink;
  EXPECT_FALSE(SortMergeJoin(empty, *data, 0.1, Metric::kL2, SortMergeConfig{},
                             &sink)
                   .ok());
  EXPECT_FALSE(
      SortMergeJoin(*data, *data, 0.0, Metric::kL2, SortMergeConfig{}, &sink)
          .ok());
  EXPECT_FALSE(
      SortMergeJoin(*data, *data, 0.1, Metric::kL2, SortMergeConfig{}, nullptr)
          .ok());
}

TEST(SortMergeSelfJoinTest, WindowFilterCountsShrinkWithEpsilon) {
  auto data = GenerateUniform({.n = 500, .dims = 4, .seed = 15});
  ASSERT_TRUE(data.ok());
  JoinStats tight, loose;
  CountingSink s1, s2;
  ASSERT_TRUE(SortMergeSelfJoin(*data, 0.02, Metric::kL2, SortMergeConfig{},
                                &s1, &tight)
                  .ok());
  ASSERT_TRUE(SortMergeSelfJoin(*data, 0.3, Metric::kL2, SortMergeConfig{},
                                &s2, &loose)
                  .ok());
  EXPECT_LT(tight.candidate_pairs, loose.candidate_pairs);
}

}  // namespace
}  // namespace simjoin
