#include "baselines/grid_join.h"

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleJoin;
using testing_util::OracleSelfJoin;

class GridSelfJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, Metric>> {};

TEST_P(GridSelfJoinPropertyTest, MatchesOracle) {
  const auto [epsilon, grid_dims, metric] = GetParam();
  auto data = GenerateClustered(
      {.n = 500, .dims = 5, .clusters = 6, .sigma = 0.04, .seed = 16});
  ASSERT_TRUE(data.ok());
  GridJoinConfig config;
  config.grid_dims = grid_dims;
  VectorSink sink;
  ASSERT_TRUE(GridSelfJoin(*data, epsilon, metric, config, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, epsilon, metric), sink.Sorted(),
                  "grid self");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridSelfJoinPropertyTest,
    ::testing::Combine(::testing::Values(0.04, 0.11, 0.3),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{3},
                                         size_t{5}),
                       ::testing::Values(Metric::kL2, Metric::kLinf)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_g" + std::to_string(std::get<1>(info.param)) + "_" +
             MetricName(std::get<2>(info.param));
    });

TEST(GridSelfJoinTest, GridDimsLargerThanDataDimsIsClamped) {
  auto data = GenerateUniform({.n = 200, .dims = 2, .seed = 17});
  ASSERT_TRUE(data.ok());
  GridJoinConfig config;
  config.grid_dims = 10;
  VectorSink sink;
  ASSERT_TRUE(GridSelfJoin(*data, 0.1, Metric::kL2, config, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.1, Metric::kL2), sink.Sorted(),
                  "clamped grid");
}

TEST(GridJoinTest, CrossJoinMatchesOracle) {
  auto a = GenerateUniform({.n = 300, .dims = 4, .seed = 18});
  auto b = GenerateClustered(
      {.n = 250, .dims = 4, .clusters = 3, .sigma = 0.05, .seed = 19});
  ASSERT_TRUE(a.ok() && b.ok());
  VectorSink sink;
  ASSERT_TRUE(GridJoin(*a, *b, 0.08, Metric::kL2, GridJoinConfig{}, &sink).ok());
  ExpectSamePairs(OracleJoin(*a, *b, 0.08, Metric::kL2), sink.Sorted(),
                  "grid cross");
}

TEST(GridJoinTest, InvalidInputsRejected) {
  Dataset empty;
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  CountingSink sink;
  EXPECT_FALSE(
      GridSelfJoin(empty, 0.1, Metric::kL2, GridJoinConfig{}, &sink).ok());
  EXPECT_FALSE(
      GridSelfJoin(*data, -0.1, Metric::kL2, GridJoinConfig{}, &sink).ok());
  EXPECT_FALSE(
      GridJoin(*data, *data, 0.1, Metric::kL2, GridJoinConfig{}, nullptr).ok());
}

TEST(GridJoinTest, NegativeCoordinatesStillCorrect) {
  // The grid must handle points outside the unit cube (negative cells).
  Dataset ds;
  ds.Append(std::vector<float>{-0.05f, 0.3f});
  ds.Append(std::vector<float>{0.02f, 0.3f});
  ds.Append(std::vector<float>{-0.5f, 0.3f});
  VectorSink sink;
  ASSERT_TRUE(GridSelfJoin(ds, 0.1, Metric::kL2, GridJoinConfig{}, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(ds, 0.1, Metric::kL2), sink.Sorted(),
                  "negative coords");
}

}  // namespace
}  // namespace simjoin
