#include "baselines/kdtree.h"

#include <algorithm>
#include <functional>

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleJoin;
using testing_util::OracleSelfJoin;

KdTreeConfig Config(size_t leaf_size = 16) {
  KdTreeConfig config;
  config.leaf_size = leaf_size;
  return config;
}

TEST(KdTreeBuildTest, RejectsEmptyAndBadConfig) {
  Dataset empty;
  EXPECT_FALSE(KdTree::Build(empty, Config()).ok());
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(KdTree::Build(*data, Config(0)).ok());
}

// Structural invariant: every left point's split coordinate <= split_value,
// every right point's > split_value, bboxes exact and nested.
void CheckSubtree(const KdTree& tree, const KdTreeNode* node) {
  const Dataset& data = tree.dataset();
  if (node->is_leaf()) {
    ASSERT_FALSE(node->points.empty());
    for (PointId p : node->points) {
      EXPECT_TRUE(node->bbox.ContainsPoint(data.Row(p)));
    }
    EXPECT_TRUE(std::is_sorted(node->points.begin(), node->points.end(),
                               [&data](PointId a, PointId b) {
                                 return data.Row(a)[0] < data.Row(b)[0];
                               }));
    return;
  }
  ASSERT_NE(node->left, nullptr);
  ASSERT_NE(node->right, nullptr);
  EXPECT_TRUE(node->bbox.ContainsBox(node->left->bbox));
  EXPECT_TRUE(node->bbox.ContainsBox(node->right->bbox));
  std::function<void(const KdTreeNode*, bool)> check_side =
      [&](const KdTreeNode* n, bool left_side) {
        for (PointId p : n->points) {
          if (left_side) {
            EXPECT_LE(data.Row(p)[node->split_dim], node->split_value);
          } else {
            EXPECT_GT(data.Row(p)[node->split_dim], node->split_value);
          }
        }
        if (!n->is_leaf()) {
          check_side(n->left.get(), left_side);
          check_side(n->right.get(), left_side);
        }
      };
  check_side(node->left.get(), true);
  check_side(node->right.get(), false);
  CheckSubtree(tree, node->left.get());
  CheckSubtree(tree, node->right.get());
}

TEST(KdTreeBuildTest, InvariantsHoldAcrossWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto data = GenerateClustered(
        {.n = 900, .dims = 5, .clusters = 4, .sigma = 0.05, .seed = seed});
    ASSERT_TRUE(data.ok());
    auto tree = KdTree::Build(*data, Config(8));
    ASSERT_TRUE(tree.ok());
    CheckSubtree(*tree, tree->root());
    EXPECT_EQ(tree->ComputeStats().total_points, 900u);
  }
}

TEST(KdTreeBuildTest, AllDuplicatePointsStayOneLeaf) {
  Dataset ds;
  for (int i = 0; i < 200; ++i) ds.Append(std::vector<float>{0.5f, 0.5f});
  auto tree = KdTree::Build(ds, Config(8));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
  EXPECT_EQ(tree->root()->points.size(), 200u);
}

TEST(KdTreeRangeQueryTest, MatchesLinearScan) {
  auto data = GenerateClustered(
      {.n = 700, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto tree = KdTree::Build(*data, Config(16));
  ASSERT_TRUE(tree.ok());
  for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    DistanceKernel kernel(metric);
    for (PointId q = 0; q < 15; ++q) {
      std::vector<PointId> got;
      ASSERT_TRUE(tree->RangeQuery(data->Row(q), 0.1, metric, &got).ok());
      std::vector<PointId> expected;
      for (size_t i = 0; i < data->size(); ++i) {
        if (kernel.WithinEpsilon(data->Row(q),
                                 data->Row(static_cast<PointId>(i)), 4, 0.1)) {
          expected.push_back(static_cast<PointId>(i));
        }
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << MetricName(metric) << " q=" << q;
    }
  }
}

class KdTreeJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, Metric>> {};

TEST_P(KdTreeJoinPropertyTest, SelfJoinMatchesOracle) {
  const auto [epsilon, leaf_size, metric] = GetParam();
  auto data = GenerateClustered(
      {.n = 700, .dims = 5, .clusters = 6, .sigma = 0.04, .seed = 5});
  ASSERT_TRUE(data.ok());
  auto tree = KdTree::Build(*data, Config(leaf_size));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(KdTreeSelfJoin(*tree, epsilon, metric, &sink).ok());
  ExpectSamePairs(OracleSelfJoin(*data, epsilon, metric), sink.Sorted(),
                  "kdtree self");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeJoinPropertyTest,
    ::testing::Combine(::testing::Values(0.04, 0.12, 0.3),
                       ::testing::Values(size_t{1}, size_t{16}, size_t{256}),
                       ::testing::Values(Metric::kL2, Metric::kLinf)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_leaf" + std::to_string(std::get<1>(info.param)) + "_" +
             MetricName(std::get<2>(info.param));
    });

TEST(KdTreeJoinTest, CrossJoinMatchesOracle) {
  auto a = GenerateUniform({.n = 400, .dims = 4, .seed = 6});
  auto b = GenerateClustered(
      {.n = 350, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 7});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = KdTree::Build(*a, Config(8));
  auto tb = KdTree::Build(*b, Config(64));
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(KdTreeJoin(*ta, *tb, 0.09, Metric::kL2, &sink).ok());
  ExpectSamePairs(OracleJoin(*a, *b, 0.09, Metric::kL2), sink.Sorted(),
                  "kdtree cross");
}

TEST(KdTreeJoinTest, InvalidArgsRejected) {
  auto a = GenerateUniform({.n = 10, .dims = 2, .seed = 8});
  auto b = GenerateUniform({.n = 10, .dims = 3, .seed = 9});
  auto ta = KdTree::Build(*a, Config());
  auto tb = KdTree::Build(*b, Config());
  ASSERT_TRUE(ta.ok() && tb.ok());
  CountingSink sink;
  EXPECT_FALSE(KdTreeJoin(*ta, *tb, 0.1, Metric::kL2, &sink).ok());
  EXPECT_FALSE(KdTreeSelfJoin(*ta, 0.0, Metric::kL2, &sink).ok());
  EXPECT_FALSE(KdTreeSelfJoin(*ta, 0.1, Metric::kL2, nullptr).ok());
  std::vector<PointId> out;
  EXPECT_FALSE(ta->RangeQuery(a->Row(0), 0.1, Metric::kL2, nullptr).ok());
}

TEST(KdTreeKnnTest, MatchesBruteForceAcrossMetricsAndK) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 4, .sigma = 0.06, .seed = 11});
  ASSERT_TRUE(data.ok());
  auto tree = KdTree::Build(*data, Config(8));
  ASSERT_TRUE(tree.ok());
  for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    DistanceKernel kernel(metric);
    for (size_t k : {1u, 5u, 20u}) {
      for (PointId q = 0; q < 10; ++q) {
        std::vector<KdTree::Neighbor> got;
        ASSERT_TRUE(tree->KnnQuery(data->Row(q), k, metric, &got).ok());
        ASSERT_EQ(got.size(), k);
        // Brute-force: sort all (distance, id) pairs.
        std::vector<std::pair<double, PointId>> all;
        for (size_t i = 0; i < data->size(); ++i) {
          all.emplace_back(kernel.Distance(data->Row(q),
                                           data->Row(static_cast<PointId>(i)),
                                           4),
                           static_cast<PointId>(i));
        }
        std::sort(all.begin(), all.end());
        for (size_t i = 0; i < k; ++i) {
          EXPECT_EQ(got[i].id, all[i].second)
              << MetricName(metric) << " k=" << k << " q=" << q << " rank " << i;
          EXPECT_DOUBLE_EQ(got[i].distance, all[i].first);
        }
      }
    }
  }
}

TEST(KdTreeKnnTest, KLargerThanDatasetReturnsAll) {
  auto data = GenerateUniform({.n = 30, .dims = 2, .seed = 12});
  auto tree = KdTree::Build(*data, Config(4));
  ASSERT_TRUE(tree.ok());
  std::vector<KdTree::Neighbor> got;
  ASSERT_TRUE(tree->KnnQuery(data->Row(0), 100, Metric::kL2, &got).ok());
  EXPECT_EQ(got.size(), 30u);
  EXPECT_EQ(got[0].id, 0u);  // the query point itself at distance 0
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].distance, got[i - 1].distance);
  }
}

TEST(KdTreeKnnTest, RejectsBadArgs) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 13});
  auto tree = KdTree::Build(*data, Config());
  ASSERT_TRUE(tree.ok());
  std::vector<KdTree::Neighbor> out;
  EXPECT_FALSE(tree->KnnQuery(data->Row(0), 0, Metric::kL2, &out).ok());
  EXPECT_FALSE(tree->KnnQuery(data->Row(0), 3, Metric::kL2, nullptr).ok());
}

TEST(KdTreeJoinTest, PruningCutsWorkOnSeparatedClusters) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 5, .clusters = 10, .sigma = 0.02, .seed = 10});
  ASSERT_TRUE(data.ok());
  auto tree = KdTree::Build(*data, Config(32));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  JoinStats stats;
  ASSERT_TRUE(KdTreeSelfJoin(*tree, 0.05, Metric::kL2, &sink, &stats).ok());
  EXPECT_GT(stats.node_pairs_pruned, 0u);
  EXPECT_LT(stats.candidate_pairs, 2000u * 1999u / 2u);
}

}  // namespace
}  // namespace simjoin
