#include "baselines/nested_loop.h"

#include <cmath>

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::MakeDataset;

TEST(NestedLoopSelfJoinTest, HandComputedPairs) {
  // 1-D points: 0.0, 0.05, 0.2, 0.21.
  const Dataset ds = MakeDataset({{0.0f}, {0.05f}, {0.2f}, {0.21f}});
  VectorSink sink;
  ASSERT_TRUE(NestedLoopSelfJoin(ds, 0.06, Metric::kL2, &sink).ok());
  const auto pairs = sink.Sorted();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (IdPair{0, 1}));
  EXPECT_EQ(pairs[1], (IdPair{2, 3}));
}

TEST(NestedLoopSelfJoinTest, InclusiveAtExactlyEpsilon) {
  // 0.25 is exactly representable in float, so the distance is exactly the
  // threshold and the <= predicate must accept the pair.
  const Dataset ds = MakeDataset({{0.0f}, {0.25f}});
  VectorSink sink;
  ASSERT_TRUE(NestedLoopSelfJoin(ds, 0.25, Metric::kL2, &sink).ok());
  EXPECT_EQ(sink.pairs().size(), 1u) << "predicate is dist <= eps";
}

TEST(NestedLoopSelfJoinTest, PairsAreCanonicalAndUnique) {
  auto data = GenerateUniform({.n = 200, .dims = 3, .seed = 1});
  VectorSink sink;
  ASSERT_TRUE(NestedLoopSelfJoin(*data, 0.2, Metric::kL2, &sink).ok());
  auto pairs = sink.Sorted();
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].first, pairs[i].second);
    if (i > 0) EXPECT_NE(pairs[i], pairs[i - 1]);
  }
}

TEST(NestedLoopSelfJoinTest, StatsCountAllPairs) {
  auto data = GenerateUniform({.n = 100, .dims = 2, .seed = 2});
  CountingSink sink;
  JoinStats stats;
  ASSERT_TRUE(NestedLoopSelfJoin(*data, 0.1, Metric::kL2, &sink, &stats).ok());
  EXPECT_EQ(stats.candidate_pairs, 100u * 99u / 2u);
  EXPECT_EQ(stats.pairs_emitted, sink.count());
}

TEST(NestedLoopSelfJoinTest, InvalidInputsRejected) {
  Dataset empty;
  CountingSink sink;
  EXPECT_FALSE(NestedLoopSelfJoin(empty, 0.1, Metric::kL2, &sink).ok());
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(NestedLoopSelfJoin(*data, 0.0, Metric::kL2, &sink).ok());
  EXPECT_FALSE(NestedLoopSelfJoin(*data, -1.0, Metric::kL2, &sink).ok());
  EXPECT_FALSE(NestedLoopSelfJoin(*data, 0.1, Metric::kL2, nullptr).ok());
}

TEST(NestedLoopJoinTest, CrossJoinCountsOrderedPairs) {
  const Dataset a = MakeDataset({{0.0f}, {0.5f}});
  const Dataset b = MakeDataset({{0.01f}, {0.49f}, {0.51f}});
  VectorSink sink;
  ASSERT_TRUE(NestedLoopJoin(a, b, 0.02, Metric::kL2, &sink).ok());
  const auto pairs = sink.Sorted();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (IdPair{0, 0}));
  EXPECT_EQ(pairs[1], (IdPair{1, 1}));
  EXPECT_EQ(pairs[2], (IdPair{1, 2}));
}

TEST(NestedLoopJoinTest, DimensionMismatchRejected) {
  const Dataset a = MakeDataset({{0.0f, 0.0f}});
  const Dataset b = MakeDataset({{0.0f}});
  CountingSink sink;
  EXPECT_FALSE(NestedLoopJoin(a, b, 0.1, Metric::kL2, &sink).ok());
}

TEST(NestedLoopJoinTest, MetricChangesResults) {
  // Distance between the points: L1 = 0.18, L2 = ~0.127, Linf = 0.09.
  const Dataset a = MakeDataset({{0.0f, 0.0f}});
  const Dataset b = MakeDataset({{0.09f, 0.09f}});
  for (const auto& [metric, expected] :
       std::vector<std::pair<Metric, uint64_t>>{
           {Metric::kL1, 0}, {Metric::kL2, 0}, {Metric::kLinf, 1}}) {
    CountingSink sink;
    ASSERT_TRUE(NestedLoopJoin(a, b, 0.1, metric, &sink).ok());
    EXPECT_EQ(sink.count(), expected) << MetricName(metric);
  }
}

}  // namespace
}  // namespace simjoin
