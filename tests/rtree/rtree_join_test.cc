#include "rtree/rtree_join.h"

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleJoin;
using testing_util::OracleSelfJoin;

RTreeConfig Config(size_t max_entries = 16, size_t min_entries = 4) {
  RTreeConfig config;
  config.max_entries = max_entries;
  config.min_entries = min_entries;
  return config;
}

struct RTreeJoinCase {
  double epsilon;
  Metric metric;
  size_t max_entries;
  bool insertion_built;
};

class RTreeSelfJoinPropertyTest
    : public ::testing::TestWithParam<RTreeJoinCase> {};

TEST_P(RTreeSelfJoinPropertyTest, MatchesOracle) {
  const auto& c = GetParam();
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 31});
  ASSERT_TRUE(data.ok());
  auto tree = c.insertion_built
                  ? RTree::BuildByInsertion(*data, Config(c.max_entries,
                                                          c.max_entries / 4))
                  : RTree::BulkLoad(*data, Config(c.max_entries,
                                                  c.max_entries / 4));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(RTreeSelfJoin(*tree, c.epsilon, &sink, c.metric).ok());
  ExpectSamePairs(OracleSelfJoin(*data, c.epsilon, c.metric), sink.Sorted(),
                  "rtree self");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeSelfJoinPropertyTest,
    ::testing::Values(RTreeJoinCase{0.05, Metric::kL2, 16, false},
                      RTreeJoinCase{0.15, Metric::kL2, 16, false},
                      RTreeJoinCase{0.1, Metric::kL1, 8, false},
                      RTreeJoinCase{0.1, Metric::kLinf, 32, false},
                      RTreeJoinCase{0.08, Metric::kL2, 8, true},
                      RTreeJoinCase{0.2, Metric::kLinf, 16, true}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::string(c.insertion_built ? "ins" : "str") + "_eps" +
             std::to_string(static_cast<int>(c.epsilon * 1000)) + "_" +
             MetricName(c.metric) + "_cap" + std::to_string(c.max_entries);
    });

TEST(RTreeJoinTest, CrossJoinMatchesOracle) {
  auto a = GenerateClustered(
      {.n = 400, .dims = 5, .clusters = 4, .sigma = 0.04, .seed = 32});
  auto b = GenerateUniform({.n = 300, .dims = 5, .seed = 33});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = RTree::BulkLoad(*a, Config());
  auto tb = RTree::BulkLoad(*b, Config(8, 2));  // different fanouts / heights
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(RTreeJoin(*ta, *tb, 0.1, &sink, Metric::kL2).ok());
  ExpectSamePairs(OracleJoin(*a, *b, 0.1, Metric::kL2), sink.Sorted(),
                  "rtree cross");
}

TEST(RTreeJoinTest, MixedConstructionCrossJoin) {
  auto a = GenerateUniform({.n = 350, .dims = 3, .seed = 34});
  auto b = GenerateUniform({.n = 200, .dims = 3, .seed = 35});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = RTree::BulkLoad(*a, Config());
  auto tb = RTree::BuildByInsertion(*b, Config(8, 3));
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(RTreeJoin(*ta, *tb, 0.12, &sink, Metric::kL2).ok());
  ExpectSamePairs(OracleJoin(*a, *b, 0.12, Metric::kL2), sink.Sorted(),
                  "mixed construction");
}

TEST(RTreeJoinTest, InvalidArgsRejected) {
  auto a = GenerateUniform({.n = 10, .dims = 2, .seed = 36});
  auto b = GenerateUniform({.n = 10, .dims = 3, .seed = 37});
  auto ta = RTree::BulkLoad(*a, Config());
  auto tb = RTree::BulkLoad(*b, Config());
  ASSERT_TRUE(ta.ok() && tb.ok());
  CountingSink sink;
  EXPECT_FALSE(RTreeJoin(*ta, *tb, 0.1, &sink).ok());  // dims mismatch
  EXPECT_FALSE(RTreeSelfJoin(*ta, 0.0, &sink).ok());
  EXPECT_FALSE(RTreeSelfJoin(*ta, 0.1, nullptr).ok());
}

TEST(RTreeJoinTest, PruningActuallyCutsWork) {
  auto data = GenerateClustered(
      {.n = 2000, .dims = 6, .clusters = 10, .sigma = 0.02, .seed = 38});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BulkLoad(*data, Config(32, 8));
  ASSERT_TRUE(tree.ok());
  CountingSink sink;
  JoinStats stats;
  ASSERT_TRUE(RTreeSelfJoin(*tree, 0.05, &sink, Metric::kL2, &stats).ok());
  EXPECT_GT(stats.node_pairs_pruned, 0u);
  EXPECT_LT(stats.candidate_pairs, 2000u * 1999u / 2u)
      << "join should not degenerate to all-pairs";
}

}  // namespace
}  // namespace simjoin
