#include "rtree/rtree.h"

#include <algorithm>

#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::MakeDataset;

RTreeConfig SmallConfig(size_t max_entries = 8, size_t min_entries = 3) {
  RTreeConfig config;
  config.max_entries = max_entries;
  config.min_entries = min_entries;
  return config;
}

TEST(RTreeConfigTest, Validation) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  EXPECT_FALSE(SmallConfig(1, 1).Validate().ok());
  EXPECT_FALSE(SmallConfig(8, 0).Validate().ok());
  EXPECT_FALSE(SmallConfig(8, 5).Validate().ok());  // min > max/2
}

TEST(RTreeBulkLoadTest, RejectsEmptyDataset) {
  Dataset empty;
  EXPECT_FALSE(RTree::BulkLoad(empty, SmallConfig()).ok());
}

TEST(RTreeBulkLoadTest, SmallDatasetSingleLeaf) {
  const Dataset ds = MakeDataset({{0.1f, 0.1f}, {0.9f, 0.9f}});
  auto tree = RTree::BulkLoad(ds, SmallConfig());
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root()->is_leaf());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeBulkLoadTest, InvariantsHoldAcrossSizesAndDims) {
  for (size_t n : {10u, 100u, 777u, 3000u}) {
    for (size_t dims : {2u, 5u, 12u}) {
      auto data = GenerateUniform({.n = n, .dims = dims, .seed = n + dims});
      ASSERT_TRUE(data.ok());
      auto tree = RTree::BulkLoad(*data, SmallConfig(16, 4));
      ASSERT_TRUE(tree.ok());
      const Status st = tree->CheckInvariants();
      EXPECT_TRUE(st.ok()) << "n=" << n << " dims=" << dims << ": "
                           << st.ToString();
      const auto stats = tree->ComputeStats();
      EXPECT_EQ(stats.total_points, n);
      EXPECT_GT(stats.avg_leaf_fill, 0.2);
    }
  }
}

TEST(RTreeBulkLoadTest, StrPackingYieldsHighLeafFill) {
  auto data = GenerateUniform({.n = 5000, .dims = 4, .seed = 1});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BulkLoad(*data, SmallConfig(32, 8));
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->ComputeStats().avg_leaf_fill, 0.8)
      << "STR should pack leaves nearly full";
}

TEST(RTreeInsertionTest, InvariantsHoldAfterEveryGrowthPhase) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 3, .clusters = 4, .sigma = 0.05, .seed = 2});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BuildByInsertion(*data, SmallConfig(8, 3));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 600u);
  EXPECT_GT(tree->ComputeStats().height, 1u);
}

TEST(RTreeInsertionTest, RejectsOutOfRangeId) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 3});
  auto tree = RTree::BuildByInsertion(*data, SmallConfig());
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->Insert(static_cast<PointId>(99)).ok());
}

TEST(RTreeInsertionTest, DuplicatePointsSplitWithoutInfiniteLoop) {
  Dataset ds;
  for (int i = 0; i < 200; ++i) ds.Append(std::vector<float>{0.5f, 0.5f});
  auto tree = RTree::BuildByInsertion(ds, SmallConfig(4, 2));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 200u);
}

TEST(RTreeRangeQueryTest, MatchesLinearScan) {
  auto data = GenerateClustered(
      {.n = 800, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BulkLoad(*data, SmallConfig(16, 4));
  ASSERT_TRUE(tree.ok());
  DistanceKernel kernel(Metric::kL2);
  for (PointId q = 0; q < 20; ++q) {
    const float* query = data->Row(q);
    std::vector<PointId> got;
    ASSERT_TRUE(tree->RangeQuery(query, 0.1, Metric::kL2, &got).ok());
    std::vector<PointId> expected;
    for (size_t i = 0; i < data->size(); ++i) {
      if (kernel.WithinEpsilon(query, data->Row(static_cast<PointId>(i)), 4,
                               0.1)) {
        expected.push_back(static_cast<PointId>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(RTreeRangeQueryTest, WorksOnInsertionBuiltTree) {
  auto data = GenerateUniform({.n = 400, .dims = 3, .seed = 5});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BuildByInsertion(*data, SmallConfig(8, 3));
  ASSERT_TRUE(tree.ok());
  DistanceKernel kernel(Metric::kLinf);
  const float* query = data->Row(7);
  std::vector<PointId> got;
  ASSERT_TRUE(tree->RangeQuery(query, 0.15, Metric::kLinf, &got).ok());
  uint64_t expected = 0;
  for (size_t i = 0; i < data->size(); ++i) {
    expected += kernel.WithinEpsilon(query, data->Row(static_cast<PointId>(i)),
                                     3, 0.15);
  }
  EXPECT_EQ(got.size(), expected);
}

TEST(RTreeRangeQueryTest, InvalidArgsRejected) {
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 6});
  auto tree = RTree::BulkLoad(*data, SmallConfig());
  ASSERT_TRUE(tree.ok());
  std::vector<PointId> out;
  EXPECT_FALSE(tree->RangeQuery(data->Row(0), 0.0, Metric::kL2, &out).ok());
  EXPECT_FALSE(tree->RangeQuery(data->Row(0), 0.1, Metric::kL2, nullptr).ok());
}

TEST(RTreeKnnTest, MatchesBruteForceAcrossConstructionsAndMetrics) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 4, .clusters = 4, .sigma = 0.06, .seed = 30});
  ASSERT_TRUE(data.ok());
  auto bulk = RTree::BulkLoad(*data, SmallConfig(16, 4));
  auto inserted = RTree::BuildByInsertion(*data, SmallConfig(8, 3));
  ASSERT_TRUE(bulk.ok() && inserted.ok());
  for (const RTree* tree : {&*bulk, &*inserted}) {
    for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
      DistanceKernel kernel(metric);
      for (PointId q = 0; q < 8; ++q) {
        std::vector<RTree::Neighbor> got;
        ASSERT_TRUE(tree->KnnQuery(data->Row(q), 7, metric, &got).ok());
        ASSERT_EQ(got.size(), 7u);
        std::vector<std::pair<double, PointId>> all;
        for (size_t i = 0; i < data->size(); ++i) {
          all.emplace_back(kernel.Distance(data->Row(q),
                                           data->Row(static_cast<PointId>(i)),
                                           4),
                           static_cast<PointId>(i));
        }
        std::sort(all.begin(), all.end());
        for (size_t i = 0; i < 7; ++i) {
          EXPECT_EQ(got[i].id, all[i].second)
              << MetricName(metric) << " q=" << q << " rank " << i;
        }
      }
    }
  }
}

TEST(RTreeKnnTest, RejectsBadArgsAndHandlesSmallTrees) {
  auto data = GenerateUniform({.n = 5, .dims = 2, .seed = 31});
  auto tree = RTree::BulkLoad(*data, SmallConfig());
  ASSERT_TRUE(tree.ok());
  std::vector<RTree::Neighbor> out;
  EXPECT_FALSE(tree->KnnQuery(data->Row(0), 0, Metric::kL2, &out).ok());
  EXPECT_FALSE(tree->KnnQuery(data->Row(0), 3, Metric::kL2, nullptr).ok());
  ASSERT_TRUE(tree->KnnQuery(data->Row(0), 100, Metric::kL2, &out).ok());
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[0].distance, 0.0);
}

TEST(RTreeRemoveTest, RemovedPointsDisappearFromQueries) {
  auto data = GenerateClustered(
      {.n = 500, .dims = 3, .clusters = 4, .sigma = 0.05, .seed = 20});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BuildByInsertion(*data, SmallConfig(8, 3));
  ASSERT_TRUE(tree.ok());
  for (PointId id = 0; id < 250; ++id) {
    ASSERT_TRUE(tree->Remove(id).ok()) << "id " << id;
    const Status st = tree->CheckInvariants();
    ASSERT_TRUE(st.ok()) << "after removing " << id << ": " << st.ToString();
  }
  EXPECT_EQ(tree->ComputeStats().total_points, 250u);
  // A wide range query sees exactly the survivors.
  std::vector<PointId> hits;
  const float centre[] = {0.5f, 0.5f, 0.5f};
  ASSERT_TRUE(tree->RangeQuery(centre, 0.95, Metric::kLinf, &hits).ok());
  for (PointId h : hits) EXPECT_GE(h, 250u);
  EXPECT_EQ(hits.size(), 250u);
}

TEST(RTreeRemoveTest, RemoveFromBulkLoadedTree) {
  auto data = GenerateUniform({.n = 300, .dims = 4, .seed = 21});
  auto tree = RTree::BulkLoad(*data, SmallConfig(16, 4));
  ASSERT_TRUE(tree.ok());
  for (PointId id = 0; id < 100; ++id) {
    ASSERT_TRUE(tree->Remove(id).ok());
  }
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 200u);
}

TEST(RTreeRemoveTest, RemoveAllThenReinsert) {
  auto data = GenerateUniform({.n = 60, .dims = 2, .seed = 22});
  auto tree = RTree::BuildByInsertion(*data, SmallConfig(4, 2));
  ASSERT_TRUE(tree.ok());
  for (PointId id = 0; id < 60; ++id) ASSERT_TRUE(tree->Remove(id).ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 0u);
  for (PointId id = 0; id < 60; ++id) ASSERT_TRUE(tree->Insert(id).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 60u);
}

TEST(RTreeRemoveTest, ErrorsOnMissingAndOutOfRange) {
  auto data = GenerateUniform({.n = 20, .dims = 2, .seed = 23});
  auto tree = RTree::BulkLoad(*data, SmallConfig());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Remove(static_cast<PointId>(99)).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(tree->Remove(7).ok());
  EXPECT_EQ(tree->Remove(7).code(), StatusCode::kNotFound);
}

TEST(RTreeStatsTest, MemoryAndHeightGrowWithData) {
  auto small_data = GenerateUniform({.n = 100, .dims = 3, .seed = 7});
  auto big_data = GenerateUniform({.n = 10000, .dims = 3, .seed = 7});
  auto small_tree = RTree::BulkLoad(*small_data, SmallConfig(16, 4));
  auto big_tree = RTree::BulkLoad(*big_data, SmallConfig(16, 4));
  ASSERT_TRUE(small_tree.ok() && big_tree.ok());
  EXPECT_GT(big_tree->ComputeStats().memory_bytes,
            small_tree->ComputeStats().memory_bytes);
  EXPECT_GT(big_tree->ComputeStats().height,
            small_tree->ComputeStats().height);
}

}  // namespace
}  // namespace simjoin
