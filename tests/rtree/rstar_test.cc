// Tests for the R*-style split/choose-subtree insertion variant.

#include "rtree/rtree.h"
#include "rtree/rtree_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

RTreeConfig RStarConfig(size_t max_entries = 16) {
  RTreeConfig config;
  config.max_entries = max_entries;
  config.min_entries = max_entries / 4;
  config.split = RTreeSplitAlgorithm::kRStar;
  return config;
}

TEST(RStarTest, InvariantsHoldAfterInsertionBuild) {
  for (size_t dims : {2u, 4u, 9u}) {
    auto data = GenerateClustered({.n = 800, .dims = dims, .clusters = 5,
                                   .sigma = 0.05, .seed = 41 + dims});
    ASSERT_TRUE(data.ok());
    auto tree = RTree::BuildByInsertion(*data, RStarConfig());
    ASSERT_TRUE(tree.ok());
    const Status st = tree->CheckInvariants();
    EXPECT_TRUE(st.ok()) << "dims=" << dims << ": " << st.ToString();
    EXPECT_EQ(tree->ComputeStats().total_points, 800u);
  }
}

TEST(RStarTest, JoinsAndQueriesStayExact) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 4, .clusters = 6, .sigma = 0.05, .seed = 42});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BuildByInsertion(*data, RStarConfig(8));
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(RTreeSelfJoin(*tree, 0.08, &sink, Metric::kL2).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.08, Metric::kL2), sink.Sorted(),
                  "rstar join");

  DistanceKernel kernel(Metric::kL2);
  std::vector<PointId> hits;
  ASSERT_TRUE(tree->RangeQuery(data->Row(3), 0.1, Metric::kL2, &hits).ok());
  size_t expected = 0;
  for (size_t i = 0; i < data->size(); ++i) {
    expected += kernel.WithinEpsilon(data->Row(3),
                                     data->Row(static_cast<PointId>(i)), 4, 0.1);
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(RStarTest, DuplicatePointsStillSplit) {
  Dataset ds;
  for (int i = 0; i < 150; ++i) ds.Append(std::vector<float>{0.4f, 0.6f});
  auto tree = RTree::BuildByInsertion(ds, RStarConfig(4));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 150u);
}

// Aggregate leaf-MBR overlap volume of a tree; the quality metric R* aims
// to improve over the quadratic split.
double TotalLeafOverlap(const RTreeNode* node, std::vector<const RTreeNode*>* leaves) {
  if (node->is_leaf()) {
    leaves->push_back(node);
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& child : node->children) {
    acc += TotalLeafOverlap(child.get(), leaves);
  }
  return acc;
}

TEST(RStarTest, ProducesNoMoreLeafOverlapThanQuadraticOnClusteredData) {
  auto data = GenerateClustered(
      {.n = 2500, .dims = 3, .clusters = 8, .sigma = 0.06, .seed = 43});
  ASSERT_TRUE(data.ok());
  auto measure = [&](RTreeSplitAlgorithm split) {
    RTreeConfig config;
    config.max_entries = 16;
    config.min_entries = 4;
    config.split = split;
    auto tree = RTree::BuildByInsertion(*data, config);
    EXPECT_TRUE(tree.ok());
    std::vector<const RTreeNode*> leaves;
    TotalLeafOverlap(tree->root(), &leaves);
    double overlap = 0.0;
    for (size_t i = 0; i < leaves.size(); ++i) {
      for (size_t j = i + 1; j < leaves.size(); ++j) {
        overlap += leaves[i]->mbr.OverlapVolume(leaves[j]->mbr);
      }
    }
    return overlap;
  };
  const double quadratic = measure(RTreeSplitAlgorithm::kQuadratic);
  const double rstar = measure(RTreeSplitAlgorithm::kRStar);
  // R* should not be (much) worse; on clustered data it is typically far
  // better.  Allow 10% slack to keep the test robust.
  EXPECT_LE(rstar, quadratic * 1.1)
      << "rstar overlap " << rstar << " vs quadratic " << quadratic;
}

RTreeConfig ReinsertConfig(size_t max_entries = 16) {
  RTreeConfig config = RStarConfig(max_entries);
  config.forced_reinsert = true;
  return config;
}

TEST(RStarForcedReinsertTest, InvariantsAndJoinsStayExact) {
  auto data = GenerateClustered(
      {.n = 700, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 50});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BuildByInsertion(*data, ReinsertConfig(8));
  ASSERT_TRUE(tree.ok());
  const Status st = tree->CheckInvariants();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(tree->ComputeStats().total_points, 700u);
  VectorSink sink;
  ASSERT_TRUE(RTreeSelfJoin(*tree, 0.08, &sink, Metric::kL2).ok());
  ExpectSamePairs(OracleSelfJoin(*data, 0.08, Metric::kL2), sink.Sorted(),
                  "forced reinsert join");
}

TEST(RStarForcedReinsertTest, DuplicateHeavyDataTerminates) {
  Dataset ds;
  for (int i = 0; i < 200; ++i) ds.Append(std::vector<float>{0.5f, 0.5f});
  auto tree = RTree::BuildByInsertion(ds, ReinsertConfig(4));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 200u);
}

TEST(RStarForcedReinsertTest, RemoveStillWorksAfterReinsertBuild) {
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 51});
  auto tree = RTree::BuildByInsertion(*data, ReinsertConfig(8));
  ASSERT_TRUE(tree.ok());
  for (PointId id = 0; id < 150; ++id) ASSERT_TRUE(tree->Remove(id).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->ComputeStats().total_points, 150u);
}

TEST(RStarForcedReinsertTest, ConfigValidation) {
  RTreeConfig config = ReinsertConfig();
  config.reinsert_fraction = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.reinsert_fraction = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.reinsert_fraction = 0.3;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(RStarTest, CrossJoinAgainstStrTreeIsExact) {
  auto a = GenerateUniform({.n = 400, .dims = 3, .seed = 44});
  auto b = GenerateClustered(
      {.n = 300, .dims = 3, .clusters = 3, .sigma = 0.05, .seed = 45});
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = RTree::BuildByInsertion(*a, RStarConfig(8));
  auto tb = RTree::BulkLoad(*b, RTreeConfig{});
  ASSERT_TRUE(ta.ok() && tb.ok());
  VectorSink sink;
  ASSERT_TRUE(RTreeJoin(*ta, *tb, 0.1, &sink, Metric::kL2).ok());
  ExpectSamePairs(testing_util::OracleJoin(*a, *b, 0.1, Metric::kL2),
                  sink.Sorted(), "rstar cross");
}

}  // namespace
}  // namespace simjoin
