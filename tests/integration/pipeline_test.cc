// End-to-end application pipelines: the motivating workloads of the paper
// run through the full public API (generate -> featurise -> normalise ->
// index -> join -> interpret results).

#include <algorithm>
#include <cstdio>
#include <set>

#include "baselines/nested_loop.h"
#include "common/csv.h"
#include "common/rng.h"
#include "core/ekdb_join.h"
#include "rtree/rtree_join.h"
#include "workload/generators.h"
#include "workload/image_features.h"
#include "workload/timeseries.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;
using testing_util::OracleSelfJoin;

TEST(TimeSeriesPipelineTest, JoinPrefersSameGroupPairs) {
  // Strongly co-moving groups: the feature-space self-join should recover
  // far more same-group pairs than cross-group pairs.
  const size_t groups = 5;
  auto family = GenerateSeriesFamily({.num_series = 60, .length = 256,
                                      .groups = groups, .group_weight = 0.9,
                                      .volatility = 0.02, .seed = 1});
  ASSERT_TRUE(family.ok());
  auto features = SeriesToFeatureDataset(*family, 6);
  ASSERT_TRUE(features.ok());
  features->NormalizeToUnitCube();

  EkdbConfig config;
  config.epsilon = 0.12;
  config.leaf_threshold = 8;
  auto tree = EkdbTree::Build(*features, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());

  ASSERT_GT(sink.pairs().size(), 0u);
  uint64_t same_group = 0, cross_group = 0;
  for (const auto& [a, b] : sink.pairs()) {
    (a % groups == b % groups ? same_group : cross_group) += 1;
  }
  EXPECT_GT(same_group, 3 * cross_group)
      << "same=" << same_group << " cross=" << cross_group;
  // And the tree result is exact with respect to brute force in feature space.
  ExpectSamePairs(OracleSelfJoin(*features, 0.12, Metric::kL2), sink.Sorted(),
                  "ts features");
}

TEST(ImageDedupPipelineTest, PlantedDuplicatesAreRecovered) {
  const size_t originals = 300, dups = 25;
  auto archive = GenerateImageArchive({.num_images = originals, .bins = 24,
                                       .prototypes = 8, .concentration = 70,
                                       .near_duplicates = dups,
                                       .duplicate_noise = 0.01, .seed = 2});
  ASSERT_TRUE(archive.ok());
  Dataset data = archive->histograms;
  data.NormalizeToUnitCube();

  EkdbConfig config;
  config.epsilon = 0.05;
  config.metric = Metric::kL2;
  config.leaf_threshold = 16;
  auto tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());

  // Every planted (source, duplicate) pair must be in the result set.
  std::set<IdPair> found(sink.pairs().begin(), sink.pairs().end());
  size_t recovered = 0;
  for (size_t d = 0; d < dups; ++d) {
    const PointId dup = static_cast<PointId>(originals + d);
    const PointId src = archive->duplicate_of[d];
    const IdPair key{std::min(src, dup), std::max(src, dup)};
    recovered += found.count(key);
  }
  EXPECT_GE(recovered, dups - 2)
      << "nearly all planted duplicates must be joined";
}

TEST(CsvRoundTripPipelineTest, JoinResultsSurviveSerialisation) {
  auto data = GenerateClustered(
      {.n = 250, .dims = 4, .clusters = 4, .sigma = 0.04, .seed = 3});
  ASSERT_TRUE(data.ok());
  const std::string path = ::testing::TempDir() + "/pipeline_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(*data, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  EkdbConfig config;
  config.epsilon = 0.08;
  auto t1 = EkdbTree::Build(*data, config);
  auto t2 = EkdbTree::Build(*loaded, config);
  ASSERT_TRUE(t1.ok() && t2.ok());
  VectorSink s1, s2;
  ASSERT_TRUE(EkdbSelfJoin(*t1, &s1).ok());
  ASSERT_TRUE(EkdbSelfJoin(*t2, &s2).ok());
  ExpectSamePairs(s1.Sorted(), s2.Sorted(), "csv roundtrip");
}

TEST(RangeQueryVsJoinConsistencyTest, PerPointQueriesReproduceJoin) {
  // Running an epsilon range query per point over the R-tree must produce
  // the same pair set as the self-join (the query-vs-join duality).
  auto data = GenerateUniform({.n = 300, .dims = 3, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto tree = RTree::BulkLoad(*data, RTreeConfig{});
  ASSERT_TRUE(tree.ok());

  std::vector<IdPair> via_queries;
  for (size_t i = 0; i < data->size(); ++i) {
    std::vector<PointId> hits;
    ASSERT_TRUE(
        tree->RangeQuery(data->Row(static_cast<PointId>(i)), 0.1, Metric::kL2,
                         &hits)
            .ok());
    for (PointId j : hits) {
      if (j > i) via_queries.emplace_back(static_cast<PointId>(i), j);
    }
  }
  std::sort(via_queries.begin(), via_queries.end());

  VectorSink join_sink;
  ASSERT_TRUE(RTreeSelfJoin(*tree, 0.1, &join_sink, Metric::kL2).ok());
  ExpectSamePairs(join_sink.Sorted(), via_queries, "query/join duality");
}

TEST(NormalizationPipelineTest, EpsilonScalesWithNormalization) {
  // Joining raw data at radius eps is equivalent to joining normalised data
  // at eps / span when all columns share one span (here [0, 10]).
  Dataset raw;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    raw.Append(std::vector<float>{static_cast<float>(rng.Uniform(0, 10)),
                                  static_cast<float>(rng.Uniform(0, 10))});
  }
  // Pin the exact span so the scale factor is exactly 10.
  raw.MutableRow(0)[0] = 0.0f;
  raw.MutableRow(0)[1] = 0.0f;
  raw.MutableRow(1)[0] = 10.0f;
  raw.MutableRow(1)[1] = 10.0f;

  const auto raw_pairs = OracleSelfJoin(raw, 0.5, Metric::kL2);

  Dataset normalized = raw;
  normalized.NormalizeToUnitCube();
  EkdbConfig config;
  config.epsilon = 0.05;
  auto tree = EkdbTree::Build(normalized, config);
  ASSERT_TRUE(tree.ok());
  VectorSink sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
  ExpectSamePairs(raw_pairs, sink.Sorted(), "normalization scaling");
}

}  // namespace
}  // namespace simjoin
