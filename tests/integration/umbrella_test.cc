// Compilation/linkage test of the umbrella header: one translation unit
// includes simjoin.h and touches a symbol from every module.

#include "simjoin.h"

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(UmbrellaHeaderTest, EveryModuleIsReachable) {
  // common
  Rng rng(1);
  Dataset data = *GenerateClustered(
      {.n = 300, .dims = 4, .clusters = 3, .sigma = 0.05, .seed = rng.Next()});
  EXPECT_TRUE(data.AllWithin(0.0f, 1.0f));
  BoundingBox box = BoundingBox::FromPoint(data.Row(0), data.dims());
  EXPECT_FALSE(box.IsEmpty());
  RunningStats stats_acc;
  stats_acc.Add(1.0);
  UnionFind uf(4);
  uf.Union(0, 1);
  EXPECT_EQ(uf.NumComponents(), 3u);
  EXPECT_FALSE(FormatSeconds(0.5).empty());

  // core: tree + join + range query + selectivity + components + dbscan.
  EkdbConfig config;
  config.epsilon = 0.1;
  auto tree = EkdbTree::Build(data, config);
  ASSERT_TRUE(tree.ok());
  CountingSink count_sink;
  ASSERT_TRUE(EkdbSelfJoin(*tree, &count_sink).ok());
  ASSERT_TRUE(EstimatePairsByPointSampling(*tree, 10, 1).ok());
  ASSERT_TRUE(EpsilonConnectedComponents(data, 0.1, Metric::kL2).ok());
  ASSERT_TRUE(Dbscan(data, {.epsilon = 0.1, .min_pts = 3}).ok());
  ASSERT_TRUE(TopKClosestPairs(data, 3, Metric::kL2).ok());
  ASSERT_TRUE(PlanSelfJoin(data, 0.1, Metric::kL2).ok());

  // baselines + rtree + approx.
  CountingSink nested;
  ASSERT_TRUE(NestedLoopSelfJoin(data, 0.1, Metric::kL2, &nested).ok());
  EXPECT_EQ(nested.count(), count_sink.count());
  auto kd = KdTree::Build(data, KdTreeConfig{});
  ASSERT_TRUE(kd.ok());
  auto rt = RTree::BulkLoad(data, RTreeConfig{});
  ASSERT_TRUE(rt.ok());
  CountingSink lsh_sink;
  ASSERT_TRUE(
      LshApproximateSelfJoin(data, 0.1, LshConfig{}, &lsh_sink).ok());
  EXPECT_LE(lsh_sink.count(), nested.count());

  // workload extras.
  ASSERT_TRUE(ProfileDataset(data, 16, 1).ok());
  ASSERT_TRUE(RealDft({1.0, 2.0, 3.0}).ok());
}

}  // namespace
}  // namespace simjoin
