// Cross-algorithm equivalence: every join implementation in the library must
// produce exactly the same pair set on the same inputs.  This is the
// library's strongest end-to-end property test: randomised workloads sweep
// generators, sizes, dimensionalities, epsilons, and metrics, and the five
// implementations (brute force, sort-merge, grid, R-tree, eps-k-d-B tree,
// plus the parallel driver) are compared pairwise via the brute-force
// oracle.

#include <string>

#include "baselines/grid_join.h"
#include "baselines/nested_loop.h"
#include "baselines/sort_merge.h"
#include "core/ekdb_join.h"
#include "core/parallel_join.h"
#include "common/rng.h"
#include "rtree/rtree_join.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::ExpectSamePairs;

struct FuzzCase {
  uint64_t seed;
};

Dataset RandomWorkload(Rng* rng) {
  const size_t n = 100 + rng->UniformInt(900u);
  const size_t dims = 1 + rng->UniformInt(10u);
  switch (rng->UniformInt(4u)) {
    case 0:
      return *GenerateUniform({.n = n, .dims = dims, .seed = rng->Next()});
    case 1:
      return *GenerateClustered({.n = n,
                                 .dims = dims,
                                 .clusters = 1 + rng->UniformInt(8u),
                                 .sigma = rng->Uniform(0.005, 0.1),
                                 .zipf_skew = rng->Uniform(0.0, 1.5),
                                 .noise_fraction = rng->Uniform(0.0, 0.3),
                                 .seed = rng->Next()});
    case 2:
      return *GenerateGridPerturbed({.n = n,
                                     .dims = dims,
                                     .cell = rng->Uniform(0.1, 0.5),
                                     .perturbation = rng->Uniform(0.0, 0.05),
                                     .seed = rng->Next()});
    default:
      return *GenerateCorrelated(
          {.n = n,
           .dims = dims,
           .intrinsic_dims = 1 + rng->UniformInt(std::min<uint64_t>(dims, 3)),
           .noise = rng->Uniform(0.0, 0.05),
           .seed = rng->Next()});
  }
}

class JoinEquivalenceFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(JoinEquivalenceFuzzTest, AllSelfJoinAlgorithmsAgree) {
  Rng rng(GetParam().seed);
  const Dataset data = RandomWorkload(&rng);
  const double epsilon = rng.Uniform(0.02, 0.4);
  const Metric metric = static_cast<Metric>(rng.UniformInt(3u));

  VectorSink oracle;
  ASSERT_TRUE(NestedLoopSelfJoin(data, epsilon, metric, &oracle).ok());
  const auto expected = oracle.Sorted();

  {
    VectorSink sink;
    ASSERT_TRUE(SortMergeSelfJoin(data, epsilon, metric, SortMergeConfig{},
                                  &sink)
                    .ok());
    ExpectSamePairs(expected, sink.Sorted(), "sort-merge");
  }
  {
    VectorSink sink;
    ASSERT_TRUE(GridSelfJoin(data, epsilon, metric, GridJoinConfig{}, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "grid");
  }
  {
    RTreeConfig config;
    config.max_entries = static_cast<size_t>(4 + rng.UniformInt(60u));
    config.min_entries = std::max<size_t>(1, config.max_entries / 4);
    auto tree = RTree::BulkLoad(data, config);
    ASSERT_TRUE(tree.ok());
    VectorSink sink;
    ASSERT_TRUE(RTreeSelfJoin(*tree, epsilon, &sink, metric).ok());
    ExpectSamePairs(expected, sink.Sorted(), "rtree");
  }
  {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.metric = metric;
    config.leaf_threshold = static_cast<size_t>(1 + rng.UniformInt(128u));
    auto tree = EkdbTree::Build(data, config);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    VectorSink sink;
    ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "ekdb");

    ParallelJoinConfig pcfg;
    pcfg.num_threads = 1 + rng.UniformInt(4u);
    pcfg.min_task_points = 1 + rng.UniformInt(500u);
    VectorSink psink;
    ASSERT_TRUE(ParallelEkdbSelfJoin(*tree, pcfg, &psink).ok());
    ExpectSamePairs(expected, psink.Sorted(), "ekdb parallel");
  }
  {
    // Radius-override joins: build a tree for a larger radius, query at the
    // fuzzed epsilon; result must still match the oracle exactly.
    EkdbConfig config;
    config.epsilon = std::min(0.9, epsilon * rng.Uniform(1.0, 3.0));
    config.metric = metric;
    config.leaf_threshold = static_cast<size_t>(1 + rng.UniformInt(64u));
    auto tree = EkdbTree::Build(data, config);
    ASSERT_TRUE(tree.ok());
    VectorSink sink;
    ASSERT_TRUE(EkdbSelfJoinWithEpsilon(*tree, epsilon, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "ekdb epsilon override");
  }
  {
    // Dynamic maintenance: rebuild the tree by inserting every point into a
    // seed tree, then join; must match the oracle.
    Dataset copy = data;
    EkdbConfig config;
    config.epsilon = epsilon;
    config.metric = metric;
    config.leaf_threshold = static_cast<size_t>(1 + rng.UniformInt(64u));
    // Build over the first point only, then insert the rest.
    Dataset seed_data;
    seed_data.Append(copy.RowSpan(0));
    // Trees index a dataset by reference, so grow a dataset in place.
    Dataset growing;
    growing.Append(copy.RowSpan(0));
    auto tree = EkdbTree::Build(growing, config);
    ASSERT_TRUE(tree.ok());
    for (size_t i = 1; i < copy.size(); ++i) {
      growing.Append(copy.RowSpan(static_cast<PointId>(i)));
      ASSERT_TRUE(tree->Insert(static_cast<PointId>(i)).ok());
    }
    VectorSink sink;
    ASSERT_TRUE(EkdbSelfJoin(*tree, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "ekdb insert-built");
  }
}

TEST_P(JoinEquivalenceFuzzTest, AllCrossJoinAlgorithmsAgree) {
  Rng rng(GetParam().seed ^ 0xabcdef);
  Dataset a = RandomWorkload(&rng);
  // Build b with the same dimensionality.
  Dataset b = *GenerateClustered({.n = 150 + rng.UniformInt(500u),
                                  .dims = a.dims(),
                                  .clusters = 1 + rng.UniformInt(6u),
                                  .sigma = rng.Uniform(0.01, 0.1),
                                  .seed = rng.Next()});
  const double epsilon = rng.Uniform(0.02, 0.35);
  const Metric metric = static_cast<Metric>(rng.UniformInt(3u));

  VectorSink oracle;
  ASSERT_TRUE(NestedLoopJoin(a, b, epsilon, metric, &oracle).ok());
  const auto expected = oracle.Sorted();

  {
    VectorSink sink;
    ASSERT_TRUE(
        SortMergeJoin(a, b, epsilon, metric, SortMergeConfig{}, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "sort-merge cross");
  }
  {
    VectorSink sink;
    ASSERT_TRUE(GridJoin(a, b, epsilon, metric, GridJoinConfig{}, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "grid cross");
  }
  {
    RTreeConfig config;
    auto ta = RTree::BulkLoad(a, config);
    auto tb = RTree::BulkLoad(b, config);
    ASSERT_TRUE(ta.ok() && tb.ok());
    VectorSink sink;
    ASSERT_TRUE(RTreeJoin(*ta, *tb, epsilon, &sink, metric).ok());
    ExpectSamePairs(expected, sink.Sorted(), "rtree cross");
  }
  {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.metric = metric;
    config.leaf_threshold = static_cast<size_t>(1 + rng.UniformInt(100u));
    auto ta = EkdbTree::Build(a, config);
    EkdbConfig config_b = config;
    config_b.leaf_threshold = static_cast<size_t>(1 + rng.UniformInt(100u));
    auto tb = EkdbTree::Build(b, config_b);
    ASSERT_TRUE(ta.ok() && tb.ok());
    VectorSink sink;
    ASSERT_TRUE(EkdbJoin(*ta, *tb, &sink).ok());
    ExpectSamePairs(expected, sink.Sorted(), "ekdb cross");
  }
}

std::vector<FuzzCase> MakeFuzzCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t s = 1; s <= 12; ++s) cases.push_back(FuzzCase{s * 7919});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, JoinEquivalenceFuzzTest,
                         ::testing::ValuesIn(MakeFuzzCases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace simjoin
