// Tests for the slow-query log: ring bound and eviction accounting, drain
// order, the JSONL sink (content, rotation safety, rate limit, error
// accounting), and the one-line JSON rendering.

#include "obs/slow_query_log.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace obs {
namespace {

SlowQueryEntry Entry(uint64_t request_id, uint64_t unix_micros = 1) {
  SlowQueryEntry e;
  e.unix_micros = unix_micros;  // nonzero: keep tests clock-independent
  e.trace_id = 0xabc;
  e.request_id = request_id;
  e.op = 2;
  e.index = "base";
  e.wall_us = 1500;
  return e;
}

/// Temp file path unique to the current test; removed on destruction.
class TempPath {
 public:
  TempPath() {
    path_ = testing::TempDir() + "slowlog_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(SlowLogTest, RingKeepsNewestAndCountsEvictions) {
  SlowQueryLog log({.capacity = 3});
  for (uint64_t i = 1; i <= 5; ++i) log.Record(Entry(i));
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.evicted(), 2u);
  const std::vector<SlowQueryEntry> drained = log.Drain(10);
  ASSERT_EQ(drained.size(), 3u);  // 1 and 2 were evicted
  EXPECT_EQ(drained[0].request_id, 3u);
  EXPECT_EQ(drained[1].request_id, 4u);
  EXPECT_EQ(drained[2].request_id, 5u);
}

TEST(SlowLogTest, DrainRemovesOldestFirstAndLeavesTheRest) {
  SlowQueryLog log({.capacity = 10});
  for (uint64_t i = 1; i <= 4; ++i) log.Record(Entry(i));
  const std::vector<SlowQueryEntry> first = log.Drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].request_id, 1u);
  EXPECT_EQ(first[1].request_id, 2u);
  const std::vector<SlowQueryEntry> rest = log.Drain(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].request_id, 3u);
  EXPECT_TRUE(log.Drain(10).empty());
  EXPECT_EQ(log.recorded(), 4u);  // draining is not eviction
  EXPECT_EQ(log.evicted(), 0u);
}

TEST(SlowLogTest, SinkWritesOneJsonLinePerEntry) {
  TempPath path;
  SlowQueryLog log({.capacity = 8, .jsonl_path = path.get()});
  log.Record(Entry(1));
  log.Record(Entry(2));
  const std::vector<std::string> lines = ReadLines(path.get());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"request_id\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"request_id\":2"), std::string::npos);
  EXPECT_EQ(log.sink_errors(), 0u);
  // The sink does not replace the ring.
  EXPECT_EQ(log.Drain(10).size(), 2u);
}

TEST(SlowLogTest, SinkSurvivesRotation) {
  TempPath path;
  SlowQueryLog log({.capacity = 8, .jsonl_path = path.get()});
  log.Record(Entry(1));
  ASSERT_EQ(ReadLines(path.get()).size(), 1u);
  // External logrotate moves the file away; the next entry recreates it.
  std::remove(path.get().c_str());
  log.Record(Entry(2));
  const std::vector<std::string> lines = ReadLines(path.get());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"request_id\":2"), std::string::npos);
  EXPECT_EQ(log.sink_errors(), 0u);
}

TEST(SlowLogTest, SinkRateLimitBoundsWritesPerSecondRingUnaffected) {
  TempPath path;
  SlowQueryLog log(
      {.capacity = 16, .jsonl_path = path.get(), .sink_max_per_sec = 2});
  // Five entries inside one wall-clock second: two written, three dropped.
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Record(Entry(i, /*unix_micros=*/1'000'000 + i));
  }
  EXPECT_EQ(ReadLines(path.get()).size(), 2u);
  EXPECT_EQ(log.sink_suppressed(), 3u);
  // The next second opens a fresh window.
  log.Record(Entry(6, /*unix_micros=*/2'000'001));
  EXPECT_EQ(ReadLines(path.get()).size(), 3u);
  EXPECT_EQ(log.sink_suppressed(), 3u);
  // Every entry still reached the ring.
  EXPECT_EQ(log.Drain(100).size(), 6u);
}

TEST(SlowLogTest, SinkErrorsAreCountedNotFatal) {
  SlowQueryLog log(
      {.capacity = 4, .jsonl_path = "/nonexistent-dir/slow.jsonl"});
  log.Record(Entry(1));
  EXPECT_EQ(log.sink_errors(), 1u);
  EXPECT_EQ(log.recorded(), 1u);  // the ring still got the entry
  EXPECT_EQ(log.Drain(10).size(), 1u);
}

TEST(SlowLogTest, RecordStampsWallClockWhenUnset) {
  SlowQueryLog log({.capacity = 4});
  SlowQueryEntry e;
  e.request_id = 1;  // unix_micros left 0
  log.Record(e);
  const std::vector<SlowQueryEntry> drained = log.Drain(1);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_GT(drained[0].unix_micros, 0u);
}

TEST(SlowLogTest, ToJsonLineRendersProfileAndEscapes) {
  SlowQueryEntry e = Entry(7);
  e.status_code = 4;
  e.status_message = "deadline \"exceeded\"\n";
  e.profile.plan = "backend=ekdb-flat eps=0.1";
  e.profile.nodes.push_back(
      {kProfileNoParent, "service.range_query", 0, 1000, 0});
  e.profile.nodes.push_back({0, "execute", 100, 900, 400});
  e.profile.counters.push_back({"candidates", 88});

  const std::string line = SlowQueryLog::ToJsonLine(e);
  EXPECT_NE(line.find("\"status\":\"deadline \\\"exceeded\\\"\\n\""),
            std::string::npos);
  EXPECT_NE(line.find("\"plan\":\"backend=ekdb-flat eps=0.1\""),
            std::string::npos);
  // Roots render parent -1 so consumers need no sentinel knowledge.
  EXPECT_NE(line.find("\"parent\":-1"), std::string::npos);
  EXPECT_NE(line.find("\"parent\":0"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{\"candidates\":88}"), std::string::npos);
  // Exactly one line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(SlowLogTest, OmitsEmptyOptionalBlocks) {
  const std::string line = SlowQueryLog::ToJsonLine(Entry(1));
  EXPECT_EQ(line.find("\"status\":"), std::string::npos);
  EXPECT_EQ(line.find("\"plan\""), std::string::npos);
  EXPECT_EQ(line.find("\"phases\""), std::string::npos);
  EXPECT_EQ(line.find("\"counters\""), std::string::npos);
}

TEST(SlowLogTest, ConcurrentRecordAndDrainKeepExactCounts) {
  SlowQueryLog log({.capacity = 64});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  std::atomic<uint64_t> drained{0};
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained += log.Drain(16).size();
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) log.Record(Entry(i + 1));
    });
  }
  for (int t = 1; t <= kThreads; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[0].join();
  drained += log.Drain(10'000).size();

  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(log.recorded(), total);
  // Every record either reached a drain or was evicted; none invented.
  EXPECT_EQ(drained.load() + log.evicted(), total);
}

}  // namespace
}  // namespace obs
}  // namespace simjoin
