// Tests for the Prometheus text exposition renderer: naming, type lines,
// cumulative histogram form, and general line-level parseability.

#include "obs/prometheus.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusTest, CountersGainPrefixSanitisationAndTotalSuffix) {
  MetricRegistry reg;
  reg.GetCounter("service.requests_admitted")->Add(42);
  const std::string text = RenderPrometheusText(reg.Snapshot());
  EXPECT_NE(
      text.find("# TYPE simjoin_service_requests_admitted_total counter\n"),
      std::string::npos);
  EXPECT_NE(text.find("simjoin_service_requests_admitted_total 42\n"),
            std::string::npos);
}

TEST(PrometheusTest, GaugesRenderSignedValues) {
  MetricRegistry reg;
  reg.GetGauge("pool.depth")->Set(-3);
  const std::string text = RenderPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE simjoin_pool_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("simjoin_pool_depth -3\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramsRenderCumulativeBucketsSumAndCount) {
  MetricRegistry reg;
  Histogram* h =
      reg.GetHistogram("latency.us", std::vector<double>{10, 100});
  h->Record(5);    // bucket le=10
  h->Record(50);   // bucket le=100
  h->Record(500);  // overflow
  h->Record(600);  // overflow
  const std::string text = RenderPrometheusText(reg.Snapshot());
  // Buckets are cumulative and the overflow bucket becomes le="+Inf".
  EXPECT_NE(text.find("simjoin_latency_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("simjoin_latency_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("simjoin_latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("simjoin_latency_us_sum 1155\n"), std::string::npos);
  EXPECT_NE(text.find("simjoin_latency_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE simjoin_latency_us histogram\n"),
            std::string::npos);
}

TEST(PrometheusTest, EverySampleLineIsNameSpaceValue) {
  MetricRegistry reg;
  reg.GetCounter("a.b-c")->Add(1);
  reg.GetGauge("g")->Set(2);
  reg.GetHistogram("h")->Record(3.5);
  for (const std::string& line : Lines(RenderPrometheusText(reg.Snapshot()))) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE simjoin_", 0), 0u) << line;
      continue;
    }
    // metric_name[{labels}] <space> value — exactly one space outside
    // braces, and the name uses only legal characters.
    const size_t brace = line.find('{');
    const size_t space = line.find(
        ' ', brace == std::string::npos ? 0 : line.find('}', brace));
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, std::min(space, brace));
    EXPECT_EQ(name.rfind("simjoin_", 0), 0u) << line;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      EXPECT_TRUE(ok) << "bad metric char '" << c << "' in " << line;
    }
    EXPECT_NE(line.substr(space + 1), "") << line;
  }
}

TEST(PrometheusTest, EmptySnapshotRendersEmptyBody) {
  EXPECT_EQ(RenderPrometheusText(MetricsSnapshot{}), "");
}

}  // namespace
}  // namespace obs
}  // namespace simjoin
