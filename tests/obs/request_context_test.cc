// Tests for request-scoped profiling: collector tree construction, the
// shared capture gate, TraceSpan recording under an installed context,
// propagation across ThreadPool task boundaries, and thread-safety of the
// whole path under a multi-thread span hammer with a concurrent exporter.

#include "obs/request_context.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace obs {
namespace {

/// Index of the first node with `name`, or kProfileNoParent.
uint32_t FindNode(const RequestProfile& p, const std::string& name) {
  for (uint32_t i = 0; i < p.nodes.size(); ++i) {
    if (p.nodes[i].name == name) return i;
  }
  return kProfileNoParent;
}

TEST(RequestContextTest, CollectorBuildsParentLinkedTree) {
  RequestProfileCollector c(/*trace_id=*/7, /*epoch_ns=*/1000);
  const uint32_t root = c.BeginPhase("request", kProfileNoParent, 1000);
  const uint32_t child = c.BeginPhase("execute", root, 1200);
  c.EndPhase(child, 1700, /*cpu_ns=*/300);
  c.EndPhase(root, 2000, /*cpu_ns=*/0);
  const uint32_t retro = c.AddPhase("queue", root, 1000, 200, 0);
  c.AddCounter("candidates", 5);
  c.AddCounter("candidates", 6);
  c.SetPlan("backend=test");

  const RequestProfile p = c.Finish(/*end_ns=*/2500);
  EXPECT_EQ(p.trace_id, 7u);
  EXPECT_EQ(p.total_wall_ns, 1500u);
  EXPECT_EQ(p.plan, "backend=test");
  ASSERT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.nodes[root].parent, kProfileNoParent);
  EXPECT_EQ(p.nodes[root].start_ns, 0u);  // relative to the epoch
  EXPECT_EQ(p.nodes[root].wall_ns, 1000u);
  EXPECT_EQ(p.nodes[child].parent, root);
  EXPECT_EQ(p.nodes[child].start_ns, 200u);
  EXPECT_EQ(p.nodes[child].wall_ns, 500u);
  EXPECT_EQ(p.nodes[child].cpu_ns, 300u);
  EXPECT_EQ(p.nodes[retro].parent, root);
  EXPECT_EQ(p.nodes[retro].wall_ns, 200u);
  ASSERT_EQ(p.counters.size(), 1u);
  EXPECT_EQ(p.counters[0].name, "candidates");
  EXPECT_EQ(p.counters[0].value, 11u);
  EXPECT_EQ(p.dropped_nodes, 0u);
}

TEST(RequestContextTest, ChildWallNanosSumsDirectChildrenOnly) {
  RequestProfileCollector c(1, 0);
  const uint32_t root = c.AddPhase("root", kProfileNoParent, 0, 100, 0);
  c.AddPhase("a", root, 0, 40, 0);
  const uint32_t b = c.AddPhase("b", root, 40, 50, 0);
  c.AddPhase("b.inner", b, 45, 10, 0);  // grandchild: not counted
  const RequestProfile p = c.Finish(100);
  EXPECT_EQ(p.ChildWallNanos(root), 90u);
  EXPECT_EQ(p.ChildWallNanos(b), 10u);
  EXPECT_EQ(p.ChildWallNanos(kProfileNoParent), 100u);  // roots
}

TEST(RequestContextTest, CollectorLifetimeDrivesCaptureGate) {
  ASSERT_FALSE(internal::CaptureEnabled());
  {
    RequestProfileCollector a(1, 0);
    EXPECT_TRUE(internal::CaptureEnabled());
    {
      RequestProfileCollector b(2, 0);  // refcounted, not boolean
      EXPECT_TRUE(internal::CaptureEnabled());
    }
    EXPECT_TRUE(internal::CaptureEnabled());
  }
  EXPECT_FALSE(internal::CaptureEnabled());
}

TEST(RequestContextTest, NodeCapCountsDropsInsteadOfGrowing) {
  RequestProfileCollector c(1, 0);
  for (uint32_t i = 0; i < kMaxProfileNodes + 10; ++i) {
    c.AddPhase("p", kProfileNoParent, i, 1, 0);
  }
  // BeginPhase past the cap returns the sentinel; EndPhase on it is a no-op.
  const uint32_t overflow = c.BeginPhase("late", kProfileNoParent, 0);
  EXPECT_EQ(overflow, kProfileNoParent);
  c.EndPhase(overflow, 5, 0);

  const RequestProfile p = c.Finish(1);
  EXPECT_EQ(p.nodes.size(), kMaxProfileNodes);
  EXPECT_EQ(p.dropped_nodes, 11u);
}

TEST(RequestContextTest, TraceSpanRecordsIntoInstalledContext) {
  RequestProfileCollector c(42, internal::TraceNowNanos());
  const uint32_t root = c.BeginPhase("root", kProfileNoParent, c.epoch_ns());
  {
    ScopedRequestContext scope(RequestContext{42, &c, root});
    SIMJOIN_TRACE_SPAN("outer");
    { SIMJOIN_TRACE_SPAN("inner"); }
  }
  c.EndPhase(root, internal::TraceNowNanos(), 0);
  const RequestProfile p = c.Finish(internal::TraceNowNanos());

  const uint32_t outer = FindNode(p, "outer");
  const uint32_t inner = FindNode(p, "inner");
  ASSERT_NE(outer, kProfileNoParent);
  ASSERT_NE(inner, kProfileNoParent);
  EXPECT_EQ(p.nodes[outer].parent, root);
  EXPECT_EQ(p.nodes[inner].parent, outer);  // nesting follows scope
}

TEST(RequestContextTest, SpansOutsideAnyContextRecordNothing) {
  RequestProfileCollector c(1, 0);  // raises the gate, but is not installed
  { SIMJOIN_TRACE_SPAN("orphan"); }
  const RequestProfile p = c.Finish(1);
  EXPECT_EQ(FindNode(p, "orphan"), kProfileNoParent);
  EXPECT_TRUE(p.nodes.empty());
}

TEST(RequestContextTest, AddRequestCounterIsNoOpWithoutContext) {
  AddRequestCounter("ignored", 3);  // must not crash or leak anywhere
  RequestProfileCollector c(9, 0);
  {
    ScopedRequestContext scope(RequestContext{9, &c, kProfileNoParent});
    AddRequestCounter("seen", 4);
  }
  AddRequestCounter("after", 5);  // context restored: dropped again
  const RequestProfile p = c.Finish(1);
  ASSERT_EQ(p.counters.size(), 1u);
  EXPECT_EQ(p.counters[0].name, "seen");
  EXPECT_EQ(p.counters[0].value, 4u);
}

TEST(RequestContextTest, ThreadPoolPropagatesContextIntoTasks) {
  ThreadPool pool(2);
  RequestProfileCollector c(11, internal::TraceNowNanos());
  const uint32_t root = c.BeginPhase("root", kProfileNoParent, c.epoch_ns());
  {
    ScopedRequestContext scope(RequestContext{11, &c, root});
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.Run([] { SIMJOIN_TRACE_SPAN("pool.task"); });
    }
    group.Wait();
  }
  c.EndPhase(root, internal::TraceNowNanos(), 0);
  const RequestProfile p = c.Finish(internal::TraceNowNanos());

  size_t recorded = 0;
  for (const ProfileNode& n : p.nodes) {
    if (n.name != "pool.task") continue;
    ++recorded;
    EXPECT_EQ(n.parent, root);  // attaches under the submitting span
  }
  EXPECT_EQ(recorded, 8u);
}

TEST(RequestContextTest, PoolTasksWithoutContextStayUnattributed) {
  ThreadPool pool(2);
  RequestProfileCollector c(1, 0);  // gate up so spans are armed
  {
    TaskGroup group(&pool);
    group.Run([] { SIMJOIN_TRACE_SPAN("free.task"); });
    group.Wait();
  }
  EXPECT_TRUE(c.Finish(1).nodes.empty());
}

// 8 threads hammer spans into one collector while another thread snapshots
// and renders the metrics registry — the concurrent-exporter shape the
// Prometheus endpoint produces in the live server.  Run under TSan by
// scripts/check_tsan.sh; correctness check is the exact node count.
TEST(RequestContextTest, ConcurrentSpanHammerWithExporter) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;  // kThreads * kSpans > node cap
  MetricRegistry reg;
  Counter* spans_done = reg.GetCounter("hammer.spans");
  RequestProfileCollector c(99, internal::TraceNowNanos());
  const uint32_t root = c.BeginPhase("root", kProfileNoParent, c.epoch_ns());

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = RenderPrometheusText(reg.Snapshot());
      EXPECT_NE(text.find("simjoin_hammer_spans_total"), std::string::npos);
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ScopedRequestContext scope(RequestContext{99, &c, root});
      for (int i = 0; i < kSpansPerThread; ++i) {
        SIMJOIN_TRACE_SPAN("hammer.phase");
        c.AddCounter("hammer", 1);
        AddRequestCounter("hammer.via_tls", 1);
        spans_done->Add();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  c.EndPhase(root, internal::TraceNowNanos(), 0);
  const RequestProfile p = c.Finish(internal::TraceNowNanos());
  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kSpansPerThread;
  // Every span either became a node or was counted as dropped — none lost.
  EXPECT_EQ((p.nodes.size() - 1) + p.dropped_nodes, total);
  EXPECT_EQ(p.nodes.size(), kMaxProfileNodes);
  ASSERT_EQ(p.counters.size(), 2u);
  EXPECT_EQ(p.counters[0].value, total);
  EXPECT_EQ(p.counters[1].value, total);
  EXPECT_EQ(spans_done->Value(), total);
}

TEST(RequestContextTest, ThreadCpuNanosIsMonotonicWhenSupported) {
  const uint64_t a = ThreadCpuNanos();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  const uint64_t b = ThreadCpuNanos();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace obs
}  // namespace simjoin
