// Tests for scoped phase tracing: lifecycle, span capture from multiple
// threads, and the Chrome trace_event JSON shape.

#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace obs {
namespace {

std::string TracePath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TraceTest : public testing::Test {
 protected:
  void TearDown() override {
    // Never leak an active trace into the next test.
    (void)StopTracing();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(TracingEnabled());
  const uint64_t before = TraceEventCount();
  { SIMJOIN_TRACE_SPAN("ignored"); }
  EXPECT_EQ(TraceEventCount(), before);
}

TEST_F(TraceTest, StartStopWritesLoadableJson) {
  const std::string path = TracePath("basic.json");
  ASSERT_TRUE(StartTracing(path).ok());
  EXPECT_TRUE(TracingEnabled());
  {
    SIMJOIN_TRACE_SPAN("outer");
    SIMJOIN_TRACE_SPAN("inner");
  }
  EXPECT_EQ(TraceEventCount(), 2u);
  ASSERT_TRUE(StopTracing().ok());
  EXPECT_FALSE(TracingEnabled());

  const std::string json = ReadFile(path);
  // Chrome trace_event format: top-level object with a traceEvents array of
  // complete ("ph":"X") events carrying name/ts/dur/pid/tid.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), '}');
  std::remove(path.c_str());
}

TEST_F(TraceTest, SecondStartFailsWhileActive) {
  ASSERT_TRUE(StartTracing(TracePath("a.json")).ok());
  EXPECT_FALSE(StartTracing(TracePath("b.json")).ok());
  ASSERT_TRUE(StopTracing().ok());
}

TEST_F(TraceTest, StopWithoutStartIsOk) { EXPECT_TRUE(StopTracing().ok()); }

TEST_F(TraceTest, EmptyPathIsRejected) {
  EXPECT_FALSE(StartTracing("").ok());
}

TEST_F(TraceTest, CollectsSpansFromManyThreads) {
  const std::string path = TracePath("threads.json");
  ASSERT_TRUE(StartTracing(path).ok());
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SIMJOIN_TRACE_SPAN("worker.phase");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(TraceEventCount(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(TraceDroppedEventCount(), 0u);

  std::ostringstream os;
  WriteTraceJson(os);
  const std::string json = os.str();
  size_t events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, static_cast<size_t>(kThreads) * kSpansPerThread);
  ASSERT_TRUE(StopTracing().ok());
  std::remove(path.c_str());
}

TEST_F(TraceTest, RestartClearsPreviousEvents) {
  const std::string path1 = TracePath("first.json");
  const std::string path2 = TracePath("second.json");
  ASSERT_TRUE(StartTracing(path1).ok());
  { SIMJOIN_TRACE_SPAN("one"); }
  ASSERT_TRUE(StopTracing().ok());
  ASSERT_TRUE(StartTracing(path2).ok());
  EXPECT_EQ(TraceEventCount(), 0u);
  { SIMJOIN_TRACE_SPAN("two"); }
  ASSERT_TRUE(StopTracing().ok());
  const std::string json = ReadFile(path2);
  EXPECT_EQ(json.find("\"name\":\"one\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"two\""), std::string::npos);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST_F(TraceTest, SpanStartedBeforeStopStillRecordsSafely) {
  // A span constructed while tracing is on but destroyed after StopTracing
  // must not crash; its event lands in the (cleared) buffers and is simply
  // not part of the written file.
  const std::string path = TracePath("straddle.json");
  ASSERT_TRUE(StartTracing(path).ok());
  {
    TraceSpan straddler("straddle");
    ASSERT_TRUE(StopTracing().ok());
  }  // destructor fires here, after the stop
  EXPECT_EQ(ReadFile(path).find("\"name\":\"straddle\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace simjoin
