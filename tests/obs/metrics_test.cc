// Tests for the lock-free metrics registry: exactness under concurrent
// hammering, snapshot/merge determinism, quantile math, and delta rendering.

#include "obs/metrics.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("hammered");
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) c->Add(i % 3 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t per_thread = 0;
  for (uint64_t i = 0; i < kAddsPerThread; ++i) per_thread += i % 3 + 1;
  EXPECT_EQ(c->Value(), kThreads * per_thread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricRegistry reg;
  Gauge* g = reg.GetGauge("depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -6);  // gauges are signed
}

TEST(HistogramTest, ConcurrentRecordsKeepExactCountAndSum) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("lat", std::vector<double>{1, 10, 100});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<double>(i % 200));  // spans all four buckets
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSample* s = snap.FindHistogram("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : s->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s->count);
  // Sum of i%200 over kPerThread iterations, times kThreads; the fixed-point
  // accumulator is exact for integers.
  const double expected_sum =
      kThreads * (kPerThread / 200.0) * (199.0 * 200.0 / 2.0);
  EXPECT_DOUBLE_EQ(s->sum, expected_sum);
}

TEST(HistogramTest, BucketAssignmentUsesInclusiveUpperBounds) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("b", std::vector<double>{1, 10});
  h->Record(0.5);   // bucket 0 (<= 1)
  h->Record(1.0);   // bucket 0 (inclusive bound)
  h->Record(5.0);   // bucket 1
  h->Record(11.0);  // overflow bucket
  h->Record(-3.0);  // clamped to 0 -> bucket 0
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSample* s = snap.FindHistogram("b");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->counts.size(), 3u);
  EXPECT_EQ(s->counts[0], 3u);
  EXPECT_EQ(s->counts[1], 1u);
  EXPECT_EQ(s->counts[2], 1u);
}

TEST(HistogramSampleTest, QuantileInterpolatesAndClampsOverflow) {
  HistogramSample s;
  s.boundaries = {10.0, 20.0};
  s.counts = {10, 10, 0};
  s.count = 20;
  // Median sits at the boundary between the two buckets.
  EXPECT_NEAR(s.Quantile(0.5), 10.0, 1.0);
  // Inside the first bucket the estimate interpolates from 0 to 10.
  EXPECT_NEAR(s.Quantile(0.25), 5.0, 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);

  // Ranks landing in the overflow bucket report the last finite bound.
  HistogramSample o;
  o.boundaries = {10.0};
  o.counts = {0, 5};
  o.count = 5;
  EXPECT_DOUBLE_EQ(o.Quantile(0.99), 10.0);

  HistogramSample empty;
  empty.boundaries = {10.0};
  empty.counts = {0, 0};
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("same");
  Counter* c2 = reg.GetCounter("same");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("h", std::vector<double>{1, 2});
  Histogram* h2 = reg.GetHistogram("h");  // boundaries ignored on re-get
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->boundaries().size(), 2u);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 100; ++i) {
        reg.GetCounter("shared.counter")->Add();
        reg.GetGauge("shared.gauge")->Add(1);
        reg.GetHistogram("shared.hist")->Record(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_NE(snap.FindCounter("shared.counter"), nullptr);
  EXPECT_EQ(snap.FindCounter("shared.counter")->value, 800u);
  EXPECT_EQ(snap.FindGauge("shared.gauge")->value, 800);
  EXPECT_EQ(snap.FindHistogram("shared.hist")->count, 800u);
}

TEST(SnapshotTest, SortedByNameAndDeterministic) {
  MetricRegistry reg;
  reg.GetCounter("zeta")->Add(1);
  reg.GetCounter("alpha")->Add(2);
  reg.GetGauge("mid")->Set(3);
  reg.GetHistogram("h2")->Record(5);
  reg.GetHistogram("h1")->Record(7);

  const MetricsSnapshot a = reg.Snapshot();
  const MetricsSnapshot b = reg.Snapshot();
  EXPECT_EQ(a, b);  // same state -> identical snapshots
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].name, "alpha");
  EXPECT_EQ(a.counters[1].name, "zeta");
  ASSERT_EQ(a.histograms.size(), 2u);
  EXPECT_EQ(a.histograms[0].name, "h1");
  EXPECT_EQ(a.histograms[1].name, "h2");
}

TEST(SnapshotTest, DeltaSinceSubtractsMonotonicsKeepsGauges) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", std::vector<double>{10});
  c->Add(5);
  g->Set(100);
  h->Record(1);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  g->Set(42);
  h->Record(2);
  h->Record(3);
  const MetricsSnapshot after = reg.Snapshot();

  const MetricsSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.FindCounter("c")->value, 7u);
  EXPECT_EQ(delta.FindGauge("g")->value, 42);  // level, not difference
  EXPECT_EQ(delta.FindHistogram("h")->count, 2u);
  EXPECT_DOUBLE_EQ(delta.FindHistogram("h")->sum, 5.0);
}

TEST(SnapshotTest, DeltaSinceEmptyPrevIsIdentity) {
  MetricRegistry reg;
  reg.GetCounter("c")->Add(3);
  reg.GetHistogram("h")->Record(1.0);
  const MetricsSnapshot cur = reg.Snapshot();
  EXPECT_EQ(cur.DeltaSince(MetricsSnapshot{}), cur);
}

TEST(SnapshotTest, RenderTextMentionsEveryMetric) {
  MetricRegistry reg;
  reg.GetCounter("requests")->Add(9);
  reg.GetGauge("inflight")->Set(2);
  reg.GetHistogram("latency_us")->Record(50.0);
  const std::string text = reg.Snapshot().RenderText();
  EXPECT_NE(text.find("requests"), std::string::npos);
  EXPECT_NE(text.find("inflight"), std::string::npos);
  EXPECT_NE(text.find("latency_us"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(GlobalMetricsTest, IsASingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

TEST(ScopedLatencyTimerTest, RecordsOnDestruction) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("t");
  { ScopedLatencyTimer timer(h); }
  EXPECT_EQ(reg.Snapshot().FindHistogram("t")->count, 1u);
}

TEST(DefaultBoundsTest, AscendingMicrosecondLadder) {
  const std::span<const double> bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 1e6);
}

}  // namespace
}  // namespace obs
}  // namespace simjoin
