#include "workload/timeseries.h"

#include <cmath>

#include "common/metric.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(GenerateSeriesFamilyTest, ShapeAndDeterminism) {
  const SeriesFamilyConfig cfg{.num_series = 20, .length = 128, .groups = 4,
                               .group_weight = 0.7, .volatility = 0.01,
                               .seed = 1};
  auto a = GenerateSeriesFamily(cfg);
  auto b = GenerateSeriesFamily(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), 20u);
  EXPECT_EQ((*a)[0].size(), 128u);
  EXPECT_EQ((*a)[7], (*b)[7]);
}

TEST(GenerateSeriesFamilyTest, RejectsDegenerateConfigs) {
  EXPECT_FALSE(GenerateSeriesFamily({.num_series = 0, .length = 10}).ok());
  EXPECT_FALSE(GenerateSeriesFamily({.num_series = 5, .length = 1}).ok());
  EXPECT_FALSE(
      GenerateSeriesFamily({.num_series = 5, .length = 10, .groups = 0}).ok());
  EXPECT_FALSE(GenerateSeriesFamily(
                   {.num_series = 5, .length = 10, .group_weight = 1.5})
                   .ok());
}

TEST(GenerateSeriesFamilyTest, SameGroupSeriesMoreSimilar) {
  auto family = GenerateSeriesFamily({.num_series = 40, .length = 256,
                                      .groups = 4, .group_weight = 0.85,
                                      .volatility = 0.01, .seed = 2});
  ASSERT_TRUE(family.ok());
  // Series s and s+groups share a group; s and s+1 do not.
  double same_group = 0.0, cross_group = 0.0;
  int pairs = 0;
  for (size_t s = 0; s + 5 < family->size(); s += 5) {
    Series a = (*family)[s], b = (*family)[s + 4], c = (*family)[s + 1];
    ZNormalize(&a);
    ZNormalize(&b);
    ZNormalize(&c);
    same_group += SeriesEuclideanDistance(a, b);  // s and s+4 share group (4 groups)
    cross_group += SeriesEuclideanDistance(a, c);
    ++pairs;
  }
  EXPECT_LT(same_group / pairs, cross_group / pairs);
}

TEST(ZNormalizeTest, ZeroMeanUnitVariance) {
  Series s{1.0, 2.0, 3.0, 4.0, 5.0};
  ZNormalize(&s);
  double mean = 0.0, var = 0.0;
  for (double v : s) mean += v;
  mean /= static_cast<double>(s.size());
  for (double v : s) var += (v - mean) * (v - mean);
  var /= static_cast<double>(s.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZero) {
  Series s{3.0, 3.0, 3.0};
  ZNormalize(&s);
  for (double v : s) EXPECT_EQ(v, 0.0);
}

TEST(ZNormalizeTest, HandlesEmptyAndNull) {
  Series empty;
  ZNormalize(&empty);
  ZNormalize(nullptr);
  SUCCEED();
}

TEST(DftFeaturesTest, DimensionalityIsTwoK) {
  Series s(64, 0.0);
  for (size_t i = 0; i < s.size(); ++i) s[i] = std::sin(0.3 * static_cast<double>(i));
  auto f = DftFeatures(s, 4);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 8u);
}

TEST(DftFeaturesTest, RejectsBadArgs) {
  Series s(64, 1.0);
  EXPECT_FALSE(DftFeatures(s, 0).ok());
  Series tiny(5, 1.0);
  EXPECT_FALSE(DftFeatures(tiny, 4).ok());
}

TEST(DftFeaturesTest, FeatureDistanceLowerBoundsSeriesDistance) {
  // The GEMINI guarantee: Euclidean distance in truncated-DFT feature space
  // never exceeds Euclidean distance between the (z-normalised) series when
  // both have power-of-two length.
  auto family = GenerateSeriesFamily({.num_series = 12, .length = 256,
                                      .groups = 3, .group_weight = 0.6,
                                      .volatility = 0.02, .seed = 3});
  ASSERT_TRUE(family.ok());
  std::vector<Series> normalized = *family;
  for (auto& s : normalized) ZNormalize(&s);
  const size_t k = 6;
  DistanceKernel l2(Metric::kL2);
  for (size_t i = 0; i < normalized.size(); ++i) {
    auto fi = DftFeatures(normalized[i], k);
    ASSERT_TRUE(fi.ok());
    for (size_t j = i + 1; j < normalized.size(); ++j) {
      auto fj = DftFeatures(normalized[j], k);
      ASSERT_TRUE(fj.ok());
      const double feature_dist =
          l2.Distance(fi->data(), fj->data(), fi->size());
      const double series_dist =
          SeriesEuclideanDistance(normalized[i], normalized[j]);
      // Conjugate symmetry means keeping only positive-frequency bins can
      // undercount by at most sqrt(2); the *scaled* feature distance is the
      // lower bound.
      EXPECT_LE(feature_dist, series_dist + 1e-9)
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(SeriesToFeatureDatasetTest, StacksAllSeries) {
  auto family = GenerateSeriesFamily(
      {.num_series = 15, .length = 128, .groups = 3, .seed = 4});
  ASSERT_TRUE(family.ok());
  auto ds = SeriesToFeatureDataset(*family, 5);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 15u);
  EXPECT_EQ(ds->dims(), 10u);
}

TEST(SeriesToFeatureDatasetTest, RejectsEmptyFamily) {
  EXPECT_FALSE(SeriesToFeatureDataset({}, 3).ok());
}

}  // namespace
}  // namespace simjoin
