#include "workload/generators.h"

#include <cmath>

#include "common/metric.h"
#include "common/stats.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(GenerateUniformTest, ShapeAndRange) {
  auto ds = GenerateUniform({.n = 500, .dims = 6, .seed = 1});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 500u);
  EXPECT_EQ(ds->dims(), 6u);
  EXPECT_TRUE(ds->AllWithin(0.0f, 1.0f));
}

TEST(GenerateUniformTest, DeterministicInSeed) {
  auto a = GenerateUniform({.n = 50, .dims = 3, .seed = 9});
  auto b = GenerateUniform({.n = 50, .dims = 3, .seed = 9});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->flat(), b->flat());
  auto c = GenerateUniform({.n = 50, .dims = 3, .seed = 10});
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->flat(), c->flat());
}

TEST(GenerateUniformTest, MeanNearHalfPerColumn) {
  auto ds = GenerateUniform({.n = 20000, .dims = 3, .seed = 2});
  ASSERT_TRUE(ds.ok());
  for (size_t d = 0; d < 3; ++d) {
    RunningStats col;
    for (size_t i = 0; i < ds->size(); ++i) {
      col.Add(ds->Row(static_cast<PointId>(i))[d]);
    }
    EXPECT_NEAR(col.mean(), 0.5, 0.02);
  }
}

TEST(GenerateUniformTest, RejectsDegenerateConfigs) {
  EXPECT_FALSE(GenerateUniform({.n = 0, .dims = 3}).ok());
  EXPECT_FALSE(GenerateUniform({.n = 3, .dims = 0}).ok());
}

TEST(GenerateClusteredTest, ShapeRangeAndDeterminism) {
  const ClusteredConfig cfg{.n = 1000, .dims = 8, .clusters = 5, .sigma = 0.03,
                            .zipf_skew = 0.0, .noise_fraction = 0.0, .seed = 3};
  auto a = GenerateClustered(cfg);
  auto b = GenerateClustered(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 1000u);
  EXPECT_TRUE(a->AllWithin(0.0f, 1.0f));
  EXPECT_EQ(a->flat(), b->flat());
}

TEST(GenerateClusteredTest, ClusteredIsDenserThanUniform) {
  // Average nearest-neighbour-ish density proxy: count of pairs within a
  // small radius should be far higher for the clustered cloud.
  const size_t n = 800, dims = 4;
  auto uniform = GenerateUniform({.n = n, .dims = dims, .seed = 4});
  auto clustered = GenerateClustered(
      {.n = n, .dims = dims, .clusters = 4, .sigma = 0.02, .seed = 4});
  ASSERT_TRUE(uniform.ok() && clustered.ok());
  DistanceKernel kernel(Metric::kL2);
  auto count_close = [&](const Dataset& ds) {
    uint64_t close = 0;
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        close += kernel.WithinEpsilon(ds.Row(static_cast<PointId>(i)),
                                      ds.Row(static_cast<PointId>(j)), dims, 0.05);
      }
    }
    return close;
  };
  EXPECT_GT(count_close(*clustered), 10 * count_close(*uniform));
}

TEST(GenerateClusteredTest, NoiseFractionAddsBackground) {
  auto pure = GenerateClustered(
      {.n = 500, .dims = 2, .clusters = 2, .sigma = 0.01, .seed = 5});
  auto noisy = GenerateClustered({.n = 500, .dims = 2, .clusters = 2,
                                  .sigma = 0.01, .noise_fraction = 0.5,
                                  .seed = 5});
  ASSERT_TRUE(pure.ok() && noisy.ok());
  // Column variance grows when half the mass is uniform background.
  RunningStats pure_col, noisy_col;
  for (size_t i = 0; i < 500; ++i) {
    pure_col.Add(pure->Row(static_cast<PointId>(i))[0]);
    noisy_col.Add(noisy->Row(static_cast<PointId>(i))[0]);
  }
  EXPECT_GT(noisy_col.variance(), pure_col.variance());
}

TEST(GenerateClusteredTest, RejectsBadConfigs) {
  EXPECT_FALSE(GenerateClustered({.n = 10, .dims = 2, .clusters = 0}).ok());
  EXPECT_FALSE(GenerateClustered({.n = 10, .dims = 2, .sigma = -1.0}).ok());
  EXPECT_FALSE(
      GenerateClustered({.n = 10, .dims = 2, .noise_fraction = 1.5}).ok());
}

TEST(GenerateCorrelatedTest, ShapeAndNormalization) {
  auto ds = GenerateCorrelated(
      {.n = 400, .dims = 10, .intrinsic_dims = 2, .noise = 0.01, .seed = 6});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dims(), 10u);
  EXPECT_TRUE(ds->AllWithin(0.0f, 1.0f));
}

TEST(GenerateCorrelatedTest, ColumnsAreCorrelated) {
  auto ds = GenerateCorrelated(
      {.n = 3000, .dims = 6, .intrinsic_dims = 1, .noise = 0.0, .seed = 7});
  ASSERT_TRUE(ds.ok());
  // With one latent factor and no noise, |corr(col0, col1)| must be ~1.
  RunningStats c0, c1;
  for (size_t i = 0; i < ds->size(); ++i) {
    c0.Add(ds->Row(static_cast<PointId>(i))[0]);
    c1.Add(ds->Row(static_cast<PointId>(i))[1]);
  }
  double cov = 0.0;
  for (size_t i = 0; i < ds->size(); ++i) {
    cov += (ds->Row(static_cast<PointId>(i))[0] - c0.mean()) *
           (ds->Row(static_cast<PointId>(i))[1] - c1.mean());
  }
  cov /= static_cast<double>(ds->size());
  const double corr = cov / (c0.stddev() * c1.stddev());
  EXPECT_GT(std::fabs(corr), 0.99);
}

TEST(GenerateCorrelatedTest, RejectsBadIntrinsicDims) {
  EXPECT_FALSE(
      GenerateCorrelated({.n = 10, .dims = 4, .intrinsic_dims = 0}).ok());
  EXPECT_FALSE(
      GenerateCorrelated({.n = 10, .dims = 4, .intrinsic_dims = 5}).ok());
}

TEST(GenerateGridPerturbedTest, PointsNearLattice) {
  const double cell = 0.25, jitter = 0.01;
  auto ds = GenerateGridPerturbed(
      {.n = 300, .dims = 3, .cell = cell, .perturbation = jitter, .seed = 8});
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    for (size_t d = 0; d < 3; ++d) {
      const double v = ds->Row(static_cast<PointId>(i))[d];
      // Distance to the nearest lattice centre (k + 0.5) * cell.
      const double scaled = v / cell - 0.5;
      const double frac = std::fabs(scaled - std::round(scaled)) * cell;
      EXPECT_LE(frac, jitter + 1e-5);
    }
  }
}

TEST(GenerateGridPerturbedTest, RejectsBadCell) {
  EXPECT_FALSE(GenerateGridPerturbed({.n = 10, .dims = 2, .cell = 0.0}).ok());
  EXPECT_FALSE(GenerateGridPerturbed({.n = 10, .dims = 2, .cell = 2.0}).ok());
  EXPECT_FALSE(GenerateGridPerturbed(
                   {.n = 10, .dims = 2, .cell = 0.1, .perturbation = -0.1})
                   .ok());
}

TEST(PlantNearDuplicatesTest, AppendsDisplacedCopies) {
  auto base = GenerateUniform({.n = 100, .dims = 4, .seed = 9});
  ASSERT_TRUE(base.ok());
  auto planted = PlantNearDuplicates(*base, 10, 0.005, 99);
  ASSERT_TRUE(planted.ok());
  EXPECT_EQ(planted->size(), 110u);
  // Every planted point is within 0.005 (L-inf) of SOME base point.
  DistanceKernel kernel(Metric::kLinf);
  for (PointId p = 100; p < 110; ++p) {
    bool close_to_any = false;
    for (PointId b = 0; b < 100; ++b) {
      close_to_any |= kernel.WithinEpsilon(planted->Row(p), planted->Row(b), 4,
                                           0.005 + 1e-6);
    }
    EXPECT_TRUE(close_to_any) << "planted point " << p;
  }
}

TEST(PlantNearDuplicatesTest, RejectsEmptyBaseAndNegativeDisplacement) {
  Dataset empty;
  EXPECT_FALSE(PlantNearDuplicates(empty, 1, 0.01, 1).ok());
  auto base = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(PlantNearDuplicates(*base, 1, -0.01, 1).ok());
}

}  // namespace
}  // namespace simjoin
