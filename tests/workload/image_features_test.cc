#include "workload/image_features.h"

#include "common/metric.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(GenerateImageArchiveTest, ShapeAndHistogramValidity) {
  auto archive = GenerateImageArchive({.num_images = 200, .bins = 16,
                                       .prototypes = 4, .concentration = 50,
                                       .near_duplicates = 20, .seed = 1});
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->histograms.size(), 220u);
  EXPECT_EQ(archive->histograms.dims(), 16u);
  EXPECT_EQ(archive->duplicate_of.size(), 20u);
  for (size_t i = 0; i < archive->histograms.size(); ++i) {
    EXPECT_TRUE(IsNormalizedHistogram(
        archive->histograms.Row(static_cast<PointId>(i)), 16, 1e-4))
        << "row " << i;
  }
}

TEST(GenerateImageArchiveTest, Deterministic) {
  const ImageArchiveConfig cfg{.num_images = 50, .bins = 8, .prototypes = 3,
                               .concentration = 40, .near_duplicates = 5,
                               .seed = 7};
  auto a = GenerateImageArchive(cfg);
  auto b = GenerateImageArchive(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->histograms.flat(), b->histograms.flat());
  EXPECT_EQ(a->duplicate_of, b->duplicate_of);
}

TEST(GenerateImageArchiveTest, DuplicatesAreCloseToSources) {
  auto archive = GenerateImageArchive({.num_images = 100, .bins = 32,
                                       .prototypes = 5, .concentration = 60,
                                       .near_duplicates = 15,
                                       .duplicate_noise = 0.02, .seed = 2});
  ASSERT_TRUE(archive.ok());
  DistanceKernel l1(Metric::kL1);
  for (size_t d = 0; d < archive->duplicate_of.size(); ++d) {
    const PointId dup = static_cast<PointId>(100 + d);
    const PointId src = archive->duplicate_of[d];
    // Per-bin relative noise of 2% bounds the L1 gap of two unit-mass
    // histograms well below typical cross-prototype distances.
    EXPECT_LE(l1.Distance(archive->histograms.Row(dup),
                          archive->histograms.Row(src), 32),
              0.1)
        << "duplicate " << d;
  }
}

TEST(GenerateImageArchiveTest, PrototypeStructureSeparatesImages) {
  // Images of the same prototype should on average be closer than images of
  // different prototypes; check via the planted duplicate distances being
  // far smaller than typical random-pair distances.
  auto archive = GenerateImageArchive({.num_images = 150, .bins = 24,
                                       .prototypes = 6, .concentration = 80,
                                       .near_duplicates = 10, .seed = 3});
  ASSERT_TRUE(archive.ok());
  DistanceKernel l1(Metric::kL1);
  double dup_sum = 0.0;
  for (size_t d = 0; d < 10; ++d) {
    dup_sum += l1.Distance(archive->histograms.Row(static_cast<PointId>(150 + d)),
                           archive->histograms.Row(archive->duplicate_of[d]), 24);
  }
  double rand_sum = 0.0;
  int rand_pairs = 0;
  for (PointId i = 0; i < 50; ++i) {
    for (PointId j = 50; j < 100; j += 10) {
      rand_sum += l1.Distance(archive->histograms.Row(i),
                              archive->histograms.Row(j), 24);
      ++rand_pairs;
    }
  }
  EXPECT_LT(dup_sum / 10.0, 0.3 * (rand_sum / rand_pairs));
}

TEST(GenerateImageArchiveTest, RejectsBadConfigs) {
  EXPECT_FALSE(GenerateImageArchive({.num_images = 0, .bins = 8}).ok());
  EXPECT_FALSE(GenerateImageArchive({.num_images = 8, .bins = 0}).ok());
  EXPECT_FALSE(
      GenerateImageArchive({.num_images = 8, .bins = 8, .prototypes = 0}).ok());
  EXPECT_FALSE(GenerateImageArchive(
                   {.num_images = 8, .bins = 8, .concentration = 0.0})
                   .ok());
}

TEST(IsNormalizedHistogramTest, DetectsViolations) {
  const float good[] = {0.5f, 0.5f};
  EXPECT_TRUE(IsNormalizedHistogram(good, 2, 1e-6));
  const float negative[] = {1.5f, -0.5f};
  EXPECT_FALSE(IsNormalizedHistogram(negative, 2, 1e-6));
  const float off_mass[] = {0.6f, 0.6f};
  EXPECT_FALSE(IsNormalizedHistogram(off_mass, 2, 1e-6));
}

}  // namespace
}  // namespace simjoin
