#include "workload/fft.h"

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

using Complex = std::complex<double>;

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(FftTest, RejectsNonPowerOfTwoAndEmpty) {
  std::vector<Complex> bad(3);
  EXPECT_FALSE(Fft(&bad).ok());
  std::vector<Complex> empty;
  EXPECT_FALSE(Fft(&empty).ok());
  EXPECT_FALSE(InverseFft(&bad).ok());
}

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Complex> data(8, 0.0);
  data[0] = 1.0;
  ASSERT_TRUE(Fft(&data).ok());
  for (const Complex& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneConcentratesInOneBin) {
  const size_t n = 64;
  const size_t tone = 5;
  std::vector<Complex> data(n);
  for (size_t t = 0; t < n; ++t) {
    data[t] = std::cos(2.0 * std::numbers::pi * static_cast<double>(tone * t) /
                       static_cast<double>(n));
  }
  ASSERT_TRUE(Fft(&data).ok());
  for (size_t k = 0; k < n; ++k) {
    const double mag = std::abs(data[k]);
    if (k == tone || k == n - tone) {
      EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-9) << "bin " << k;
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(FftTest, InverseRecoversInput) {
  Rng rng(123);
  std::vector<Complex> data(128);
  for (auto& v : data) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  const std::vector<Complex> original = data;
  ASSERT_TRUE(Fft(&data).ok());
  ASSERT_TRUE(InverseFft(&data).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  Rng rng(321);
  std::vector<Complex> data(256);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = Complex(rng.Gaussian(), 0.0);
    time_energy += std::norm(v);
  }
  ASSERT_TRUE(Fft(&data).ok());
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-6 * time_energy);
}

TEST(FftTest, MatchesNaiveDftOnRandomInput) {
  Rng rng(555);
  const size_t n = 32;
  std::vector<Complex> data(n);
  for (auto& v : data) v = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  std::vector<Complex> naive(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      naive[k] += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  ASSERT_TRUE(Fft(&data).ok());
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), naive[k].real(), 1e-9);
    EXPECT_NEAR(data[k].imag(), naive[k].imag(), 1e-9);
  }
}

TEST(RealDftTest, PadsToPowerOfTwo) {
  std::vector<double> series(100, 1.0);
  auto spectrum = RealDft(series);
  ASSERT_TRUE(spectrum.ok());
  EXPECT_EQ(spectrum->size(), 128u);
}

TEST(RealDftTest, RejectsEmptySeries) {
  EXPECT_FALSE(RealDft({}).ok());
}

}  // namespace
}  // namespace simjoin
