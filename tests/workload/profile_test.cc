#include "workload/profile.h"

#include <cmath>

#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(ProfileTest, RejectsEmptyDatasetAndBadArgs) {
  Dataset empty;
  EXPECT_FALSE(ProfileDataset(empty).ok());
  auto data = GenerateUniform({.n = 10, .dims = 2, .seed = 1});
  EXPECT_FALSE(ProfileDataset(*data, 16, 1, 0).ok());
}

TEST(ProfileTest, UniformCloudHasFullEffectiveDims) {
  for (size_t dims : {2u, 6u, 12u}) {
    auto data = GenerateUniform({.n = 8000, .dims = dims, .seed = 2});
    ASSERT_TRUE(data.ok());
    auto profile = ProfileDataset(*data, 128, 3);
    ASSERT_TRUE(profile.ok());
    EXPECT_NEAR(profile->effective_dims, static_cast<double>(dims),
                0.15 * static_cast<double>(dims))
        << "dims=" << dims;
  }
}

TEST(ProfileTest, CorrelatedCloudHasLowEffectiveDims) {
  auto data = GenerateCorrelated(
      {.n = 6000, .dims = 16, .intrinsic_dims = 2, .noise = 0.001, .seed = 4});
  ASSERT_TRUE(data.ok());
  auto profile = ProfileDataset(*data, 128, 5);
  ASSERT_TRUE(profile.ok());
  EXPECT_LT(profile->effective_dims, 4.0)
      << "a rank-2 cloud must not look 16-dimensional";
}

TEST(ProfileTest, MomentsMatchKnownDistribution) {
  auto data = GenerateUniform({.n = 60000, .dims = 2, .seed = 6});
  ASSERT_TRUE(data.ok());
  auto profile = ProfileDataset(*data, 64, 7);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->mean[0], 0.5, 0.01);
  EXPECT_NEAR(profile->variance[0], 1.0 / 12.0, 0.005);
}

TEST(ProfileTest, PairwiseDistanceMatchesTheory1D) {
  // E|X - Y| for X,Y ~ U(0,1) is 1/3.
  auto data = GenerateUniform({.n = 20000, .dims = 1, .seed = 8});
  ASSERT_TRUE(data.ok());
  auto profile = ProfileDataset(*data, 4000, 9);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->mean_pairwise_distance, 1.0 / 3.0, 0.02);
}

TEST(ProfileTest, NnDistanceBelowPairwiseDistance) {
  auto data = GenerateClustered(
      {.n = 3000, .dims = 4, .clusters = 5, .sigma = 0.05, .seed = 10});
  ASSERT_TRUE(data.ok());
  auto profile = ProfileDataset(*data, 256, 11);
  ASSERT_TRUE(profile.ok());
  EXPECT_GT(profile->mean_nn_distance, 0.0);
  EXPECT_LT(profile->mean_nn_distance, profile->mean_pairwise_distance);
}

TEST(ColumnHistogramTest, CountsSumToNAndFollowDistribution) {
  Dataset ds;
  // 30 points at 0.1, 10 at 0.9.
  for (int i = 0; i < 30; ++i) ds.Append(std::vector<float>{0.1f});
  for (int i = 0; i < 10; ++i) ds.Append(std::vector<float>{0.9f});
  auto histogram = ColumnHistogram(ds, 0, 4);
  ASSERT_TRUE(histogram.ok());
  ASSERT_EQ(histogram->size(), 4u);
  EXPECT_EQ((*histogram)[0], 30u);
  EXPECT_EQ((*histogram)[3], 10u);
  EXPECT_EQ((*histogram)[1] + (*histogram)[2], 0u);
}

TEST(ColumnHistogramTest, ConstantColumnLandsInBinZero) {
  Dataset ds;
  for (int i = 0; i < 5; ++i) ds.Append(std::vector<float>{0.7f});
  auto histogram = ColumnHistogram(ds, 0, 8);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ((*histogram)[0], 5u);
}

TEST(ColumnHistogramTest, RejectsBadArgs) {
  Dataset empty;
  EXPECT_FALSE(ColumnHistogram(empty, 0, 4).ok());
  Dataset ds(3, 2);
  EXPECT_FALSE(ColumnHistogram(ds, 5, 4).ok());
  EXPECT_FALSE(ColumnHistogram(ds, 0, 0).ok());
}

TEST(HistogramSparklineTest, ScalesToPeakAndHandlesEdges) {
  EXPECT_EQ(HistogramSparkline({}), "");
  EXPECT_EQ(HistogramSparkline({0, 0}), "  ");
  const std::string line = HistogramSparkline({1, 50, 100, 0});
  ASSERT_EQ(line.size(), 4u);
  EXPECT_EQ(line[3], ' ');         // zero bin renders blank
  EXPECT_EQ(line[2], '@');         // peak renders the top ramp char
  EXPECT_NE(line[0], ' ');         // non-zero bin never blank
  EXPECT_LT(line.find(line[1]), line.find('@')); // mid < peak position holds
}

TEST(ProfileTest, ToStringMentionsKeyFields) {
  auto data = GenerateUniform({.n = 500, .dims = 3, .seed = 12});
  auto profile = ProfileDataset(*data, 64, 13);
  ASSERT_TRUE(profile.ok());
  const std::string s = profile->ToString();
  EXPECT_NE(s.find("effective dims"), std::string::npos);
  EXPECT_NE(s.find("points: 500"), std::string::npos);
}

}  // namespace
}  // namespace simjoin
