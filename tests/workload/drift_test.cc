// Tests for the drifting-cluster update workload (workload/drift.h): the
// timeline must be deterministic in the seed, stay inside the unit cube,
// and keep its id bookkeeping replayable — every removed id refers to a
// previously materialised row, nothing is removed twice, and the live set
// never empties out.

#include <algorithm>
#include <set>
#include <vector>

#include "workload/drift.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

DriftConfig SmallConfig(uint64_t seed = 42) {
  DriftConfig config;
  config.dims = 4;
  config.clusters = 3;
  config.points_per_cluster = 16;
  config.steps = 12;
  config.births_per_step = 2;
  config.deaths_per_step = 1;
  config.queries_per_step = 5;
  config.seed = seed;
  return config;
}

TEST(DriftWorkloadTest, ShapeMatchesConfig) {
  const DriftConfig config = SmallConfig();
  auto timeline = GenerateDrift(config);
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  EXPECT_EQ(timeline->dims, 4u);
  EXPECT_EQ(timeline->initial.size(), 3u * 16u);
  EXPECT_EQ(timeline->initial.dims(), 4u);
  ASSERT_EQ(timeline->steps.size(), 12u);
  for (const DriftStep& step : timeline->steps) {
    EXPECT_EQ(step.inserts(config.dims), 2u * 16u);
    EXPECT_EQ(step.queries(config.dims), 5u);
    EXPECT_EQ(step.insert_rows.size() % config.dims, 0u);
    EXPECT_EQ(step.query_rows.size() % config.dims, 0u);
  }
  EXPECT_EQ(timeline->total_inserts(), 12u * 2u * 16u);
}

TEST(DriftWorkloadTest, DeterministicInSeedAndSensitiveToIt) {
  auto a = GenerateDrift(SmallConfig(7));
  auto b = GenerateDrift(SmallConfig(7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->initial.flat(), b->initial.flat());
  ASSERT_EQ(a->steps.size(), b->steps.size());
  for (size_t s = 0; s < a->steps.size(); ++s) {
    EXPECT_EQ(a->steps[s].insert_rows, b->steps[s].insert_rows) << s;
    EXPECT_EQ(a->steps[s].remove_ids, b->steps[s].remove_ids) << s;
    EXPECT_EQ(a->steps[s].query_rows, b->steps[s].query_rows) << s;
  }
  auto c = GenerateDrift(SmallConfig(8));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->initial.flat(), c->initial.flat());
}

TEST(DriftWorkloadTest, AllCoordinatesStayInUnitCube) {
  DriftConfig config = SmallConfig(3);
  config.steps = 40;          // long enough to hit the cube faces
  config.drift_step = 0.08;   // ... quickly
  config.sigma = 0.05;
  auto timeline = GenerateDrift(config);
  ASSERT_TRUE(timeline.ok());
  auto check = [](const std::vector<float>& rows, const char* what) {
    for (float v : rows) {
      ASSERT_GE(v, 0.0f) << what;
      ASSERT_LE(v, 1.0f) << what;
    }
  };
  check(timeline->initial.flat(), "initial");
  for (const DriftStep& step : timeline->steps) {
    check(step.insert_rows, "insert");
    check(step.query_rows, "query");
  }
}

TEST(DriftWorkloadTest, RemoveIdsAreReplayableInsertionOrderIndices) {
  DriftConfig config = SmallConfig(11);
  config.steps = 30;
  config.deaths_per_step = 2;
  auto timeline = GenerateDrift(config);
  ASSERT_TRUE(timeline.ok());

  // Replay the id bookkeeping: ids are assigned contiguously (initial rows
  // first, then inserts in timeline order); every removed id must have been
  // materialised by an earlier step and never removed before.
  PointId next_id = static_cast<PointId>(timeline->initial.size());
  std::set<PointId> removed;
  size_t live = timeline->initial.size();
  for (size_t s = 0; s < timeline->steps.size(); ++s) {
    const DriftStep& step = timeline->steps[s];
    for (PointId id : step.remove_ids) {
      ASSERT_LT(id, next_id) << "step " << s << " removes a future id";
      ASSERT_TRUE(removed.insert(id).second)
          << "step " << s << " removes id " << id << " twice";
    }
    ASSERT_GE(live, step.remove_ids.size());
    live -= step.remove_ids.size();
    EXPECT_GT(live, 0u) << "live set emptied at step " << s;
    next_id += static_cast<PointId>(step.inserts(config.dims));
    live += step.inserts(config.dims);
  }
  EXPECT_EQ(removed.size(), timeline->total_removes());
}

TEST(DriftWorkloadTest, NeverExpiresTheLastLiveCluster) {
  // More deaths than births: the generator must keep at least one cluster
  // alive rather than draining the cloud.
  DriftConfig config = SmallConfig(13);
  config.clusters = 2;
  config.births_per_step = 1;
  config.deaths_per_step = 5;
  config.steps = 20;
  auto timeline = GenerateDrift(config);
  ASSERT_TRUE(timeline.ok());
  size_t live_points = timeline->initial.size();
  for (const DriftStep& step : timeline->steps) {
    live_points -= step.remove_ids.size();
    live_points += step.inserts(config.dims);
    EXPECT_GE(live_points, config.points_per_cluster);
  }
}

TEST(DriftWorkloadTest, ValidatesConfig) {
  DriftConfig config = SmallConfig();
  config.dims = 0;
  EXPECT_FALSE(GenerateDrift(config).ok());
  config = SmallConfig();
  config.clusters = 0;
  EXPECT_FALSE(GenerateDrift(config).ok());
  config = SmallConfig();
  config.points_per_cluster = 0;
  EXPECT_FALSE(GenerateDrift(config).ok());
  config = SmallConfig();
  config.margin = 0.7;
  EXPECT_FALSE(GenerateDrift(config).ok());
  config = SmallConfig();
  config.sigma = -0.1;
  EXPECT_FALSE(GenerateDrift(config).ok());
  config = SmallConfig();
  config.drift_step = -0.01;
  EXPECT_FALSE(GenerateDrift(config).ok());
}

}  // namespace
}  // namespace simjoin
