#include "approx/lsh_join.h"

#include <algorithm>
#include <set>

#include "baselines/nested_loop.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

using testing_util::OracleSelfJoin;

LshConfig Config(size_t tables, size_t hashes = 4, uint64_t seed = 1) {
  LshConfig config;
  config.tables = tables;
  config.hashes_per_table = hashes;
  config.seed = seed;
  return config;
}

TEST(LshConfigTest, Validation) {
  EXPECT_TRUE(Config(8).Validate().ok());
  EXPECT_FALSE(Config(0).Validate().ok());
  EXPECT_FALSE(Config(8, 0).Validate().ok());
  LshConfig bad = Config(8);
  bad.bucket_width = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(LshJoinTest, RejectsBadInputs) {
  Dataset one;
  one.Append(std::vector<float>{0.5f});
  CountingSink sink;
  EXPECT_FALSE(LshApproximateSelfJoin(one, 0.1, Config(2), &sink).ok());
  auto data = GenerateUniform({.n = 20, .dims = 3, .seed = 1});
  EXPECT_FALSE(LshApproximateSelfJoin(*data, 0.0, Config(2), &sink).ok());
  EXPECT_FALSE(LshApproximateSelfJoin(*data, 0.1, Config(2), nullptr).ok());
}

TEST(LshJoinTest, EmittedPairsAreAllTruePositivesAndUnique) {
  auto data = GenerateClustered(
      {.n = 800, .dims = 6, .clusters = 6, .sigma = 0.04, .seed = 2});
  ASSERT_TRUE(data.ok());
  VectorSink sink;
  LshJoinReport report;
  ASSERT_TRUE(
      LshApproximateSelfJoin(*data, 0.1, Config(6), &sink, &report).ok());
  const auto truth_vec = OracleSelfJoin(*data, 0.1, Metric::kL2);
  const std::set<IdPair> truth(truth_vec.begin(), truth_vec.end());
  std::set<IdPair> emitted;
  for (const auto& p : sink.pairs()) {
    EXPECT_LT(p.first, p.second) << "canonical order required";
    EXPECT_TRUE(truth.count(p)) << "false positive (" << p.first << ","
                                << p.second << ")";
    EXPECT_TRUE(emitted.insert(p).second) << "duplicate pair";
  }
  EXPECT_EQ(report.emitted_pairs, sink.pairs().size());
  EXPECT_GE(report.unique_candidates, report.emitted_pairs);
  EXPECT_GE(report.bucket_candidate_pairs, report.unique_candidates);
}

TEST(LshJoinTest, HighTableCountReachesHighRecall) {
  auto data = GenerateClustered(
      {.n = 1000, .dims = 6, .clusters = 8, .sigma = 0.05, .seed = 3});
  ASSERT_TRUE(data.ok());
  const auto truth = OracleSelfJoin(*data, 0.08, Metric::kL2);
  ASSERT_GT(truth.size(), 50u);
  VectorSink sink;
  ASSERT_TRUE(
      LshApproximateSelfJoin(*data, 0.08, Config(24, 3, 7), &sink).ok());
  const double recall = static_cast<double>(sink.pairs().size()) /
                        static_cast<double>(truth.size());
  EXPECT_GE(recall, 0.9) << "recall " << recall << " with 24 tables";
}

TEST(LshJoinTest, MoreTablesNeverReduceRecallForNestedFamilies) {
  // With the same seed the first L tables of a larger configuration are
  // identical to the smaller configuration, so the candidate set is a
  // superset and recall is monotone.
  auto data = GenerateClustered(
      {.n = 600, .dims = 5, .clusters = 5, .sigma = 0.05, .seed = 4});
  ASSERT_TRUE(data.ok());
  size_t prev = 0;
  for (size_t tables : {1u, 4u, 16u}) {
    VectorSink sink;
    ASSERT_TRUE(LshApproximateSelfJoin(*data, 0.08, Config(tables, 4, 11),
                                       &sink)
                    .ok());
    EXPECT_GE(sink.pairs().size(), prev) << tables << " tables";
    prev = sink.pairs().size();
  }
}

TEST(LshJoinTest, DeterministicInSeed) {
  auto data = GenerateUniform({.n = 400, .dims = 4, .seed = 5});
  VectorSink a, b;
  ASSERT_TRUE(LshApproximateSelfJoin(*data, 0.15, Config(4, 4, 9), &a).ok());
  ASSERT_TRUE(LshApproximateSelfJoin(*data, 0.15, Config(4, 4, 9), &b).ok());
  EXPECT_EQ(a.Sorted(), b.Sorted());
}

TEST(LshJoinTest, LinfMetricRejected) {
  auto data = GenerateUniform({.n = 50, .dims = 3, .seed = 20});
  LshConfig config = Config(2);
  config.metric = Metric::kLinf;
  CountingSink sink;
  EXPECT_FALSE(LshApproximateSelfJoin(*data, 0.1, config, &sink).ok());
}

TEST(LshJoinTest, L1MetricIsExactInPrecisionAndReachesRecall) {
  auto data = GenerateClustered(
      {.n = 800, .dims = 5, .clusters = 6, .sigma = 0.04, .seed = 21});
  ASSERT_TRUE(data.ok());
  LshConfig config = Config(24, 3, 31);
  config.metric = Metric::kL1;
  VectorSink sink;
  ASSERT_TRUE(LshApproximateSelfJoin(*data, 0.15, config, &sink).ok());
  const auto truth_vec = OracleSelfJoin(*data, 0.15, Metric::kL1);
  ASSERT_GT(truth_vec.size(), 20u);
  const std::set<IdPair> truth(truth_vec.begin(), truth_vec.end());
  for (const auto& p : sink.pairs()) {
    EXPECT_TRUE(truth.count(p)) << "L1 false positive";
  }
  const double recall = static_cast<double>(sink.pairs().size()) /
                        static_cast<double>(truth_vec.size());
  EXPECT_GE(recall, 0.85) << "L1 recall " << recall;
}

TEST(LshJoinTest, MoreHashesPerTableShrinkCandidateSet) {
  auto data = GenerateClustered(
      {.n = 1200, .dims = 5, .clusters = 4, .sigma = 0.08, .seed = 6});
  ASSERT_TRUE(data.ok());
  LshJoinReport wide, sharp;
  CountingSink s1, s2;
  ASSERT_TRUE(
      LshApproximateSelfJoin(*data, 0.05, Config(4, 1, 13), &s1, &wide).ok());
  ASSERT_TRUE(
      LshApproximateSelfJoin(*data, 0.05, Config(4, 8, 13), &s2, &sharp).ok());
  EXPECT_LT(sharp.unique_candidates, wide.unique_candidates);
}

}  // namespace
}  // namespace simjoin
