// Tests of the recall-controlled p-stable LSH range-query index: analytic
// collision-probability properties, table sizing for a recall target,
// precision-1/subset semantics against the brute oracle, measured recall
// against the target, and determinism.

#include "approx/lsh_index.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/metric.h"
#include "workload/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace simjoin {
namespace {

EkdbConfig Config(double epsilon, Metric metric = Metric::kL2) {
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = metric;
  return config;
}

std::vector<PointId> OracleNeighbours(const Dataset& data, const float* query,
                                      double eps, Metric metric) {
  DistanceKernel kernel(metric);
  std::vector<PointId> out;
  for (size_t i = 0; i < data.size(); ++i) {
    const auto id = static_cast<PointId>(i);
    if (kernel.WithinEpsilon(query, data.Row(id), data.dims(), eps)) {
      out.push_back(id);
    }
  }
  return out;
}

TEST(LshIndexTest, CollisionProbabilityIsMonotoneAndBounded) {
  for (const Metric metric : {Metric::kL2, Metric::kL1}) {
    const double width = 0.4;
    double prev = PStableCollisionProbability(metric, 0.0, width);
    EXPECT_NEAR(prev, 1.0, 1e-9);
    for (double d = 0.05; d <= 2.0; d += 0.05) {
      const double p = PStableCollisionProbability(metric, d, width);
      EXPECT_GT(p, 0.0) << MetricName(metric) << " d=" << d;
      EXPECT_LE(p, prev + 1e-12) << MetricName(metric) << " d=" << d;
      prev = p;
    }
    // Wider buckets collide more at the same distance.
    EXPECT_GT(PStableCollisionProbability(metric, 0.5, 4.0),
              PStableCollisionProbability(metric, 0.5, 0.5));
  }
}

TEST(LshIndexTest, TablesForRecallSatisfiesTheBound) {
  for (const double p1k : {0.05, 0.2, 0.5, 0.9}) {
    for (const double recall : {0.5, 0.9, 0.99}) {
      const size_t tables = LshTablesForRecall(recall, p1k, 256);
      ASSERT_GE(tables, 1u);
      const double bound =
          1.0 - std::pow(1.0 - p1k, static_cast<double>(tables));
      EXPECT_GE(bound + 1e-12, recall) << "p1^K=" << p1k << " r=" << recall;
      if (tables > 1) {
        // Minimality: one fewer table would miss the target.
        const double below =
            1.0 - std::pow(1.0 - p1k, static_cast<double>(tables - 1));
        EXPECT_LT(below, recall);
      }
    }
  }
  // Clamped at the cap even for unreachable targets, and never zero.
  EXPECT_EQ(LshTablesForRecall(0.999999, 0.01, 16), 16u);
  EXPECT_EQ(LshTablesForRecall(0.1, 0.99, 64), 1u);
}

TEST(LshIndexTest, ResultsAreVerifiedSubsetInAscendingOrder) {
  for (const Metric metric : {Metric::kL2, Metric::kL1}) {
    auto data = GenerateClustered(
        {.n = 900, .dims = 12, .clusters = 8, .sigma = 0.05, .seed = 5});
    ASSERT_TRUE(data.ok());
    const double eps = 0.15;
    LshIndexParams params;
    params.tables = 6;
    auto index = LshIndex::Build(*data, Config(eps, metric), params);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (size_t q = 0; q < 32; ++q) {
      const float* query = data->Row(static_cast<PointId>(q * 27 % 900));
      std::vector<PointId> got;
      JoinStats stats;
      double recall_est = 0.0;
      ASSERT_TRUE(
          index->RangeQuery(query, eps, &got, &stats, &recall_est).ok());
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
      const auto truth_vec = OracleNeighbours(*data, query, eps, metric);
      const std::set<PointId> truth(truth_vec.begin(), truth_vec.end());
      for (const PointId id : got) {
        EXPECT_TRUE(truth.count(id))
            << "false positive id " << id << " (" << MetricName(metric)
            << " q" << q << ")";
      }
      EXPECT_GT(recall_est, 0.0);
      EXPECT_LE(recall_est, 1.0);
      EXPECT_EQ(stats.pairs_emitted, got.size());
      EXPECT_GE(stats.distance_calls, got.size());
    }
  }
}

TEST(LshIndexTest, MeasuredRecallMeetsSizedTarget) {
  auto data = GenerateClustered(
      {.n = 1200, .dims = 16, .clusters = 10, .sigma = 0.06, .seed = 7});
  ASSERT_TRUE(data.ok());
  const double eps = 0.25;
  const double target = 0.9;
  LshIndexParams params;
  const double p1 = PStableCollisionProbability(Metric::kL2, eps, 4 * eps);
  params.tables = LshTablesForRecall(
      target, std::pow(p1, static_cast<double>(params.hashes_per_table)),
      128);
  auto index = LshIndex::Build(*data, Config(eps), params);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_GE(index->FindProbability(eps), target - 1e-9);

  size_t found = 0;
  size_t truth_total = 0;
  double est_sum = 0.0;
  size_t est_count = 0;
  for (size_t q = 0; q < 64; ++q) {
    const float* query = data->Row(static_cast<PointId>(q * 19 % 1200));
    std::vector<PointId> got;
    double recall_est = 0.0;
    ASSERT_TRUE(index->RangeQuery(query, eps, &got, nullptr, &recall_est)
                    .ok());
    found += got.size();
    truth_total += OracleNeighbours(*data, query, eps, Metric::kL2).size();
    est_sum += recall_est;
    ++est_count;
  }
  ASSERT_GT(truth_total, 0u);
  const double measured =
      static_cast<double>(found) / static_cast<double>(truth_total);
  // The sizing bound holds at the worst case (distance == eps); measured
  // recall should clear the target with slack since most neighbours are
  // closer.  Allow a small sampling tolerance.
  EXPECT_GE(measured, target - 0.05) << "measured recall " << measured;
  // The Horvitz-Thompson estimate should land in the same neighbourhood as
  // the measurement, not at either degenerate end.
  const double est_mean = est_sum / static_cast<double>(est_count);
  EXPECT_GT(est_mean, 0.5);
  EXPECT_LE(est_mean, 1.0);
}

TEST(LshIndexTest, DeterministicForFixedSeed) {
  auto data = GenerateUniform({.n = 400, .dims = 8, .seed = 3});
  ASSERT_TRUE(data.ok());
  const double eps = 0.2;
  LshIndexParams params;
  params.tables = 5;
  params.seed = 0xabcdef;
  auto a = LshIndex::Build(*data, Config(eps), params);
  auto b = LshIndex::Build(*data, Config(eps), params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t q = 0; q < 16; ++q) {
    const float* query = data->Row(static_cast<PointId>(q * 11 % 400));
    std::vector<PointId> ra, rb;
    ASSERT_TRUE(a->RangeQuery(query, eps, &ra).ok());
    ASSERT_TRUE(b->RangeQuery(query, eps, &rb).ok());
    EXPECT_EQ(ra, rb) << "q" << q;
  }
  EXPECT_EQ(a->expected_candidates_per_query(),
            b->expected_candidates_per_query());
}

TEST(LshIndexTest, ValidatesParamsMetricAndEpsilon) {
  auto data = GenerateUniform({.n = 100, .dims = 4, .seed = 9});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  // Linf has no p-stable family here.
  EXPECT_FALSE(
      LshIndex::Build(*data, Config(eps, Metric::kLinf), LshIndexParams{})
          .ok());
  LshIndexParams zero_tables;
  zero_tables.tables = 0;
  EXPECT_FALSE(LshIndex::Build(*data, Config(eps), zero_tables).ok());
  LshIndexParams zero_hashes;
  zero_hashes.hashes_per_table = 0;
  EXPECT_FALSE(LshIndex::Build(*data, Config(eps), zero_hashes).ok());

  auto index = LshIndex::Build(*data, Config(eps), LshIndexParams{});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->ValidateQueryEpsilon(eps).ok());
  EXPECT_FALSE(index->ValidateQueryEpsilon(0.0).ok());
  EXPECT_FALSE(index->ValidateQueryEpsilon(eps * 2).ok());
  EXPECT_GT(index->total_bytes(), 0u);
}

TEST(LshBackendTest, AdapterBatchMatchesSoloAndReportsApproximate) {
  auto data = GenerateClustered(
      {.n = 600, .dims = 10, .clusters = 6, .sigma = 0.05, .seed = 13});
  ASSERT_TRUE(data.ok());
  const double eps = 0.2;
  LshIndexParams params;
  params.tables = 6;
  auto backend = LshBackend::Build(*data, Config(eps), params);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  EXPECT_EQ((*backend)->kind(), BackendKind::kLsh);
  EXPECT_FALSE((*backend)->exact());
  EXPECT_FALSE((*backend)->supports_self_join());
  EXPECT_GT((*backend)->EstimatedQueryCost(eps, 10.0), 0.0);
  EXPECT_GT((*backend)->ExpectedRecall(eps), 0.0);
  EXPECT_LT((*backend)->ExpectedRecall(eps), 1.0);

  std::vector<RangeQuerySpec> specs;
  for (size_t i = 0; i < 24; ++i) {
    specs.push_back(
        RangeQuerySpec{data->Row(static_cast<PointId>(i * 17 % 600)), eps});
  }
  std::vector<std::vector<PointId>> solo(specs.size());
  std::vector<double> solo_recalls(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE((*backend)
                    ->RangeQuery(specs[i].query, specs[i].epsilon, &solo[i],
                                 nullptr, &solo_recalls[i])
                    .ok());
  }
  std::vector<std::vector<PointId>> fused;
  std::vector<JoinStats> fused_stats;
  std::vector<double> fused_recalls;
  ASSERT_TRUE((*backend)
                  ->RangeQueryBatch(specs.data(), specs.size(), &fused,
                                    &fused_stats, &fused_recalls)
                  .ok());
  ASSERT_EQ(fused.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(solo[i], fused[i]) << "query " << i;
    EXPECT_EQ(solo_recalls[i], fused_recalls[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace simjoin
