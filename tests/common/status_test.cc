#include "common/status.h"

#include <string>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status st = Status::InvalidArgument("epsilon must be positive");
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: epsilon must be positive");
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  SIMJOIN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  SIMJOIN_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

}  // namespace

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  Result<int> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

}  // namespace
}  // namespace simjoin
