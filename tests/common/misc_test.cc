// Tests for timers, formatting helpers, logging, and pair sinks.

#include <regex>
#include <thread>

#include "common/logging.h"
#include "common/pair_sink.h"
#include "common/timer.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1e3, 1.0);
}

TEST(TimerTest, RestartResetsOrigin) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.015);
}

TEST(FormatSecondsTest, PicksUnitByMagnitude) {
  EXPECT_EQ(FormatSeconds(2.6e-9), "3 ns");
  EXPECT_EQ(FormatSeconds(5e-6), "5.0 us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(3.5), "3.500 s");
}

TEST(FormatBytesTest, PicksUnitByMagnitude) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatBytes(2ULL << 30), "2.00 GiB");
}

TEST(FormatCountTest, InsertsThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(LoggingTest, PrefixHasIso8601TimeAndThreadTag) {
  testing::internal::CaptureStderr();
  SIMJOIN_LOG(Error) << "format probe";
  const std::string line = testing::internal::GetCapturedStderr();
  // "[2026-08-06T12:34:56.789Z t07 ERROR file.cc:123] format probe"
  EXPECT_TRUE(std::regex_search(
      line,
      std::regex(R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z t\d{2} )"
                 R"(ERROR [^ ]+:\d+\] format probe)")))
      << "unexpected log line: " << line;
}

TEST(LoggingTest, ThreadTagIsStablePerThread) {
  auto tag_of = [] {
    testing::internal::CaptureStderr();
    SIMJOIN_LOG(Error) << "x";
    const std::string line = testing::internal::GetCapturedStderr();
    std::smatch m;
    EXPECT_TRUE(std::regex_search(line, m, std::regex(R"( (t\d{2}) )")));
    return m.size() > 1 ? m[1].str() : std::string();
  };
  const std::string first = tag_of();
  const std::string again = tag_of();
  EXPECT_EQ(first, again);  // same thread keeps its tag
  std::string other;
  std::thread([&] { other = tag_of(); }).join();
  EXPECT_NE(other, first);  // a fresh thread gets a different tag
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SIMJOIN_CHECK(1 == 2) << "impossible", "Check failed: 1 == 2");
  EXPECT_DEATH(SIMJOIN_CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(SIMJOIN_CHECK_LT(5, 5), "Check failed");
}

TEST(LoggingTest, PassingChecksDoNothing) {
  SIMJOIN_CHECK(true);
  SIMJOIN_CHECK_EQ(1, 1);
  SIMJOIN_CHECK_NE(1, 2);
  SIMJOIN_CHECK_LE(1, 1);
  SIMJOIN_CHECK_GE(2, 1);
  SIMJOIN_CHECK_GT(2, 1);
  SUCCEED();
}

TEST(PairSinkTest, CountingSinkCounts) {
  CountingSink sink;
  sink.Emit(1, 2);
  sink.Emit(3, 4);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(PairSinkTest, VectorSinkCollectsAndSorts) {
  VectorSink sink;
  sink.Emit(5, 6);
  sink.Emit(1, 2);
  ASSERT_EQ(sink.pairs().size(), 2u);
  const auto sorted = sink.Sorted();
  EXPECT_EQ(sorted.front(), (IdPair{1, 2}));
  EXPECT_EQ(sorted.back(), (IdPair{5, 6}));
}

TEST(PairSinkTest, CallbackSinkForwards) {
  int calls = 0;
  CallbackSink sink([&calls](PointId a, PointId b) {
    ++calls;
    EXPECT_EQ(a + 1, b);
  });
  sink.Emit(1, 2);
  sink.Emit(7, 8);
  EXPECT_EQ(calls, 2);
}

TEST(JoinStatsTest, MergeIsAdditive) {
  JoinStats a, b;
  a.candidate_pairs = 10;
  a.pairs_emitted = 3;
  b.candidate_pairs = 5;
  b.node_pairs_pruned = 2;
  a.Merge(b);
  EXPECT_EQ(a.candidate_pairs, 15u);
  EXPECT_EQ(a.pairs_emitted, 3u);
  EXPECT_EQ(a.node_pairs_pruned, 2u);
}

}  // namespace
}  // namespace simjoin
