#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleIsReusableBarrier) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  // WaitIdle may return between the outer task finishing and the inner one
  // being picked up; poll until both ran.
  for (int i = 0; i < 1000 && counter.load() < 2; ++i) {
    pool.WaitIdle();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace simjoin
