#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleIsReusableBarrier) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  // WaitIdle may return between the outer task finishing and the inner one
  // being picked up; poll until both ran.
  for (int i = 0; i < 1000 && counter.load() < 2; ++i) {
    pool.WaitIdle();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, WorkIsStolenAcrossWorkers) {
  // One task fans out many subtasks from inside a worker; they land on that
  // worker's deque, so any other worker that runs one must have stolen it.
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> runners;
  std::atomic<int> remaining{400};
  pool.Submit([&] {
    for (int i = 0; i < 400; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        {
          std::lock_guard<std::mutex> lock(mu);
          runners.insert(std::this_thread::get_id());
        }
        remaining.fetch_sub(1);
      });
    }
  });
  for (int i = 0; i < 10000 && remaining.load() > 0; ++i) {
    pool.WaitIdle();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(remaining.load(), 0);
  // On a single-core host the scheduler may legitimately let one worker eat
  // the whole deque, so only assert that every task ran.
  EXPECT_GE(runners.size(), 1u);
}

TEST(ThreadPoolTest, SharedReturnsSameInstancePerThreadCount) {
  ThreadPool& a = ThreadPool::Shared(2);
  ThreadPool& b = ThreadPool::Shared(2);
  ThreadPool& c = ThreadPool::Shared(3);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a.num_threads(), 2u);
  EXPECT_EQ(c.num_threads(), 3u);
  ThreadPool& hw = ThreadPool::Shared(0);
  EXPECT_GE(hw.num_threads(), 1u);
}

TEST(ThreadPoolTest, CurrentWorkerIndexDistinguishesWorkersFromOutsiders) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  std::atomic<bool> in_range{false};
  pool.Submit([&pool, &in_range] {
    in_range.store(pool.CurrentWorkerIndex() < pool.num_threads());
  });
  pool.WaitIdle();
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, TryRunOneTaskFromOutsideExecutesPendingWork) {
  // Stall both workers so submitted work stays queued, then drain it from
  // the test thread via TryRunOneTask.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> stalled{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release, &stalled] {
      stalled.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  // Both stall tasks must be in the workers' hands before more work is
  // queued, or this thread could pick a stall task up itself and spin.
  while (stalled.load() < 2) std::this_thread::yield();
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  while (counter.load() < 8) {
    if (!pool.TryRunOneTask()) std::this_thread::yield();
  }
  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, HasIdleWorkersReflectsSleepingWorkers) {
  ThreadPool pool(3);
  // Give the workers a moment to go to sleep on the empty pool.
  for (int i = 0; i < 2000 && !pool.HasIdleWorkers(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.HasIdleWorkers());
}

TEST(TaskGroupTest, WaitBlocksUntilAllTasksFinish) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Run([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), 64);
  }
}

TEST(TaskGroupTest, NestedGroupsFromWorkerThreadsComplete) {
  // Wait() from inside a worker must help run tasks instead of deadlocking
  // the pool; exercised with a group per worker-spawned subtree.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Run([&pool, &counter] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 16; ++j) {
        inner.Run([&counter] { counter.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(counter.load(), 8 * 16);
}

TEST(TaskGroupTest, DestructorWaits) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Run([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        counter.fetch_add(1);
      });
    }
  }  // ~TaskGroup waits
  EXPECT_EQ(counter.load(), 32);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      group.Run([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

}  // namespace
}  // namespace simjoin
