#include "common/simd_kernel.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/metric.h"
#include "common/rng.h"
#include "test_util.h"

namespace simjoin {
namespace {

struct KernelCase {
  Metric metric;
  size_t dims;
};

std::string CaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  return std::string(MetricName(info.param.metric)) + "_d" +
         std::to_string(info.param.dims);
}

class BatchKernelDifferentialTest : public ::testing::TestWithParam<KernelCase> {};

/// Every implementation path must emit exactly the same within/without
/// decision as the scalar double-precision reference, for every candidate.
TEST_P(BatchKernelDifferentialTest, MatchesScalarReferenceOnRandomData) {
  const auto [metric, dims] = GetParam();
  Rng rng(0x5eed + dims);
  DistanceKernel reference(metric);

  const size_t n = 512;
  Dataset data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform());
    }
  }

  const KernelPath paths[] = {KernelPath::kScalar, KernelPath::kPortable,
                              KernelPath::kAvx2, KernelPath::kAvx512};
  for (double eps : {0.05, 0.2, 0.7}) {
    for (KernelPath path : paths) {
      BatchDistanceKernel batch(metric, dims, eps, path);
      std::vector<const float*> rows;
      for (size_t i = 0; i < n; ++i) {
        rows.push_back(data.Row(static_cast<PointId>(i)));
      }
      std::vector<uint8_t> mask(n);
      for (size_t q = 0; q < 64; ++q) {
        const float* query = data.Row(static_cast<PointId>(q * 7 % n));
        size_t expected_kept = 0;
        batch.FilterWithinEpsilon(query, rows.data(), n, mask.data());
        for (size_t i = 0; i < n; ++i) {
          const bool expected = reference.WithinEpsilon(query, rows[i], dims, eps);
          expected_kept += expected;
          ASSERT_EQ(expected, mask[i] != 0)
              << "path=" << static_cast<int>(path)
              << " metric=" << MetricName(metric) << " dims=" << dims
              << " eps=" << eps << " candidate=" << i;
        }
        EXPECT_EQ(expected_kept,
                  batch.CountWithinEpsilon(query, rows.data(), n));
      }
    }
  }
}

/// The strided entry point must produce byte-identical masks to the gathered
/// one over the same rows, on every path: both are instantiations of the same
/// templated scoring code, and this pins that equivalence down.
TEST_P(BatchKernelDifferentialTest, StridedMatchesGatheredExactly) {
  const auto [metric, dims] = GetParam();
  Rng rng(0xa11e + dims);

  const size_t n = 300;
  Dataset data(n, dims);  // contiguous row-major: stride == dims
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform());
    }
  }
  std::vector<const float*> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(data.Row(static_cast<PointId>(i)));
  }

  for (double eps : {0.05, 0.2, 0.7}) {
    for (KernelPath path : {KernelPath::kScalar, KernelPath::kPortable,
                            KernelPath::kAvx2, KernelPath::kAvx512}) {
      BatchDistanceKernel gathered(metric, dims, eps, path);
      BatchDistanceKernel strided(metric, dims, eps, path);
      std::vector<uint8_t> gathered_mask(n), strided_mask(n);
      for (size_t q = 0; q < 32; ++q) {
        const float* query = data.Row(static_cast<PointId>(q * 11 % n));
        const size_t kept_g =
            gathered.FilterWithinEpsilon(query, rows.data(), n,
                                         gathered_mask.data());
        // Exercise both the no-prefetch default and an explicit prefetch
        // target (the next tile in a real sweep).
        const size_t kept_s = strided.FilterWithinEpsilonStrided(
            query, data.Row(0), dims, n, strided_mask.data(),
            q % 2 == 0 ? data.Row(0) : nullptr);
        EXPECT_EQ(kept_g, kept_s);
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(gathered_mask[i], strided_mask[i])
              << "path=" << static_cast<int>(path)
              << " metric=" << MetricName(metric) << " dims=" << dims
              << " eps=" << eps << " candidate=" << i;
        }
      }
      EXPECT_EQ(gathered.scalar_fallbacks(), strided.scalar_fallbacks());
    }
  }
}

/// FilterStridedRunAndEmit must report the same pairs and counters as the
/// equivalent gathered-tile loop over the same candidate run.
TEST_P(BatchKernelDifferentialTest, StridedRunEmitsSamePairsAsTiles) {
  const auto [metric, dims] = GetParam();
  Rng rng(0xbeef + dims);

  const size_t n = 100;
  Dataset data(n, dims);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.MutableRow(static_cast<PointId>(i));
    for (size_t d = 0; d < dims; ++d) {
      row[d] = static_cast<float>(rng.Uniform() * 0.3);
    }
  }
  std::vector<PointId> cand_ids;
  for (size_t i = 0; i < n; ++i) cand_ids.push_back(static_cast<PointId>(i));

  const double eps = 0.2;
  for (const bool canonical : {false, true}) {
    BatchDistanceKernel tile_kernel(metric, dims, eps);
    BatchDistanceKernel run_kernel(metric, dims, eps);
    VectorSink tile_sink, run_sink;
    JoinStats tile_stats, run_stats;
    const PointId query_id = 55;
    const float* query = data.Row(query_id);

    CandidateTile tile;
    for (size_t i = 0; i < n; ++i) {
      tile.Add(cand_ids[i], data.Row(cand_ids[i]));
      if (tile.full()) {
        FilterTileAndEmit(tile_kernel, query_id, query, tile, canonical,
                          tile_sink, tile_stats);
      }
    }
    FilterTileAndEmit(tile_kernel, query_id, query, tile, canonical,
                      tile_sink, tile_stats);

    const size_t emitted = FilterStridedRunAndEmit(
        run_kernel, query_id, query, data.Row(0), dims, cand_ids.data(), n,
        canonical, run_sink, run_stats);

    EXPECT_EQ(emitted, tile_sink.pairs().size());
    EXPECT_EQ(tile_sink.Sorted(), run_sink.Sorted());
    EXPECT_EQ(tile_stats.candidate_pairs, run_stats.candidate_pairs);
    EXPECT_EQ(tile_stats.distance_calls, run_stats.distance_calls);
    EXPECT_EQ(tile_stats.pairs_emitted, run_stats.pairs_emitted);
  }
}

/// Candidates sitting exactly on the epsilon boundary must be classified
/// "within" (the predicate is <=), on every path.  eps = 0.25 and axis-offset
/// constructions keep the true distance exactly representable, so any float
/// rounding inside a vector path would flip the answer if the exact-rescue
/// band failed to catch it.
TEST_P(BatchKernelDifferentialTest, ExactBoundaryPointsStayWithin) {
  const auto [metric, dims] = GetParam();
  const double eps = 0.25;
  DistanceKernel reference(metric);

  std::vector<float> query(dims, 0.5f);
  // Candidate 0: offset eps along one axis (dist == eps in every metric).
  // Candidate 1: offset just beyond.  Candidate 2: identical point.
  // Candidate 3: for L1/L2, spread across axes keeping the distance == eps:
  //   L1: four axes offset eps/4; L2: four axes offset eps/2 (sum of squares
  //   = 4 * eps^2/4 = eps^2).  Falls back to the axis construction at d < 4.
  std::vector<std::vector<float>> cands(4, std::vector<float>(dims, 0.5f));
  cands[0][0] += 0.25f;
  cands[1][0] += 0.2500152587890625f;  // 0.25 + 2^-16, exactly representable
  if (dims >= 4) {
    const float step = metric == Metric::kL2   ? 0.125f
                       : metric == Metric::kL1 ? 0.0625f
                                               : 0.25f;
    for (size_t d = 0; d < 4; ++d) cands[3][d] += (d % 2 ? -step : step);
    if (metric == Metric::kLinf) {
      // Only one axis may reach eps for Linf; damp the others.
      cands[3][1] = 0.5f + 0.125f;
      cands[3][2] = 0.5f - 0.0625f;
      cands[3][3] = 0.5f;
    }
  } else {
    cands[3][0] += 0.25f;
  }

  const float* rows[4] = {cands[0].data(), cands[1].data(), cands[2].data(),
                          cands[3].data()};
  for (KernelPath path : {KernelPath::kScalar, KernelPath::kPortable,
                          KernelPath::kAvx2, KernelPath::kAvx512}) {
    BatchDistanceKernel batch(metric, dims, eps, path);
    uint8_t mask[4];
    batch.FilterWithinEpsilon(query.data(), rows, 4, mask);
    for (size_t i = 0; i < 4; ++i) {
      const bool expected =
          reference.WithinEpsilon(query.data(), rows[i], dims, eps);
      EXPECT_EQ(expected, mask[i] != 0)
          << "path=" << static_cast<int>(path) << " candidate=" << i;
    }
    EXPECT_EQ(1u, mask[0]) << "on-boundary pair must be within";
    EXPECT_EQ(0u, mask[1]) << "just-outside pair must be excluded";
    EXPECT_EQ(1u, mask[2]) << "identical point must be within";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, BatchKernelDifferentialTest,
    ::testing::Values(KernelCase{Metric::kL1, 4}, KernelCase{Metric::kL1, 16},
                      KernelCase{Metric::kL1, 64}, KernelCase{Metric::kL2, 4},
                      KernelCase{Metric::kL2, 16}, KernelCase{Metric::kL2, 64},
                      KernelCase{Metric::kLinf, 4},
                      KernelCase{Metric::kLinf, 16},
                      KernelCase{Metric::kLinf, 64}),
    CaseName);

TEST(BatchKernelTest, CountersTallyBatchesAndFallbacks) {
  BatchDistanceKernel scalar(Metric::kL2, 8, 0.1, KernelPath::kScalar);
  Dataset data(64, 8);
  std::vector<const float*> rows;
  for (size_t i = 0; i < 64; ++i) rows.push_back(data.Row(static_cast<PointId>(i)));
  uint8_t mask[64];
  scalar.FilterWithinEpsilon(rows[0], rows.data(), 64, mask);
  EXPECT_EQ(0u, scalar.simd_batches());
  EXPECT_EQ(64u, scalar.scalar_fallbacks());

  BatchDistanceKernel portable(Metric::kL2, 8, 0.1, KernelPath::kPortable);
  portable.FilterWithinEpsilon(rows[0], rows.data(), 64, mask);
  EXPECT_EQ(1u, portable.simd_batches());
}

TEST(BufferedSinkTest, FlushesOnCapacityAndExplicitly) {
  VectorSink target;
  BufferedSink buffered(&target, /*capacity=*/4);
  for (PointId i = 0; i < 5; ++i) buffered.Emit(i, i + 1);
  EXPECT_EQ(4u, target.pairs().size());  // one capacity flush happened
  buffered.Flush();
  EXPECT_EQ(5u, target.pairs().size());
  EXPECT_EQ(IdPair(4, 5), target.pairs().back());
}

TEST(BufferedSinkTest, EmitBatchAppendsAndDestructorFlushes) {
  VectorSink target;
  {
    BufferedSink buffered(&target, /*capacity=*/16);
    const IdPair batch[3] = {{1, 2}, {3, 4}, {5, 6}};
    buffered.EmitBatch(std::span<const IdPair>(batch, 3));
    EXPECT_TRUE(target.pairs().empty());
  }
  EXPECT_EQ(3u, target.pairs().size());
}

TEST(PairSinkTest, DefaultEmitBatchForwardsToEmit) {
  std::vector<IdPair> got;
  CallbackSink sink([&got](PointId a, PointId b) { got.emplace_back(a, b); });
  const IdPair batch[2] = {{7, 8}, {9, 10}};
  sink.EmitBatch(std::span<const IdPair>(batch, 2));
  EXPECT_EQ(2u, got.size());
  EXPECT_EQ(IdPair(9, 10), got[1]);
}

}  // namespace
}  // namespace simjoin
