#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(SplitMix64Test, ProducesKnownGoodDispersion) {
  uint64_t state = 42;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(SplitMix64(&state));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversFullRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10u)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = rng.Exponential(4.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(29);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, ZipfSkewFavorsLowRanks) {
  Rng rng(31);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(5, 1.5)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingletonAreNoOps) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.Next() == child.Next());
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace simjoin
