#include "common/bounding_box.h"

#include <vector>

#include "common/metric.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

BoundingBox MakeBox(std::vector<float> lo, std::vector<float> hi) {
  BoundingBox box(lo.size());
  box.ExtendPoint(lo.data());
  box.ExtendPoint(hi.data());
  return box;
}

TEST(BoundingBoxTest, EmptyBoxBehaviour) {
  BoundingBox box(3);
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.dims(), 3u);
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.Margin(), 0.0);
  const float p[] = {0.0f, 0.0f, 0.0f};
  EXPECT_FALSE(box.ContainsPoint(p));
  EXPECT_EQ(box.ToString(), "[empty]");
}

TEST(BoundingBoxTest, FromPointIsDegenerate) {
  const float p[] = {0.25f, 0.75f};
  const BoundingBox box = BoundingBox::FromPoint(p, 2);
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.ContainsPoint(p));
  EXPECT_EQ(box.Volume(), 0.0);
}

TEST(BoundingBoxTest, ExtendPointGrowsBounds) {
  BoundingBox box(2);
  const float a[] = {0.2f, 0.8f};
  const float b[] = {0.6f, 0.1f};
  box.ExtendPoint(a);
  box.ExtendPoint(b);
  EXPECT_FLOAT_EQ(box.lo(0), 0.2f);
  EXPECT_FLOAT_EQ(box.hi(0), 0.6f);
  EXPECT_FLOAT_EQ(box.lo(1), 0.1f);
  EXPECT_FLOAT_EQ(box.hi(1), 0.8f);
}

TEST(BoundingBoxTest, ExtendBoxAbsorbsAndIgnoresEmpty) {
  BoundingBox box = MakeBox({0.0f, 0.0f}, {0.5f, 0.5f});
  box.ExtendBox(MakeBox({0.4f, 0.4f}, {0.9f, 0.6f}));
  EXPECT_FLOAT_EQ(box.hi(0), 0.9f);
  BoundingBox empty(2);
  box.ExtendBox(empty);
  EXPECT_FLOAT_EQ(box.hi(0), 0.9f);
  // Extending an empty box with a non-empty one adopts its bounds.
  BoundingBox fresh(2);
  fresh.ExtendBox(box);
  EXPECT_FALSE(fresh.IsEmpty());
  EXPECT_FLOAT_EQ(fresh.lo(0), 0.0f);
}

TEST(BoundingBoxTest, ContainsBoxAndIntersects) {
  const BoundingBox outer = MakeBox({0.0f, 0.0f}, {1.0f, 1.0f});
  const BoundingBox inner = MakeBox({0.2f, 0.2f}, {0.4f, 0.4f});
  const BoundingBox disjoint = MakeBox({2.0f, 2.0f}, {3.0f, 3.0f});
  const BoundingBox touching = MakeBox({1.0f, 0.0f}, {2.0f, 1.0f});
  EXPECT_TRUE(outer.ContainsBox(inner));
  EXPECT_FALSE(inner.ContainsBox(outer));
  EXPECT_TRUE(outer.Intersects(inner));
  EXPECT_FALSE(outer.Intersects(disjoint));
  EXPECT_TRUE(outer.Intersects(touching));  // closed bounds
}

TEST(BoundingBoxTest, MinDistanceZeroWhenOverlapping) {
  const BoundingBox a = MakeBox({0.0f, 0.0f}, {0.5f, 0.5f});
  const BoundingBox b = MakeBox({0.4f, 0.4f}, {0.9f, 0.9f});
  for (Metric m : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    EXPECT_EQ(a.MinDistance(b, m), 0.0);
  }
}

TEST(BoundingBoxTest, MinDistanceKnownGaps) {
  const BoundingBox a = MakeBox({0.0f, 0.0f}, {1.0f, 1.0f});
  const BoundingBox b = MakeBox({4.0f, 5.0f}, {6.0f, 7.0f});
  // Gaps: 3 along dim0, 4 along dim1.
  EXPECT_DOUBLE_EQ(a.MinDistance(b, Metric::kL1), 7.0);
  EXPECT_DOUBLE_EQ(a.MinDistance(b, Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(a.MinDistance(b, Metric::kLinf), 4.0);
  EXPECT_DOUBLE_EQ(b.MinDistance(a, Metric::kL2), 5.0);  // symmetric
}

TEST(BoundingBoxTest, MinDistanceToPointMatchesBoxOfPoint) {
  Rng rng(55);
  const size_t dims = 4;
  std::vector<float> lo(dims), hi(dims), p(dims);
  for (int trial = 0; trial < 500; ++trial) {
    BoundingBox box(dims);
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = rng.UniformFloat();
      hi[d] = lo[d] + rng.UniformFloat() * 0.3f;
      p[d] = rng.UniformFloat() * 2.0f - 0.5f;
    }
    box.ExtendPoint(lo.data());
    box.ExtendPoint(hi.data());
    const BoundingBox point_box = BoundingBox::FromPoint(p.data(), dims);
    for (Metric m : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
      EXPECT_NEAR(box.MinDistanceToPoint(p.data(), dims, m),
                  box.MinDistance(point_box, m), 1e-9);
    }
  }
}

TEST(BoundingBoxTest, MinDistanceLowerBoundsPointDistances) {
  // The pruning soundness property: for random boxes built from point sets,
  // MinDistance never exceeds the distance of any cross pair.
  Rng rng(77);
  const size_t dims = 3;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<float>> pa(4, std::vector<float>(dims));
    std::vector<std::vector<float>> pb(4, std::vector<float>(dims));
    BoundingBox ba(dims), bb(dims);
    for (auto& p : pa) {
      for (auto& v : p) v = rng.UniformFloat();
      ba.ExtendPoint(p.data());
    }
    for (auto& p : pb) {
      for (auto& v : p) v = rng.UniformFloat() + 0.5f;
      bb.ExtendPoint(p.data());
    }
    for (Metric m : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
      const double lower = ba.MinDistance(bb, m);
      DistanceKernel kernel(m);
      for (const auto& x : pa) {
        for (const auto& y : pb) {
          EXPECT_LE(lower, kernel.Distance(x.data(), y.data(), dims) + 1e-9);
        }
      }
    }
  }
}

TEST(BoundingBoxTest, MarginVolumeOverlap) {
  const BoundingBox a = MakeBox({0.0f, 0.0f}, {2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  EXPECT_DOUBLE_EQ(a.Volume(), 6.0);
  const BoundingBox b = MakeBox({1.0f, 1.0f}, {3.0f, 2.0f});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  const BoundingBox c = MakeBox({5.0f, 5.0f}, {6.0f, 6.0f});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(BoundingBoxTest, ToStringFormatsBounds) {
  const BoundingBox a = MakeBox({0.0f}, {1.0f});
  EXPECT_EQ(a.ToString(), "[0,1]");
}

}  // namespace
}  // namespace simjoin
