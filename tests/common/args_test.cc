#include "common/args.h"

#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

ArgParser MakeParser() {
  ArgParser parser("test program");
  parser.AddFlag("n", "100", "point count");
  parser.AddFlag("epsilon", "0.1", "join radius");
  parser.AddFlag("name", "uniform", "workload name");
  parser.AddFlag("verbose", "false", "chatty output");
  return parser;
}

TEST(ArgParserTest, DefaultsApplyWithoutArgs) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_EQ(parser.GetInt("n"), 100);
  EXPECT_DOUBLE_EQ(parser.GetDouble("epsilon"), 0.1);
  EXPECT_EQ(parser.GetString("name"), "uniform");
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(ArgParserTest, EqualsSyntax) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "--n=250", "--epsilon=0.05"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(parser.GetInt("n"), 250);
  EXPECT_DOUBLE_EQ(parser.GetDouble("epsilon"), 0.05);
}

TEST(ArgParserTest, SpaceSeparatedSyntax) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "--name", "clustered"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(parser.GetString("name"), "clustered");
}

TEST(ArgParserTest, BoolAcceptsManySpellings) {
  for (const char* spelling : {"1", "true", "YES", "On"}) {
    ArgParser parser = MakeParser();
    const std::string arg = std::string("--verbose=") + spelling;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(parser.Parse(2, argv).ok());
    EXPECT_TRUE(parser.GetBool("verbose")) << spelling;
  }
}

TEST(ArgParserTest, UnknownFlagFails) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "--bogus=1"};
  const Status st = parser.Parse(2, argv);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ArgParserTest, MissingValueFails) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(ArgParserTest, HelpRequested) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_TRUE(parser.help_requested());
  EXPECT_NE(parser.Help().find("epsilon"), std::string::npos);
}

TEST(ArgParserTest, PositionalArgumentsCollected) {
  ArgParser parser = MakeParser();
  const char* argv[] = {"prog", "input.csv", "--n=5", "output.csv"};
  ASSERT_TRUE(parser.Parse(4, argv).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.csv");
  EXPECT_EQ(parser.positional()[1], "output.csv");
}

TEST(ArgParserDeathTest, UndeclaredFlagAccessAborts) {
  ArgParser parser = MakeParser();
  EXPECT_DEATH(parser.GetString("nope"), "was not declared");
}

TEST(ArgParserDeathTest, MalformedIntegerAborts) {
  for (const char* bad : {"abc", "", "12x", "1.5"}) {
    ArgParser parser = MakeParser();
    const std::string arg = std::string("--n=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(parser.Parse(2, argv).ok());
    EXPECT_DEATH(parser.GetInt("n"), "expects an integer") << bad;
  }
}

TEST(ArgParserDeathTest, MalformedDoubleAborts) {
  for (const char* bad : {"abc", "", "0.5q"}) {
    ArgParser parser = MakeParser();
    const std::string arg = std::string("--epsilon=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(parser.Parse(2, argv).ok());
    EXPECT_DEATH(parser.GetDouble("epsilon"), "expects a number") << bad;
  }
}

}  // namespace
}  // namespace simjoin
