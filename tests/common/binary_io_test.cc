#include "common/binary_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripIsExact) {
  auto ds = GenerateUniform({.n = 1234, .dims = 7, .seed = 1});
  ASSERT_TRUE(ds.ok());
  const std::string path = TempPath("roundtrip.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*ds, path).ok());
  auto loaded = ReadBinaryDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), ds->size());
  EXPECT_EQ(loaded->dims(), ds->dims());
  EXPECT_EQ(loaded->flat(), ds->flat());  // bit-exact, unlike CSV
  std::remove(path.c_str());
}

TEST(BinaryIoTest, WriteRejectsDimensionlessDataset) {
  Dataset empty;
  EXPECT_FALSE(WriteBinaryDataset(empty, TempPath("x.sjdb")).ok());
}

TEST(BinaryIoTest, ReadRejectsMissingAndCorruptFiles) {
  EXPECT_EQ(ReadBinaryDataset(TempPath("missing.sjdb")).status().code(),
            StatusCode::kIoError);
  const std::string path = TempPath("corrupt.sjdb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset";
  }
  EXPECT_EQ(ReadBinaryDataset(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReaderStreamsInBatches) {
  auto ds = GenerateUniform({.n = 1000, .dims = 3, .seed = 2});
  const std::string path = TempPath("batched.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*ds, path).ok());

  BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.total_points(), 1000u);
  EXPECT_EQ(reader.dims(), 3u);

  Dataset batch;
  PointId first_id = 0;
  size_t total = 0;
  size_t batches = 0;
  while (!reader.AtEnd()) {
    ASSERT_TRUE(reader.ReadBatch(64, &batch, &first_id).ok());
    EXPECT_EQ(first_id, total);
    // Batch contents match the original rows.
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(batch.Row(static_cast<PointId>(i)),
                               ds->Row(static_cast<PointId>(total + i)),
                               3 * sizeof(float)));
    }
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(batches, (1000u + 63) / 64);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReaderRejectsBadBatchArgs) {
  auto ds = GenerateUniform({.n = 10, .dims = 2, .seed = 3});
  const std::string path = TempPath("args.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*ds, path).ok());
  BinaryDatasetReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Dataset batch;
  PointId first_id;
  EXPECT_FALSE(reader.ReadBatch(0, &batch, &first_id).ok());
  EXPECT_FALSE(reader.ReadBatch(5, nullptr, &first_id).ok());
  EXPECT_FALSE(reader.ReadBatch(5, &batch, nullptr).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncatedPayloadIsIoError) {
  auto ds = GenerateUniform({.n = 100, .dims = 4, .seed = 4});
  const std::string path = TempPath("truncated.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(*ds, path).ok());
  // Chop the file in half (keeping the header).
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadBinaryDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// Builds a file with an arbitrary header and payload size, bypassing the
// writer's invariants, to probe the reader's validation.
void WriteRawFile(const std::string& path, uint64_t num_points, uint64_t dims,
                  size_t payload_bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const uint32_t magic = 0x534a4442;
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&num_points), sizeof(num_points));
  out.write(reinterpret_cast<const char*>(&dims), sizeof(dims));
  const std::vector<char> payload(payload_bytes, 0);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

TEST(BinaryIoTest, ShortPayloadRejectedAtOpen) {
  // The size check must fire at Open, before anything allocates
  // num_points * dims floats from the (lying) header.
  const std::string path = TempPath("short.sjdb");
  WriteRawFile(path, /*num_points=*/100, /*dims=*/4, /*payload_bytes=*/64);
  BinaryDatasetReader reader;
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TrailingBytesRejectedAtOpen) {
  const std::string path = TempPath("long.sjdb");
  WriteRawFile(path, /*num_points=*/2, /*dims=*/2, /*payload_bytes=*/17);
  BinaryDatasetReader reader;
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, HostileHeaderSizesRejected) {
  const std::string path = TempPath("hostile.sjdb");
  // num_points * dims * 4 wraps around u64; must not turn into a small
  // (seemingly satisfiable) expectation.
  WriteRawFile(path, ~uint64_t{0} / 4, 8, 32);
  {
    BinaryDatasetReader reader;
    EXPECT_EQ(reader.Open(path).code(), StatusCode::kInvalidArgument);
  }

  // Absurd dimensionality is rejected outright.
  WriteRawFile(path, 1, uint64_t{1} << 40, 32);
  {
    BinaryDatasetReader reader;
    EXPECT_EQ(reader.Open(path).code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyDatasetWithDimsRoundTrips) {
  Dataset empty(0, 5);
  const std::string path = TempPath("empty.sjdb");
  ASSERT_TRUE(WriteBinaryDataset(empty, path).ok());
  auto loaded = ReadBinaryDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->dims(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simjoin
