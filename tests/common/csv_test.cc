#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(CsvTest, RoundTripPreservesValues) {
  Dataset ds;
  ds.Append(std::vector<float>{0.125f, -3.5f, 7.0f});
  ds.Append(std::vector<float>{1.0f, 2.0f, 3.0f});
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  ASSERT_EQ(loaded->dims(), 3u);
  for (PointId i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(loaded->Row(i)[j], ds.Row(i)[j]);
    }
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  {
    std::ofstream out(path);
    out << "1,2\n\n3,4\n";
  }
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3,4,5\n";
  }
  auto loaded = ReadCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsNonNumericCells) {
  const std::string path = TempPath("alpha.csv");
  {
    std::ofstream out(path);
    out << "1,banana\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsEmptyFile) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadMissingFileIsIoError) {
  auto loaded = ReadCsv(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, WriteToUnwritablePathIsIoError) {
  Dataset ds(1, 1);
  EXPECT_EQ(WriteCsv(ds, "/nonexistent_dir_xyz/out.csv").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace simjoin
