#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(RunningStatsTest, EmptySummaryIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.Add(v);
    (i < 37 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats b = a;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.75), 7.5);
}

TEST(PercentileNearestRankTest, ReturnsObservedValues) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 0.25), 0.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 0.51), 10.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 1.0), 10.0);
  EXPECT_EQ(PercentileNearestRank({}, 0.5), 0.0);
}

TEST(PercentileNearestRankTest, AgreesWithInterpolationOnRandomData) {
  std::mt19937 gen(42);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(1 + static_cast<size_t>(gen() % 200));
    for (double& x : v) x = dist(gen);
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    double max_gap = 0.0;
    for (size_t i = 1; i < sorted.size(); ++i) {
      max_gap = std::max(max_gap, sorted[i] - sorted[i - 1]);
    }
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      const double interp = Percentile(v, q);
      const double nearest = PercentileNearestRank(v, q);
      // Nearest-rank must pick an actual sample...
      EXPECT_TRUE(std::binary_search(sorted.begin(), sorted.end(), nearest))
          << "q=" << q << " n=" << v.size();
      // ...and the two estimators can differ by at most one sample gap.
      EXPECT_LE(std::abs(interp - nearest), max_gap + 1e-12)
          << "q=" << q << " n=" << v.size();
    }
    // The extremes are exact for both estimators.
    EXPECT_DOUBLE_EQ(Percentile(v, 0.0), sorted.front());
    EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 1.0), sorted.back());
  }
}

}  // namespace
}  // namespace simjoin
