#include "common/dataset.h"

#include <vector>

#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(DatasetTest, DefaultIsEmpty) {
  Dataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_EQ(ds.dims(), 0u);
}

TEST(DatasetTest, SizedConstructorZeroInitialises) {
  Dataset ds(3, 4);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dims(), 4u);
  for (PointId i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(ds.Row(i)[j], 0.0f);
  }
}

TEST(DatasetTest, FromFlatHappyPath) {
  auto r = Dataset::FromFlat({1, 2, 3, 4, 5, 6}, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->Row(1)[2], 6.0f);
}

TEST(DatasetTest, FromFlatRejectsBadShapes) {
  EXPECT_FALSE(Dataset::FromFlat({1, 2, 3}, 2).ok());
  EXPECT_FALSE(Dataset::FromFlat({1, 2}, 0).ok());
}

TEST(DatasetTest, AppendDefinesDimsOnFirstRow) {
  Dataset ds;
  const std::vector<float> row{0.1f, 0.2f};
  ds.Append(row);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_EQ(ds.size(), 1u);
  ds.Append(std::vector<float>{0.3f, 0.4f});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.Row(1)[0], 0.3f);
}

TEST(DatasetTest, MutableRowWritesThrough) {
  Dataset ds(2, 2);
  ds.MutableRow(1)[1] = 9.0f;
  EXPECT_EQ(ds.Row(1)[1], 9.0f);
}

TEST(DatasetTest, RowSpanHasCorrectExtent) {
  Dataset ds(1, 5);
  EXPECT_EQ(ds.RowSpan(0).size(), 5u);
}

TEST(DatasetTest, ColumnMinMax) {
  Dataset ds;
  ds.Append(std::vector<float>{1.0f, 5.0f});
  ds.Append(std::vector<float>{3.0f, 2.0f});
  ds.Append(std::vector<float>{-1.0f, 4.0f});
  const auto mins = ds.ColumnMin();
  const auto maxs = ds.ColumnMax();
  EXPECT_EQ(mins, (std::vector<float>{-1.0f, 2.0f}));
  EXPECT_EQ(maxs, (std::vector<float>{3.0f, 5.0f}));
}

TEST(DatasetTest, ColumnMinMaxEmpty) {
  Dataset ds;
  EXPECT_TRUE(ds.ColumnMin().empty());
  EXPECT_TRUE(ds.ColumnMax().empty());
}

TEST(DatasetTest, NormalizeToUnitCubeRescalesColumns) {
  Dataset ds;
  ds.Append(std::vector<float>{0.0f, 10.0f});
  ds.Append(std::vector<float>{5.0f, 20.0f});
  ds.Append(std::vector<float>{10.0f, 30.0f});
  const auto info = ds.NormalizeToUnitCube();
  EXPECT_TRUE(ds.AllWithin(0.0f, 1.0f));
  EXPECT_FLOAT_EQ(ds.Row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.Row(1)[0], 0.5f);
  EXPECT_FLOAT_EQ(ds.Row(2)[1], 1.0f);
  EXPECT_EQ(info.min, (std::vector<float>{0.0f, 10.0f}));
  EXPECT_EQ(info.max, (std::vector<float>{10.0f, 30.0f}));
}

TEST(DatasetTest, NormalizeConstantColumnMapsToCenter) {
  Dataset ds;
  ds.Append(std::vector<float>{7.0f, 1.0f});
  ds.Append(std::vector<float>{7.0f, 2.0f});
  ds.NormalizeToUnitCube();
  EXPECT_FLOAT_EQ(ds.Row(0)[0], 0.5f);
  EXPECT_FLOAT_EQ(ds.Row(1)[0], 0.5f);
}

TEST(DatasetTest, AllWithinDetectsOutliers) {
  Dataset ds;
  ds.Append(std::vector<float>{0.5f, 1.5f});
  EXPECT_FALSE(ds.AllWithin(0.0f, 1.0f));
  EXPECT_TRUE(ds.AllWithin(0.0f, 2.0f));
}

TEST(DatasetTest, ResetReplacesContents) {
  Dataset ds(2, 3);
  ds.Reset(5, 2);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.dims(), 2u);
}

TEST(DatasetTest, ClearKeepsDims) {
  Dataset ds(2, 3);
  ds.Clear();
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.dims(), 3u);
}

TEST(DatasetTest, TruncateDropsTrailingRows) {
  Dataset ds;
  ds.Append(std::vector<float>{1.0f, 2.0f});
  ds.Append(std::vector<float>{3.0f, 4.0f});
  ds.Append(std::vector<float>{5.0f, 6.0f});
  ds.Truncate(2);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_EQ(ds.Row(1)[0], 3.0f);
  ds.Truncate(0);
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.dims(), 2u);
}

TEST(DatasetTest, SelectCopiesRowsInOrder) {
  Dataset ds;
  ds.Append(std::vector<float>{1.0f, 2.0f});
  ds.Append(std::vector<float>{3.0f, 4.0f});
  ds.Append(std::vector<float>{5.0f, 6.0f});
  const std::vector<PointId> ids{2, 0, 2};
  const Dataset subset = ds.Select(ids);
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.Row(0)[0], 5.0f);
  EXPECT_EQ(subset.Row(1)[0], 1.0f);
  EXPECT_EQ(subset.Row(2)[1], 6.0f);
}

TEST(DatasetTest, ConcatAppendsAllRows) {
  Dataset a;
  a.Append(std::vector<float>{1.0f, 2.0f});
  Dataset b;
  b.Append(std::vector<float>{3.0f, 4.0f});
  b.Append(std::vector<float>{5.0f, 6.0f});
  a.Concat(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Row(2)[1], 6.0f);
  // Concat into an empty dataset adopts dims.
  Dataset empty;
  empty.Concat(b);
  EXPECT_EQ(empty.size(), 2u);
  EXPECT_EQ(empty.dims(), 2u);
  // Concat of an empty dataset is a no-op.
  Dataset before = a;
  a.Concat(Dataset{});
  EXPECT_EQ(a.size(), before.size());
}

TEST(DatasetDeathTest, ConcatDimsMismatchAborts) {
  Dataset a(1, 2), b(1, 3);
  EXPECT_DEATH(a.Concat(b), "mismatch");
}

TEST(DatasetTest, MemoryUsageGrowsWithData) {
  Dataset small(10, 4);
  Dataset big(1000, 4);
  EXPECT_GT(big.MemoryUsageBytes(), small.MemoryUsageBytes());
}

TEST(DatasetDeathTest, RowOutOfRangeAborts) {
  Dataset ds(2, 2);
  EXPECT_DEATH(ds.Row(2), "Check failed");
}

TEST(DatasetDeathTest, AppendDimensionMismatchAborts) {
  Dataset ds(1, 2);
  EXPECT_DEATH(ds.Append(std::vector<float>{1.0f, 2.0f, 3.0f}),
               "dimensionality mismatch");
}

}  // namespace
}  // namespace simjoin
