#include "common/eigen.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(JacobiEigenTest, RejectsBadShapesAndAsymmetry) {
  EXPECT_FALSE(JacobiEigenSymmetric({}, 0).ok());
  EXPECT_FALSE(JacobiEigenSymmetric({1.0, 2.0, 3.0}, 2).ok());
  EXPECT_FALSE(JacobiEigenSymmetric({1.0, 2.0, 3.0, 4.0}, 2).ok());  // 2 != 3
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnSpectrum) {
  const std::vector<double> m{3.0, 0.0, 0.0,  //
                              0.0, 7.0, 0.0,  //
                              0.0, 0.0, 1.0};
  auto eigen = JacobiEigenSymmetric(m, 3);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 7.0, 1e-12);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-12);
  EXPECT_NEAR(eigen->values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto eigen = JacobiEigenSymmetric({2.0, 1.0, 1.0, 2.0}, 2);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eigen->values[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(eigen->vectors[0]), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::fabs(eigen->vectors[1]), inv_sqrt2, 1e-10);
}

TEST(JacobiEigenTest, RandomMatricesReconstructAndAreOrthonormal) {
  Rng rng(42);
  for (size_t n : {2u, 3u, 5u, 8u, 16u}) {
    // Random symmetric matrix.
    std::vector<double> m(n * n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        m[i * n + j] = m[j * n + i] = rng.Uniform(-2.0, 2.0);
      }
    }
    auto eigen = JacobiEigenSymmetric(m, n);
    ASSERT_TRUE(eigen.ok()) << "n=" << n;

    // Eigenvalues descending.
    for (size_t i = 1; i < n; ++i) {
      EXPECT_GE(eigen->values[i - 1], eigen->values[i] - 1e-12);
    }
    // Rows orthonormal.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        double dot = 0.0;
        for (size_t k = 0; k < n; ++k) {
          dot += eigen->vectors[i * n + k] * eigen->vectors[j * n + k];
        }
        EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9)
            << "n=" << n << " rows " << i << "," << j;
      }
    }
    // Reconstruction: A == sum_i lambda_i v_i v_i^T.
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
          acc += eigen->values[i] * eigen->vectors[i * n + r] *
                 eigen->vectors[i * n + c];
        }
        EXPECT_NEAR(acc, m[r * n + c], 1e-6) << "n=" << n;
      }
    }
    // Eigen equation: A v = lambda v for the top eigenpair.
    for (size_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (size_t c = 0; c < n; ++c) av += m[r * n + c] * eigen->vectors[c];
      EXPECT_NEAR(av, eigen->values[0] * eigen->vectors[r], 1e-6);
    }
  }
}

TEST(CovarianceMatrixTest, KnownTwoColumnCase) {
  // Columns: x = {0, 2}, y = {0, 4} -> var(x)=1, var(y)=4, cov=2.
  const std::vector<double> flat{0.0, 0.0, 2.0, 4.0};
  const auto cov = CovarianceMatrix(flat, 2, 2);
  EXPECT_NEAR(cov[0], 1.0, 1e-12);
  EXPECT_NEAR(cov[1], 2.0, 1e-12);
  EXPECT_NEAR(cov[2], 2.0, 1e-12);
  EXPECT_NEAR(cov[3], 4.0, 1e-12);
}

TEST(CovarianceMatrixTest, IndependentColumnsGiveDiagonal) {
  Rng rng(7);
  const size_t n = 50000, dims = 3;
  std::vector<double> flat(n * dims);
  for (auto& v : flat) v = rng.Uniform();
  const auto cov = CovarianceMatrix(flat, n, dims);
  for (size_t i = 0; i < dims; ++i) {
    EXPECT_NEAR(cov[i * dims + i], 1.0 / 12.0, 3e-3);  // var of U(0,1)
    for (size_t j = 0; j < dims; ++j) {
      if (i != j) {
        EXPECT_NEAR(cov[i * dims + j], 0.0, 3e-3);
      }
    }
  }
}

}  // namespace
}  // namespace simjoin
