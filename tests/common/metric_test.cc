#include "common/metric.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace {

TEST(MetricNameTest, RoundTripsThroughParse) {
  for (Metric m : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
    const auto parsed = ParseMetric(MetricName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
}

TEST(MetricNameTest, ParseIsCaseInsensitiveAndAcceptsAliases) {
  EXPECT_EQ(ParseMetric("L2").value(), Metric::kL2);
  EXPECT_EQ(ParseMetric("Chebyshev").value(), Metric::kLinf);
  EXPECT_EQ(ParseMetric("LMAX").value(), Metric::kLinf);
}

TEST(MetricNameTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseMetric("l3").ok());
  EXPECT_FALSE(ParseMetric("").ok());
}

TEST(DistanceTest, KnownValues) {
  const float a[] = {0.0f, 0.0f, 0.0f};
  const float b[] = {1.0f, 2.0f, -2.0f};
  EXPECT_DOUBLE_EQ(L1Distance(a, b, 3), 5.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b, 3), 3.0);
  EXPECT_DOUBLE_EQ(LinfDistance(a, b, 3), 2.0);
}

TEST(DistanceTest, ZeroForIdenticalPoints) {
  const float a[] = {0.5f, -1.25f, 3.0f, 7.5f};
  EXPECT_DOUBLE_EQ(L1Distance(a, a, 4), 0.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, a, 4), 0.0);
  EXPECT_DOUBLE_EQ(LinfDistance(a, a, 4), 0.0);
}

TEST(DistanceKernelTest, DispatchMatchesFreeFunctions) {
  const float a[] = {0.1f, 0.9f, 0.4f};
  const float b[] = {0.7f, 0.2f, 0.3f};
  EXPECT_DOUBLE_EQ(DistanceKernel(Metric::kL1).Distance(a, b, 3),
                   L1Distance(a, b, 3));
  EXPECT_DOUBLE_EQ(DistanceKernel(Metric::kL2).Distance(a, b, 3),
                   L2Distance(a, b, 3));
  EXPECT_DOUBLE_EQ(DistanceKernel(Metric::kLinf).Distance(a, b, 3),
                   LinfDistance(a, b, 3));
}

class WithinEpsilonPropertyTest : public ::testing::TestWithParam<Metric> {};

TEST_P(WithinEpsilonPropertyTest, AgreesWithFullDistanceOnRandomPoints) {
  const Metric metric = GetParam();
  DistanceKernel kernel(metric);
  Rng rng(1234);
  for (size_t dims : {1u, 2u, 4u, 7u, 16u, 33u}) {
    std::vector<float> a(dims), b(dims);
    for (int trial = 0; trial < 500; ++trial) {
      for (size_t i = 0; i < dims; ++i) {
        a[i] = rng.UniformFloat();
        b[i] = rng.UniformFloat();
      }
      const double dist = kernel.Distance(a.data(), b.data(), dims);
      // Probe thresholds straddling the true distance.
      for (double eps : {dist * 0.9, dist * 1.1, dist + 1e-9}) {
        if (eps <= 0.0) continue;
        EXPECT_EQ(kernel.WithinEpsilon(a.data(), b.data(), dims, eps),
                  dist <= eps)
            << MetricName(metric) << " dims=" << dims << " dist=" << dist
            << " eps=" << eps;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, WithinEpsilonPropertyTest,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kLinf),
                         [](const auto& info) { return MetricName(info.param); });

class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, SymmetryAndTriangleInequalityOnRandomTriples) {
  DistanceKernel kernel(GetParam());
  Rng rng(777);
  const size_t dims = 8;
  std::vector<float> a(dims), b(dims), c(dims);
  for (int trial = 0; trial < 2000; ++trial) {
    for (size_t i = 0; i < dims; ++i) {
      a[i] = rng.UniformFloat();
      b[i] = rng.UniformFloat();
      c[i] = rng.UniformFloat();
    }
    const double ab = kernel.Distance(a.data(), b.data(), dims);
    const double ba = kernel.Distance(b.data(), a.data(), dims);
    const double bc = kernel.Distance(b.data(), c.data(), dims);
    const double ac = kernel.Distance(a.data(), c.data(), dims);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_LE(ac, ab + bc + 1e-9);
    EXPECT_GE(ab, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kLinf),
                         [](const auto& info) { return MetricName(info.param); });

TEST(MetricOrderingTest, CoordinateDiffLowerBoundsEveryMetric) {
  // |x_i - y_i| <= dist_p(x, y): the property the stripe grid and the sweep
  // window filters rely on.
  Rng rng(4242);
  const size_t dims = 6;
  std::vector<float> a(dims), b(dims);
  for (int trial = 0; trial < 2000; ++trial) {
    for (size_t i = 0; i < dims; ++i) {
      a[i] = rng.UniformFloat();
      b[i] = rng.UniformFloat();
    }
    for (Metric m : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
      const double dist = DistanceKernel(m).Distance(a.data(), b.data(), dims);
      for (size_t i = 0; i < dims; ++i) {
        EXPECT_LE(std::fabs(static_cast<double>(a[i]) - b[i]), dist + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace simjoin
