// Tests for the benchmark harness utilities (table printing, scaling,
// dimension ordering, and the algorithm runner wrappers).

#include "bench_util.h"

#include <cstdlib>
#include <sstream>

#include "workload/generators.h"
#include "gtest/gtest.h"

namespace simjoin {
namespace bench {
namespace {

TEST(ScaledTest, FollowsEnvironmentVariable) {
  unsetenv("SIMJOIN_BENCH_SCALE");
  EXPECT_FALSE(LargeScale());
  EXPECT_EQ(Scaled(10, 100), 10u);
  setenv("SIMJOIN_BENCH_SCALE", "large", 1);
  EXPECT_TRUE(LargeScale());
  EXPECT_EQ(Scaled(10, 100), 100u);
  unsetenv("SIMJOIN_BENCH_SCALE");
}

TEST(ResultTableTest, PrintsAlignedColumnsAndCsvBlock) {
  ResultTable table({"x", "algorithm", "time"});
  table.AddRow({"1", "ekdb", "5 ms"});
  table.AddRow({"2", "nested-loop", "100 ms"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("nested-loop"), std::string::npos);
  EXPECT_NE(out.find("# CSV"), std::string::npos);
  EXPECT_NE(out.find("# 1,ekdb,5 ms"), std::string::npos);
  EXPECT_NE(out.find("# 2,nested-loop,100 ms"), std::string::npos);
}

TEST(ResultTableDeathTest, RowArityMismatchAborts) {
  ResultTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(FmtTest, Formatting) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(2.0, 0), "2");
  EXPECT_FALSE(FmtSecs(0.001).empty());
}

TEST(VarianceDescendingOrderTest, OrdersBySpread) {
  Dataset ds;
  // dim0 narrow, dim1 wide, dim2 medium.
  ds.Append(std::vector<float>{0.50f, 0.0f, 0.3f});
  ds.Append(std::vector<float>{0.51f, 1.0f, 0.6f});
  ds.Append(std::vector<float>{0.49f, 0.5f, 0.0f});
  const auto order = VarianceDescendingOrder(ds);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(RunnersTest, AllSelfJoinRunnersAgreeOnPairCount) {
  auto data = GenerateClustered(
      {.n = 400, .dims = 4, .clusters = 4, .sigma = 0.05, .seed = 1});
  ASSERT_TRUE(data.ok());
  const double eps = 0.1;
  EkdbConfig config;
  config.epsilon = eps;
  const RunResult ekdb = RunEkdbSelf(*data, config);
  for (const RunResult& r :
       {RunRtreeSelf(*data, eps, Metric::kL2),
        RunKdTreeSelf(*data, eps, Metric::kL2),
        RunGridSelf(*data, eps, Metric::kL2),
        RunSortMergeSelf(*data, eps, Metric::kL2),
        RunNestedLoopSelf(*data, eps, Metric::kL2),
        RunEkdbParallel(*data, config, 2)}) {
    EXPECT_EQ(r.pairs, ekdb.pairs) << r.algorithm;
    EXPECT_GE(r.total_seconds(), 0.0);
  }
}

TEST(RunnersTest, CrossRunnersAgreeOnPairCount) {
  auto a = GenerateUniform({.n = 300, .dims = 3, .seed = 2});
  auto b = GenerateUniform({.n = 250, .dims = 3, .seed = 3});
  EkdbConfig config;
  config.epsilon = 0.12;
  const RunResult ekdb = RunEkdbCross(*a, *b, config);
  const RunResult rtree = RunRtreeCross(*a, *b, 0.12, Metric::kL2);
  const RunResult nested = RunNestedLoopCross(*a, *b, 0.12, Metric::kL2);
  EXPECT_EQ(ekdb.pairs, nested.pairs);
  EXPECT_EQ(rtree.pairs, nested.pairs);
}

}  // namespace
}  // namespace bench
}  // namespace simjoin
