// fuzz_joins — unbounded randomized differential tester.
//
// The gtest suite fuzzes a fixed set of seeds; this tool runs the same
// cross-algorithm equivalence check for as many iterations as asked (or
// forever), printing a reproducer line on the first mismatch.  Use it to
// soak-test changes to any join algorithm:
//
//   ./tools/fuzz_joins --iterations 1000 --seed 42
//   ./tools/fuzz_joins --iterations 0       # run until interrupted

#include <algorithm>
#include <iostream>

#include "approx/lsh_join.h"
#include "baselines/grid_join.h"
#include "baselines/kdtree.h"
#include "baselines/nested_loop.h"
#include "baselines/sort_merge.h"
#include "common/args.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/ekdb_join.h"
#include "core/parallel_join.h"
#include "rtree/rtree_join.h"
#include "workload/generators.h"

namespace simjoin {
namespace {

Dataset RandomWorkload(Rng* rng) {
  const size_t n = 50 + rng->UniformInt(1200u);
  const size_t dims = 1 + rng->UniformInt(12u);
  switch (rng->UniformInt(4u)) {
    case 0:
      return *GenerateUniform({.n = n, .dims = dims, .seed = rng->Next()});
    case 1:
      return *GenerateClustered({.n = n,
                                 .dims = dims,
                                 .clusters = 1 + rng->UniformInt(10u),
                                 .sigma = rng->Uniform(0.003, 0.12),
                                 .zipf_skew = rng->Uniform(0.0, 2.0),
                                 .noise_fraction = rng->Uniform(0.0, 0.4),
                                 .seed = rng->Next()});
    case 2:
      return *GenerateGridPerturbed({.n = n,
                                     .dims = dims,
                                     .cell = rng->Uniform(0.05, 0.5),
                                     .perturbation = rng->Uniform(0.0, 0.06),
                                     .seed = rng->Next()});
    default:
      return *GenerateCorrelated(
          {.n = n,
           .dims = dims,
           .intrinsic_dims = 1 + rng->UniformInt(std::min<uint64_t>(dims, 4)),
           .noise = rng->Uniform(0.0, 0.06),
           .seed = rng->Next()});
  }
}

/// Returns an empty string on agreement, else a description.
std::string CheckOneConfig(uint64_t seed) {
  Rng rng(seed);
  const Dataset data = RandomWorkload(&rng);
  const double epsilon = rng.Uniform(0.01, 0.45);
  const Metric metric = static_cast<Metric>(rng.UniformInt(3u));

  VectorSink oracle;
  if (Status st = NestedLoopSelfJoin(data, epsilon, metric, &oracle); !st.ok()) {
    return "oracle failed: " + st.ToString();
  }
  const auto expected = oracle.Sorted();

  auto check = [&](const char* name, const std::vector<IdPair>& got) {
    return got == expected
               ? std::string()
               : std::string(name) + " mismatch: " + std::to_string(got.size()) +
                     " pairs vs oracle " + std::to_string(expected.size());
  };

  {
    VectorSink s;
    if (Status st =
            SortMergeSelfJoin(data, epsilon, metric, SortMergeConfig{}, &s);
        !st.ok()) {
      return st.ToString();
    }
    if (auto err = check("sort-merge", s.Sorted()); !err.empty()) return err;
  }
  {
    VectorSink s;
    if (Status st = GridSelfJoin(data, epsilon, metric, GridJoinConfig{}, &s);
        !st.ok()) {
      return st.ToString();
    }
    if (auto err = check("grid", s.Sorted()); !err.empty()) return err;
  }
  {
    KdTreeConfig config;
    config.leaf_size = 1 + rng.UniformInt(100u);
    auto tree = KdTree::Build(data, config);
    if (!tree.ok()) return tree.status().ToString();
    VectorSink s;
    if (Status st = KdTreeSelfJoin(*tree, epsilon, metric, &s); !st.ok()) {
      return st.ToString();
    }
    if (auto err = check("kdtree", s.Sorted()); !err.empty()) return err;
  }
  {
    RTreeConfig config;
    config.max_entries = 4 + rng.UniformInt(60u);
    config.min_entries = std::max<size_t>(1, config.max_entries / 4);
    config.split = rng.Bernoulli(0.5) ? RTreeSplitAlgorithm::kQuadratic
                                      : RTreeSplitAlgorithm::kRStar;
    config.forced_reinsert = rng.Bernoulli(0.3);
    auto tree = rng.Bernoulli(0.5) ? RTree::BulkLoad(data, config)
                                   : RTree::BuildByInsertion(data, config);
    if (!tree.ok()) return tree.status().ToString();
    VectorSink s;
    if (Status st = RTreeSelfJoin(*tree, epsilon, &s, metric); !st.ok()) {
      return st.ToString();
    }
    if (auto err = check("rtree", s.Sorted()); !err.empty()) return err;
  }
  {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.metric = metric;
    config.leaf_threshold = 1 + rng.UniformInt(200u);
    config.bbox_pruning = rng.Bernoulli(0.8);
    config.sliding_window_leaf_join = rng.Bernoulli(0.8);
    auto tree = EkdbTree::Build(data, config);
    if (!tree.ok()) return tree.status().ToString();
    VectorSink s;
    if (Status st = EkdbSelfJoin(*tree, &s); !st.ok()) return st.ToString();
    if (auto err = check("ekdb", s.Sorted()); !err.empty()) return err;

    ParallelJoinConfig pcfg;
    pcfg.num_threads = 1 + rng.UniformInt(4u);
    pcfg.min_task_points = 1 + rng.UniformInt(800u);
    VectorSink p;
    if (Status st = ParallelEkdbSelfJoin(*tree, pcfg, &p); !st.ok()) {
      return st.ToString();
    }
    if (auto err = check("ekdb-parallel", p.Sorted()); !err.empty()) return err;
  }
  {
    // LSH must be a subset of the oracle (never a false positive).
    LshConfig config;
    config.tables = 1 + rng.UniformInt(6u);
    config.hashes_per_table = 1 + rng.UniformInt(6u);
    config.seed = rng.Next();
    if (metric != Metric::kLinf) {
      config.metric = metric;
      VectorSink s;
      if (Status st = LshApproximateSelfJoin(data, epsilon, config, &s);
          !st.ok()) {
        return st.ToString();
      }
      const auto got = s.Sorted();
      if (!std::includes(expected.begin(), expected.end(), got.begin(),
                         got.end())) {
        return "lsh produced a false positive";
      }
    }
  }
  return std::string();
}

int Main(int argc, char** argv) {
  ArgParser args("Randomized differential tester for all join algorithms");
  args.AddFlag("iterations", "200", "number of random configs (0 = forever)");
  args.AddFlag("seed", "1", "base seed");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  const uint64_t iterations = static_cast<uint64_t>(args.GetInt("iterations"));
  const uint64_t base = static_cast<uint64_t>(args.GetInt("seed"));

  Timer timer;
  for (uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    const uint64_t seed = base + i;
    const std::string err = CheckOneConfig(seed);
    if (!err.empty()) {
      std::cerr << "FAIL at seed " << seed << ": " << err << "\n"
                << "reproduce with: fuzz_joins --iterations 1 --seed " << seed
                << "\n";
      return 1;
    }
    if ((i + 1) % 50 == 0) {
      std::cout << (i + 1) << " configs OK (" << FormatSeconds(timer.Seconds())
                << ")" << std::endl;
    }
  }
  std::cout << "all configs agree with the brute-force oracle ("
            << FormatSeconds(timer.Seconds()) << ")\n";
  return 0;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) { return simjoin::Main(argc, argv); }
