// simjoin_server — runs the similarity-join query service.
//
//   ./tools/simjoin_server --port 7411
//   ./tools/simjoin_server --port 0            # ephemeral; port is printed
//   ./tools/simjoin_server --preload data.bin --preload-name base --epsilon 0.1
//
// The process serves until a client sends Shutdown (or SIGINT/SIGTERM
// arrives), then drains in-flight requests and exits.  --preload builds an
// index from a binary dataset file before accepting connections, so a
// fleet of read-only clients can start querying immediately.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <iostream>
#include <mutex>
#include <thread>

#include "common/args.h"
#include "common/binary_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/prom_exporter.h"
#include "service/server.h"

namespace {

simjoin::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

/// Dumps the global metrics registry to stdout every interval until asked
/// to stop (condvar wait, so shutdown is prompt).
class MetricsDumper {
 public:
  explicit MetricsDumper(int interval_ms) : interval_ms_(interval_ms) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }

  ~MetricsDumper() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      std::cout << "--- metrics ---\n"
                << simjoin::obs::GlobalMetrics().Snapshot().RenderText()
                << std::flush;
    }
  }

  int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using simjoin::Status;
  simjoin::ArgParser args("Similarity-join query service");
  args.AddFlag("host", "127.0.0.1", "bind address");
  args.AddFlag("port", "7411", "tcp port; 0 = ephemeral (printed)");
  args.AddFlag("io-threads", "1", "poll loops");
  args.AddFlag("workers", "0", "request executor threads; 0 = hardware");
  args.AddFlag("max-inflight", "256", "admission gate bound");
  args.AddFlag("retry-after-ms", "20", "backpressure retry hint");
  args.AddFlag("registry-mb", "4096", "index registry byte budget in MiB");
  args.AddFlag("spill-dir", "",
               "existing writable directory for the registry's out-of-core "
               "tier (segment spill files, on-disk builds); empty = off");
  args.AddFlag("preload", "", "binary dataset file to index at startup");
  args.AddFlag("preload-name", "base", "registry name for --preload");
  args.AddFlag("epsilon", "0.1", "build epsilon for --preload");
  args.AddFlag("metric", "l2", "metric for --preload: l2 | l1 | linf");
  args.AddFlag("metrics-interval-ms", "0",
               "dump the metrics registry to stdout every N ms; 0 = off");
  args.AddFlag("trace-out", "",
               "collect phase trace spans and write Chrome/Perfetto JSON "
               "here on shutdown");
  args.AddFlag("prom-port", "-1",
               "serve Prometheus text metrics on this HTTP port "
               "(GET /metrics); 0 = ephemeral (printed), -1 = off");
  args.AddFlag("slow-query-us", "0",
               "record requests slower than N microseconds (or failed) "
               "into the slow-query log; 0 = off");
  args.AddFlag("slow-query-log", "",
               "JSONL sink for slow-query entries (rotation-safe append); "
               "empty = in-memory ring only");
  args.AddFlag("slow-query-capacity", "512",
               "slow-query ring entries kept for `simjoin_client slowlog`");
  const Status parse = args.Parse(argc, argv);
  if (!parse.ok()) {
    std::cerr << parse.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  simjoin::ServerConfig config;
  config.host = args.GetString("host");
  config.port = static_cast<uint16_t>(args.GetInt("port"));
  config.io_threads = static_cast<size_t>(args.GetInt("io-threads"));
  config.worker_threads = static_cast<size_t>(args.GetInt("workers"));
  config.max_inflight = static_cast<size_t>(args.GetInt("max-inflight"));
  config.retry_after_ms =
      static_cast<uint32_t>(args.GetInt("retry-after-ms"));
  config.registry_byte_budget =
      static_cast<uint64_t>(args.GetInt("registry-mb")) << 20;
  config.segment_spill_dir = args.GetString("spill-dir");
  config.slow_query_us =
      static_cast<uint64_t>(args.GetInt("slow-query-us"));
  config.slow_query_log_path = args.GetString("slow-query-log");
  config.slow_query_capacity =
      static_cast<size_t>(args.GetInt("slow-query-capacity"));

  const std::string trace_out = args.GetString("trace-out");
  if (!trace_out.empty()) {
    const Status st = simjoin::obs::StartTracing(trace_out);
    if (!st.ok()) {
      std::cerr << "trace-out: " << st.ToString() << "\n";
      return 1;
    }
  }

  auto server = simjoin::Server::Start(config);
  if (!server.ok()) {
    std::cerr << "start failed: " << server.status().ToString() << "\n";
    return 1;
  }

  const std::string preload = args.GetString("preload");
  if (!preload.empty()) {
    auto data = simjoin::ReadBinaryDataset(preload);
    if (!data.ok()) {
      std::cerr << "preload failed: " << data.status().ToString() << "\n";
      return 1;
    }
    simjoin::EkdbConfig ekdb;
    ekdb.epsilon = args.GetDouble("epsilon");
    auto metric = simjoin::ParseMetric(args.GetString("metric"));
    if (!metric.ok()) {
      std::cerr << metric.status().ToString() << "\n";
      return 1;
    }
    ekdb.metric = *metric;
    auto snapshot = simjoin::IndexSnapshot::Build(
        args.GetString("preload-name"), std::move(*data), ekdb);
    if (!snapshot.ok()) {
      std::cerr << "preload build failed: " << snapshot.status().ToString()
                << "\n";
      return 1;
    }
    const Status put = (*server)->registry().Put(*snapshot);
    if (!put.ok()) {
      std::cerr << "preload register failed: " << put.ToString() << "\n";
      return 1;
    }
    std::cout << "preloaded '" << args.GetString("preload-name") << "': "
              << (*snapshot)->dataset().size() << " points, "
              << (*snapshot)->memory_bytes() << " bytes\n";
  }

  g_server = server->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::unique_ptr<simjoin::PromExporter> prom;
  const long prom_port = args.GetInt("prom-port");
  if (prom_port >= 0) {
    auto started = simjoin::PromExporter::Start(
        config.host, static_cast<uint16_t>(prom_port));
    if (!started.ok()) {
      std::cerr << "prom exporter: " << started.status().ToString() << "\n";
      return 1;
    }
    prom = std::move(*started);
    std::cout << "prometheus metrics on http://" << config.host << ":"
              << prom->port() << "/metrics\n";
  }

  std::cout << "serving on " << config.host << ":" << (*server)->port()
            << " (io=" << config.io_threads
            << ", max-inflight=" << config.max_inflight << ")" << std::endl;
  {
    MetricsDumper dumper(
        static_cast<int>(args.GetInt("metrics-interval-ms")));
    (*server)->Wait();
  }
  if (!trace_out.empty()) {
    const Status st = simjoin::obs::StopTracing();
    if (!st.ok()) std::cerr << "trace flush: " << st.ToString() << "\n";
  }

  const simjoin::ServerCounters c = (*server)->counters();
  std::cout << "stopped: " << c.accepted_connections << " connections, "
            << c.requests_admitted << " admitted, " << c.requests_rejected
            << " rejected, " << c.pairs_streamed << " pairs streamed, "
            << c.write_stall_disconnects << " stalled readers dropped\n";
  g_server = nullptr;
  return 0;
}
