// simjoin_cli — command-line front end to the library.
//
//   simjoin_cli generate --workload clustered --n 10000 --dims 8 --out pts.csv
//   simjoin_cli join     --input pts.csv --epsilon 0.05 --algo ekdb --out pairs.csv
//   simjoin_cli join     --input a.csv --input2 b.csv --epsilon 0.05
//   simjoin_cli info     --input pts.csv --epsilon 0.05
//
// Input/output files ending in .sjdb use the exact binary format; anything
// else is treated as CSV.  Joins normalise inputs to the unit cube first
// (two-input joins are normalised jointly so distances stay comparable).

#include <fstream>
#include <iostream>
#include <optional>

#include "approx/lsh_join.h"
#include "baselines/grid_join.h"
#include "baselines/kdtree.h"
#include "baselines/nested_loop.h"
#include "baselines/sort_merge.h"
#include "common/args.h"
#include "common/binary_io.h"
#include "common/csv.h"
#include "common/timer.h"
#include "core/components.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_flat_join.h"
#include "core/ekdb_join.h"
#include "core/parallel_join.h"
#include "core/planner.h"
#include "obs/trace.h"
#include "rtree/rtree_join.h"
#include "workload/generators.h"
#include "workload/image_features.h"
#include "workload/profile.h"
#include "workload/timeseries.h"

namespace simjoin {
namespace {

bool IsBinaryPath(const std::string& path) {
  return path.size() > 5 && path.substr(path.size() - 5) == ".sjdb";
}

Result<Dataset> LoadAny(const std::string& path) {
  if (IsBinaryPath(path)) return ReadBinaryDataset(path);
  return ReadCsv(path);
}

Status SaveAny(const Dataset& data, const std::string& path) {
  if (IsBinaryPath(path)) return WriteBinaryDataset(data, path);
  return WriteCsv(data, path);
}

int Fail(const Status& st) {
  std::cerr << "error: " << st.ToString() << "\n";
  return 1;
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

int CmdGenerate(int argc, char** argv) {
  ArgParser args("simjoin_cli generate: synthesise a workload dataset");
  args.AddFlag("workload", "clustered",
               "uniform | clustered | correlated | grid | timeseries | images");
  args.AddFlag("n", "10000", "number of points / series / images");
  args.AddFlag("dims", "8", "dimensionality (bins for images; 2*coeffs for timeseries)");
  args.AddFlag("clusters", "16", "clusters (clustered) / groups (timeseries) / prototypes (images)");
  args.AddFlag("sigma", "0.05", "cluster spread (clustered)");
  args.AddFlag("seed", "1", "RNG seed");
  args.AddFlag("out", "points.csv", "output path (.csv or .sjdb)");
  if (Status st = args.Parse(argc, argv); !st.ok()) return Fail(st);
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }

  const size_t n = static_cast<size_t>(args.GetInt("n"));
  const size_t dims = static_cast<size_t>(args.GetInt("dims"));
  const size_t clusters = static_cast<size_t>(args.GetInt("clusters"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));
  const std::string workload = args.GetString("workload");

  Result<Dataset> data = Status::InvalidArgument("unknown workload: " + workload);
  if (workload == "uniform") {
    data = GenerateUniform({.n = n, .dims = dims, .seed = seed});
  } else if (workload == "clustered") {
    data = GenerateClustered({.n = n, .dims = dims, .clusters = clusters,
                              .sigma = args.GetDouble("sigma"), .seed = seed});
  } else if (workload == "correlated") {
    data = GenerateCorrelated(
        {.n = n, .dims = dims, .intrinsic_dims = std::max<size_t>(1, dims / 4),
         .noise = 0.02, .seed = seed});
  } else if (workload == "grid") {
    data = GenerateGridPerturbed(
        {.n = n, .dims = dims, .cell = 0.1, .perturbation = 0.02, .seed = seed});
  } else if (workload == "timeseries") {
    auto family = GenerateSeriesFamily({.num_series = n, .length = 256,
                                        .groups = clusters, .group_weight = 0.8,
                                        .volatility = 0.02, .seed = seed});
    if (!family.ok()) return Fail(family.status());
    data = SeriesToFeatureDataset(*family, std::max<size_t>(1, dims / 2));
  } else if (workload == "images") {
    auto archive = GenerateImageArchive(
        {.num_images = n, .bins = dims, .prototypes = clusters,
         .concentration = 70, .near_duplicates = n / 100, .seed = seed});
    if (!archive.ok()) return Fail(archive.status());
    data = std::move(archive->histograms);
  }
  if (!data.ok()) return Fail(data.status());

  const std::string out = args.GetString("out");
  if (Status st = SaveAny(*data, out); !st.ok()) return Fail(st);
  std::cout << "wrote " << data->size() << " points x " << data->dims()
            << " dims to " << out << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

int CmdJoin(int argc, char** argv) {
  ArgParser args("simjoin_cli join: epsilon similarity join");
  args.AddFlag("input", "", "dataset to join (.csv or .sjdb)");
  args.AddFlag("input2", "", "optional second dataset (cross join)");
  args.AddFlag("epsilon", "0.05", "join radius after unit-cube normalisation");
  args.AddFlag("metric", "l2", "l1 | l2 | linf");
  args.AddFlag("algo", "ekdb",
               "ekdb | rtree | kdtree | grid | sortmerge | nested | lsh");
  args.AddFlag("leaf", "64", "ekdb leaf threshold");
  args.AddFlag("lsh-tables", "8", "LSH tables (algo=lsh; self-join only)");
  args.AddFlag("out", "", "optional CSV of result pairs (id_a,id_b)");
  args.AddFlag("threads", "1",
               "ekdb only: run the flat parallel join with this many "
               "threads; 0 = hardware");
  args.AddFlag("trace-out", "",
               "write a Chrome/Perfetto trace of build/traversal/filter "
               "phases to this file");
  if (Status st = args.Parse(argc, argv); !st.ok()) return Fail(st);
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  if (args.GetString("input").empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  const std::string trace_out = args.GetString("trace-out");
  if (!trace_out.empty()) {
    if (Status st = obs::StartTracing(trace_out); !st.ok()) return Fail(st);
  }

  auto a = LoadAny(args.GetString("input"));
  if (!a.ok()) return Fail(a.status());
  std::optional<Dataset> b;
  if (!args.GetString("input2").empty()) {
    auto loaded = LoadAny(args.GetString("input2"));
    if (!loaded.ok()) return Fail(loaded.status());
    if (loaded->dims() != a->dims()) {
      return Fail(Status::InvalidArgument("inputs have different dims"));
    }
    b = std::move(loaded).value();
  }

  // Joint normalisation: stack, normalise, unstack — the epsilon then means
  // the same thing on both sides.
  if (b.has_value()) {
    Dataset stacked = *a;
    for (size_t i = 0; i < b->size(); ++i) {
      stacked.Append(b->RowSpan(static_cast<PointId>(i)));
    }
    stacked.NormalizeToUnitCube();
    Dataset na(a->size(), a->dims()), nb(b->size(), b->dims());
    for (size_t i = 0; i < a->size(); ++i) {
      std::copy_n(stacked.Row(static_cast<PointId>(i)), a->dims(),
                  na.MutableRow(static_cast<PointId>(i)));
    }
    for (size_t i = 0; i < b->size(); ++i) {
      std::copy_n(stacked.Row(static_cast<PointId>(a->size() + i)), b->dims(),
                  nb.MutableRow(static_cast<PointId>(i)));
    }
    *a = std::move(na);
    *b = std::move(nb);
  } else {
    a->NormalizeToUnitCube();
  }

  auto metric = ParseMetric(args.GetString("metric"));
  if (!metric.ok()) return Fail(metric.status());
  const double epsilon = args.GetDouble("epsilon");
  const std::string algo = args.GetString("algo");

  VectorSink sink;
  JoinStats stats;
  Timer timer;
  Status st = Status::InvalidArgument("unknown algorithm: " + algo);
  if (algo == "ekdb") {
    EkdbConfig config;
    config.epsilon = epsilon;
    config.metric = metric.value();
    config.leaf_threshold = static_cast<size_t>(args.GetInt("leaf"));
    const size_t threads = static_cast<size_t>(args.GetInt("threads"));
    auto ta = EkdbTree::Build(*a, config);
    if (!ta.ok()) return Fail(ta.status());
    if (threads != 1) {
      // Parallel path: flatten and run the work-stealing flat join (same
      // pair sequence as the sequential drivers).
      ParallelJoinConfig par;
      par.num_threads = threads;
      auto fa = FlatEkdbTree::FromTree(*ta);
      if (!fa.ok()) return Fail(fa.status());
      if (b.has_value()) {
        auto tb = EkdbTree::Build(*b, config);
        if (!tb.ok()) return Fail(tb.status());
        auto fb = FlatEkdbTree::FromTree(*tb);
        if (!fb.ok()) return Fail(fb.status());
        st = ParallelFlatEkdbJoin(*fa, *fb, par, &sink, &stats);
      } else {
        st = ParallelFlatEkdbSelfJoin(*fa, par, &sink, &stats);
      }
    } else if (b.has_value()) {
      auto tb = EkdbTree::Build(*b, config);
      if (!tb.ok()) return Fail(tb.status());
      st = EkdbJoin(*ta, *tb, &sink, &stats);
    } else {
      st = EkdbSelfJoin(*ta, &sink, &stats);
    }
  } else if (algo == "rtree") {
    auto ta = RTree::BulkLoad(*a, RTreeConfig{});
    if (!ta.ok()) return Fail(ta.status());
    if (b.has_value()) {
      auto tb = RTree::BulkLoad(*b, RTreeConfig{});
      if (!tb.ok()) return Fail(tb.status());
      st = RTreeJoin(*ta, *tb, epsilon, &sink, metric.value(), &stats);
    } else {
      st = RTreeSelfJoin(*ta, epsilon, &sink, metric.value(), &stats);
    }
  } else if (algo == "kdtree") {
    auto ta = KdTree::Build(*a, KdTreeConfig{});
    if (!ta.ok()) return Fail(ta.status());
    if (b.has_value()) {
      auto tb = KdTree::Build(*b, KdTreeConfig{});
      if (!tb.ok()) return Fail(tb.status());
      st = KdTreeJoin(*ta, *tb, epsilon, metric.value(), &sink, &stats);
    } else {
      st = KdTreeSelfJoin(*ta, epsilon, metric.value(), &sink, &stats);
    }
  } else if (algo == "lsh") {
    if (b.has_value()) {
      return Fail(Status::Unimplemented("lsh supports self-joins only"));
    }
    LshConfig lsh;
    lsh.metric = metric.value();
    lsh.tables = static_cast<size_t>(args.GetInt("lsh-tables"));
    LshJoinReport lsh_report;
    st = LshApproximateSelfJoin(*a, epsilon, lsh, &sink, &lsh_report);
    stats.candidate_pairs = lsh_report.unique_candidates;
    stats.pairs_emitted = lsh_report.emitted_pairs;
  } else if (algo == "grid") {
    st = b.has_value() ? GridJoin(*a, *b, epsilon, metric.value(),
                                  GridJoinConfig{}, &sink, &stats)
                       : GridSelfJoin(*a, epsilon, metric.value(),
                                      GridJoinConfig{}, &sink, &stats);
  } else if (algo == "sortmerge") {
    st = b.has_value() ? SortMergeJoin(*a, *b, epsilon, metric.value(),
                                       SortMergeConfig{}, &sink, &stats)
                       : SortMergeSelfJoin(*a, epsilon, metric.value(),
                                           SortMergeConfig{}, &sink, &stats);
  } else if (algo == "nested") {
    st = b.has_value()
             ? NestedLoopJoin(*a, *b, epsilon, metric.value(), &sink, &stats)
             : NestedLoopSelfJoin(*a, epsilon, metric.value(), &sink, &stats);
  }
  if (!trace_out.empty()) {
    if (Status flush = obs::StopTracing(); !flush.ok()) {
      std::cerr << "trace flush: " << flush.ToString() << "\n";
    } else {
      std::cout << "wrote trace to " << trace_out << "\n";
    }
  }
  if (!st.ok()) return Fail(st);

  std::cout << (b.has_value() ? "cross" : "self") << " join (" << algo
            << ", eps=" << epsilon << ", " << MetricName(metric.value())
            << "): " << FormatCount(sink.pairs().size()) << " pairs in "
            << FormatSeconds(timer.Seconds()) << " ("
            << FormatCount(stats.candidate_pairs) << " candidates)\n";

  if (const std::string out = args.GetString("out"); !out.empty()) {
    std::ofstream os(out);
    if (!os) return Fail(Status::IoError("cannot open " + out));
    for (const auto& [x, y] : sink.pairs()) os << x << ',' << y << '\n';
    std::cout << "wrote pairs to " << out << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

int CmdInfo(int argc, char** argv) {
  ArgParser args("simjoin_cli info: dataset and index statistics");
  args.AddFlag("input", "", "dataset to inspect (.csv or .sjdb)");
  args.AddFlag("epsilon", "0.05", "epsilon for the trial index build");
  args.AddFlag("leaf", "64", "ekdb leaf threshold");
  if (Status st = args.Parse(argc, argv); !st.ok()) return Fail(st);
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  if (args.GetString("input").empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  auto data = LoadAny(args.GetString("input"));
  if (!data.ok()) return Fail(data.status());

  std::cout << "points: " << data->size() << "\ndims:   " << data->dims()
            << "\nmemory: " << FormatBytes(data->MemoryUsageBytes()) << "\n";
  const auto mins = data->ColumnMin();
  const auto maxs = data->ColumnMax();
  std::cout << "columns (range + distribution):\n";
  for (uint32_t d = 0; d < data->dims(); ++d) {
    auto histogram = ColumnHistogram(*data, d, 32);
    std::cout << "  dim " << d << ": [" << mins[d] << ", " << maxs[d] << "]  |"
              << (histogram.ok() ? HistogramSparkline(*histogram) : "") << "|\n";
  }

  data->NormalizeToUnitCube();
  EkdbConfig config;
  config.epsilon = args.GetDouble("epsilon");
  config.leaf_threshold = static_cast<size_t>(args.GetInt("leaf"));
  Timer timer;
  auto tree = EkdbTree::Build(*data, config);
  if (!tree.ok()) return Fail(tree.status());
  const auto stats = tree->ComputeStats();
  std::cout << "\neps-k-d-B index (eps=" << config.epsilon << "):\n"
            << "  build:      " << FormatSeconds(timer.Seconds()) << "\n"
            << "  nodes:      " << stats.nodes << " (" << stats.leaves
            << " leaves)\n"
            << "  max depth:  " << stats.max_depth << "\n"
            << "  avg leaf:   " << stats.avg_leaf_size << " points\n"
            << "  memory:     " << FormatBytes(stats.memory_bytes) << "\n"
            << "  stripes:    " << tree->num_stripes() << " per dimension\n";
  return 0;
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

int CmdPlan(int argc, char** argv) {
  ArgParser args(
      "simjoin_cli plan: profile a dataset and pick a join algorithm");
  args.AddFlag("input", "", "dataset to plan for (.csv or .sjdb)");
  args.AddFlag("epsilon", "0.05", "join radius after normalisation");
  args.AddFlag("metric", "l2", "l1 | l2 | linf");
  args.AddFlag("run", "false", "execute the planned join as well");
  if (Status st = args.Parse(argc, argv); !st.ok()) return Fail(st);
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  if (args.GetString("input").empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  auto data = LoadAny(args.GetString("input"));
  if (!data.ok()) return Fail(data.status());
  data->NormalizeToUnitCube();
  auto metric = ParseMetric(args.GetString("metric"));
  if (!metric.ok()) return Fail(metric.status());

  auto profile = ProfileDataset(*data);
  if (!profile.ok()) return Fail(profile.status());
  std::cout << profile->ToString() << "\n";

  const double epsilon = args.GetDouble("epsilon");
  auto plan = PlanSelfJoin(*data, epsilon, metric.value());
  if (!plan.ok()) return Fail(plan.status());
  std::cout << "plan: " << JoinAlgorithmName(plan->algorithm) << "\n"
            << "  rationale:           " << plan->rationale << "\n"
            << "  estimated pairs:     " << FormatCount(static_cast<uint64_t>(
                                                plan->estimated_pairs))
            << "\n"
            << "  estimated density:   " << plan->estimated_density << "\n";

  if (args.GetBool("run")) {
    CountingSink sink;
    Timer timer;
    if (Status st = ExecuteSelfJoin(*data, epsilon, metric.value(), *plan,
                                    &sink);
        !st.ok()) {
      return Fail(st);
    }
    std::cout << "executed: " << FormatCount(sink.count()) << " pairs in "
              << FormatSeconds(timer.Seconds()) << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------------

int CmdCluster(int argc, char** argv) {
  ArgParser args(
      "simjoin_cli cluster: epsilon-connected components (single-linkage "
      "clustering at threshold epsilon)");
  args.AddFlag("input", "", "dataset to cluster (.csv or .sjdb)");
  args.AddFlag("epsilon", "0.05", "linkage radius after normalisation");
  args.AddFlag("metric", "l2", "l1 | l2 | linf");
  args.AddFlag("out", "", "optional CSV of per-point component labels");
  args.AddFlag("top", "10", "how many largest components to print");
  if (Status st = args.Parse(argc, argv); !st.ok()) return Fail(st);
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  if (args.GetString("input").empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  auto data = LoadAny(args.GetString("input"));
  if (!data.ok()) return Fail(data.status());
  data->NormalizeToUnitCube();
  auto metric = ParseMetric(args.GetString("metric"));
  if (!metric.ok()) return Fail(metric.status());

  Timer timer;
  auto result = EpsilonConnectedComponents(*data, args.GetDouble("epsilon"),
                                           metric.value());
  if (!result.ok()) return Fail(result.status());
  std::cout << "clustered " << data->size() << " points into "
            << result->num_components << " components in "
            << FormatSeconds(timer.Seconds()) << " ("
            << FormatCount(result->join_pairs) << " join pairs)\n";

  // Largest components.
  std::vector<std::pair<uint32_t, uint32_t>> by_size;  // (size, label)
  for (uint32_t label = 0; label < result->sizes.size(); ++label) {
    by_size.emplace_back(result->sizes[label], label);
  }
  std::sort(by_size.rbegin(), by_size.rend());
  const size_t top = std::min<size_t>(by_size.size(),
                                      static_cast<size_t>(args.GetInt("top")));
  std::cout << "largest components:\n";
  for (size_t i = 0; i < top; ++i) {
    std::cout << "  label " << by_size[i].second << ": " << by_size[i].first
              << " points\n";
  }

  if (const std::string out = args.GetString("out"); !out.empty()) {
    std::ofstream os(out);
    if (!os) return Fail(Status::IoError("cannot open " + out));
    for (uint32_t label : result->labels) os << label << '\n';
    std::cout << "wrote labels to " << out << "\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  const std::string usage =
      "usage: simjoin_cli <generate|join|plan|cluster|info> [flags]\n"
      "       simjoin_cli <command> --help for per-command flags\n";
  if (argc < 2) {
    std::cerr << usage;
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each command parser sees its own flags.
  if (command == "generate") return CmdGenerate(argc - 1, argv + 1);
  if (command == "join") return CmdJoin(argc - 1, argv + 1);
  if (command == "plan") return CmdPlan(argc - 1, argv + 1);
  if (command == "cluster") return CmdCluster(argc - 1, argv + 1);
  if (command == "info") return CmdInfo(argc - 1, argv + 1);
  std::cerr << "unknown command: " << command << "\n" << usage;
  return 1;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) { return simjoin::Main(argc, argv); }
