// simjoin_client — command-line client for the similarity-join service.
//
//   ./tools/simjoin_client ping
//   ./tools/simjoin_client build --name base --data pts.bin --epsilon 0.1
//   ./tools/simjoin_client query --name base --point 0.2,0.3,0.4
//   ./tools/simjoin_client query --name base --point 0.2,0.3 --recall 0.9
//   ./tools/simjoin_client query --name base --point 0.2,0.3 --plan
//   ./tools/simjoin_client query --name base --point 0.2,0.3 --explain
//   ./tools/simjoin_client join --name base --limit 20
//   ./tools/simjoin_client insert --name live --point 0.2,0.3,0.4
//   ./tools/simjoin_client remove --name live --ids 17,42
//   ./tools/simjoin_client flush --name live
//   ./tools/simjoin_client drift --name live --dims 8 --steps 16
//   ./tools/simjoin_client stats
//   ./tools/simjoin_client stats --watch --interval-ms 1000
//   ./tools/simjoin_client stats --watch --filter service.latency
//   ./tools/simjoin_client slowlog
//   ./tools/simjoin_client drop --name base
//   ./tools/simjoin_client shutdown
//
// One subcommand per invocation; --host/--port select the server.  join
// streams its result pairs to stdout (capped by --limit; 0 = all).
// insert/remove/flush target an index built with --backend updatable;
// drift builds such an index and replays a drifting-cluster update +
// query timeline against it (workload/drift.h) — a service-level chaos /
// soak driver for the live-update path.

#include <chrono>
#include <functional>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>

#include "common/args.h"
#include "common/binary_io.h"
#include "obs/slow_query_log.h"
#include "service/client.h"
#include "workload/drift.h"
#include "workload/profile.h"

namespace simjoin {
namespace {

std::vector<float> ParsePoint(const std::string& csv) {
  std::vector<float> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stof(tok));
  }
  return out;
}

std::vector<PointId> ParseIds(const std::string& csv) {
  std::vector<PointId> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<PointId>(std::stoul(tok)));
  }
  return out;
}

/// `drift`: builds an updatable index from a drifting-cluster timeline and
/// replays its update + query schedule through the live-update RPCs.  The
/// timeline's insertion-order ids line up with the server's contiguous id
/// assignment, so removals need no translation.
int RunDrift(Client& client, const ArgParser& args) {
  DriftConfig cfg;
  cfg.dims = static_cast<size_t>(args.GetInt("dims"));
  cfg.steps = static_cast<size_t>(args.GetInt("steps"));
  cfg.clusters = static_cast<size_t>(args.GetInt("drift-clusters"));
  cfg.points_per_cluster =
      static_cast<size_t>(args.GetInt("points-per-cluster"));
  cfg.queries_per_step = static_cast<size_t>(args.GetInt("queries-per-step"));
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed"));
  auto timeline = GenerateDrift(cfg);
  if (!timeline.ok()) {
    std::cerr << timeline.status().ToString() << "\n";
    return 1;
  }
  BuildIndexRequest build;
  build.name = args.GetString("name");
  build.config.epsilon = args.GetDouble("epsilon") != 0.0
                             ? args.GetDouble("epsilon")
                             : 0.1;
  build.backend = BackendKind::kUpdatable;
  build.dims = static_cast<uint32_t>(cfg.dims);
  build.points = timeline->initial.flat();
  auto built = client.BuildIndex(build);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }
  uint64_t inserted = 0, removed = 0, neighbours = 0;
  for (const DriftStep& step : timeline->steps) {
    if (!step.remove_ids.empty()) {
      RemoveRequest req;
      req.name = build.name;
      req.ids = step.remove_ids;
      auto resp = client.Remove(req);
      if (!resp.ok()) {
        std::cerr << resp.status().ToString() << "\n";
        return 1;
      }
      removed += resp->removed;
    }
    if (!step.insert_rows.empty()) {
      InsertRequest req;
      req.name = build.name;
      req.dims = static_cast<uint32_t>(cfg.dims);
      req.rows = step.insert_rows;
      auto resp = client.Insert(req);
      if (!resp.ok()) {
        std::cerr << resp.status().ToString() << "\n";
        return 1;
      }
      inserted += resp->count;
    }
    for (size_t q = 0; q < step.queries(cfg.dims); ++q) {
      auto ids = client.RangeQueryOne(
          build.name,
          std::span<const float>(step.query_rows.data() + q * cfg.dims,
                                 cfg.dims));
      if (!ids.ok()) {
        std::cerr << ids.status().ToString() << "\n";
        return 1;
      }
      neighbours += ids->size();
    }
  }
  auto flushed = client.Flush(build.name);
  if (!flushed.ok()) {
    std::cerr << flushed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "drift replay: " << timeline->initial.size()
            << " initial points, " << timeline->steps.size() << " steps, "
            << inserted << " inserted, " << removed << " removed, "
            << neighbours << " neighbours found; final base "
            << flushed->base_points << " points ("
            << (flushed->compacted ? "compacted" : "nothing to compact")
            << ")\n";
  return 0;
}

/// PairSink that prints up to `limit` pairs and counts the rest.
class PrintSink : public PairSink {
 public:
  explicit PrintSink(uint64_t limit) : limit_(limit) {}
  void Emit(PointId a, PointId b) override {
    if (limit_ == 0 || printed_ < limit_) {
      std::cout << a << "\t" << b << "\n";
      ++printed_;
    }
    ++total_;
  }
  uint64_t total() const { return total_; }

 private:
  uint64_t limit_;
  uint64_t printed_ = 0;
  uint64_t total_ = 0;
};

void PrintServerCounters(const StatsResponse& resp) {
  std::cout << "connections: " << resp.accepted_connections << " accepted, "
            << resp.active_connections << " active\n"
            << "requests: " << resp.requests_admitted << " admitted, "
            << resp.requests_rejected << " rejected, "
            << resp.deadline_expired << " deadline-expired, "
            << resp.decode_errors << " decode errors\n"
            << "pairs streamed: " << resp.pairs_streamed << "\n"
            << "registry: " << resp.registry_bytes << "/"
            << resp.registry_byte_budget << " bytes, "
            << resp.registry_evictions << " evictions\n";
  for (const IndexInfo& info : resp.indexes) {
    std::cout << "  index '" << info.name << "': " << info.num_points
              << " points, dims=" << info.dims << ", eps=" << info.epsilon
              << ", " << MetricName(info.metric) << ", " << info.bytes
              << " bytes, " << info.hits << " hits\n";
  }
}

/// Renders one metrics snapshot (absolute or interval delta): counters and
/// gauges one per line, histograms with quantiles and a bucket sparkline.
/// A non-empty `filter` keeps only metrics whose name starts with it.
void PrintMetrics(const obs::MetricsSnapshot& snap,
                  const std::string& filter = "") {
  const auto keep = [&filter](const std::string& name) {
    return filter.empty() || name.rfind(filter, 0) == 0;
  };
  for (const obs::CounterSample& c : snap.counters) {
    if (!keep(c.name)) continue;
    std::cout << "  " << c.name << " " << c.value << "\n";
  }
  for (const obs::GaugeSample& g : snap.gauges) {
    if (!keep(g.name)) continue;
    std::cout << "  " << g.name << " " << g.value << "\n";
  }
  for (const obs::HistogramSample& h : snap.histograms) {
    if (!keep(h.name)) continue;
    std::vector<uint32_t> bins;
    bins.reserve(h.counts.size());
    for (const uint64_t c : h.counts) {
      bins.push_back(static_cast<uint32_t>(
          std::min<uint64_t>(c, std::numeric_limits<uint32_t>::max())));
    }
    std::cout << "  " << h.name << " n=" << h.count;
    if (h.count > 0) {
      std::cout << std::fixed << std::setprecision(1) << " mean="
                << h.mean() << " p50=" << h.Quantile(0.50)
                << " p95=" << h.Quantile(0.95)
                << " p99=" << h.Quantile(0.99)
                << std::defaultfloat << std::setprecision(6);
    }
    // Samples past the last bucket bound clamp into the overflow bucket;
    // a nonzero count here means the quantiles above are floors.
    if (h.overflow_count() > 0) {
      std::cout << " overflow=" << h.overflow_count();
    }
    std::cout << "  " << HistogramSparkline(bins) << "\n";
  }
}

/// `query --explain`: renders the server's phase tree, one line per phase,
/// indented by depth, with each phase's share of the request's wall time.
void PrintProfile(const obs::RequestProfile& profile) {
  std::cout << "explain analyze: trace_id=" << std::hex << profile.trace_id
            << std::dec << " total=" << std::fixed << std::setprecision(1)
            << static_cast<double>(profile.total_wall_ns) / 1e3 << " us\n";
  if (!profile.plan.empty()) {
    std::cout << "  plan: " << profile.plan << "\n";
  }
  const double total = profile.total_wall_ns > 0
                           ? static_cast<double>(profile.total_wall_ns)
                           : 1.0;
  std::vector<std::vector<uint32_t>> children(profile.nodes.size());
  std::vector<uint32_t> roots;
  for (uint32_t i = 0; i < profile.nodes.size(); ++i) {
    const uint32_t parent = profile.nodes[i].parent;
    if (parent == obs::kProfileNoParent) {
      roots.push_back(i);
    } else if (parent < profile.nodes.size()) {
      children[parent].push_back(i);
    }
  }
  const std::function<void(uint32_t, size_t)> print_node =
      [&](uint32_t i, size_t depth) {
        const obs::ProfileNode& node = profile.nodes[i];
        std::cout << "  " << std::string(depth * 2, ' ') << node.name << "  "
                  << static_cast<double>(node.wall_ns) / 1e3 << " us ("
                  << std::setprecision(1)
                  << 100.0 * static_cast<double>(node.wall_ns) / total
                  << "%)";
        if (node.cpu_ns > 0) {
          std::cout << " cpu=" << static_cast<double>(node.cpu_ns) / 1e3
                    << " us";
        }
        std::cout << "\n";
        for (const uint32_t child : children[i]) print_node(child, depth + 1);
      };
  for (const uint32_t root : roots) print_node(root, 0);
  std::cout << std::defaultfloat << std::setprecision(6);
  for (const obs::ProfileCounter& c : profile.counters) {
    std::cout << "  counter " << c.name << " = " << c.value << "\n";
  }
  if (profile.dropped_nodes > 0) {
    std::cout << "  (" << profile.dropped_nodes
              << " phases dropped past the node cap)\n";
  }
}

/// `stats --watch`: polls GetStats every interval and renders per-interval
/// counter/histogram deltas (gauges stay levels), so latency quantiles
/// reflect only the traffic of the last window.
int WatchStats(Client& client, int64_t interval_ms, int64_t count,
               const std::string& filter) {
  obs::MetricsSnapshot prev;
  bool have_prev = false;
  for (int64_t tick = 0; count == 0 || tick < count; ++tick) {
    auto resp = client.GetStats();
    if (!resp.ok()) {
      std::cerr << resp.status().ToString() << "\n";
      return 1;
    }
    if (!resp->has_metrics) {
      std::cerr << "server does not export metrics (pre-rev-2 Stats "
                   "payload); upgrade the server or use plain `stats`\n";
      return 1;
    }
    std::cout << "=== stats"
              << (have_prev
                      ? " (delta over " + std::to_string(interval_ms) + " ms)"
                      : " (absolute)")
              << " ===\n";
    PrintServerCounters(*resp);
    PrintMetrics(have_prev ? resp->metrics.DeltaSince(prev) : resp->metrics,
                 filter);
    std::cout << std::flush;
    prev = std::move(resp->metrics);
    have_prev = true;
    if (count == 0 || tick + 1 < count) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

int Run(const ArgParser& args) {
  if (args.positional().size() != 1) {
    std::cerr << "exactly one subcommand expected: ping | build | query | "
                 "join | insert | remove | flush | drift | stats | slowlog "
                 "| drop | shutdown\n";
    return 2;
  }
  const std::string& cmd = args.positional()[0];

  ClientConfig config;
  config.host = args.GetString("host");
  config.port = static_cast<uint16_t>(args.GetInt("port"));
  config.deadline_ms = static_cast<uint32_t>(args.GetInt("deadline-ms"));
  auto client = Client::Connect(config);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  Status st;
  if (cmd == "ping") {
    st = client->Ping();
    if (st.ok()) std::cout << "pong\n";
  } else if (cmd == "build") {
    auto data = ReadBinaryDataset(args.GetString("data"));
    if (!data.ok()) {
      std::cerr << data.status().ToString() << "\n";
      return 1;
    }
    auto metric = ParseMetric(args.GetString("metric"));
    if (!metric.ok()) {
      std::cerr << metric.status().ToString() << "\n";
      return 1;
    }
    BuildIndexRequest req;
    req.name = args.GetString("name");
    req.config.epsilon = args.GetDouble("epsilon");
    req.config.metric = *metric;
    const std::string backend = args.GetString("backend");
    if (backend == "grid") {
      req.backend = BackendKind::kEpsilonGrid;
    } else if (backend == "updatable") {
      req.backend = BackendKind::kUpdatable;
    } else if (backend != "tree") {
      std::cerr << "--backend must be tree, grid, or updatable: '" << backend
                << "' is not a buildable index primary (lsh and brute are "
                   "per-query tiers; select them with --query-backend)\n";
      return 2;
    }
    req.num_threads = static_cast<uint32_t>(args.GetInt("threads"));
    req.dims = static_cast<uint32_t>(data->dims());
    req.points = data->flat();
    req.on_disk = args.GetBool("on-disk");
    if (req.on_disk && req.backend != BackendKind::kEkdbFlat) {
      std::cerr << "--on-disk builds support only --backend tree\n";
      return 2;
    }
    auto resp = client->BuildIndex(req);
    st = resp.status();
    if (resp.ok()) {
      std::cout << "built '" << req.name << "'"
                << (req.on_disk ? " (on-disk, served memory-mapped)" : "")
                << ": " << resp->num_points
                << " points, dims=" << resp->dims << ", "
                << resp->index_bytes << " bytes, " << resp->build_seconds
                << " s (evicted " << resp->evicted << ")\n";
    }
  } else if (cmd == "query") {
    const std::vector<float> point = ParsePoint(args.GetString("point"));
    if (point.empty()) {
      std::cerr << "--point must be a comma-separated float list\n";
      return 2;
    }
    const double recall = args.GetDouble("recall");
    if (!(recall > 0.0) || recall > 1.0) {
      std::cerr << "--recall must be in (0, 1]: got "
                << args.GetString("recall")
                << " (1 = exact; below 1 admits the approximate LSH tier)\n";
      return 2;
    }
    const std::string qb = args.GetString("query-backend");
    uint8_t backend_byte = kWireBackendAuto;
    if (qb == "tree") {
      backend_byte = static_cast<uint8_t>(BackendKind::kEkdbFlat);
    } else if (qb == "grid") {
      backend_byte = static_cast<uint8_t>(BackendKind::kEpsilonGrid);
    } else if (qb == "lsh") {
      backend_byte = static_cast<uint8_t>(BackendKind::kLsh);
    } else if (qb == "brute") {
      backend_byte = static_cast<uint8_t>(BackendKind::kBruteSimd);
    } else if (qb == "rtree") {
      backend_byte = static_cast<uint8_t>(BackendKind::kRTree);
    } else if (qb != "auto") {
      std::cerr << "--query-backend must be auto, tree, grid, lsh, "
                   "brute, or rtree: got '"
                << qb << "'\n";
      return 2;
    }
    RangeQueryRequest req;
    req.name = args.GetString("name");
    req.epsilon = args.GetDouble("epsilon");
    req.dims = static_cast<uint32_t>(point.size());
    req.queries = point;
    // The planner extension rides along only when asked for: default
    // queries keep the legacy wire shape (and legacy response ordering).
    req.has_planner = recall != 1.0 || backend_byte != kWireBackendAuto ||
                      args.GetBool("plan");
    req.recall = recall;
    req.backend = backend_byte;
    const bool explain = args.GetBool("explain");
    if (explain) {
      req.trace.present = true;
      req.trace.trace_id = GenerateTraceId();
      req.trace.flags = kTraceFlagProfile;
    }
    auto resp = client->RangeQuery(req);
    st = resp.status();
    if (resp.ok()) {
      const std::vector<PointId>& ids = resp->results[0];
      std::cout << ids.size() << " neighbours:";
      for (PointId id : ids) std::cout << " " << id;
      std::cout << "\n";
      if (resp->has_planner) {
        auto used = BackendKindFromWire(resp->backend_used);
        std::cout << "planner: backend="
                  << (used.ok() ? BackendKindName(*used) : "unknown")
                  << " achieved_recall=" << resp->achieved_recall
                  << (resp->plan_cache_hit ? " (plan cached)" : "") << "\n";
      }
      if (resp->has_profile) {
        PrintProfile(resp->profile);
      } else if (explain) {
        std::cerr << "server returned no profile (pre-observability "
                     "server?)\n";
      }
    }
  } else if (cmd == "join") {
    SimilarityJoinRequest req;
    req.name_a = args.GetString("name");
    req.name_b = args.GetString("name-b");
    req.epsilon = args.GetDouble("epsilon");
    req.num_threads = static_cast<uint32_t>(args.GetInt("threads"));
    PrintSink sink(static_cast<uint64_t>(args.GetInt("limit")));
    auto done = client->SimilarityJoin(req, &sink);
    st = done.status();
    if (done.ok()) {
      std::cout << done->total_pairs << " pairs ("
                << done->stats.distance_calls << " distance calls, "
                << done->stats.node_pairs_pruned << " node pairs pruned)\n";
    }
  } else if (cmd == "insert") {
    const std::vector<float> point = ParsePoint(args.GetString("point"));
    if (point.empty()) {
      std::cerr << "--point must be a comma-separated float list\n";
      return 2;
    }
    InsertRequest req;
    req.name = args.GetString("name");
    req.dims = static_cast<uint32_t>(point.size());
    req.rows = point;
    auto resp = client->Insert(req);
    st = resp.status();
    if (resp.ok()) {
      std::cout << "inserted " << resp->count << " point(s), ids "
                << resp->first_id << ".."
                << resp->first_id + resp->count - 1 << " (delta "
                << resp->delta_points << " points, " << resp->tombstones
                << " tombstones)\n";
    }
  } else if (cmd == "remove") {
    const std::vector<PointId> ids = ParseIds(args.GetString("ids"));
    if (ids.empty()) {
      std::cerr << "--ids must be a comma-separated id list\n";
      return 2;
    }
    RemoveRequest req;
    req.name = args.GetString("name");
    req.ids = ids;
    auto resp = client->Remove(req);
    st = resp.status();
    if (resp.ok()) {
      std::cout << "removed " << resp->removed << ", missing "
                << resp->missing << " (delta " << resp->delta_points
                << " points, " << resp->tombstones << " tombstones)\n";
    }
  } else if (cmd == "flush") {
    auto resp = client->Flush(args.GetString("name"));
    st = resp.status();
    if (resp.ok()) {
      std::cout << (resp->compacted ? "compacted" : "nothing to compact")
                << ": base " << resp->base_points << " points, delta "
                << resp->delta_points << ", " << resp->tombstones
                << " tombstones, " << resp->index_bytes << " bytes\n";
    }
  } else if (cmd == "drift") {
    return RunDrift(*client, args);
  } else if (cmd == "stats") {
    if (args.GetBool("watch")) {
      return WatchStats(*client, args.GetInt("interval-ms"),
                        args.GetInt("count"), args.GetString("filter"));
    }
    auto resp = client->GetStats();
    st = resp.status();
    if (resp.ok()) {
      PrintServerCounters(*resp);
      if (resp->has_metrics) {
        std::cout << "metrics:\n";
        PrintMetrics(resp->metrics, args.GetString("filter"));
      }
    }
  } else if (cmd == "slowlog") {
    auto resp = client->GetStats(/*drain_slowlog=*/true);
    st = resp.status();
    if (resp.ok()) {
      if (!resp->has_slowlog) {
        std::cerr << "server does not answer the slow-query extension "
                     "(pre-observability Stats payload)\n";
        return 1;
      }
      std::cout << resp->slowlog.size() << " entries drained ("
                << resp->slowlog_recorded << " recorded, "
                << resp->slowlog_evicted << " evicted before draining)\n";
      for (const obs::SlowQueryEntry& entry : resp->slowlog) {
        std::cout << obs::SlowQueryLog::ToJsonLine(entry) << "\n";
      }
    }
  } else if (cmd == "drop") {
    auto resp = client->DropIndex(args.GetString("name"));
    st = resp.status();
    if (resp.ok()) {
      std::cout << (resp->found ? "dropped\n" : "not found\n");
    }
  } else if (cmd == "shutdown") {
    st = client->Shutdown();
    if (st.ok()) std::cout << "server stopping\n";
  } else {
    std::cerr << "unknown subcommand '" << cmd << "'\n";
    return 2;
  }

  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args("Client for the similarity-join query service");
  args.AddFlag("host", "127.0.0.1", "server address");
  args.AddFlag("port", "7411", "server port");
  args.AddFlag("deadline-ms", "0", "per-request deadline; 0 = none");
  args.AddFlag("name", "base", "index name");
  args.AddFlag("name-b", "", "second index for a cross-join");
  args.AddFlag("data", "", "binary dataset file (build)");
  args.AddFlag("epsilon", "0", "epsilon; 0 = index build epsilon");
  args.AddFlag("metric", "l2", "metric for build: l2 | l1 | linf");
  args.AddFlag("backend", "tree",
               "index backend for build: tree (joins + queries) | grid "
               "(vectorised epsilon grid; joins fall back to a lazily "
               "built tree)");
  args.AddFlag("threads", "0", "build/join parallelism; 0 = server default");
  args.AddBoolFlag("on-disk", false,
                   "build only: external (sort-runs + merge) build into a "
                   "segment file served memory-mapped — for datasets "
                   "beyond the registry budget; needs a server --spill-dir");
  args.AddFlag("point", "", "comma-separated query point (query)");
  args.AddFlag("recall", "1",
               "query only: recall target in (0, 1]; below 1 lets the "
               "server route to the recall-controlled LSH tier");
  args.AddFlag("query-backend", "auto",
               "query only: force one backend (tree | grid | lsh | brute "
               "| rtree) or auto for cost-based planning");
  args.AddBoolFlag("plan", false,
                   "query only: request cost-based planning (and the "
                   "planner response fields) even at recall 1");
  args.AddBoolFlag("explain", false,
                   "query only: EXPLAIN ANALYZE — run the query profiled "
                   "and print the server's per-phase breakdown");
  args.AddFlag("limit", "20", "join pairs printed; 0 = all");
  args.AddFlag("ids", "", "comma-separated point ids (remove)");
  args.AddFlag("dims", "8", "drift only: dimensionality");
  args.AddFlag("steps", "16", "drift only: timeline steps");
  args.AddFlag("drift-clusters", "4", "drift only: initial live clusters");
  args.AddFlag("points-per-cluster", "64", "drift only: points per cluster");
  args.AddFlag("queries-per-step", "8", "drift only: chasing queries");
  args.AddFlag("seed", "42", "drift only: RNG seed");
  args.AddBoolFlag("watch", false,
                   "stats only: poll repeatedly, rendering interval deltas");
  args.AddFlag("interval-ms", "1000", "polling interval for --watch");
  args.AddFlag("count", "0", "number of --watch ticks; 0 = until killed");
  args.AddFlag("filter", "",
               "stats only: print just the metrics whose name starts with "
               "this prefix (e.g. service.latency)");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(args);
}
