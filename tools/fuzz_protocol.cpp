// fuzz_protocol — randomized robustness tester for the service wire codec.
//
// The decoder is the one component that parses attacker-controlled bytes, so
// its contract is absolute: any byte stream, fed in any chunking, either
// yields valid frames or a Status — never a crash, hang, or out-of-bounds
// read.  This tool soaks that contract six ways per iteration:
//
//   1. pure noise      — random bytes through the FrameDecoder
//   2. round-trips     — random valid messages encode -> parse -> compare
//   3. bit flips       — valid frame streams with random mutations
//   4. truncations     — valid frames cut off at every kind of boundary
//   5. interleaving    — pipelined RangeQuery frames from several simulated
//                        connections, delivered in arbitrarily interleaved
//                        chunks (the arrival pattern the fusion collector
//                        batches across), each stream decoding exactly its
//                        own frames in order
//   6. malformed updates — Insert/Remove/Flush payloads truncated at every
//                        byte and with count/dims fields patched to extremes
//   7. telemetry suffixes — trace-context request suffixes, the EXPLAIN
//                        ANALYZE profile response extension, and the Stats
//                        slow-log block truncated at every byte and with
//                        magic/length/count fields patched to extremes
//
// Random valid frames also attach trace contexts, response profiles, and
// slow-log blocks with coin-flip probability, so every generic pass
// (round-trip, bit flips, truncation) soaks the extended shapes too.
//
// Payloads of frames the decoder does produce are handed to the matching
// Parse* function, which must also only ever return a Status.  Run it under
// ASan/UBSan (scripts/check_asan_ubsan.sh) to turn silent over-reads into
// hard failures:
//
//   ./tools/fuzz_protocol --iterations 2000 --seed 1
//   ./tools/fuzz_protocol --iterations 0      # run until interrupted

#include <algorithm>
#include <cstring>
#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "service/protocol.h"

namespace simjoin {
namespace {

std::string RandomName(Rng* rng, size_t max_len = 24) {
  std::string s(rng->UniformInt(max_len + 1), 'x');
  for (char& c : s) c = static_cast<char>('a' + rng->UniformInt(26u));
  return s;
}

std::vector<float> RandomFloats(Rng* rng, size_t count) {
  std::vector<float> v(count);
  for (float& f : v) f = rng->UniformFloat();
  return v;
}

/// Half the request frames carry a trace context so the 10-byte suffix
/// rides every generic pass; a quarter of those ask for a profile, and a
/// few get hostile flag bytes (unknown bits must parse, not reject).
TraceContext MaybeTrace(Rng* rng) {
  TraceContext ctx;
  if (!rng->Bernoulli(0.5)) return ctx;
  ctx.present = true;
  ctx.trace_id = rng->Next();
  ctx.flags = rng->Bernoulli(0.25)
                  ? static_cast<uint8_t>(rng->UniformInt(256u))
                  : (rng->Bernoulli(0.5) ? kTraceFlagProfile : 0);
  return ctx;
}

/// Small random phase tree + counters for response-profile fuzzing.
obs::RequestProfile RandomProfile(Rng* rng) {
  obs::RequestProfile p;
  p.trace_id = rng->Next();
  p.total_wall_ns = rng->Next();
  p.plan = RandomName(rng, 48);
  p.nodes.resize(rng->UniformInt(6u));
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    obs::ProfileNode& n = p.nodes[i];
    n.name = RandomName(rng, 16);
    n.parent = (i == 0 || rng->Bernoulli(0.3))
                   ? obs::kProfileNoParent
                   : static_cast<uint32_t>(rng->UniformInt(i));
    n.start_ns = rng->UniformInt(1u << 20);
    n.wall_ns = rng->UniformInt(1u << 20);
    n.cpu_ns = rng->UniformInt(1u << 20);
  }
  p.counters.resize(rng->UniformInt(4u));
  for (obs::ProfileCounter& c : p.counters) {
    c.name = RandomName(rng, 16);
    c.value = rng->Next();
  }
  p.dropped_nodes = rng->UniformInt(8u);
  return p;
}

obs::SlowQueryEntry RandomSlowEntry(Rng* rng) {
  obs::SlowQueryEntry e;
  e.unix_micros = rng->Next();
  e.trace_id = rng->Next();
  e.request_id = rng->Next();
  e.op = static_cast<uint8_t>(rng->UniformInt(256u));
  e.index = RandomName(rng, 16);
  e.wall_us = rng->Next();
  e.status_code = static_cast<uint32_t>(rng->UniformInt(16u));
  if (rng->Bernoulli(0.5)) e.status_message = RandomName(rng, 32);
  if (rng->Bernoulli(0.5)) e.profile = RandomProfile(rng);
  return e;
}

/// Encodes one random, structurally valid frame.
std::vector<uint8_t> RandomValidFrame(Rng* rng) {
  const uint64_t id = rng->Next();
  const uint32_t deadline = static_cast<uint32_t>(rng->UniformInt(1000u));
  switch (rng->UniformInt(15u)) {
    case 0: {
      BuildIndexRequest req;
      req.name = RandomName(rng);
      req.config.epsilon = rng->Uniform(0.01, 0.5);
      req.dims = 1 + static_cast<uint32_t>(rng->UniformInt(8u));
      req.num_threads = static_cast<uint32_t>(rng->UniformInt(5u));
      req.points = RandomFloats(rng, req.dims * rng->UniformInt(64u));
      // Half the builds select the non-default backend so the optional
      // trailing backend byte rides the mutation and truncation passes.
      if (rng->Bernoulli(0.5)) req.backend = BackendKind::kEpsilonGrid;
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kBuildIndex, id, deadline,
                         EncodeBuildIndexRequest(req));
    }
    case 1: {
      RangeQueryRequest req;
      req.name = RandomName(rng);
      req.epsilon = rng->Uniform(0.0, 0.5);
      req.dims = 1 + static_cast<uint32_t>(rng->UniformInt(8u));
      req.queries = RandomFloats(rng, req.dims * rng->UniformInt(16u));
      // Half the queries carry the planner extension, and the recall field
      // and backend byte mutate *together*: the parser keys the extension
      // off an exact 9-byte surplus, so joint corruption is what probes the
      // legacy/extension boundary (lone-byte flips only perturb one field).
      if (rng->Bernoulli(0.5)) {
        req.has_planner = true;
        req.recall = rng->Bernoulli(0.25) ? rng->Uniform(-2.0, 2.0)
                                          : rng->Uniform(0.05, 1.0);
        req.backend = rng->Bernoulli(0.25)
                          ? static_cast<uint8_t>(rng->UniformInt(256u))
                          : static_cast<uint8_t>(rng->UniformInt(4u));
        if (rng->Bernoulli(0.2)) req.backend = kWireBackendAuto;
      }
      // The trace suffix stacks after the planner tail, so mutated frames
      // probe the {0, 9, 10, 19}-byte surplus disambiguation directly.
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kRangeQuery, id, deadline,
                         EncodeRangeQueryRequest(req));
    }
    case 2: {
      SimilarityJoinRequest req;
      req.name_a = RandomName(rng);
      if (rng->Bernoulli(0.5)) req.name_b = RandomName(rng);
      req.epsilon = rng->Uniform(0.0, 0.5);
      req.num_threads = static_cast<uint32_t>(rng->UniformInt(9u));
      req.chunk_pairs = static_cast<uint32_t>(rng->UniformInt(10000u));
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kSimilarityJoin, id, deadline,
                         EncodeSimilarityJoinRequest(req));
    }
    case 3: {
      std::vector<IdPair> pairs(rng->UniformInt(200u));
      for (IdPair& p : pairs) {
        p.first = static_cast<PointId>(rng->UniformInt(1u << 20));
        p.second = static_cast<PointId>(rng->UniformInt(1u << 20));
      }
      return EncodeFrame(FrameType::kJoinChunk, id, deadline,
                         EncodeJoinChunk(pairs));
    }
    case 4: {
      JoinDone done;
      done.total_pairs = rng->Next();
      done.stats.candidate_pairs = rng->Next();
      done.stats.pairs_emitted = rng->Next();
      return EncodeFrame(FrameType::kJoinDone, id, deadline,
                         EncodeJoinDone(done));
    }
    case 5: {
      RangeQueryResponse resp;
      resp.results.resize(rng->UniformInt(8u));
      for (auto& ids : resp.results) {
        ids.resize(rng->UniformInt(32u));
        for (PointId& p : ids) p = static_cast<PointId>(rng->Next() >> 40);
      }
      if (rng->Bernoulli(0.5)) {
        resp.has_planner = true;
        resp.achieved_recall = rng->Uniform(0.0, 1.0);
        resp.backend_used = static_cast<uint8_t>(rng->UniformInt(4u));
        resp.plan_cache_hit = rng->Bernoulli(0.5);
      }
      // EXPLAIN ANALYZE extension, solo and stacked on the planner echo.
      if (rng->Bernoulli(0.5)) {
        resp.has_profile = true;
        resp.profile = RandomProfile(rng);
      }
      return EncodeFrame(FrameType::kRangeQueryResult, id, deadline,
                         EncodeRangeQueryResponse(resp));
    }
    case 6: {
      StatsResponse resp;
      resp.requests_admitted = rng->Next();
      resp.indexes.resize(rng->UniformInt(4u));
      for (IndexInfo& info : resp.indexes) {
        info.name = RandomName(rng);
        info.bytes = rng->Next();
      }
      // Rev-2 metrics block: random counters, gauges, and histograms so the
      // extended Stats payload is soaked through the same mutation and
      // truncation passes as everything else.
      resp.has_metrics = true;
      resp.metrics.counters.resize(rng->UniformInt(6u));
      for (obs::CounterSample& c : resp.metrics.counters) {
        c.name = RandomName(rng);
        c.value = rng->Next();
      }
      resp.metrics.gauges.resize(rng->UniformInt(6u));
      for (obs::GaugeSample& g : resp.metrics.gauges) {
        g.name = RandomName(rng);
        g.value = static_cast<int64_t>(rng->Next());
      }
      resp.metrics.histograms.resize(rng->UniformInt(4u));
      for (obs::HistogramSample& h : resp.metrics.histograms) {
        h.name = RandomName(rng);
        h.boundaries.resize(rng->UniformInt(8u));
        double bound = 0.0;
        for (double& b : h.boundaries) b = (bound += rng->Uniform(0.1, 10.0));
        h.counts.assign(h.boundaries.size() + 1, 0);
        h.count = 0;
        for (uint64_t& c : h.counts) {
          c = rng->UniformInt(1u << 16);
          h.count += c;
        }
        h.sum = rng->Uniform(0.0, 1e6);
      }
      // Rev-3 slow-log drain block, including the has_slowlog-but-empty
      // answer a server without a configured log returns.
      if (rng->Bernoulli(0.5)) {
        resp.has_slowlog = true;
        resp.slowlog.resize(rng->UniformInt(4u));
        for (obs::SlowQueryEntry& e : resp.slowlog) e = RandomSlowEntry(rng);
        resp.slowlog_recorded = rng->Next();
        resp.slowlog_evicted = rng->Next();
      }
      return EncodeFrame(FrameType::kStatsResult, id, deadline,
                         EncodeStatsResponse(resp));
    }
    case 7:
      return EncodeFrame(FrameType::kError, id, deadline,
                         EncodeErrorResponse(Status::NotFound(
                             "fuzz " + RandomName(rng, 64))));
    case 8: {
      DropIndexRequest req;
      req.name = RandomName(rng);
      return EncodeFrame(FrameType::kDropIndex, id, deadline,
                         EncodeDropIndexRequest(req));
    }
    case 9: {
      InsertRequest req;
      req.name = RandomName(rng);
      req.dims = 1 + static_cast<uint32_t>(rng->UniformInt(8u));
      req.rows = RandomFloats(rng, req.dims * (1 + rng->UniformInt(32u)));
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kInsert, id, deadline,
                         EncodeInsertRequest(req));
    }
    case 10: {
      RemoveRequest req;
      req.name = RandomName(rng);
      req.ids.resize(1 + rng->UniformInt(64u));
      // Mix plausible ids with extremes so mutated frames probe the
      // decoder's id handling, not just small integers.
      for (PointId& p : req.ids) {
        p = rng->Bernoulli(0.25)
                ? static_cast<PointId>(rng->Next())
                : static_cast<PointId>(rng->UniformInt(1u << 16));
      }
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kRemove, id, deadline,
                         EncodeRemoveRequest(req));
    }
    case 11: {
      FlushRequest req;
      req.name = RandomName(rng);
      req.trace = MaybeTrace(rng);
      return EncodeFrame(FrameType::kFlush, id, deadline,
                         EncodeFlushRequest(req));
    }
    case 12: {
      // Update responses ride the same mutation/truncation passes.
      switch (rng->UniformInt(3u)) {
        case 0: {
          InsertResponse resp;
          resp.first_id = static_cast<PointId>(rng->Next());
          resp.count = static_cast<uint32_t>(rng->UniformInt(1u << 20));
          resp.delta_points = rng->Next();
          resp.tombstones = rng->Next();
          return EncodeFrame(FrameType::kInsertOk, id, deadline,
                             EncodeInsertResponse(resp));
        }
        case 1: {
          RemoveResponse resp;
          resp.removed = static_cast<uint32_t>(rng->UniformInt(1u << 20));
          resp.missing = static_cast<uint32_t>(rng->UniformInt(1u << 20));
          resp.delta_points = rng->Next();
          resp.tombstones = rng->Next();
          return EncodeFrame(FrameType::kRemoveOk, id, deadline,
                             EncodeRemoveResponse(resp));
        }
        default: {
          FlushResponse resp;
          resp.compacted = rng->Bernoulli(0.5);
          resp.base_points = rng->Next();
          resp.delta_points = rng->Next();
          resp.tombstones = rng->Next();
          resp.index_bytes = rng->Next();
          return EncodeFrame(FrameType::kFlushOk, id, deadline,
                             EncodeFlushResponse(resp));
        }
      }
    }
    case 13: {
      // Stats with the drain-slowlog flag byte (legacy empty payload is
      // exercised by the default case below).
      StatsRequest req;
      req.drain_slowlog = rng->Bernoulli(0.75);
      return EncodeFrame(FrameType::kStats, id, deadline,
                         EncodeStatsRequest(req));
    }
    default:
      return EncodeFrame(rng->Bernoulli(0.5) ? FrameType::kPing
                                             : FrameType::kStats,
                         id, deadline, {});
  }
}

/// Pass 6: hand-crafted malformed update payloads — the shapes a buggy or
/// hostile client is most likely to send.  Every parse must return a
/// Status (usually !ok); only a crash or sanitizer report fails the pass.
void MalformedUpdateFrames(Rng* rng) {
  InsertRequest ins;
  ins.name = RandomName(rng, 12);
  ins.dims = 4;
  ins.rows = RandomFloats(rng, 4 * (1 + rng->UniformInt(8u)));
  const std::vector<uint8_t> ins_payload = EncodeInsertRequest(ins);
  RemoveRequest rem;
  rem.name = RandomName(rng, 12);
  rem.ids.resize(1 + rng->UniformInt(16u));
  for (PointId& p : rem.ids) p = static_cast<PointId>(rng->Next());
  const std::vector<uint8_t> rem_payload = EncodeRemoveRequest(rem);

  // Short payloads: every truncation point of both request shapes.
  for (size_t cut = 0; cut < ins_payload.size(); ++cut) {
    InsertRequest out;
    (void)ParseInsertRequest(
        std::span<const uint8_t>(ins_payload.data(), cut), &out);
  }
  for (size_t cut = 0; cut < rem_payload.size(); ++cut) {
    RemoveRequest out;
    (void)ParseRemoveRequest(
        std::span<const uint8_t>(rem_payload.data(), cut), &out);
  }

  // Count fields inflated to extremes (overflow probes): patch the u32
  // immediately after the length-prefixed name.
  auto patch_count = [&](std::vector<uint8_t> bytes, size_t offset,
                         uint32_t value) {
    if (offset + 4 <= bytes.size()) {
      std::memcpy(bytes.data() + offset, &value, sizeof(value));
    }
    return bytes;
  };
  const size_t ins_count_off = 4 + ins.name.size() + 4;  // name, dims
  for (uint32_t v : {0u, 1u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    InsertRequest out;
    (void)ParseInsertRequest(patch_count(ins_payload, ins_count_off, v),
                             &out);
    RemoveRequest rout;
    (void)ParseRemoveRequest(patch_count(rem_payload, 4 + rem.name.size(), v),
                             &rout);
  }

  // Zero-dims insert and empty-name updates must be rejected, not crash.
  {
    InsertRequest out;
    (void)ParseInsertRequest(patch_count(ins_payload, 4 + ins.name.size(), 0),
                             &out);
    FlushRequest empty;
    empty.name = "";
    FlushRequest fout;
    (void)ParseFlushRequest(EncodeFlushRequest(empty), &fout);
  }
}

/// Pass 7: hand-crafted hostile telemetry suffixes.  Trace-context request
/// suffixes, the profile response extension, and the Stats slow-log block
/// are all tail-detected, so truncation at every byte and patched
/// magic/length/count fields are exactly the shapes a confused proxy or a
/// hostile client produces.  Every parse must return a Status; a crash or
/// sanitizer report is the only failure.
void HostileTelemetrySuffixes(Rng* rng) {
  auto truncate_all = [](const std::vector<uint8_t>& payload, auto parse) {
    for (size_t cut = 0; cut <= payload.size(); ++cut) {
      parse(std::span<const uint8_t>(payload.data(), cut));
    }
  };
  auto patch = [](std::vector<uint8_t> bytes, size_t off, uint8_t v) {
    if (off < bytes.size()) bytes[off] = v;
    return bytes;
  };

  // Traced RangeQuery, with and without the planner tail stacked under it.
  for (const bool planner : {false, true}) {
    RangeQueryRequest req;
    req.name = RandomName(rng, 12);
    req.epsilon = rng->Uniform(0.0, 0.5);
    req.dims = 2;
    req.queries = RandomFloats(rng, 2 * (1 + rng->UniformInt(4u)));
    req.has_planner = planner;
    req.trace.present = true;
    req.trace.trace_id = rng->Next();
    req.trace.flags = kTraceFlagProfile;
    const std::vector<uint8_t> payload = EncodeRangeQueryRequest(req);
    truncate_all(payload, [](std::span<const uint8_t> bytes) {
      RangeQueryRequest out;
      (void)ParseRangeQueryRequest(bytes, &out);
    });
    // Corrupt every byte of the 10-byte suffix, magic included.
    for (size_t i = 1; i <= kWireTraceExtBytes; ++i) {
      RangeQueryRequest out;
      (void)ParseRangeQueryRequest(
          patch(payload, payload.size() - i,
                static_cast<uint8_t>(rng->Next())),
          &out);
    }
  }

  // Traced updates: the suffix rides payloads whose body length is
  // name-driven rather than count*dims-driven.
  {
    FlushRequest req;
    req.name = RandomName(rng, 12);
    req.trace.present = true;
    req.trace.trace_id = rng->Next();
    truncate_all(EncodeFlushRequest(req), [](std::span<const uint8_t> bytes) {
      FlushRequest out;
      (void)ParseFlushRequest(bytes, &out);
    });
  }

  // Profile response extension, solo and stacked on the planner echo.
  for (const bool planner : {false, true}) {
    RangeQueryResponse resp;
    resp.results.resize(1 + rng->UniformInt(4u));
    for (auto& ids : resp.results) ids.resize(rng->UniformInt(8u));
    resp.has_planner = planner;
    resp.has_profile = true;
    resp.profile = RandomProfile(rng);
    const std::vector<uint8_t> payload = EncodeRangeQueryResponse(resp);
    truncate_all(payload, [](std::span<const uint8_t> bytes) {
      RangeQueryResponse out;
      (void)ParseRangeQueryResponse(bytes, &out);
    });
    // Patch the trailing magic and each byte of the length field.
    for (size_t i = 1; i <= kWireProfileFrameBytes; ++i) {
      RangeQueryResponse out;
      (void)ParseRangeQueryResponse(
          patch(payload, payload.size() - i,
                static_cast<uint8_t>(rng->Next())),
          &out);
    }
  }

  // Slow-log drain block: truncate everywhere, then inflate the entry
  // count to extremes against a short body (hostile-cap probe).
  {
    StatsResponse resp;
    resp.requests_admitted = rng->Next();
    resp.has_metrics = true;
    resp.has_slowlog = true;
    resp.slowlog.resize(1 + rng->UniformInt(3u));
    for (obs::SlowQueryEntry& e : resp.slowlog) e = RandomSlowEntry(rng);
    resp.slowlog_recorded = rng->Next();
    resp.slowlog_evicted = rng->Next();
    const std::vector<uint8_t> payload = EncodeStatsResponse(resp);
    truncate_all(payload, [](std::span<const uint8_t> bytes) {
      StatsResponse out;
      (void)ParseStatsResponse(bytes, &out);
    });
    for (size_t i = 0; i < 32 && i < payload.size(); ++i) {
      StatsResponse out;
      (void)ParseStatsResponse(
          patch(payload, payload.size() - 1 - i,
                static_cast<uint8_t>(rng->Next())),
          &out);
    }
  }
}

/// Routes a decoded frame's payload to its Parse function.  Statuses are
/// fine; crashing is the only way to fail.
void ParseByType(const Frame& frame) {
  switch (frame.header.type) {
    case FrameType::kBuildIndex: {
      BuildIndexRequest m;
      (void)ParseBuildIndexRequest(frame.payload, &m);
      break;
    }
    case FrameType::kRangeQuery: {
      RangeQueryRequest m;
      (void)ParseRangeQueryRequest(frame.payload, &m);
      break;
    }
    case FrameType::kSimilarityJoin: {
      SimilarityJoinRequest m;
      (void)ParseSimilarityJoinRequest(frame.payload, &m);
      break;
    }
    case FrameType::kDropIndex: {
      DropIndexRequest m;
      (void)ParseDropIndexRequest(frame.payload, &m);
      break;
    }
    case FrameType::kBuildIndexOk: {
      BuildIndexResponse m;
      (void)ParseBuildIndexResponse(frame.payload, &m);
      break;
    }
    case FrameType::kRangeQueryResult: {
      RangeQueryResponse m;
      (void)ParseRangeQueryResponse(frame.payload, &m);
      break;
    }
    case FrameType::kJoinChunk: {
      JoinChunk m;
      (void)ParseJoinChunk(frame.payload, &m);
      break;
    }
    case FrameType::kJoinDone: {
      JoinDone m;
      (void)ParseJoinDone(frame.payload, &m);
      break;
    }
    case FrameType::kStatsResult: {
      StatsResponse m;
      (void)ParseStatsResponse(frame.payload, &m);
      break;
    }
    case FrameType::kDropIndexOk: {
      DropIndexResponse m;
      (void)ParseDropIndexResponse(frame.payload, &m);
      break;
    }
    case FrameType::kError: {
      Status m = Status::OK();
      (void)ParseErrorResponse(frame.payload, &m);
      break;
    }
    case FrameType::kRetryAfter: {
      RetryAfterResponse m;
      (void)ParseRetryAfterResponse(frame.payload, &m);
      break;
    }
    case FrameType::kInsert: {
      InsertRequest m;
      (void)ParseInsertRequest(frame.payload, &m);
      break;
    }
    case FrameType::kRemove: {
      RemoveRequest m;
      (void)ParseRemoveRequest(frame.payload, &m);
      break;
    }
    case FrameType::kFlush: {
      FlushRequest m;
      (void)ParseFlushRequest(frame.payload, &m);
      break;
    }
    case FrameType::kInsertOk: {
      InsertResponse m;
      (void)ParseInsertResponse(frame.payload, &m);
      break;
    }
    case FrameType::kRemoveOk: {
      RemoveResponse m;
      (void)ParseRemoveResponse(frame.payload, &m);
      break;
    }
    case FrameType::kFlushOk: {
      FlushResponse m;
      (void)ParseFlushResponse(frame.payload, &m);
      break;
    }
    case FrameType::kStats: {
      StatsRequest m;
      (void)ParseStatsRequest(frame.payload, &m);
      break;
    }
    default:
      break;  // ping/pong/shutdown frames carry no payload contract
  }
}

/// Feeds bytes to a decoder in random chunk sizes and parses whatever comes
/// out.  Exercises the incremental reassembly path.
void Soak(Rng* rng, std::span<const uint8_t> bytes) {
  FrameDecoder decoder(1u << 20);
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t chunk =
        std::min<size_t>(1 + rng->UniformInt(97u), bytes.size() - off);
    decoder.Append(bytes.data() + off, chunk);
    off += chunk;
    while (true) {
      Frame frame;
      bool got = false;
      if (!decoder.Next(&frame, &got).ok() || !got) break;
      ParseByType(frame);
    }
  }
}

/// Pass 5: several simulated connections each pipeline a run of RangeQuery
/// frames; delivery interleaves random-sized chunks across the connections
/// (each into its own decoder, like the io loop's per-connection buffers).
/// Every decoder must reproduce exactly its own frames, in order, with the
/// request ids and query payloads intact — the invariant the fusion
/// collector's cross-connection batching rests on.
bool InterleavedPipelines(Rng* rng, uint64_t seed, uint64_t iter) {
  struct SimConn {
    std::vector<uint8_t> stream;            // all frames, concatenated
    size_t sent = 0;                        // delivery cursor
    std::vector<uint64_t> ids;              // expected request ids, in order
    std::vector<std::vector<float>> sent_queries;  // per frame
    FrameDecoder decoder{1u << 20};
    size_t decoded = 0;
  };
  const size_t num_conns = 2 + rng->UniformInt(5u);
  std::vector<SimConn> conns(num_conns);
  for (size_t c = 0; c < num_conns; ++c) {
    const size_t pipelined = 1 + rng->UniformInt(8u);
    for (size_t f = 0; f < pipelined; ++f) {
      RangeQueryRequest req;
      req.name = RandomName(rng);
      req.epsilon = rng->Uniform(0.0, 0.5);
      req.dims = 1 + static_cast<uint32_t>(rng->UniformInt(8u));
      req.queries = RandomFloats(rng, req.dims * (1 + rng->UniformInt(8u)));
      const uint64_t id = (c << 32) | (f + 1);
      const std::vector<uint8_t> frame = EncodeFrame(
          FrameType::kRangeQuery, id,
          static_cast<uint32_t>(rng->UniformInt(1000u)),
          EncodeRangeQueryRequest(req));
      conns[c].stream.insert(conns[c].stream.end(), frame.begin(),
                             frame.end());
      conns[c].ids.push_back(id);
      conns[c].sent_queries.push_back(req.queries);
    }
  }

  // Deliver chunks from random connections until every stream drains.
  size_t remaining = num_conns;
  while (remaining > 0) {
    SimConn& conn = conns[rng->UniformInt(num_conns)];
    if (conn.sent == conn.stream.size()) continue;
    const size_t chunk = std::min<size_t>(1 + rng->UniformInt(97u),
                                          conn.stream.size() - conn.sent);
    conn.decoder.Append(conn.stream.data() + conn.sent, chunk);
    conn.sent += chunk;
    if (conn.sent == conn.stream.size()) --remaining;
    while (true) {
      Frame frame;
      bool got = false;
      const Status st = conn.decoder.Next(&frame, &got);
      if (!st.ok()) {
        std::cerr << "FAIL: pipelined stream rejected (seed=" << seed
                  << " iter=" << iter << "): " << st.ToString() << "\n";
        return false;
      }
      if (!got) break;
      if (conn.decoded >= conn.ids.size() ||
          frame.header.request_id != conn.ids[conn.decoded] ||
          frame.header.type != FrameType::kRangeQuery) {
        std::cerr << "FAIL: pipelined frame out of order (seed=" << seed
                  << " iter=" << iter << ")\n";
        return false;
      }
      RangeQueryRequest parsed;
      if (!ParseRangeQueryRequest(frame.payload, &parsed).ok() ||
          parsed.queries != conn.sent_queries[conn.decoded]) {
        std::cerr << "FAIL: pipelined payload corrupted (seed=" << seed
                  << " iter=" << iter << ")\n";
        return false;
      }
      ++conn.decoded;
    }
  }
  for (const SimConn& conn : conns) {
    if (conn.decoded != conn.ids.size() ||
        conn.decoder.buffered_bytes() != 0) {
      std::cerr << "FAIL: pipelined stream incomplete (seed=" << seed
                << " iter=" << iter << ")\n";
      return false;
    }
  }
  return true;
}

int Run(uint64_t iterations, uint64_t seed) {
  Rng rng(seed);
  uint64_t frames_ok = 0;
  for (uint64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
    // 1. Pure noise.
    std::vector<uint8_t> noise(rng.UniformInt(512u));
    for (uint8_t& b : noise) b = static_cast<uint8_t>(rng.Next());
    Soak(&rng, noise);

    // 2. Round-trip a stream of valid frames; they must all decode.
    std::vector<uint8_t> stream;
    const size_t num_frames = 1 + rng.UniformInt(4u);
    for (size_t i = 0; i < num_frames; ++i) {
      const std::vector<uint8_t> frame = RandomValidFrame(&rng);
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    {
      FrameDecoder decoder;
      decoder.Append(stream.data(), stream.size());
      size_t decoded = 0;
      while (true) {
        Frame frame;
        bool got = false;
        const Status st = decoder.Next(&frame, &got);
        if (!st.ok()) {
          std::cerr << "FAIL: valid stream rejected (seed=" << seed
                    << " iter=" << iter << "): " << st.ToString() << "\n";
          return 1;
        }
        if (!got) break;
        ParseByType(frame);
        ++decoded;
      }
      if (decoded != num_frames || decoder.buffered_bytes() != 0) {
        std::cerr << "FAIL: decoded " << decoded << "/" << num_frames
                  << " frames, " << decoder.buffered_bytes()
                  << " bytes stranded (seed=" << seed << " iter=" << iter
                  << ")\n";
        return 1;
      }
      frames_ok += decoded;
    }

    // 3. Bit flips over the same stream.
    std::vector<uint8_t> mutated = stream;
    const size_t flips = 1 + rng.UniformInt(8u);
    for (size_t i = 0; i < flips && !mutated.empty(); ++i) {
      mutated[rng.UniformInt(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.UniformInt(8u));
    }
    Soak(&rng, mutated);

    // 4. Truncation at a random offset.
    if (!stream.empty()) {
      Soak(&rng, std::span<const uint8_t>(stream.data(),
                                          rng.UniformInt(stream.size())));
    }

    // 5. Interleaved pipelined RangeQuery streams across connections.
    if (!InterleavedPipelines(&rng, seed, iter)) return 1;

    // 6. Hand-crafted malformed update (insert/remove/flush) payloads.
    MalformedUpdateFrames(&rng);

    // 7. Hostile trace/profile/slow-log suffixes.
    HostileTelemetrySuffixes(&rng);

    if ((iter + 1) % 500 == 0) {
      std::cout << "iter " << (iter + 1) << ": " << frames_ok
                << " valid frames round-tripped\n";
    }
  }
  std::cout << "OK: " << frames_ok << " valid frames round-tripped, no "
            << "decoder crashes\n";
  return 0;
}

}  // namespace
}  // namespace simjoin

int main(int argc, char** argv) {
  simjoin::ArgParser args(
      "Randomized robustness fuzzer for the service wire protocol");
  args.AddFlag("iterations", "2000", "fuzz iterations; 0 = run forever");
  args.AddFlag("seed", "1", "rng seed");
  const simjoin::Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << args.Help();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.Help();
    return 0;
  }
  return simjoin::Run(static_cast<uint64_t>(args.GetInt("iterations")),
                      static_cast<uint64_t>(args.GetInt("seed")));
}
