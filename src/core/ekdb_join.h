// Similarity-join traversals over eps-k-d-B trees.
//
// SelfJoin(T) reports every unordered pair {a, b}, a != b, of points of T's
// dataset with dist(a, b) <= epsilon, each exactly once in (min, max) order.
// Join(A, B) reports every (a in A, b in B) pair within epsilon.
//
// Both exploit the tree's global stripe grid: two internal nodes only ever
// pair children whose stripe indices differ by at most one, and (optionally)
// any node pair whose bounding boxes are more than epsilon apart is pruned.
// Leaf pairs are processed with a sliding-window sort-merge sweep on a
// shared sort dimension.

#ifndef SIMJOIN_CORE_EKDB_JOIN_H_
#define SIMJOIN_CORE_EKDB_JOIN_H_

#include <unordered_map>
#include <vector>

#include "common/pair_sink.h"
#include "common/simd_kernel.h"
#include "common/status.h"
#include "core/ekdb_tree.h"

namespace simjoin {

/// Self-join of the tree's dataset.  Pairs are emitted in canonical
/// (smaller id, larger id) order, each exactly once.
Status EkdbSelfJoin(const EkdbTree& tree, PairSink* sink,
                    JoinStats* stats = nullptr);

/// Join between two datasets indexed by join-compatible trees (same epsilon,
/// metric, dimensionality, dimension order).  Pairs are (id in a, id in b).
Status EkdbJoin(const EkdbTree& a, const EkdbTree& b, PairSink* sink,
                JoinStats* stats = nullptr);

/// Self-join at a *smaller* radius than the tree was built for: eps_query
/// must be in (0, config().epsilon].  A tree built once for the largest
/// radius of interest can thus serve a whole family of query radii — the
/// stripe grid stays sound because stripes are at least build-epsilon wide.
Status EkdbSelfJoinWithEpsilon(const EkdbTree& tree, double eps_query,
                               PairSink* sink, JoinStats* stats = nullptr);

/// Two-tree join at a smaller radius (same constraint as above).
Status EkdbJoinWithEpsilon(const EkdbTree& a, const EkdbTree& b,
                           double eps_query, PairSink* sink,
                           JoinStats* stats = nullptr);

namespace internal {

/// Key of a memoized re-sorted leaf order: which leaf, sorted on which
/// dimension.
struct ResortKey {
  const EkdbNode* leaf = nullptr;
  uint32_t dim = 0;
  bool operator==(const ResortKey& other) const {
    return leaf == other.leaf && dim == other.dim;
  }
};

struct ResortKeyHash {
  size_t operator()(const ResortKey& k) const {
    return std::hash<const void*>()(k.leaf) ^
           (static_cast<size_t>(k.dim) * 0x9e3779b97f4a7c15ULL);
  }
};

/// Join engine shared by the sequential entry points above and the parallel
/// driver.  Exposed in internal:: so parallel_join.cc can drive single node
/// pairs as tasks; not part of the public API surface.
class EkdbJoinContext {
 public:
  /// Self-join context over one tree.
  explicit EkdbJoinContext(const EkdbTree& tree, PairSink* sink);

  /// Two-tree context; trees must be join-compatible (checked by callers).
  EkdbJoinContext(const EkdbTree& a, const EkdbTree& b, PairSink* sink);

  /// Narrows the join radius below the build epsilon (callers must have
  /// validated 0 < eps <= build epsilon).
  void OverrideEpsilon(double eps) {
    epsilon_ = eps;
    batch_.SetEpsilon(eps);
  }

  /// Joins a subtree with itself (self-join contexts only).
  void SelfJoinNode(const EkdbNode* node);

  /// Joins two distinct subtrees (node a from tree A / the left side, node b
  /// from tree B / the right side).
  void JoinNodes(const EkdbNode* a, const EkdbNode* b);

  /// Pushes buffered result pairs through to the sink.  Must be called after
  /// the last SelfJoinNode/JoinNodes call and before results are consumed.
  void Flush() { buffered_.Flush(); }

  /// Work counters, including the batch kernel's SIMD/fallback tallies.
  JoinStats stats() const {
    JoinStats s = stats_;
    s.simd_batches = batch_.simd_batches();
    s.scalar_fallbacks = batch_.scalar_fallbacks();
    return s;
  }

 private:
  void LeafSelfJoin(const EkdbNode* leaf);
  void LeafCrossJoin(const EkdbNode* a, const EkdbNode* b);
  /// The leaf's point ids re-sorted on `dim`, memoized for the lifetime of
  /// the join: neighbour-stripe traversal revisits the same leaf once per
  /// adjacent partner, and without the memo each visit re-paid the sort.
  const std::vector<PointId>& ResortedLeaf(const EkdbNode* leaf, uint32_t dim,
                                           const Dataset& data);
  /// Sweeps two id lists sorted ascending on coordinate `dim`.
  void SweepLists(const std::vector<PointId>& a_ids, const Dataset& a_data,
                  const std::vector<PointId>& b_ids, const Dataset& b_data,
                  uint32_t dim);
  /// Filters the gathered candidate tile against one query row and emits the
  /// survivors (in canonical order for self-joins).
  void FlushTile(PointId query_id, const float* query_row) {
    FilterTileAndEmit(batch_, query_id, query_row, tile_, self_mode_,
                      buffered_, stats_);
  }

  const Dataset& a_data_;
  const Dataset& b_data_;
  DistanceKernel kernel_;
  double epsilon_;
  bool bbox_pruning_;
  bool sliding_window_;
  bool self_mode_;
  BatchDistanceKernel batch_;
  BufferedSink buffered_;
  CandidateTile tile_;
  JoinStats stats_;
  std::unordered_map<ResortKey, std::vector<PointId>, ResortKeyHash>
      resort_memo_;
};

}  // namespace internal

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_JOIN_H_
