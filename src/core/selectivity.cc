#include "core/selectivity.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace simjoin {

Result<SelectivityEstimate> EstimatePairsByPairSampling(
    const Dataset& data, double epsilon, Metric metric, size_t samples,
    uint64_t seed) {
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points to estimate");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (samples == 0) return Status::InvalidArgument("samples must be positive");

  Rng rng(seed);
  DistanceKernel kernel(metric);
  const size_t n = data.size();
  const size_t dims = data.dims();
  uint64_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    const PointId a = static_cast<PointId>(rng.UniformInt(n));
    PointId b;
    do {
      b = static_cast<PointId>(rng.UniformInt(n));
    } while (b == a);
    hits += kernel.WithinEpsilon(data.Row(a), data.Row(b), dims, epsilon);
  }
  const double total_pairs =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  SelectivityEstimate estimate;
  estimate.samples = samples;
  estimate.estimated_pairs =
      total_pairs * static_cast<double>(hits) / static_cast<double>(samples);
  return estimate;
}

Result<SelectivityEstimate> EstimatePairsByPointSampling(const EkdbTree& tree,
                                                         size_t samples,
                                                         uint64_t seed) {
  if (samples == 0) return Status::InvalidArgument("samples must be positive");
  const Dataset& data = tree.dataset();
  const size_t n = data.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least two points to estimate");
  }
  const size_t m = std::min(samples, n);

  // Sample point ids without replacement (partial Fisher-Yates).
  Rng rng(seed);
  std::vector<PointId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  for (size_t i = 0; i < m; ++i) {
    const size_t j = i + static_cast<size_t>(rng.UniformInt(n - i));
    std::swap(ids[i], ids[j]);
  }

  uint64_t neighbour_total = 0;
  std::vector<PointId> hits;
  for (size_t i = 0; i < m; ++i) {
    hits.clear();
    SIMJOIN_RETURN_NOT_OK(
        tree.RangeQuery(data.Row(ids[i]), tree.config().epsilon, &hits));
    // A still-indexed query point reports itself; exclude it explicitly so
    // trees with removed points stay safe.
    for (PointId h : hits) neighbour_total += (h != ids[i]);
  }

  SelectivityEstimate estimate;
  estimate.samples = m;
  // E[neighbours of a uniform point] = 2 * pairs / n.
  estimate.estimated_pairs = 0.5 * static_cast<double>(n) *
                             (static_cast<double>(neighbour_total) /
                              static_cast<double>(m));
  return estimate;
}

Result<double> SuggestEpsilonForTargetPairs(const Dataset& data,
                                            uint64_t target_pairs,
                                            Metric metric, size_t samples,
                                            uint64_t seed) {
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points");
  }
  if (samples == 0) return Status::InvalidArgument("samples must be positive");
  const double total_pairs = 0.5 * static_cast<double>(data.size()) *
                             static_cast<double>(data.size() - 1);
  if (target_pairs == 0 || static_cast<double>(target_pairs) > total_pairs) {
    return Status::InvalidArgument(
        "target_pairs must be in [1, C(n,2)]");
  }

  Rng rng(seed);
  DistanceKernel kernel(metric);
  std::vector<double> distances;
  distances.reserve(samples);
  for (size_t s = 0; s < samples; ++s) {
    const PointId a = static_cast<PointId>(rng.UniformInt(data.size()));
    PointId b;
    do {
      b = static_cast<PointId>(rng.UniformInt(data.size()));
    } while (b == a);
    distances.push_back(kernel.Distance(data.Row(a), data.Row(b), data.dims()));
  }
  const double quantile = static_cast<double>(target_pairs) / total_pairs;
  const double suggestion = Percentile(std::move(distances), quantile);
  // Guard against a degenerate zero radius (duplicate-heavy samples).
  return std::max(suggestion, 1e-9);
}

}  // namespace simjoin
