// Parallel eps-k-d-B similarity joins on a work-stealing thread pool.
//
// The join traversal decomposes into independent tasks — per-child subtree
// self-joins plus adjacent-stripe cross joins — that workers re-split
// adaptively while idle workers exist (subtree sizes are O(1) on the flat
// representation).  Each worker buffers result pairs into private shards
// tagged with the task's position in the sequential traversal; at join end
// the shards are concatenated in traversal order without any locking on the
// hot path.  The emitted pair *sequence* is therefore identical to the
// sequential join — same pairs, same order — for every thread count, and
// merged JoinStats equal the sequential counters exactly.
//
// This is the "parallel similarity join" direction the paper points to; see
// docs/parallel.md for the engine design and R11 for measurements.

#ifndef SIMJOIN_CORE_PARALLEL_JOIN_H_
#define SIMJOIN_CORE_PARALLEL_JOIN_H_

#include <cstddef>

#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_tree.h"

namespace simjoin {

class ThreadPool;

/// Tuning knobs for the parallel driver.
struct ParallelJoinConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency().  Ignored
  /// when `pool` is set.
  size_t num_threads = 0;

  /// Floor on task granularity: tasks whose subtree point count is at or
  /// below this are never split further.  Above the floor, splitting is
  /// adaptive — coarse chunks are always split, and mid-sized tasks
  /// re-split only while idle workers exist.
  size_t min_task_points = 4096;

  /// Pool to run on.  Defaults to the persistent process-wide pool with
  /// num_threads workers (ThreadPool::Shared), so repeated joins reuse
  /// threads instead of spawning them per call.
  ThreadPool* pool = nullptr;
};

/// Parallel self-join.  Emits the same pair sequence as EkdbSelfJoin.
Status ParallelEkdbSelfJoin(const EkdbTree& tree, const ParallelJoinConfig& config,
                            PairSink* sink, JoinStats* stats = nullptr);

/// Parallel two-tree join.  Emits the same pair sequence as EkdbJoin; the
/// trees must be join-compatible.
Status ParallelEkdbJoin(const EkdbTree& a, const EkdbTree& b,
                        const ParallelJoinConfig& config, PairSink* sink,
                        JoinStats* stats = nullptr);

/// Parallel self-join over the flat (pointer-free) representation.  Task
/// decomposition mirrors ParallelEkdbSelfJoin — subtree sizes come straight
/// from arena ranges, so splitting is O(1) per node — and each task streams
/// its leaf sweeps from the coordinate arena.  Emits the same pair sequence
/// as FlatEkdbSelfJoin (and hence EkdbSelfJoin).
Status ParallelFlatEkdbSelfJoin(const FlatEkdbTree& tree,
                                const ParallelJoinConfig& config,
                                PairSink* sink, JoinStats* stats = nullptr);

/// Parallel two-tree join over flat trees; same pair sequence as
/// FlatEkdbJoin.
Status ParallelFlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                            const ParallelJoinConfig& config, PairSink* sink,
                            JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_PARALLEL_JOIN_H_
