// Parallel eps-k-d-B self-join: decomposes the join traversal into
// independent subtree tasks (per-child self-joins plus adjacent-stripe cross
// joins) and runs them on a thread pool.  Result pairs are buffered per task
// and flushed into the caller's sink under a lock, so any PairSink works
// unchanged; the emitted pair *set* is identical to the sequential join
// (ordering may differ).
//
// This is the "parallel similarity join" direction the paper points to; on
// a single-core host it degenerates to sequential execution plus measurable
// task overhead, which experiment R11 documents.

#ifndef SIMJOIN_CORE_PARALLEL_JOIN_H_
#define SIMJOIN_CORE_PARALLEL_JOIN_H_

#include <cstddef>

#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_flat.h"
#include "core/ekdb_tree.h"

namespace simjoin {

/// Tuning knobs for the parallel driver.
struct ParallelJoinConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;

  /// Task-generation keeps splitting self-join tasks while a subtree holds
  /// more than this many points, to balance load across workers.
  size_t min_task_points = 4096;
};

/// Parallel self-join.  Emits the same pair set as EkdbSelfJoin.
Status ParallelEkdbSelfJoin(const EkdbTree& tree, const ParallelJoinConfig& config,
                            PairSink* sink, JoinStats* stats = nullptr);

/// Parallel two-tree join.  Emits the same pair set as EkdbJoin; the trees
/// must be join-compatible.
Status ParallelEkdbJoin(const EkdbTree& a, const EkdbTree& b,
                        const ParallelJoinConfig& config, PairSink* sink,
                        JoinStats* stats = nullptr);

/// Parallel self-join over the flat (pointer-free) representation.  Task
/// decomposition mirrors ParallelEkdbSelfJoin — subtree sizes come straight
/// from arena ranges, so splitting is O(1) per node — and each task streams
/// its leaf sweeps from the coordinate arena.  Emits the same pair set as
/// FlatEkdbSelfJoin (and hence EkdbSelfJoin).
Status ParallelFlatEkdbSelfJoin(const FlatEkdbTree& tree,
                                const ParallelJoinConfig& config,
                                PairSink* sink, JoinStats* stats = nullptr);

/// Parallel two-tree join over flat trees; same pair set as FlatEkdbJoin.
Status ParallelFlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                            const ParallelJoinConfig& config, PairSink* sink,
                            JoinStats* stats = nullptr);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_PARALLEL_JOIN_H_
