// DBSCAN density-based clustering, built on the epsilon similarity
// self-join — the flagship data-mining consumer of the paper's primitive:
// the neighbourhood graph IS the join output.
//
// Definitions (Ester et al.): a point is a *core* point if its closed
// epsilon-neighbourhood (including itself) holds at least min_pts points;
// clusters are the connected components of core points under the epsilon
// relation; a non-core point within epsilon of a core point is a *border*
// point of that core's cluster; everything else is noise.
//
// Border points adjacent to several clusters are ambiguous in the classic
// formulation (first-come order dependence); here they are assigned to the
// cluster of their lowest-labelled core neighbour, making the output
// deterministic.

#ifndef SIMJOIN_CORE_DBSCAN_H_
#define SIMJOIN_CORE_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/status.h"

namespace simjoin {

/// DBSCAN parameters.
struct DbscanConfig {
  double epsilon = 0.05;     ///< neighbourhood radius
  size_t min_pts = 5;        ///< density threshold (closed neighbourhood)
  Metric metric = Metric::kL2;
  size_t leaf_threshold = 64;  ///< underlying eps-k-d-B tree knob
};

/// Label constant for noise points.
inline constexpr int32_t kDbscanNoise = -1;

/// Clustering outcome.
struct DbscanResult {
  /// Per point: cluster label in [0, num_clusters) or kDbscanNoise.
  std::vector<int32_t> labels;
  size_t num_clusters = 0;
  /// Per point: true iff the point is a core point.
  std::vector<bool> is_core;
  /// Points labelled noise.
  size_t noise_points = 0;
};

/// Runs DBSCAN over the (unit-cube normalised) dataset.
Result<DbscanResult> Dbscan(const Dataset& data, const DbscanConfig& config);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_DBSCAN_H_
