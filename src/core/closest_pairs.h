// Top-k closest pairs: the epsilon-free companion of the similarity join.
//
// When the user knows "how many" rather than "how close", the radius must
// be discovered: we seed epsilon from sampled nearest-neighbour distances
// and geometrically enlarge it until the join returns at least k pairs —
// at that point the k closest pairs provably all lie within the radius
// (the join reports *every* pair inside it).  The candidate index is the
// epsilon-agnostic k-d tree so the structure is built once and reused
// across radius rounds.

#ifndef SIMJOIN_CORE_CLOSEST_PAIRS_H_
#define SIMJOIN_CORE_CLOSEST_PAIRS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/status.h"

namespace simjoin {

/// One result pair, canonical (a < b).
struct ClosestPair {
  PointId a = 0;
  PointId b = 0;
  double distance = 0.0;
};

/// Returns the k closest distinct unordered pairs, ascending by
/// (distance, a, b).  Returns all C(n,2) pairs when k exceeds that.  The
/// seed only affects the internal radius guess, never the result.
Result<std::vector<ClosestPair>> TopKClosestPairs(const Dataset& data, size_t k,
                                                  Metric metric,
                                                  uint64_t seed = 1);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_CLOSEST_PAIRS_H_
