#include "core/ekdb_join.h"

#include <algorithm>

namespace simjoin {
namespace internal {

EkdbJoinContext::EkdbJoinContext(const EkdbTree& tree, PairSink* sink)
    : a_data_(tree.dataset()),
      b_data_(tree.dataset()),
      kernel_(tree.config().metric),
      epsilon_(tree.config().epsilon),
      bbox_pruning_(tree.config().bbox_pruning),
      sliding_window_(tree.config().sliding_window_leaf_join),
      self_mode_(true),
      batch_(tree.config().metric, tree.dataset().dims(),
             tree.config().epsilon),
      buffered_(sink) {}

EkdbJoinContext::EkdbJoinContext(const EkdbTree& a, const EkdbTree& b,
                                 PairSink* sink)
    : a_data_(a.dataset()),
      b_data_(b.dataset()),
      kernel_(a.config().metric),
      epsilon_(a.config().epsilon),
      bbox_pruning_(a.config().bbox_pruning && b.config().bbox_pruning),
      sliding_window_(a.config().sliding_window_leaf_join &&
                      b.config().sliding_window_leaf_join),
      self_mode_(false),
      batch_(a.config().metric, a.dataset().dims(), a.config().epsilon),
      buffered_(sink) {}

void EkdbJoinContext::LeafSelfJoin(const EkdbNode* leaf) {
  const auto& ids = leaf->points;
  const uint32_t dim = leaf->sort_dim;
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* row_i = a_data_.Row(ids[i]);
    for (size_t j = i + 1; j < ids.size(); ++j) {
      const float* row_j = a_data_.Row(ids[j]);
      // Point lists are sorted on sort_dim, so once the gap in that
      // coordinate exceeds epsilon no later j can qualify either.
      if (sliding_window_ &&
          static_cast<double>(row_j[dim]) - row_i[dim] > epsilon_) {
        break;
      }
      tile_.Add(ids[j], row_j);
      if (tile_.full()) FlushTile(ids[i], row_i);
    }
    FlushTile(ids[i], row_i);
  }
}

void EkdbJoinContext::SweepLists(const std::vector<PointId>& a_ids,
                                 const Dataset& a_data,
                                 const std::vector<PointId>& b_ids,
                                 const Dataset& b_data, uint32_t dim) {
  size_t window_start = 0;
  for (PointId a_id : a_ids) {
    const float* a_row = a_data.Row(a_id);
    const double lo = static_cast<double>(a_row[dim]) - epsilon_;
    const double hi = static_cast<double>(a_row[dim]) + epsilon_;
    while (window_start < b_ids.size() &&
           static_cast<double>(b_data.Row(b_ids[window_start])[dim]) < lo) {
      ++window_start;
    }
    // SweepLists is only reached from cross joins, where the (a, b) sides
    // are distinct subtrees: ids never coincide in self mode.
    for (size_t j = window_start; j < b_ids.size(); ++j) {
      const float* b_row = b_data.Row(b_ids[j]);
      if (static_cast<double>(b_row[dim]) > hi) break;
      tile_.Add(b_ids[j], b_row);
      if (tile_.full()) FlushTile(a_id, a_row);
    }
    FlushTile(a_id, a_row);
  }
}

void EkdbJoinContext::LeafCrossJoin(const EkdbNode* a, const EkdbNode* b) {
  if (!sliding_window_) {
    for (PointId a_id : a->points) {
      const float* a_row = a_data_.Row(a_id);
      for (PointId b_id : b->points) {
        tile_.Add(b_id, b_data_.Row(b_id));
        if (tile_.full()) FlushTile(a_id, a_row);
      }
      FlushTile(a_id, a_row);
    }
    return;
  }
  if (a->sort_dim == b->sort_dim) {
    SweepLists(a->points, a_data_, b->points, b_data_, a->sort_dim);
    return;
  }
  // Sort dimensions differ (the leaves sit at different depths).  Re-sort
  // the smaller side on the other's sort dimension; the order is memoized
  // per (leaf, dim) so repeated neighbour-stripe visits don't re-pay it.
  if (a->points.size() <= b->points.size()) {
    const uint32_t dim = b->sort_dim;
    SweepLists(ResortedLeaf(a, dim, a_data_), a_data_, b->points, b_data_,
               dim);
  } else {
    const uint32_t dim = a->sort_dim;
    SweepLists(a->points, a_data_, ResortedLeaf(b, dim, b_data_), b_data_,
               dim);
  }
}

const std::vector<PointId>& EkdbJoinContext::ResortedLeaf(const EkdbNode* leaf,
                                                          uint32_t dim,
                                                          const Dataset& data) {
  auto [it, inserted] = resort_memo_.try_emplace(ResortKey{leaf, dim});
  if (inserted) {
    std::vector<PointId>& ids = it->second;
    ids.reserve(leaf->points.size());
    ids.assign(leaf->points.begin(), leaf->points.end());
    std::sort(ids.begin(), ids.end(), [&data, dim](PointId x, PointId y) {
      return data.Row(x)[dim] < data.Row(y)[dim];
    });
  }
  return it->second;
}

void EkdbJoinContext::SelfJoinNode(const EkdbNode* node) {
  SIMJOIN_CHECK(self_mode_) << "SelfJoinNode on a two-tree context";
  if (node->is_leaf()) {
    LeafSelfJoin(node);
    return;
  }
  const auto& kids = node->children;
  for (size_t i = 0; i < kids.size(); ++i) {
    SelfJoinNode(kids[i].second.get());
    // Only the immediately adjacent stripe can hold joining partners.
    if (i + 1 < kids.size() && kids[i + 1].first == kids[i].first + 1) {
      JoinNodes(kids[i].second.get(), kids[i + 1].second.get());
    }
  }
}

void EkdbJoinContext::JoinNodes(const EkdbNode* a, const EkdbNode* b) {
  ++stats_.node_pairs_visited;
  if (bbox_pruning_ &&
      a->bbox.MinDistance(b->bbox, kernel_.metric()) > epsilon_) {
    ++stats_.node_pairs_pruned;
    return;
  }
  if (a->is_leaf() && b->is_leaf()) {
    LeafCrossJoin(a, b);
    return;
  }
  if (a->is_leaf()) {
    for (const auto& [stripe, child] : b->children) {
      JoinNodes(a, child.get());
    }
    return;
  }
  if (b->is_leaf()) {
    for (const auto& [stripe, child] : a->children) {
      JoinNodes(child.get(), b);
    }
    return;
  }
  // Both internal.  They sit at the same depth (the traversal only descends
  // both sides together), so they split on the same dimension and share the
  // global stripe grid: pair children whose stripe indices differ by <= 1.
  const auto& ka = a->children;
  const auto& kb = b->children;
  size_t j_lo = 0;
  for (const auto& [sa, ca] : ka) {
    const uint32_t lo = sa == 0 ? 0 : sa - 1;
    while (j_lo < kb.size() && kb[j_lo].first < lo) ++j_lo;
    for (size_t j = j_lo; j < kb.size() && kb[j].first <= sa + 1; ++j) {
      JoinNodes(ca.get(), kb[j].second.get());
    }
  }
}

}  // namespace internal

Status EkdbSelfJoin(const EkdbTree& tree, PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  internal::EkdbJoinContext ctx(tree, sink);
  ctx.SelfJoinNode(tree.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status EkdbJoin(const EkdbTree& a, const EkdbTree& b, PairSink* sink,
                JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!EkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  internal::EkdbJoinContext ctx(a, b, sink);
  ctx.JoinNodes(a.root(), b.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

namespace {

Status ValidateEpsilonOverride(double eps_query, double build_epsilon) {
  if (!(eps_query > 0.0) || eps_query > build_epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

}  // namespace

Status EkdbSelfJoinWithEpsilon(const EkdbTree& tree, double eps_query,
                               PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  SIMJOIN_RETURN_NOT_OK(
      ValidateEpsilonOverride(eps_query, tree.config().epsilon));
  internal::EkdbJoinContext ctx(tree, sink);
  ctx.OverrideEpsilon(eps_query);
  ctx.SelfJoinNode(tree.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status EkdbJoinWithEpsilon(const EkdbTree& a, const EkdbTree& b,
                           double eps_query, PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!EkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  SIMJOIN_RETURN_NOT_OK(ValidateEpsilonOverride(eps_query, a.config().epsilon));
  internal::EkdbJoinContext ctx(a, b, sink);
  ctx.OverrideEpsilon(eps_query);
  ctx.JoinNodes(a.root(), b.root());
  ctx.Flush();
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

}  // namespace simjoin
