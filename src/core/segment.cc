#include "core/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "core/segment_internal.h"
#include "obs/metrics.h"

namespace simjoin {

namespace {

static_assert(sizeof(FlatEkdbNode) == 28,
              "FlatEkdbNode is the on-disk node record; its layout is part "
              "of the segment format");
static_assert(sizeof(PointId) == 4, "segment format stores 32-bit ids");

// Fixed header field offsets within the 4096-byte header page.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffDims = 8;
constexpr size_t kOffNumNodes = 12;
constexpr size_t kOffNumPoints = 16;
constexpr size_t kOffNumStripes = 24;
constexpr size_t kOffStripeWidth = 32;
constexpr size_t kOffEpsilon = 40;
constexpr size_t kOffMetric = 48;
constexpr size_t kOffLeafThreshold = 52;
constexpr size_t kOffBboxPruning = 56;
constexpr size_t kOffSlidingWindow = 57;
constexpr size_t kOffNumSections = 60;
constexpr size_t kOffSections = 64;
constexpr size_t kSectionEntryBytes = 24;  // offset, bytes, checksum
constexpr size_t kOffHeaderChecksum =
    kOffSections + kNumSegmentSections * kSectionEntryBytes;  // 232
static_assert(kOffHeaderChecksum + 8 <= kSegmentPageBytes,
              "header must fit in one page");

struct SegmentMetrics {
  obs::Counter* opened;
  obs::Counter* closed;
  obs::Counter* open_errors;
  obs::Gauge* mapped_bytes;
};

const SegmentMetrics& GetSegmentMetrics() {
  static const SegmentMetrics metrics = [] {
    obs::MetricRegistry& reg = obs::GlobalMetrics();
    SegmentMetrics m;
    m.opened = reg.GetCounter("mmap.segments_opened");
    m.closed = reg.GetCounter("mmap.segments_closed");
    m.open_errors = reg.GetCounter("mmap.open_errors");
    m.mapped_bytes = reg.GetGauge("mmap.mapped_bytes");
    return m;
  }();
  return metrics;
}

template <typename T>
void PutField(uint8_t* page, size_t offset, T value) {
  std::memcpy(page + offset, &value, sizeof(T));
}
template <typename T>
T GetField(const uint8_t* page, size_t offset) {
  T value;
  std::memcpy(&value, page + offset, sizeof(T));
  return value;
}

/// RAII fd.
struct Fd {
  int fd = -1;
  explicit Fd(int f) : fd(f) {}
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
};

Status WriteAll(int fd, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t wrote = ::write(fd, p, len);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("segment write failed: ") +
                             std::strerror(errno));
    }
    p += wrote;
    len -= static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Status PreadAll(int fd, void* data, size_t len, uint64_t offset) {
  auto* p = static_cast<uint8_t*>(data);
  while (len > 0) {
    const ssize_t got = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("segment read failed: ") +
                             std::strerror(errno));
    }
    if (got == 0) {
      return Status::InvalidArgument(
          "truncated segment file (unexpected end of file)");
    }
    p += got;
    len -= static_cast<size_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return Status::OK();
}

Status VerifySection(const char* name, const SegmentInfo::Section& s,
                     const void* data) {
  if (segment_internal::Fnv1a64(data, s.bytes, segment_internal::kFnvSeed) !=
      s.checksum) {
    return Status::InvalidArgument(
        std::string("corrupt segment file: ") + name +
        " section checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

namespace segment_internal {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t state) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    state ^= bytes[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

uint64_t PageAlign(uint64_t offset) {
  return (offset + kSegmentPageBytes - 1) / kSegmentPageBytes *
         kSegmentPageBytes;
}

uint64_t ExpectedSectionBytes(SegmentSection section, const SegmentInfo& h) {
  const uint64_t dims = h.dims;
  const uint64_t nodes = h.num_nodes;
  const uint64_t points = h.num_points;
  switch (section) {
    case SegmentSection::kDimOrder:
      return dims * sizeof(uint32_t);
    case SegmentSection::kNodes:
      return nodes * sizeof(FlatEkdbNode);
    case SegmentSection::kBboxLo:
    case SegmentSection::kBboxHi:
      return nodes * dims * sizeof(float);
    case SegmentSection::kArena:
    case SegmentSection::kDataset:
      return points * dims * sizeof(float);
    case SegmentSection::kArenaIds:
      return points * sizeof(PointId);
  }
  return 0;
}

void ComputeSectionLayout(SegmentInfo* info) {
  uint64_t offset = kSegmentPageBytes;
  for (size_t i = 0; i < kNumSegmentSections; ++i) {
    info->sections[i].offset = offset;
    info->sections[i].bytes =
        ExpectedSectionBytes(static_cast<SegmentSection>(i), *info);
    offset = PageAlign(offset + info->sections[i].bytes);
  }
  info->file_bytes = offset;
}

void SerializeHeaderPage(const SegmentInfo& info, uint8_t* page) {
  std::memset(page, 0, kSegmentPageBytes);
  PutField<uint32_t>(page, kOffMagic, kSegmentMagic);
  PutField<uint32_t>(page, kOffVersion, kSegmentVersion);
  PutField<uint32_t>(page, kOffDims, info.dims);
  PutField<uint32_t>(page, kOffNumNodes, info.num_nodes);
  PutField<uint64_t>(page, kOffNumPoints, info.num_points);
  PutField<uint64_t>(page, kOffNumStripes, info.num_stripes);
  PutField<double>(page, kOffStripeWidth, info.stripe_width);
  PutField<double>(page, kOffEpsilon, info.config.epsilon);
  PutField<uint32_t>(page, kOffMetric,
                     static_cast<uint32_t>(info.config.metric));
  PutField<uint32_t>(page, kOffLeafThreshold,
                     static_cast<uint32_t>(info.config.leaf_threshold));
  PutField<uint8_t>(page, kOffBboxPruning, info.config.bbox_pruning ? 1 : 0);
  PutField<uint8_t>(page, kOffSlidingWindow,
                    info.config.sliding_window_leaf_join ? 1 : 0);
  PutField<uint32_t>(page, kOffNumSections, kNumSegmentSections);
  for (size_t i = 0; i < kNumSegmentSections; ++i) {
    const size_t base = kOffSections + i * kSectionEntryBytes;
    PutField<uint64_t>(page, base, info.sections[i].offset);
    PutField<uint64_t>(page, base + 8, info.sections[i].bytes);
    PutField<uint64_t>(page, base + 16, info.sections[i].checksum);
  }
  PutField<uint64_t>(page, kOffHeaderChecksum,
                     Fnv1a64(page, kOffHeaderChecksum, kFnvSeed));
}

Status ParseHeaderPage(const uint8_t* page, uint64_t file_bytes,
                       SegmentInfo* out) {
  if (GetField<uint32_t>(page, kOffMagic) != kSegmentMagic) {
    return Status::InvalidArgument(
        "corrupt segment file: bad magic (not a simjoin segment)");
  }
  out->version = GetField<uint32_t>(page, kOffVersion);
  if (out->version != kSegmentVersion) {
    return Status::InvalidArgument(
        "unsupported segment version " + std::to_string(out->version) +
        " (this build reads version " + std::to_string(kSegmentVersion) +
        ")");
  }
  const uint64_t stored_checksum =
      GetField<uint64_t>(page, kOffHeaderChecksum);
  const uint64_t computed = Fnv1a64(page, kOffHeaderChecksum, kFnvSeed);
  if (stored_checksum != computed) {
    return Status::InvalidArgument(
        "corrupt segment file: header checksum mismatch");
  }
  out->dims = GetField<uint32_t>(page, kOffDims);
  out->num_nodes = GetField<uint32_t>(page, kOffNumNodes);
  out->num_points = GetField<uint64_t>(page, kOffNumPoints);
  out->num_stripes = GetField<uint64_t>(page, kOffNumStripes);
  out->stripe_width = GetField<double>(page, kOffStripeWidth);
  out->config.epsilon = GetField<double>(page, kOffEpsilon);
  const uint32_t metric_tag = GetField<uint32_t>(page, kOffMetric);
  if (metric_tag > static_cast<uint32_t>(Metric::kL2)) {
    return Status::InvalidArgument("corrupt segment file: unknown metric");
  }
  out->config.metric = static_cast<Metric>(metric_tag);
  out->config.leaf_threshold = GetField<uint32_t>(page, kOffLeafThreshold);
  out->config.bbox_pruning = GetField<uint8_t>(page, kOffBboxPruning) != 0;
  out->config.sliding_window_leaf_join =
      GetField<uint8_t>(page, kOffSlidingWindow) != 0;
  if (GetField<uint32_t>(page, kOffNumSections) != kNumSegmentSections) {
    return Status::InvalidArgument(
        "corrupt segment file: unexpected section count");
  }
  if (out->dims == 0 || out->dims > (1u << 16)) {
    return Status::InvalidArgument(
        "corrupt segment file: implausible dimensionality");
  }
  if (out->num_nodes == 0 ||
      out->num_points > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "corrupt segment file: node/point counts out of range");
  }
  out->file_bytes = file_bytes;
  for (size_t i = 0; i < kNumSegmentSections; ++i) {
    SegmentInfo::Section& s = out->sections[i];
    const size_t base = kOffSections + i * kSectionEntryBytes;
    s.offset = GetField<uint64_t>(page, base);
    s.bytes = GetField<uint64_t>(page, base + 8);
    s.checksum = GetField<uint64_t>(page, base + 16);
    if (s.offset % kSegmentPageBytes != 0) {
      return Status::InvalidArgument(
          "corrupt segment file: section " + std::to_string(i) +
          " is not page-aligned");
    }
    if (s.offset < kSegmentPageBytes || s.offset > file_bytes ||
        s.bytes > file_bytes - s.offset) {
      return Status::InvalidArgument(
          "truncated segment file (section " + std::to_string(i) +
          " extends past end of file)");
    }
    const uint64_t want =
        ExpectedSectionBytes(static_cast<SegmentSection>(i), *out);
    if (s.bytes != want) {
      return Status::InvalidArgument(
          "corrupt segment file: section " + std::to_string(i) + " holds " +
          std::to_string(s.bytes) + " bytes, header shape implies " +
          std::to_string(want));
    }
  }
  // The writer pads every section (including the last) to a page boundary,
  // so the section table pins the exact file size.  Anything shorter is a
  // truncation — even one lost padding byte signals an interrupted copy —
  // and anything longer is not a file we wrote.
  uint64_t expected_file_bytes = kSegmentPageBytes;
  for (const SegmentInfo::Section& s : out->sections) {
    expected_file_bytes =
        std::max(expected_file_bytes, PageAlign(s.offset + s.bytes));
  }
  if (file_bytes != expected_file_bytes) {
    return Status::InvalidArgument(
        "truncated segment file (file holds " + std::to_string(file_bytes) +
        " bytes, section table requires " +
        std::to_string(expected_file_bytes) + ")");
  }
  return Status::OK();
}

}  // namespace segment_internal

namespace {

/// Builds the storage view a FlatEkdbTree is constructed from, shared by
/// the mapped and in-memory open paths.
FlatEkdbStorageView ViewFromSections(const SegmentInfo& info,
                                     std::vector<uint32_t> dim_order,
                                     const FlatEkdbNode* nodes,
                                     const float* bbox_lo,
                                     const float* bbox_hi, const float* arena,
                                     const PointId* arena_ids) {
  FlatEkdbStorageView view;
  view.config = info.config;
  view.config.dim_order = dim_order;
  view.dim_order = std::move(dim_order);
  view.num_stripes = info.num_stripes;
  view.stripe_width = info.stripe_width;
  view.nodes = nodes;
  view.num_nodes = info.num_nodes;
  view.bbox_lo = bbox_lo;
  view.bbox_hi = bbox_hi;
  view.arena = arena;
  view.arena_ids = arena_ids;
  view.arena_count = info.num_points;
  return view;
}

}  // namespace

Status WriteSegment(const FlatEkdbTree& tree, const std::string& path) {
  namespace si = segment_internal;
  const Dataset& data = tree.dataset();
  const uint64_t dims = data.dims();
  const uint64_t num_nodes = tree.num_nodes();
  const uint64_t num_points = tree.arena_size();
  if (data.size() != num_points) {
    return Status::InvalidArgument(
        "segment write requires the tree to index every dataset row");
  }

  SegmentInfo info;
  info.version = kSegmentVersion;
  info.dims = static_cast<uint32_t>(dims);
  info.num_nodes = static_cast<uint32_t>(num_nodes);
  info.num_points = num_points;
  info.num_stripes = tree.num_stripes();
  info.stripe_width = tree.stripe_width();
  info.config = tree.config();
  si::ComputeSectionLayout(&info);

  // Section payloads in file order.
  const std::vector<uint32_t>& order = tree.dim_order();
  const void* payloads[kNumSegmentSections] = {
      order.data(),          tree.nodes_data(), tree.bbox_lo(0),
      tree.bbox_hi(0),       tree.arena_data(), tree.arena_ids_data(),
      data.data(),
  };
  for (size_t i = 0; i < kNumSegmentSections; ++i) {
    info.sections[i].checksum =
        si::Fnv1a64(payloads[i], info.sections[i].bytes, si::kFnvSeed);
  }

  uint8_t page[kSegmentPageBytes];
  si::SerializeHeaderPage(info, page);

  // Write to a temporary sibling, fsync, rename into place: readers never
  // see a half-written segment, and a crash leaves only a .tmp to sweep.
  const std::string tmp = path + ".tmp";
  Fd fd(::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (fd.fd < 0) {
    return Status::IoError("cannot create segment file '" + tmp +
                           "': " + std::strerror(errno));
  }
  Status st = WriteAll(fd.fd, page, sizeof(page));
  static constexpr uint8_t kZeros[kSegmentPageBytes] = {};
  uint64_t written = kSegmentPageBytes;
  for (size_t i = 0; i < kNumSegmentSections && st.ok(); ++i) {
    // Pad to the section's page-aligned offset, then stream the payload.
    while (st.ok() && written < info.sections[i].offset) {
      const uint64_t pad =
          std::min<uint64_t>(sizeof(kZeros), info.sections[i].offset - written);
      st = WriteAll(fd.fd, kZeros, pad);
      written += pad;
    }
    if (st.ok()) {
      st = WriteAll(fd.fd, payloads[i], info.sections[i].bytes);
      written += info.sections[i].bytes;
    }
  }
  while (st.ok() && written < info.file_bytes) {
    const uint64_t pad =
        std::min<uint64_t>(sizeof(kZeros), info.file_bytes - written);
    st = WriteAll(fd.fd, kZeros, pad);
    written += pad;
  }
  if (st.ok() && ::fsync(fd.fd) != 0) {
    st = Status::IoError(std::string("segment fsync failed: ") +
                         std::strerror(errno));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_st = Status::IoError(
        "cannot rename segment into place: " + std::string(strerror(errno)));
    ::unlink(tmp.c_str());
    return rename_st;
  }
  return Status::OK();
}

Result<SegmentInfo> ReadSegmentInfo(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.fd < 0) {
    return Status::NotFound("cannot open segment file '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat sb;
  if (::fstat(fd.fd, &sb) != 0) {
    return Status::IoError(std::string("segment fstat failed: ") +
                           std::strerror(errno));
  }
  if (static_cast<uint64_t>(sb.st_size) < kSegmentPageBytes) {
    return Status::InvalidArgument(
        "truncated segment file (smaller than one header page)");
  }
  uint8_t page[kSegmentPageBytes];
  SIMJOIN_RETURN_NOT_OK(PreadAll(fd.fd, page, sizeof(page), 0));
  SegmentInfo info;
  SIMJOIN_RETURN_NOT_OK(segment_internal::ParseHeaderPage(
      page, static_cast<uint64_t>(sb.st_size), &info));
  const SegmentInfo::Section& order =
      info.sections[static_cast<size_t>(SegmentSection::kDimOrder)];
  std::vector<uint32_t> dim_order(info.dims);
  SIMJOIN_RETURN_NOT_OK(
      PreadAll(fd.fd, dim_order.data(), order.bytes, order.offset));
  SIMJOIN_RETURN_NOT_OK(VerifySection("dim_order", order, dim_order.data()));
  info.config.dim_order = std::move(dim_order);
  return info;
}

Result<std::shared_ptr<MappedSegment>> MappedSegment::Open(
    const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.fd < 0) {
    GetSegmentMetrics().open_errors->Add(1);
    return Status::NotFound("cannot open segment file '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat sb;
  if (::fstat(fd.fd, &sb) != 0) {
    GetSegmentMetrics().open_errors->Add(1);
    return Status::IoError(std::string("segment fstat failed: ") +
                           std::strerror(errno));
  }
  const auto file_bytes = static_cast<uint64_t>(sb.st_size);
  if (file_bytes < kSegmentPageBytes) {
    GetSegmentMetrics().open_errors->Add(1);
    return Status::InvalidArgument(
        "truncated segment file (smaller than one header page)");
  }
  uint8_t page[kSegmentPageBytes];
  SIMJOIN_RETURN_NOT_OK(PreadAll(fd.fd, page, sizeof(page), 0));
  SegmentInfo info;
  if (Status st = segment_internal::ParseHeaderPage(page, file_bytes, &info);
      !st.ok()) {
    GetSegmentMetrics().open_errors->Add(1);
    return st;
  }

  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  if (base == MAP_FAILED) {
    GetSegmentMetrics().open_errors->Add(1);
    return Status::IoError(std::string("segment mmap failed: ") +
                           std::strerror(errno));
  }
  auto segment = std::shared_ptr<MappedSegment>(new MappedSegment());
  segment->path_ = path;
  segment->base_ = base;
  segment->length_ = file_bytes;
  segment->info_ = info;

  // Residency hints: the whole mapping is random-access (point queries
  // touch scattered leaf windows); the node/bbox metadata is hot — every
  // traversal walks it — so prefetch it eagerly.
  ::madvise(base, file_bytes, MADV_RANDOM);
  const auto& nodes_sec =
      info.sections[static_cast<size_t>(SegmentSection::kNodes)];
  const auto& bbox_hi_sec =
      info.sections[static_cast<size_t>(SegmentSection::kBboxHi)];
  const uint64_t hot_begin = nodes_sec.offset;
  const uint64_t hot_end =
      segment_internal::PageAlign(bbox_hi_sec.offset + bbox_hi_sec.bytes);
  if (hot_end > hot_begin && hot_end <= file_bytes) {
    ::madvise(static_cast<uint8_t*>(base) + hot_begin, hot_end - hot_begin,
              MADV_WILLNEED);
  }

  // dim_order lives in the mapping; copy it out (it is part of the config,
  // which outlives any particular view of the mapping).
  const uint32_t* order = segment->dim_order();
  SIMJOIN_RETURN_NOT_OK(VerifySection(
      "dim_order",
      info.sections[static_cast<size_t>(SegmentSection::kDimOrder)], order));
  segment->info_.config.dim_order.assign(order, order + info.dims);

  GetSegmentMetrics().opened->Add(1);
  GetSegmentMetrics().mapped_bytes->Add(static_cast<int64_t>(file_bytes));
  return segment;
}

MappedSegment::~MappedSegment() {
  if (base_ != nullptr) {
    ::munmap(base_, length_);
    GetSegmentMetrics().closed->Add(1);
    GetSegmentMetrics().mapped_bytes->Add(-static_cast<int64_t>(length_));
  }
}

uint64_t MappedSegment::ResidentBytes() const {
  const size_t pages = (length_ + kSegmentPageBytes - 1) / kSegmentPageBytes;
  std::vector<unsigned char> vec(pages);
  if (::mincore(base_, length_, vec.data()) != 0) return 0;
  uint64_t resident = 0;
  for (const unsigned char v : vec) {
    if (v & 1) resident += kSegmentPageBytes;
  }
  return std::min(resident, length_);
}

Status MappedSegment::VerifyChecksums() const {
  static const char* const kNames[kNumSegmentSections] = {
      "dim_order", "nodes",     "bbox_lo", "bbox_hi",
      "arena",     "arena_ids", "dataset"};
  for (size_t i = 0; i < kNumSegmentSections; ++i) {
    const SegmentInfo::Section& s = info_.sections[i];
    SIMJOIN_RETURN_NOT_OK(VerifySection(
        kNames[i], s, static_cast<const uint8_t*>(base_) + s.offset));
  }
  return Status::OK();
}

void MappedSegment::ReleaseResidentPages() const {
  ::madvise(base_, length_, MADV_DONTNEED);
  // MADV_DONTNEED drops this mapping's PTEs, but mincore() on a file-backed
  // mapping answers from the page cache, where a freshly written segment is
  // still fully resident.  Ask the kernel to drop the (clean) cache pages
  // too, so ResidentBytes() after a release genuinely restarts from zero —
  // the property the out-of-core bench measures.
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::posix_fadvise(fd, 0, static_cast<off_t>(length_), POSIX_FADV_DONTNEED);
    ::close(fd);
  }
}

Result<SegmentIndex> OpenSegment(const std::string& path,
                                 SegmentOpenMode mode) {
  if (mode == SegmentOpenMode::kMmap) {
    SIMJOIN_ASSIGN_OR_RETURN(std::shared_ptr<MappedSegment> segment,
                             MappedSegment::Open(path));
    const SegmentInfo& info = segment->info();
    SegmentIndex out;
    out.dataset = std::make_unique<Dataset>(Dataset::Borrowed(
        segment->dataset_rows(), info.num_points, info.dims));
    FlatEkdbStorageView view = ViewFromSections(
        info, info.config.dim_order, segment->nodes(), segment->bbox_lo(),
        segment->bbox_hi(), segment->arena(), segment->arena_ids());
    SIMJOIN_ASSIGN_OR_RETURN(
        FlatEkdbTree tree,
        FlatEkdbTree::FromView(*out.dataset, view, segment));
    out.tree = std::make_unique<FlatEkdbTree>(std::move(tree));
    out.segment = std::move(segment);
    return out;
  }

  // In-memory load: read and checksum-verify every section into owned
  // storage.
  SIMJOIN_ASSIGN_OR_RETURN(SegmentInfo info, ReadSegmentInfo(path));
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (fd.fd < 0) {
    return Status::NotFound("cannot open segment file '" + path +
                            "': " + std::strerror(errno));
  }
  auto section = [&](SegmentSection s) -> const SegmentInfo::Section& {
    return info.sections[static_cast<size_t>(s)];
  };

  FlatEkdbStorage storage;
  storage.config = info.config;
  storage.dim_order = info.config.dim_order;
  storage.num_stripes = info.num_stripes;
  storage.stripe_width = info.stripe_width;
  storage.nodes.resize(info.num_nodes);
  storage.bbox_lo.resize(static_cast<size_t>(info.num_nodes) * info.dims);
  storage.bbox_hi.resize(static_cast<size_t>(info.num_nodes) * info.dims);
  storage.arena.resize(static_cast<size_t>(info.num_points) * info.dims);
  storage.arena_ids.resize(info.num_points);
  std::vector<float> rows(static_cast<size_t>(info.num_points) * info.dims);

  struct Load {
    SegmentSection section;
    const char* name;
    void* data;
  };
  const Load loads[] = {
      {SegmentSection::kNodes, "nodes", storage.nodes.data()},
      {SegmentSection::kBboxLo, "bbox_lo", storage.bbox_lo.data()},
      {SegmentSection::kBboxHi, "bbox_hi", storage.bbox_hi.data()},
      {SegmentSection::kArena, "arena", storage.arena.data()},
      {SegmentSection::kArenaIds, "arena_ids", storage.arena_ids.data()},
      {SegmentSection::kDataset, "dataset", rows.data()},
  };
  for (const Load& load : loads) {
    const SegmentInfo::Section& s = section(load.section);
    SIMJOIN_RETURN_NOT_OK(PreadAll(fd.fd, load.data, s.bytes, s.offset));
    SIMJOIN_RETURN_NOT_OK(VerifySection(load.name, s, load.data));
  }

  SegmentIndex out;
  SIMJOIN_ASSIGN_OR_RETURN(Dataset dataset,
                           Dataset::FromFlat(std::move(rows), info.dims));
  out.dataset = std::make_unique<Dataset>(std::move(dataset));
  SIMJOIN_ASSIGN_OR_RETURN(
      FlatEkdbTree tree,
      FlatEkdbTree::FromStorage(*out.dataset, std::move(storage)));
  out.tree = std::make_unique<FlatEkdbTree>(std::move(tree));
  return out;
}

}  // namespace simjoin
