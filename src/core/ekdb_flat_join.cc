#include "core/ekdb_flat_join.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simjoin {
namespace internal {

namespace {

/// First arena position in [begin, end) whose coordinate `dim` is >= lo; the
/// range must be sorted ascending on that coordinate.
uint32_t LowerBoundPos(const float* arena, size_t dims, uint32_t begin,
                       uint32_t end, uint32_t dim, double lo) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    if (static_cast<double>(arena[static_cast<size_t>(mid) * dims + dim]) <
        lo) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

/// First arena position in [begin, end) whose coordinate `dim` is > hi.
uint32_t UpperBoundPos(const float* arena, size_t dims, uint32_t begin,
                       uint32_t end, uint32_t dim, double hi) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    if (static_cast<double>(arena[static_cast<size_t>(mid) * dims + dim]) <=
        hi) {
      begin = mid + 1;
    } else {
      end = mid;
    }
  }
  return begin;
}

/// First arena position in [begin, end) whose coordinate `dim` exceeds vi by
/// more than eps — the same break predicate the pointer-tree self-join
/// window uses, evaluated with identical arithmetic.
uint32_t SelfWindowEnd(const float* arena, size_t dims, uint32_t begin,
                       uint32_t end, uint32_t dim, double vi, double eps) {
  while (begin < end) {
    const uint32_t mid = begin + (end - begin) / 2;
    if (static_cast<double>(arena[static_cast<size_t>(mid) * dims + dim]) -
            vi >
        eps) {
      end = mid;
    } else {
      begin = mid + 1;
    }
  }
  return begin;
}

}  // namespace

FlatEkdbJoinContext::FlatEkdbJoinContext(const FlatEkdbTree& tree,
                                         PairSink* sink)
    : a_tree_(tree),
      b_tree_(tree),
      dims_(tree.dims()),
      epsilon_(tree.config().epsilon),
      bbox_pruning_(tree.config().bbox_pruning),
      sliding_window_(tree.config().sliding_window_leaf_join),
      self_mode_(true),
      batch_(tree.config().metric, tree.dims(), tree.config().epsilon),
      buffered_(sink) {}

FlatEkdbJoinContext::FlatEkdbJoinContext(const FlatEkdbTree& a,
                                         const FlatEkdbTree& b,
                                         PairSink* sink)
    : a_tree_(a),
      b_tree_(b),
      dims_(a.dims()),
      epsilon_(a.config().epsilon),
      bbox_pruning_(a.config().bbox_pruning && b.config().bbox_pruning),
      sliding_window_(a.config().sliding_window_leaf_join &&
                      b.config().sliding_window_leaf_join),
      self_mode_(false),
      batch_(a.config().metric, a.dims(), a.config().epsilon),
      buffered_(sink) {}

void FlatEkdbJoinContext::LeafSelfJoin(const FlatEkdbNode& leaf) {
  SIMJOIN_TRACE_SPAN("join.simd_filter");
  const float* arena = a_tree_.arena_data();
  const PointId* ids = a_tree_.arena_ids_data();
  const uint32_t sd = leaf.sort_dim;
  for (uint32_t i = leaf.arena_begin; i < leaf.arena_end; ++i) {
    const float* row_i = a_tree_.arena_row(i);
    // The arena run is sorted on sort_dim, so every partner of i within the
    // epsilon window on that coordinate is one contiguous run starting at
    // i + 1 — stream it straight into the strided kernel.
    uint32_t run_end = leaf.arena_end;
    if (sliding_window_) {
      run_end = SelfWindowEnd(arena, dims_, i + 1, leaf.arena_end, sd,
                              static_cast<double>(row_i[sd]), epsilon_);
    }
    if (run_end <= i + 1) continue;
    FilterStridedRunAndEmit(batch_, ids[i], row_i, a_tree_.arena_row(i + 1),
                            dims_, ids + i + 1, run_end - (i + 1),
                            /*canonical_order=*/true, buffered_, stats_);
  }
}

void FlatEkdbJoinContext::LeafCrossJoin(const FlatEkdbNode& a,
                                        const FlatEkdbNode& b) {
  SIMJOIN_TRACE_SPAN("join.simd_filter");
  const float* b_arena = b_tree_.arena_data();
  const PointId* b_ids = b_tree_.arena_ids_data();
  if (!sliding_window_) {
    const uint32_t count = b.arena_end - b.arena_begin;
    if (count == 0) return;
    for (uint32_t i = a.arena_begin; i < a.arena_end; ++i) {
      FilterStridedRunAndEmit(batch_, a_tree_.arena_id(i),
                              a_tree_.arena_row(i),
                              b_tree_.arena_row(b.arena_begin), dims_,
                              b_ids + b.arena_begin, count, self_mode_,
                              buffered_, stats_);
    }
    return;
  }
  // Window on the candidate side's sort dimension, so the window is always a
  // contiguous run of b's arena range.  When the query side happens to be
  // sorted on the same dimension the window start advances monotonically;
  // otherwise (leaves at different depths) each query row binary-searches
  // its window — no re-sorting of either side is needed, unlike the
  // pointer-tree path.
  const uint32_t dim = b.sort_dim;
  const bool same_dim = a.sort_dim == b.sort_dim;
  uint32_t window_start = b.arena_begin;
  for (uint32_t i = a.arena_begin; i < a.arena_end; ++i) {
    const float* a_row = a_tree_.arena_row(i);
    const double lo = static_cast<double>(a_row[dim]) - epsilon_;
    const double hi = static_cast<double>(a_row[dim]) + epsilon_;
    uint32_t wb;
    if (same_dim) {
      while (window_start < b.arena_end &&
             static_cast<double>(
                 b_arena[static_cast<size_t>(window_start) * dims_ + dim]) <
                 lo) {
        ++window_start;
      }
      wb = window_start;
    } else {
      wb = LowerBoundPos(b_arena, dims_, b.arena_begin, b.arena_end, dim, lo);
    }
    const uint32_t we = UpperBoundPos(b_arena, dims_, wb, b.arena_end, dim, hi);
    if (we <= wb) continue;
    FilterStridedRunAndEmit(batch_, a_tree_.arena_id(i), a_row,
                            b_tree_.arena_row(wb), dims_, b_ids + wb, we - wb,
                            self_mode_, buffered_, stats_);
  }
}

void FlatEkdbJoinContext::SelfJoinNode(uint32_t node_idx) {
  SIMJOIN_CHECK(self_mode_) << "SelfJoinNode on a two-tree context";
  const FlatEkdbNode& node = a_tree_.node(node_idx);
  if (node.is_leaf()) {
    LeafSelfJoin(node);
    return;
  }
  const uint32_t cb = node.children_begin;
  const uint32_t ce = cb + node.children_count;
  for (uint32_t c = cb; c < ce; ++c) {
    SelfJoinNode(c);
    // Only the immediately adjacent stripe can hold joining partners.
    if (c + 1 < ce &&
        a_tree_.node(c + 1).stripe == a_tree_.node(c).stripe + 1) {
      JoinNodes(c, c + 1);
    }
  }
}

void FlatEkdbJoinContext::JoinNodes(uint32_t a_idx, uint32_t b_idx) {
  ++stats_.node_pairs_visited;
  const FlatEkdbNode& a = a_tree_.node(a_idx);
  const FlatEkdbNode& b = b_tree_.node(b_idx);
  if (bbox_pruning_ &&
      BoxMinDistance(a_tree_.bbox_lo(a_idx), a_tree_.bbox_hi(a_idx),
                     b_tree_.bbox_lo(b_idx), b_tree_.bbox_hi(b_idx), dims_,
                     batch_.metric()) > epsilon_) {
    ++stats_.node_pairs_pruned;
    return;
  }
  if (a.is_leaf() && b.is_leaf()) {
    LeafCrossJoin(a, b);
    return;
  }
  if (a.is_leaf()) {
    const uint32_t end = b.children_begin + b.children_count;
    for (uint32_t c = b.children_begin; c < end; ++c) JoinNodes(a_idx, c);
    return;
  }
  if (b.is_leaf()) {
    const uint32_t end = a.children_begin + a.children_count;
    for (uint32_t c = a.children_begin; c < end; ++c) JoinNodes(c, b_idx);
    return;
  }
  // Both internal: same depth, same split dimension, shared global stripe
  // grid — pair children whose stripe indices differ by at most one.
  const uint32_t ae = a.children_begin + a.children_count;
  const uint32_t be = b.children_begin + b.children_count;
  uint32_t j_lo = b.children_begin;
  for (uint32_t ci = a.children_begin; ci < ae; ++ci) {
    const uint32_t sa = a_tree_.node(ci).stripe;
    const uint32_t lo = sa == 0 ? 0 : sa - 1;
    while (j_lo < be && b_tree_.node(j_lo).stripe < lo) ++j_lo;
    for (uint32_t cj = j_lo; cj < be && b_tree_.node(cj).stripe <= sa + 1;
         ++cj) {
      JoinNodes(ci, cj);
    }
  }
}

}  // namespace internal

namespace {

Status ValidateEpsilonOverride(double eps_query, double build_epsilon) {
  if (!(eps_query > 0.0) || eps_query > build_epsilon) {
    return Status::InvalidArgument(
        "eps_query must be in (0, built epsilon]; the stripe grid only "
        "supports radii up to the build epsilon");
  }
  return Status::OK();
}

/// Phase timing shared by the sequential flat drivers: traversal covers the
/// tree walk including the SIMD filter; emit covers the final sink flush.
/// Instrumentation never touches JoinStats or the pair sequence, so
/// sequential/parallel outputs stay bit-identical.
obs::Histogram* TraversalHistogram() {
  static obs::Histogram* const hist =
      obs::GlobalMetrics().GetHistogram("join.phase.traversal_us");
  return hist;
}

}  // namespace

Status FlatEkdbSelfJoin(const FlatEkdbTree& tree, PairSink* sink,
                        JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  internal::FlatEkdbJoinContext ctx(tree, sink);
  {
    SIMJOIN_TRACE_SPAN("join.traversal");
    obs::ScopedLatencyTimer timer(TraversalHistogram());
    ctx.SelfJoinNode(FlatEkdbTree::kRoot);
  }
  {
    SIMJOIN_TRACE_SPAN("join.emit");
    ctx.Flush();
  }
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status FlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                    PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!FlatEkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  internal::FlatEkdbJoinContext ctx(a, b, sink);
  {
    SIMJOIN_TRACE_SPAN("join.traversal");
    obs::ScopedLatencyTimer timer(TraversalHistogram());
    ctx.JoinNodes(FlatEkdbTree::kRoot, FlatEkdbTree::kRoot);
  }
  {
    SIMJOIN_TRACE_SPAN("join.emit");
    ctx.Flush();
  }
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status FlatEkdbSelfJoinWithEpsilon(const FlatEkdbTree& tree, double eps_query,
                                   PairSink* sink, JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  SIMJOIN_RETURN_NOT_OK(
      ValidateEpsilonOverride(eps_query, tree.config().epsilon));
  internal::FlatEkdbJoinContext ctx(tree, sink);
  ctx.OverrideEpsilon(eps_query);
  {
    SIMJOIN_TRACE_SPAN("join.traversal");
    obs::ScopedLatencyTimer timer(TraversalHistogram());
    ctx.SelfJoinNode(FlatEkdbTree::kRoot);
  }
  {
    SIMJOIN_TRACE_SPAN("join.emit");
    ctx.Flush();
  }
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

Status FlatEkdbJoinWithEpsilon(const FlatEkdbTree& a, const FlatEkdbTree& b,
                               double eps_query, PairSink* sink,
                               JoinStats* stats) {
  if (sink == nullptr) return Status::InvalidArgument("sink must not be null");
  if (!FlatEkdbTree::JoinCompatible(a, b)) {
    return Status::InvalidArgument(
        "trees are not join-compatible (epsilon, metric, dims, and dim order "
        "must match)");
  }
  SIMJOIN_RETURN_NOT_OK(ValidateEpsilonOverride(eps_query, a.config().epsilon));
  internal::FlatEkdbJoinContext ctx(a, b, sink);
  ctx.OverrideEpsilon(eps_query);
  {
    SIMJOIN_TRACE_SPAN("join.traversal");
    obs::ScopedLatencyTimer timer(TraversalHistogram());
    ctx.JoinNodes(FlatEkdbTree::kRoot, FlatEkdbTree::kRoot);
  }
  {
    SIMJOIN_TRACE_SPAN("join.emit");
    ctx.Flush();
  }
  if (stats != nullptr) stats->Merge(ctx.stats());
  return Status::OK();
}

}  // namespace simjoin
