// Epsilon-grid index: the dense low-dimensional fast path.
//
// The GPU self-join literature (PAPERS.md) indexes with a uniform grid of
// epsilon-width cells instead of a tree: a range query only ever has to scan
// the query's cell and its immediate neighbours, and a cell's points are
// contiguous, so the whole query is a handful of strided streaming sweeps
// with no traversal logic at all.  That layout wins when the data is dense
// and the binned dimensionality is low (few neighbour cells, well-filled
// cells) and loses badly in high dimensions (3^d neighbour cells, mostly
// empty) — which is why it is a per-index *backend choice* next to the
// eps-k-d-B tree, not a replacement.
//
// The grid bins on the first few dimensions of the configured dim order
// (at most kMaxBinnedDims, further capped so the cell table stays small) at
// the same stripe width the tree uses, and stores points cell-major in a
// row-major coordinate arena — the same shape FlatEkdbTree's leaf arena has,
// scanned by the same strided batch-kernel tiles, with the same exactness
// guarantees.  Queries support any radius in (0, build epsilon], mirroring
// the tree's contract.

#ifndef SIMJOIN_CORE_EPSILON_GRID_H_
#define SIMJOIN_CORE_EPSILON_GRID_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "core/ekdb_config.h"
#include "core/ekdb_flat.h"

namespace simjoin {

/// Uniform-grid index over a dataset it does not own.  Immutable after
/// Build; the dataset must stay alive and unmodified for the lifetime of
/// this object.
class EpsilonGrid {
 public:
  /// Hard cap on binned dimensions: 3 keeps the neighbour-cell fan-out at
  /// most 27 and is where the GPU-paper grids stop too.
  static constexpr size_t kMaxBinnedDims = 3;
  /// Cap on the cell table size; binned dims are dropped (highest first)
  /// until stripes^binned_dims fits.
  static constexpr size_t kMaxCells = size_t{1} << 20;

  /// Builds the grid: one counting-sort pass over the dataset.  Fails if the
  /// config is invalid for the dataset (same checks as the tree build).
  static Result<EpsilonGrid> Build(const Dataset& dataset,
                                   const EkdbConfig& config);

  // -- structure -----------------------------------------------------------

  uint32_t num_points() const { return static_cast<uint32_t>(ids_.size()); }
  size_t dims() const { return dims_; }
  const EkdbConfig& config() const { return config_; }
  const Dataset& dataset() const { return *dataset_; }
  /// Dimensions the grid bins on (a prefix of the configured dim order).
  const std::vector<uint32_t>& binned_dims() const { return binned_dims_; }
  size_t num_cells() const { return cell_start_.size() - 1; }

  // -- queries -------------------------------------------------------------

  /// Same contract and validation as FlatEkdbTree::RangeQuery: collects the
  /// ids of all points within eps_query (in (0, build epsilon]) of the query
  /// point, in a deterministic order (neighbour cells ascending, dataset
  /// order within a cell), tallying stats when provided.
  Status RangeQuery(const float* query, double eps_query,
                    std::vector<PointId>* out,
                    JoinStats* stats = nullptr) const;

  /// Same contract as FlatEkdbTree::ValidateQueryEpsilon.
  Status ValidateQueryEpsilon(double eps_query) const;

  /// Fused batch execution with the same plan / sorted-sweep / scatter
  /// structure — and the same bit-identity guarantee versus solo RangeQuery
  /// calls — as FlatEkdbTree::RangeQueryBatch.
  Status RangeQueryBatch(const RangeQuerySpec* specs, size_t count,
                         std::vector<std::vector<PointId>>* results,
                         std::vector<JoinStats>* stats = nullptr) const;

  // -- memory accounting ---------------------------------------------------

  uint64_t total_bytes() const {
    return static_cast<uint64_t>(arena_.capacity()) * sizeof(float) +
           static_cast<uint64_t>(ids_.capacity()) * sizeof(PointId) +
           static_cast<uint64_t>(cell_start_.capacity()) * sizeof(uint32_t);
  }

 private:
  EpsilonGrid() = default;

  /// Cell index of a point (by its binned coordinates); lexicographic over
  /// binned_dims_.
  size_t CellOf(const float* row) const;
  /// Stripe index of one coordinate, clamped to [0, stripes_per_dim_ - 1].
  uint32_t StripeIndex(float value) const;

  /// Appends every neighbour-cell arena window for a query (ascending cell
  /// order) to *windows as (begin, end) pairs; shared by the solo and batch
  /// paths so their window order is identical by construction.
  void CollectWindows(
      const float* query,
      std::vector<std::pair<uint32_t, uint32_t>>* windows) const;

  const Dataset* dataset_ = nullptr;
  EkdbConfig config_;
  size_t dims_ = 0;
  std::vector<uint32_t> binned_dims_;
  size_t stripes_per_dim_ = 1;
  double stripe_width_ = 1.0;

  std::vector<uint32_t> cell_start_;  ///< num_cells + 1 prefix offsets
  std::vector<float> arena_;          ///< cell-major row-major coordinates
  std::vector<PointId> ids_;          ///< arena position -> dataset id
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EPSILON_GRID_H_
