#include "core/components.h"

#include "common/pair_sink.h"
#include "common/union_find.h"
#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"

namespace simjoin {
namespace {

/// Folds join pairs straight into a union-find; nothing is materialised.
class UnionSink : public PairSink {
 public:
  explicit UnionSink(UnionFind* uf) : uf_(uf) {}
  void Emit(PointId a, PointId b) override {
    ++pairs_;
    uf_->Union(a, b);
  }
  uint64_t pairs() const { return pairs_; }

 private:
  UnionFind* uf_;
  uint64_t pairs_ = 0;
};

}  // namespace

Result<ComponentsResult> EpsilonConnectedComponents(const Dataset& data,
                                                    double epsilon,
                                                    Metric metric,
                                                    size_t leaf_threshold) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  EkdbConfig config;
  config.epsilon = epsilon;
  config.metric = metric;
  config.leaf_threshold = leaf_threshold;
  SIMJOIN_ASSIGN_OR_RETURN(auto tree, EkdbTree::Build(data, config));

  UnionFind uf(data.size());
  UnionSink sink(&uf);
  SIMJOIN_RETURN_NOT_OK(EkdbSelfJoin(tree, &sink));

  ComponentsResult result;
  result.join_pairs = sink.pairs();
  result.labels = uf.DenseLabels();
  result.num_components = uf.NumComponents();
  result.sizes.assign(result.num_components, 0);
  for (uint32_t label : result.labels) ++result.sizes[label];
  return result;
}

}  // namespace simjoin
