// Sliding-window similarity join over a point stream.
//
// Maintains the last `window` points of a stream in an eps-k-d-B tree and,
// for every arriving point, reports the pairs it forms with the points
// co-resident in the window — the incremental, fixed-window flavour of the
// similarity join.  A pair of stream positions is reported exactly once
// (when its later point arrives) iff both points fit in one window state,
// i.e. their positions differ by at most window - 1.
//
// Internally a ring of `window` dataset slots is recycled: the expiring
// resident is Remove()d from the tree, its slot is overwritten, the new
// point is range-queried against the remaining residents, then Insert()ed.
// Per-arrival cost is the tree's query + maintenance cost, not a rebuild.

#ifndef SIMJOIN_CORE_STREAMING_WINDOW_H_
#define SIMJOIN_CORE_STREAMING_WINDOW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/ekdb_tree.h"

namespace simjoin {

/// Identifier of a stream element: its 0-based arrival position.
using StreamPos = uint64_t;

/// Receives one result pair (earlier position, current position).
using StreamPairCallback = std::function<void(StreamPos, StreamPos)>;

/// Sliding-window epsilon join over a stream of d-dimensional points.
class StreamingWindowJoin {
 public:
  /// Creates a window of the given capacity over dims-dimensional points.
  /// The config's epsilon/metric/leaf threshold apply to every window
  /// state.  Fails on invalid config, window < 2, or zero dims.
  static Result<std::unique_ptr<StreamingWindowJoin>> Create(
      size_t window, size_t dims, const EkdbConfig& config);

  /// Feeds the next stream point (coordinates in [0,1]^dims).  Every
  /// co-resident point within epsilon is reported as
  /// (earlier position, this position).  Returns the arrival position
  /// assigned to the point.
  Result<StreamPos> Feed(const float* point, const StreamPairCallback& on_pair);

  /// Number of points currently resident (min(arrivals, window)).
  size_t resident() const { return slot_pos_.size(); }

  /// Total points fed so far.
  StreamPos arrivals() const { return next_pos_; }

  size_t window() const { return window_; }
  size_t dims() const { return dims_; }

 private:
  StreamingWindowJoin(size_t window, size_t dims, EkdbConfig config);

  size_t window_;
  size_t dims_;
  EkdbConfig config_;
  Dataset slots_;                      ///< ring of up to window rows
  std::vector<StreamPos> slot_pos_;    ///< arrival position held by each slot
  std::unique_ptr<EkdbTree> tree_;     ///< tree over slots_ (slot ids)
  StreamPos next_pos_ = 0;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_STREAMING_WINDOW_H_
