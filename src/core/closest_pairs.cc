#include "core/closest_pairs.h"

#include <algorithm>
#include <cmath>

#include "baselines/kdtree.h"
#include "common/pair_sink.h"
#include "common/rng.h"

namespace simjoin {
namespace {

bool PairLess(const ClosestPair& x, const ClosestPair& y) {
  if (x.distance != y.distance) return x.distance < y.distance;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// Collects pairs with their distances.
class DistancePairSink : public PairSink {
 public:
  DistancePairSink(const Dataset& data, const DistanceKernel& kernel)
      : data_(data), kernel_(kernel) {}

  void Emit(PointId a, PointId b) override {
    pairs_.push_back(ClosestPair{
        a, b, kernel_.Distance(data_.Row(a), data_.Row(b), data_.dims())});
  }

  std::vector<ClosestPair>& pairs() { return pairs_; }

 private:
  const Dataset& data_;
  const DistanceKernel& kernel_;
  std::vector<ClosestPair> pairs_;
};

std::vector<ClosestPair> BruteForceTopK(const Dataset& data, size_t k,
                                        const DistanceKernel& kernel) {
  std::vector<ClosestPair> all;
  const size_t n = data.size();
  all.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      all.push_back(ClosestPair{static_cast<PointId>(i),
                                static_cast<PointId>(j),
                                kernel.Distance(data.Row(static_cast<PointId>(i)),
                                                data.Row(static_cast<PointId>(j)),
                                                data.dims())});
    }
  }
  std::sort(all.begin(), all.end(), PairLess);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace

Result<std::vector<ClosestPair>> TopKClosestPairs(const Dataset& data, size_t k,
                                                  Metric metric,
                                                  uint64_t seed) {
  if (data.size() < 2) {
    return Status::InvalidArgument("need at least two points");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  DistanceKernel kernel(metric);
  const size_t total_pairs = data.size() * (data.size() - 1) / 2;

  // Small problems (or huge k): just enumerate.
  if (total_pairs <= 4096 || k * 4 >= total_pairs) {
    return BruteForceTopK(data, std::min(k, total_pairs), kernel);
  }

  // Seed the radius from sampled nearest-neighbour distances via the
  // epsilon-agnostic k-d tree, then grow geometrically until the join
  // returns at least k pairs.
  SIMJOIN_ASSIGN_OR_RETURN(auto tree, KdTree::Build(data, KdTreeConfig{}));
  Rng rng(seed);
  double radius = 0.0;
  {
    const size_t samples = std::min<size_t>(32, data.size());
    std::vector<KdTree::Neighbor> nn;
    for (size_t s = 0; s < samples; ++s) {
      const PointId q = static_cast<PointId>(rng.UniformInt(data.size()));
      nn.clear();
      // 2 neighbours: the query point itself plus its true neighbour.
      SIMJOIN_RETURN_NOT_OK(tree.KnnQuery(data.Row(q), 2, metric, &nn));
      if (nn.size() == 2) radius = std::max(radius, nn[1].distance);
    }
    if (radius <= 0.0) radius = 1e-6;  // duplicates everywhere: start tiny
  }

  for (int round = 0; round < 64; ++round) {
    DistancePairSink sink(data, kernel);
    SIMJOIN_RETURN_NOT_OK(KdTreeSelfJoin(tree, radius, metric, &sink));
    if (sink.pairs().size() >= k) {
      std::sort(sink.pairs().begin(), sink.pairs().end(), PairLess);
      sink.pairs().resize(k);
      return std::move(sink.pairs());
    }
    radius *= 2.0;
  }
  return Status::Internal("radius search failed to converge");
}

}  // namespace simjoin
