// Similarity-join traversals over flat (pointer-free) eps-k-d-B trees.
//
// Same contracts as ekdb_join.h — FlatEkdbSelfJoin reports every unordered
// within-epsilon pair exactly once in (min, max) order, FlatEkdbJoin reports
// (a, b) pairs across two join-compatible trees — but the traversal walks
// the contiguous node array and the leaf sweeps stream the coordinate arena
// directly into the strided batch kernel: a sliding window over a leaf
// sorted on its sort dimension is one contiguous arena run, so the hot loop
// performs no per-candidate pointer gather at all.  Emitted pair sets are
// bit-identical to the pointer-tree joins for every metric (the window
// bounds are conservative and the batch kernel's accept decision is exact).

#ifndef SIMJOIN_CORE_EKDB_FLAT_JOIN_H_
#define SIMJOIN_CORE_EKDB_FLAT_JOIN_H_

#include "common/pair_sink.h"
#include "common/simd_kernel.h"
#include "common/status.h"
#include "core/ekdb_flat.h"

namespace simjoin {

/// Self-join of the flat tree's dataset.  Pairs are emitted in canonical
/// (smaller id, larger id) order, each exactly once — the same pair set as
/// EkdbSelfJoin on the tree the flat form was built from.
Status FlatEkdbSelfJoin(const FlatEkdbTree& tree, PairSink* sink,
                        JoinStats* stats = nullptr);

/// Join between two datasets indexed by join-compatible flat trees.  Pairs
/// are (id in a, id in b); the same pair set as EkdbJoin.
Status FlatEkdbJoin(const FlatEkdbTree& a, const FlatEkdbTree& b,
                    PairSink* sink, JoinStats* stats = nullptr);

/// Self-join at a smaller radius than the trees were built for; eps_query
/// must be in (0, config().epsilon].
Status FlatEkdbSelfJoinWithEpsilon(const FlatEkdbTree& tree, double eps_query,
                                   PairSink* sink, JoinStats* stats = nullptr);

/// Two-tree join at a smaller radius (same constraint as above).
Status FlatEkdbJoinWithEpsilon(const FlatEkdbTree& a, const FlatEkdbTree& b,
                               double eps_query, PairSink* sink,
                               JoinStats* stats = nullptr);

namespace internal {

/// Join engine over flat trees, shared by the sequential entry points above
/// and the parallel driver (parallel_join.cc), which drives single node
/// index pairs as tasks.
class FlatEkdbJoinContext {
 public:
  /// Self-join context over one flat tree.
  explicit FlatEkdbJoinContext(const FlatEkdbTree& tree, PairSink* sink);

  /// Two-tree context; trees must be join-compatible (checked by callers).
  FlatEkdbJoinContext(const FlatEkdbTree& a, const FlatEkdbTree& b,
                      PairSink* sink);

  /// Narrows the join radius below the build epsilon (callers must have
  /// validated 0 < eps <= build epsilon).
  void OverrideEpsilon(double eps) {
    epsilon_ = eps;
    batch_.SetEpsilon(eps);
  }

  /// Joins a subtree with itself (self-join contexts only).
  void SelfJoinNode(uint32_t node_idx);

  /// Joins two distinct subtrees (a from tree A / the left side, b from
  /// tree B / the right side).
  void JoinNodes(uint32_t a_idx, uint32_t b_idx);

  /// Pushes buffered result pairs through to the sink.  Must be called after
  /// the last SelfJoinNode/JoinNodes call and before results are consumed.
  void Flush() { buffered_.Flush(); }

  /// Work counters, including the batch kernel's SIMD/fallback tallies.
  JoinStats stats() const {
    JoinStats s = stats_;
    s.simd_batches = batch_.simd_batches();
    s.scalar_fallbacks = batch_.scalar_fallbacks();
    return s;
  }

 private:
  void LeafSelfJoin(const FlatEkdbNode& leaf);
  void LeafCrossJoin(const FlatEkdbNode& a, const FlatEkdbNode& b);

  const FlatEkdbTree& a_tree_;
  const FlatEkdbTree& b_tree_;
  size_t dims_;
  double epsilon_;
  bool bbox_pruning_;
  bool sliding_window_;
  bool self_mode_;
  BatchDistanceKernel batch_;
  BufferedSink buffered_;
  JoinStats stats_;
};

}  // namespace internal

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_FLAT_JOIN_H_
