// Configuration of the eps-k-d-B tree (the paper's core data structure).

#ifndef SIMJOIN_CORE_EKDB_CONFIG_H_
#define SIMJOIN_CORE_EKDB_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/metric.h"
#include "common/status.h"

namespace simjoin {

/// Parameters controlling eps-k-d-B tree construction and joins.
///
/// The tree is ε-specific by design: stripe boundaries are laid out so that
/// only identical or adjacent stripes can contain joining pairs for the
/// configured epsilon, which is what makes the join traversal touch at most
/// three partner children per node.
struct EkdbConfig {
  /// Join radius; the predicate is dist_metric(a, b) <= epsilon.
  /// Must be in (0, 1) — datasets are normalised to the unit cube.
  double epsilon = 0.1;

  /// A node holding at most this many points stays a leaf.
  size_t leaf_threshold = 64;

  /// Distance metric of the join predicate.
  Metric metric = Metric::kL2;

  /// Order in which dimensions are consumed by successive tree levels.
  /// Empty means identity (0, 1, ..., d-1).  Must be a permutation of
  /// 0..d-1 when non-empty.
  std::vector<uint32_t> dim_order;

  /// Prune node pairs whose bounding-box min-distance exceeds epsilon.
  /// Disabling this (ablation R10) falls back to pure stripe adjacency.
  bool bbox_pruning = true;

  /// Use the sliding-window sort-merge inside leaf joins.  Disabling this
  /// (ablation R10) compares all point pairs of joined leaves.
  bool sliding_window_leaf_join = true;

  /// Validates the configuration against a dataset dimensionality.
  Status Validate(size_t dims) const;

  /// Number of stripes per dimension: floor(1/epsilon), at least 1.  The
  /// stripe width 1/num_stripes is >= epsilon, which is what guarantees the
  /// adjacent-stripe property.
  size_t NumStripes() const;

  /// Width of one stripe (1.0 / NumStripes()).
  double StripeWidth() const { return 1.0 / static_cast<double>(NumStripes()); }

  /// Resolved dimension order (identity when dim_order is empty).
  std::vector<uint32_t> ResolvedDimOrder(size_t dims) const;
};

}  // namespace simjoin

#endif  // SIMJOIN_CORE_EKDB_CONFIG_H_
