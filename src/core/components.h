// Epsilon-connected components: single-linkage clustering at threshold
// epsilon, computed by streaming the similarity self-join into a union-find
// — one of the data-mining applications the paper motivates (the join is
// the expensive primitive; the clustering is a linear-time fold over it).
//
// Two points land in the same component iff they are connected by a chain
// of points with consecutive distances <= epsilon (transitive closure of
// the join graph).

#ifndef SIMJOIN_CORE_COMPONENTS_H_
#define SIMJOIN_CORE_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/metric.h"
#include "common/status.h"
#include "core/ekdb_config.h"

namespace simjoin {

/// Clustering outcome.
struct ComponentsResult {
  /// Dense component label per point (0..num_components-1, first-appearance
  /// order — deterministic for a given dataset).
  std::vector<uint32_t> labels;
  size_t num_components = 0;
  /// Size of each component, indexed by label.
  std::vector<uint32_t> sizes;
  /// Number of join pairs folded into the union-find.
  uint64_t join_pairs = 0;
};

/// Computes the epsilon-connected components of the (unit-cube normalised)
/// dataset under the metric, using the eps-k-d-B join as the edge producer.
/// leaf_threshold tunes the underlying tree.
Result<ComponentsResult> EpsilonConnectedComponents(const Dataset& data,
                                                    double epsilon,
                                                    Metric metric,
                                                    size_t leaf_threshold = 64);

}  // namespace simjoin

#endif  // SIMJOIN_CORE_COMPONENTS_H_
