#include "core/dbscan.h"

#include <algorithm>
#include <limits>

#include "common/pair_sink.h"
#include "common/union_find.h"
#include "core/ekdb_join.h"
#include "core/ekdb_tree.h"

namespace simjoin {
namespace {

/// First pass: per-point degrees (open neighbourhood sizes).
class DegreeSink : public PairSink {
 public:
  explicit DegreeSink(std::vector<uint32_t>* degrees) : degrees_(degrees) {}
  void Emit(PointId a, PointId b) override {
    ++(*degrees_)[a];
    ++(*degrees_)[b];
  }

 private:
  std::vector<uint32_t>* degrees_;
};

/// Second pass: union core-core edges; track each non-core point's best
/// (lowest-id) core neighbour for border assignment.
class StructureSink : public PairSink {
 public:
  StructureSink(const std::vector<bool>& is_core, UnionFind* cores,
                std::vector<PointId>* border_anchor)
      : is_core_(is_core), cores_(cores), border_anchor_(border_anchor) {}

  void Emit(PointId a, PointId b) override {
    const bool core_a = is_core_[a];
    const bool core_b = is_core_[b];
    if (core_a && core_b) {
      cores_->Union(a, b);
      return;
    }
    if (core_a && !core_b) {
      (*border_anchor_)[b] = std::min((*border_anchor_)[b], a);
    } else if (core_b && !core_a) {
      (*border_anchor_)[a] = std::min((*border_anchor_)[a], b);
    }
  }

 private:
  const std::vector<bool>& is_core_;
  UnionFind* cores_;
  std::vector<PointId>* border_anchor_;
};

}  // namespace

Result<DbscanResult> Dbscan(const Dataset& data, const DbscanConfig& config) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (config.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be positive");
  }
  EkdbConfig ekdb;
  ekdb.epsilon = config.epsilon;
  ekdb.metric = config.metric;
  ekdb.leaf_threshold = config.leaf_threshold;
  SIMJOIN_ASSIGN_OR_RETURN(auto tree, EkdbTree::Build(data, ekdb));

  const size_t n = data.size();
  DbscanResult result;

  // Pass 1: degrees -> core points.  The closed neighbourhood includes the
  // point itself, so core means degree + 1 >= min_pts.
  std::vector<uint32_t> degrees(n, 0);
  {
    DegreeSink sink(&degrees);
    SIMJOIN_RETURN_NOT_OK(EkdbSelfJoin(tree, &sink));
  }
  result.is_core.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    result.is_core[i] = degrees[i] + 1 >= config.min_pts;
  }

  // Pass 2: cluster structure.
  UnionFind cores(n);
  std::vector<PointId> border_anchor(n, std::numeric_limits<PointId>::max());
  {
    StructureSink sink(result.is_core, &cores, &border_anchor);
    SIMJOIN_RETURN_NOT_OK(EkdbSelfJoin(tree, &sink));
  }

  // Dense cluster labels over core-point components, in order of the
  // lowest core id per component (deterministic).
  result.labels.assign(n, kDbscanNoise);
  std::vector<int32_t> root_label(n, kDbscanNoise);
  int32_t next_label = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!result.is_core[i]) continue;
    const size_t root = cores.Find(i);
    if (root_label[root] == kDbscanNoise) root_label[root] = next_label++;
    result.labels[i] = root_label[root];
  }
  result.num_clusters = static_cast<size_t>(next_label);

  // Border assignment.
  for (size_t i = 0; i < n; ++i) {
    if (result.is_core[i]) continue;
    if (border_anchor[i] != std::numeric_limits<PointId>::max()) {
      result.labels[i] = result.labels[border_anchor[i]];
    }
  }
  for (int32_t label : result.labels) {
    result.noise_points += (label == kDbscanNoise);
  }
  return result;
}

}  // namespace simjoin
